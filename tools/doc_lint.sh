#!/usr/bin/env bash
# Keeps docs/OBSERVABILITY.md's metric catalog in exact sync with the
# metric names the code registers (MetricsRegistry::counter/gauge/
# histogram calls under src/). Fails if a registered metric is missing
# from the doc, or the doc names a metric the code no longer registers.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/OBSERVABILITY.md
[[ -f "$DOC" ]] || { echo "doc-lint: $DOC missing" >&2; exit 1; }

# Registration sites look like:  metrics_.counter("queries_ok")  or, via
# a registry pointer,  metrics->histogram("net_request_ms")
code_names=$(grep -rhoE '(\.|->)(counter|gauge|histogram)\("[a-z0-9_]+"\)' src/ |
  sed -E 's/.*\("([a-z0-9_]+)"\)/\1/' | sort -u)
[[ -n "$code_names" ]] || { echo "doc-lint: no registrations found under src/" >&2; exit 1; }

# The metric catalog section lists each metric as a backticked table
# entry: | `name` | ... (other sections table span names the same way,
# so only the catalog section is scanned).
doc_names=$(sed -n '/^## 1\. Metric catalog/,/^## 2\./p' "$DOC" |
  grep -oE '^\| `[a-z0-9_]+` \|' |
  sed -E 's/^\| `([a-z0-9_]+)` \|/\1/' | sort -u)

fail=0
missing_in_doc=$(comm -23 <(echo "$code_names") <(echo "$doc_names"))
if [[ -n "$missing_in_doc" ]]; then
  echo "doc-lint: metrics registered in src/ but undocumented in $DOC:" >&2
  echo "$missing_in_doc" | sed 's/^/  /' >&2
  fail=1
fi
stale_in_doc=$(comm -13 <(echo "$code_names") <(echo "$doc_names"))
if [[ -n "$stale_in_doc" ]]; then
  echo "doc-lint: metrics documented in $DOC but not registered in src/:" >&2
  echo "$stale_in_doc" | sed 's/^/  /' >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then exit 1; fi
echo "ok: $(echo "$code_names" | wc -l) metric names in sync with $DOC"
