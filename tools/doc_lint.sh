#!/usr/bin/env bash
# Keeps docs/OBSERVABILITY.md in exact sync with the code, both ways:
#   - the §1 metric catalog vs every MetricsRegistry::counter/gauge/
#     histogram registration under src/;
#   - the §2 span catalog vs every TraceSpan construction and
#     AddTimedSpan call under src/.
# Fails if the code emits a name the doc omits, or the doc names one the
# code no longer emits.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/OBSERVABILITY.md
[[ -f "$DOC" ]] || { echo "doc-lint: $DOC missing" >&2; exit 1; }

# Registration sites look like:  metrics_.counter("queries_ok")  or, via
# a registry pointer,  metrics->histogram("net_request_ms")
code_names=$(grep -rhoE '(\.|->)(counter|gauge|histogram)\("[a-z0-9_]+"\)' src/ |
  sed -E 's/.*\("([a-z0-9_]+)"\)/\1/' | sort -u)
[[ -n "$code_names" ]] || { echo "doc-lint: no registrations found under src/" >&2; exit 1; }

# The metric catalog section lists each metric as a backticked table
# entry: | `name` | ... (other sections table span names the same way,
# so only the catalog section is scanned).
doc_names=$(sed -n '/^## 1\. Metric catalog/,/^## 2\./p' "$DOC" |
  grep -oE '^\| `[a-z0-9_]+` \|' |
  sed -E 's/^\| `([a-z0-9_]+)` \|/\1/' | sort -u)

fail=0
missing_in_doc=$(comm -23 <(echo "$code_names") <(echo "$doc_names"))
if [[ -n "$missing_in_doc" ]]; then
  echo "doc-lint: metrics registered in src/ but undocumented in $DOC:" >&2
  echo "$missing_in_doc" | sed 's/^/  /' >&2
  fail=1
fi
stale_in_doc=$(comm -13 <(echo "$code_names") <(echo "$doc_names"))
if [[ -n "$stale_in_doc" ]]; then
  echo "doc-lint: metrics documented in $DOC but not registered in src/:" >&2
  echo "$stale_in_doc" | sed 's/^/  /' >&2
  fail=1
fi

# Span emission sites look like:  TraceSpan span(trace, "ingest.append")
# (possibly with more arguments) or retroactive recording via
# trace->AddTimedSpan("service.queue_wait", ...).
code_spans=$( (grep -rhoE 'TraceSpan [A-Za-z_]+\([^;"]*"[a-z._0-9]+"' src/ |
    grep -oE '"[a-z._0-9]+"';
  grep -rhoE 'AddTimedSpan\("[a-z._0-9]+"' src/ |
    grep -oE '"[a-z._0-9]+"') |
  tr -d '"' | sort -u)
[[ -n "$code_spans" ]] || { echo "doc-lint: no span sites found under src/" >&2; exit 1; }

# The §2 span catalog lists each span as a backticked table entry.
doc_spans=$(sed -n '/^## 2\. Trace spans/,/^## 3\./p' "$DOC" |
  grep -oE '^\| `[a-z._0-9]+` \|' |
  sed -E 's/^\| `([a-z._0-9]+)` \|/\1/' | sort -u)

spans_missing_in_doc=$(comm -23 <(echo "$code_spans") <(echo "$doc_spans"))
if [[ -n "$spans_missing_in_doc" ]]; then
  echo "doc-lint: spans emitted in src/ but undocumented in $DOC:" >&2
  echo "$spans_missing_in_doc" | sed 's/^/  /' >&2
  fail=1
fi
spans_stale_in_doc=$(comm -13 <(echo "$code_spans") <(echo "$doc_spans"))
if [[ -n "$spans_stale_in_doc" ]]; then
  echo "doc-lint: spans documented in $DOC but not emitted in src/:" >&2
  echo "$spans_stale_in_doc" | sed 's/^/  /' >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then exit 1; fi
echo "ok: $(echo "$code_names" | wc -l) metric names and $(echo "$code_spans" | wc -l) span names in sync with $DOC"
