// The interactive S-OLAP shell binary: the "User Interface" of the paper's
// architecture (Fig. 6). Reads commands from stdin (or a script via shell
// redirection); see `help` for the command set.
//
//   ./build/tools/solap_shell
//   ./build/tools/solap_shell < session_script.txt
#include <iostream>

#include "solap/tools/shell.h"

int main() {
  std::cout << "S-OLAP shell — 'help' lists commands, 'quit' exits.\n";
  solap::ShellSession session(std::cout);
  session.Run(std::cin);
  return 0;
}
