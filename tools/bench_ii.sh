#!/usr/bin/env bash
# Builds and runs the II perf harness, emitting BENCH_ii.json at the repo
# root (the checked-in copy EXPERIMENTS.md references). Pass --quick for
# the small CI configuration; any extra flags are forwarded to the bench.
#
# Usage: tools/bench_ii.sh [--quick] [extra bench flags...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_ii_kernels >/dev/null

"$BUILD_DIR/bench/bench_ii_kernels" --json=BENCH_ii.json "$@"
