#!/usr/bin/env bash
# Full verification: the tier-1 build + test pass, a doc-lint pass
# (metric AND span catalogs in docs/OBSERVABILITY.md must match the
# names the code registers/emits), a perf smoke run of the II kernel
# harness against its recorded baselines, then the same tests
# under ASan/UBSan, then the service/engine/parallel-II/ingest tests
# under TSan (the concurrency surface: engine thread-safety, thread
# pool, query service, sessions, intra-query join/scan partitioning,
# and the streaming write path — concurrent writers + readers + the
# delta merger against the epoch gate).
#
# Distributed stage: distributed_shard_test spawns real shard_main
# processes (supervisor + coordinator over loopback HTTP) and runs in
# tier-1, the ASan full suite, and the TSan filter below; the
# failpoints stages add chaos_test's shard-kill-under-armed-rpc-faults
# and concurrent-writers-under-fault-load scenarios under both ASan
# and TSan.
#
# Usage: tools/check.sh [--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Build only the executables ctest will run (registered test names match
# their target names), not benches/examples — sanitizer builds are slow.
build_tests() {  # build_tests <dir> [filter-regex]
  local dir="$1" filter="${2:-}" targets
  # Note the \+: ctest right-aligns test numbers, so "Test  #1:" carries
  # two spaces once there are ten or more tests.
  targets=$(ctest --test-dir "$dir" -N ${filter:+-R "$filter"} |
    sed -n 's/^ *Test \+#[0-9]*: //p')
  # shellcheck disable=SC2086
  cmake --build "$dir" -j"$JOBS" --target $targets >/dev/null
}

run_ctest() {
  ctest --test-dir "$1" --output-on-failure ${2:+-R "$2"}
}

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" >/dev/null
run_ctest build

if [[ "${1:-}" == "--tier1-only" ]]; then
  exit 0
fi

echo
echo "== doc-lint: metric catalog in sync with docs/OBSERVABILITY.md =="
tools/doc_lint.sh

echo
echo "== perf smoke: II kernels vs bench/thresholds.json =="
cmake --build build -j"$JOBS" --target bench_ii_kernels >/dev/null
build/bench/bench_ii_kernels --quick --check=bench/thresholds.json

echo
echo "== ASan + UBSan: full test suite =="
cmake -B build-asan -S . -DSOLAP_SANITIZE=address >/dev/null
build_tests build-asan
run_ctest build-asan

echo
echo "== TSan: service + engine concurrency tests =="
TSAN_FILTER="service_test|service_stress_test|engine_test|parallel_ii_test|sharded_engine_test|intersect_test|net_test|distributed_shard_test|ingest_test|ingest_consistency_test"
cmake -B build-tsan -S . -DSOLAP_SANITIZE=thread >/dev/null
build_tests build-tsan "$TSAN_FILTER"
run_ctest build-tsan "$TSAN_FILTER"

echo
echo "== failpoints: compiled out of the default build =="
# The fault-injection framework must contribute nothing unless opted into.
# (Filter out archive member headers — failpoint.cc.o itself is always a
# member, it just must define no symbols.)
if nm build/src/libsolap.a 2>/dev/null | grep -v '\.o:$' |
  grep -qi failpoint; then
  echo "FAIL: default libsolap.a contains failpoint symbols" >&2
  exit 1
fi
echo "ok: no failpoint symbol in default libsolap.a"

echo
echo "== failpoints + ASan: fault-injection + chaos suites =="
FP_FILTER="fault_injection_test|chaos_test|sharded_engine_test"
cmake -B build-fp -S . -DSOLAP_FAILPOINTS=ON -DSOLAP_SANITIZE=address >/dev/null
build_tests build-fp "$FP_FILTER"
run_ctest build-fp "$FP_FILTER"

echo
echo "== failpoints + TSan: chaos suite =="
cmake -B build-fp-tsan -S . -DSOLAP_FAILPOINTS=ON -DSOLAP_SANITIZE=thread \
  >/dev/null
build_tests build-fp-tsan "chaos_test"
run_ctest build-fp-tsan "chaos_test"

echo
echo "all checks passed"
