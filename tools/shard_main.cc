// The shard-server binary: serves ONE shard's slice of a table snapshot
// over HTTP (net/shard_routes.h), the process the coordinator's
// RemoteShardClient talks to and the supervisor restarts.
//
//   ./build/tools/shard_main --table t.solap --shard 0 --num-shards 2
//       [--hier h.json] [--shard-by attr] [--port 0] [--port-file p.txt]
//       [--memory-budget-bytes N]
//
// The slice is computed here with the SAME placement function the
// coordinator uses (engine/shard_partition.h over the snapshot's cloned
// dictionaries), so shard i of n holds exactly the rows the coordinator's
// in-process shard i would — the precondition for bit-identical answers.
//
// On successful start the bound port is printed as "PORT=<p>" and, when
// --port-file is given, written (tmp+rename) to that path — the handshake
// the supervisor and tests use with ephemeral ports. SIGTERM/SIGINT stop
// the server cleanly; any load/bind failure exits 1 with the error on
// stderr.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "solap/engine/engine.h"
#include "solap/engine/shard_partition.h"
#include "solap/net/server.h"
#include "solap/net/shard_routes.h"
#include "solap/storage/hierarchy_io.h"
#include "solap/storage/io.h"

namespace {

struct Flags {
  std::string table_path;
  std::string hier_path;
  std::string shard_by;
  std::string port_file;
  size_t shard = 0;
  size_t num_shards = 0;
  uint16_t port = 0;
  size_t memory_budget_bytes = 0;
  bool shard_set = false;
};

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --table <snapshot> --shard <i> --num-shards <n>"
               " [--hier <path>] [--shard-by <attr>] [--port <p>]"
               " [--port-file <path>] [--memory-budget-bytes <n>]\n";
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (std::strcmp(a, "--table") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->table_path = v;
    } else if (std::strcmp(a, "--hier") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->hier_path = v;
    } else if (std::strcmp(a, "--shard-by") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->shard_by = v;
    } else if (std::strcmp(a, "--port-file") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->port_file = v;
    } else if (std::strcmp(a, "--shard") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->shard = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      f->shard_set = true;
    } else if (std::strcmp(a, "--num-shards") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->num_shards = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(a, "--port") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(a, "--memory-budget-bytes") == 0) {
      if ((v = need(i++)) == nullptr) return false;
      f->memory_budget_bytes =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::cerr << "unknown flag '" << a << "'\n";
      return false;
    }
  }
  if (f->table_path.empty() || !f->shard_set || f->num_shards == 0 ||
      f->shard >= f->num_shards) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage(argv[0]);
    return 1;
  }

  // Block the shutdown signals BEFORE any thread spawns, so every server
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  auto table = solap::LoadTable(flags.table_path);
  if (!table.ok()) {
    std::cerr << "shard_main: load table: " << table.status().ToString()
              << "\n";
    return 1;
  }

  std::shared_ptr<solap::HierarchyRegistry> hierarchies;
  if (!flags.hier_path.empty()) {
    auto loaded = solap::LoadHierarchies(flags.hier_path);
    if (!loaded.ok()) {
      std::cerr << "shard_main: load hierarchies: "
                << loaded.status().ToString() << "\n";
      return 1;
    }
    hierarchies = *std::move(loaded);
  } else {
    hierarchies = std::make_shared<solap::HierarchyRegistry>();
  }

  // Partition with the coordinator's placement function and keep slice i.
  // The snapshot carries the source table's dictionaries verbatim, so
  // codes — and therefore ShardOfCode — agree with the coordinator's
  // in-process partitioning.
  const int shard_col =
      solap::ResolveShardColumn(**table, flags.shard_by);
  if (shard_col < 0) {
    std::cerr << "shard_main: no usable shard-by column\n";
    return 1;
  }
  const size_t n = flags.num_shards;
  const solap::EventTable* src = table->get();
  auto slices = src->PartitionRows(n, [src, shard_col, n](solap::RowId r) {
    return solap::ShardOfCode(src->CodeAt(r, shard_col), n);
  });
  std::unique_ptr<solap::EventTable> slice = std::move(slices[flags.shard]);

  // Mirror the coordinator's per-shard executor options (sharded_engine.cc
  // BuildShards): serial execution, no shard-level cuboid cache, an even
  // split of the memory budget.
  solap::EngineOptions opts;
  opts.exec_threads = 1;
  opts.cb_threads = 1;
  opts.repository_capacity_bytes = 0;
  opts.memory_budget_bytes = flags.memory_budget_bytes / n;
  solap::SOlapEngine engine(slice.get(), hierarchies.get(), opts);

  solap::net::HttpServerOptions server_opts;
  server_opts.port = flags.port;
  server_opts.num_workers = 2;
  solap::net::HttpServer server(solap::net::BuildShardRouter(&engine),
                                server_opts);
  solap::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "shard_main: start: " << started.ToString() << "\n";
    return 1;
  }

  if (!flags.port_file.empty()) {
    // tmp+rename so a polling reader never sees a half-written file.
    const std::string tmp = flags.port_file + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << server.port() << "\n";
      if (!out) {
        std::cerr << "shard_main: cannot write " << tmp << "\n";
        server.Stop();
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), flags.port_file.c_str()) != 0) {
      std::cerr << "shard_main: cannot rename port file\n";
      server.Stop();
      return 1;
    }
  }
  std::cout << "PORT=" << server.port() << "\n" << std::flush;

  int sig = 0;
  sigwait(&sigs, &sig);
  server.Stop();
  return 0;
}
