// Experiment E5 — §5.2 QuerySet C: pattern templates with *restricted*
// (repeated) symbols. The iterative session grows (X,Y) -> (X,Y,Y) ->
// (X,Y,Y,X), the paper's round-trip template, without slicing: the
// restriction comes purely from symbol equality.
//
// Paper shape to reproduce ("consistent with our discussion in §4.2.2"):
// II still wins by reusing the L2 built for QC1 for both joins, but the
// joins now filter to template-consistent instantiations, so intermediate
// indices are NOT complete (no P-ROLL-UP merging from them) and the join
// verification scans grow with the hit set.
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec TemplateOf(const std::vector<std::string>& symbols) {
  CuboidSpec spec;
  spec.symbols = symbols;
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

int Run(int argc, char** argv) {
  std::vector<size_t> d_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "d-list", "100000,250000"));
  std::printf(
      "== E5 / §5.2 QuerySet C: restricted symbols (X,Y) -> (X,Y,Y) -> "
      "(X,Y,Y,X) ==\n\n");
  for (size_t d : d_list) {
    SyntheticParams p;
    p.num_sequences = d;
    SyntheticData data = GenerateSynthetic(p);
    std::vector<CuboidSpec> queries = {TemplateOf({"X", "Y"}),
                                       TemplateOf({"X", "Y", "Y"}),
                                       TemplateOf({"X", "Y", "Y", "X"})};
    const char* labels[] = {"QC1", "QC2", "QC3"};

    std::vector<bench::Measurement> cb, ii;
    for (ExecStrategy strategy :
         {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
      bool is_ii = strategy == ExecStrategy::kInvertedIndex;
      SOlapEngine engine(data.groups, data.hierarchies.get(),
                         EngineOptions{strategy, size_t{64} << 20, is_ii});
      for (size_t q = 0; q < queries.size(); ++q) {
        (is_ii ? ii : cb).push_back(
            bench::RunQuery(engine, queries[q], strategy, labels[q]));
      }
    }
    std::printf("%s\n", p.Tag().c_str());
    bench::PrintComparisonTable(cb, ii);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: II reuses QC1's L2 for both APPEND joins and stays "
      "ahead of CB; join verification scans grow with template length.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
