// Experiment E6 — §5.2 "varying skewness factor theta": the QuerySet-A
// iterative session at different Zipf skews of the symbol and transition
// distributions.
//
// Paper shape to reproduce: results "consistent with the §4.2 discussion" —
// II beats CB across skews. Higher skew concentrates mass in fewer
// patterns: the sliced hot cell's list grows, so II's follow-up work grows
// with theta while CB stays flat (it always scans everything).
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

int Run(int argc, char** argv) {
  std::vector<double> thetas = bench::ParseDoubleList(
      bench::FlagValue(argc, argv, "theta-list", "0.5,0.9,1.2"));
  size_t d = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "200000").c_str(), nullptr, 10));
  std::printf("== E6 / §5.2: varying skew theta (I100.L20.D%zu) ==\n\n", d);
  const LevelRef fine{SyntheticData::kAttr, "symbol"};
  for (double theta : thetas) {
    SyntheticParams p;
    p.num_sequences = d;
    p.theta = theta;
    SyntheticData data = GenerateSynthetic(p);

    SOlapEngine cb_engine(data.groups, data.hierarchies.get(),
                          EngineOptions{ExecStrategy::kCounterBased,
                                        size_t{64} << 20, false});
    auto cb = bench::RunQaSession(cb_engine, ExecStrategy::kCounterBased,
                                  InitialXY(), 4, fine);
    SOlapEngine ii_engine(data.groups, data.hierarchies.get());
    if (!ii_engine.PrecomputeIndex(InitialXY(), 2, fine).ok()) return 1;
    ii_engine.stats().Clear();
    auto ii = bench::RunQaSession(ii_engine, ExecStrategy::kInvertedIndex,
                                  InitialXY(), 4, fine);
    std::printf("theta = %.1f\n", theta);
    bench::PrintCumulativeSeries(cb, ii);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: II ahead of CB at every theta; II's scan counts "
      "grow with theta (hotter sliced cells -> longer lists), CB's stay at "
      "D per query.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
