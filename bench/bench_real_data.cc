// Experiment E1 — reproduces Table 1 of the paper (§5.1, real data):
// the Qa -> Qb -> Qc clickstream exploration under the counter-based (CB)
// and inverted-index (II) strategies, reporting runtime, the number of
// data sequences scanned, and the size of inverted indices built.
//
// The Gazelle.com KDD-Cup 2000 dataset is substituted by the clickstream
// generator (see DESIGN.md): ~50K sessions, a 44-category page hierarchy
// and a hot (Assortment -> Legwear) path.
//
// Paper shape to reproduce (Table 1): CB wins on the cold first query Qa
// (II pays to build its indices); II wins decisively on the selective
// follow-ups Qb (slice + P-DRILL-DOWN) and Qc (APPEND), scanning a tiny
// fraction of the sequences.
#include <cstdio>

#include "bench_util.h"
#include "solap/engine/operations.h"
#include "solap/gen/clickstream.h"
#include "solap/parser/parser.h"

namespace solap {
namespace {

int Run(int argc, char** argv) {
  ClickstreamParams params;
  params.num_sessions = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "sessions", "50000").c_str(), nullptr,
      10));
  std::printf("== E1 / Table 1: real-data experiment (clickstream "
              "substitute, %zu sessions) ==\n",
              params.num_sessions);
  ClickstreamData data = GenerateClickstream(params);
  std::printf("event database: %zu click events\n\n",
              data.table->num_rows());

  // Qa: two-step page accesses at the page-category level (§5.1).
  auto qa = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY session-id AT session-id
    SEQUENCE BY request-time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS page AT page-category, Y AS page AT page-category
      LEFT-MAXIMALITY (x1, y1)
  )");
  if (!qa.ok()) {
    std::fprintf(stderr, "%s\n", qa.status().ToString().c_str());
    return 1;
  }

  // Qb: slice (Assortment -> Legwear), then P-DRILL-DOWN Y to raw pages.
  CuboidSpec qb = *qa;
  qb = *ops::SlicePattern(qb, "X", {"Assortment"});
  qb = *ops::SlicePattern(qb, "Y", {"Legwear"});
  qb = *ops::PDrillDown(qb, "Y", *data.hierarchies);

  // Qc: APPEND Z — does the visitor open one more product page
  // ("comparison shopping")?
  CuboidSpec qc = *ops::Append(qb, "Z", {"page", "raw-page"}, "z1");

  std::vector<std::pair<std::string, const CuboidSpec*>> queries = {
      {"Qa", &*qa}, {"Qb", &qb}, {"Qc", &qc}};

  std::vector<bench::Measurement> cb, ii;
  for (ExecStrategy strategy :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    SOlapEngine engine(data.table.get(), data.hierarchies.get());
    // Formation (steps 1-4) is offloaded to the sequence query engine and
    // cached (paper Fig. 6); exclude it from query timings.
    if (!engine.WarmSequenceCache(qa->seq).ok()) return 1;
    for (const auto& [label, spec] : queries) {
      bench::Measurement m = bench::RunQuery(engine, *spec, strategy, label);
      (strategy == ExecStrategy::kCounterBased ? cb : ii).push_back(m);
    }
  }
  bench::PrintComparisonTable(cb, ii);
  std::printf(
      "\nExpected shape (paper Table 1): CB faster on cold Qa; II scans "
      "only the sliced lists on Qb/Qc and wins there.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
