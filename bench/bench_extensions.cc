// Experiment E10 (part 1) — google-benchmark micro-ablations for the §6
// performance extensions:
//  - sorted-list intersection vs bitmap AND (the paper's "encode inverted
//    indices as bitmaps so intersection becomes bitwise-AND" idea);
//  - warm CB query vs warm II query on the synthetic workload (the
//    steady-state cost once indices exist, with the cuboid repository
//    disabled so every iteration really executes).
#include <benchmark/benchmark.h>

#include <random>

#include "solap/engine/engine.h"
#include "solap/gen/synthetic.h"
#include "solap/index/bitmap_index.h"

namespace solap {
namespace {

std::vector<Sid> MakeList(size_t n, size_t universe, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Sid> pick(0,
                                          static_cast<Sid>(universe - 1));
  std::vector<Sid> out(n);
  for (Sid& s : out) s = pick(rng);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BM_ListIntersection(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t universe = 1 << 20;
  std::vector<Sid> a = MakeList(n, universe, 1);
  std::vector<Sid> b = MakeList(n, universe, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_ListIntersection)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BitmapAnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t universe = 1 << 20;
  Bitmap a = Bitmap::FromSids(MakeList(n, universe, 1), universe);
  Bitmap b = Bitmap::FromSids(MakeList(n, universe, 2), universe);
  for (auto _ : state) {
    Bitmap c = a;
    c.AndWith(b);
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(universe));
}
BENCHMARK(BM_BitmapAnd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BitmapEncodeDecode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t universe = 1 << 20;
  std::vector<Sid> list = MakeList(n, universe, 3);
  for (auto _ : state) {
    Bitmap b = Bitmap::FromSids(list, universe);
    benchmark::DoNotOptimize(b.ToSids());
  }
}
BENCHMARK(BM_BitmapEncodeDecode)->Arg(1 << 14);

struct WarmEngines {
  WarmEngines() {
    SyntheticParams p;
    p.num_sequences = 20'000;
    p.mean_length = 12;
    data = GenerateSynthetic(p);
    spec.symbols = {"X", "Y"};
    spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
                 PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
    // Repository capacity 0: every Execute really runs.
    cb = std::make_unique<SOlapEngine>(
        data.groups, data.hierarchies.get(),
        EngineOptions{ExecStrategy::kCounterBased, 0, false});
    ii = std::make_unique<SOlapEngine>(
        data.groups, data.hierarchies.get(),
        EngineOptions{ExecStrategy::kInvertedIndex, 0, true});
    // Warm the II index cache.
    (void)ii->Execute(spec, ExecStrategy::kInvertedIndex);
  }
  SyntheticData data;
  CuboidSpec spec;
  std::unique_ptr<SOlapEngine> cb, ii;
};

WarmEngines& Engines() {
  static WarmEngines* e = new WarmEngines();
  return *e;
}

void BM_WarmQueryCounterBased(benchmark::State& state) {
  WarmEngines& e = Engines();
  for (auto _ : state) {
    auto r = e.cb->Execute(e.spec, ExecStrategy::kCounterBased);
    if (!r.ok()) state.SkipWithError("CB failed");
    benchmark::DoNotOptimize((*r)->num_cells());
  }
}
BENCHMARK(BM_WarmQueryCounterBased)->Unit(benchmark::kMillisecond);

void BM_WarmQueryInvertedIndex(benchmark::State& state) {
  WarmEngines& e = Engines();
  for (auto _ : state) {
    auto r = e.ii->Execute(e.spec, ExecStrategy::kInvertedIndex);
    if (!r.ok()) state.SkipWithError("II failed");
    benchmark::DoNotOptimize((*r)->num_cells());
  }
}
BENCHMARK(BM_WarmQueryInvertedIndex)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace solap

BENCHMARK_MAIN();
