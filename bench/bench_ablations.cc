// Experiment E10 (part 2) — ablations for the §6 extensions that need an
// experiment-harness shape rather than a micro-benchmark:
//  - iceberg S-cuboids: cells surviving vs minimum-support threshold;
//  - incremental update: maintaining indices from a delta vs rebuilding;
//  - online aggregation: how early a usable estimate of the hottest cell
//    becomes available.
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec XYSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

void IcebergSweep(const SyntheticData& data) {
  std::printf("-- Iceberg sweep (SUBSTRING(X,Y), COUNT) --\n");
  std::printf("%12s %12s %14s\n", "min support", "cells", "runtime(ms)");
  for (int64_t threshold : {0, 10, 100, 1000, 10000}) {
    SOlapEngine engine(data.groups, data.hierarchies.get());
    CuboidSpec spec = XYSpec();
    if (threshold > 0) spec.iceberg_min_count = threshold;
    Timer t;
    auto r = engine.Execute(spec);
    if (!r.ok()) std::exit(1);
    std::printf("%12lld %12zu %14.2f\n",
                static_cast<long long>(threshold), (*r)->num_cells(),
                t.ElapsedMs());
  }
  std::printf("\n");
}

void IncrementalVsRebuild(const SyntheticParams& params,
                          const SyntheticData& data) {
  std::printf("-- Incremental index maintenance vs full rebuild --\n");
  std::printf("%10s %22s %22s\n", "batch", "incremental(ms)",
              "full rebuild(ms)");
  for (size_t batch : {1000u, 5000u, 20000u}) {
    // Incremental: extend the group + cached L2 with only the delta.
    SyntheticData inc = GenerateSynthetic(params);
    SOlapEngine engine(inc.groups, inc.hierarchies.get());
    if (!engine.PrecomputeIndex(XYSpec(), 2,
                                {SyntheticData::kAttr, "symbol"})
             .ok()) {
      std::exit(1);
    }
    auto delta = GenerateSyntheticBatch(params, batch, 4242);
    Timer t_inc;
    if (!engine.AppendRawSequences(0, delta).ok()) std::exit(1);
    auto r = engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex);
    if (!r.ok()) std::exit(1);
    double inc_ms = t_inc.ElapsedMs();

    // Rebuild: fresh engine over the already-extended data.
    SOlapEngine fresh(inc.groups, inc.hierarchies.get());
    Timer t_full;
    if (!fresh.PrecomputeIndex(XYSpec(), 2,
                               {SyntheticData::kAttr, "symbol"})
             .ok()) {
      std::exit(1);
    }
    auto r2 = fresh.Execute(XYSpec(), ExecStrategy::kInvertedIndex);
    if (!r2.ok()) std::exit(1);
    double full_ms = t_full.ElapsedMs();
    std::printf("%10zu %22.2f %22.2f\n", batch, inc_ms, full_ms);
  }
  std::printf("\n");
  (void)data;
}

void OnlineEstimates(const SyntheticData& data) {
  std::printf("-- Online aggregation: hottest-cell estimate vs fraction "
              "processed --\n");
  SOlapEngine offline(data.groups, data.hierarchies.get());
  auto exact = offline.Execute(XYSpec());
  if (!exact.ok()) std::exit(1);
  CellKey hot = (*exact)->ArgMaxCell();
  double exact_count = (*exact)->CellAt(hot).count;
  std::printf("exact hottest-cell count: %.0f\n", exact_count);
  std::printf("%12s %16s %12s\n", "fraction", "scaled estimate",
              "error(%)");
  SOlapEngine engine(data.groups, data.hierarchies.get());
  double next_report = 0.1;
  auto r = engine.ExecuteOnline(
      XYSpec(), 1000, [&](const SCuboid& partial, double fraction) {
        if (fraction + 1e-9 >= next_report) {
          double estimate = partial.CellAt(hot).count / fraction;
          std::printf("%12.2f %16.0f %12.2f\n", fraction, estimate,
                      100.0 * (estimate - exact_count) / exact_count);
          next_report += 0.2;
        }
        return true;
      });
  if (!r.ok()) std::exit(1);
  std::printf("\n");
}

void BitmapJoinAblation(const SyntheticParams& params) {
  std::printf("-- Bitmap-encoded joins vs sorted-list intersection "
              "(SUBSTRING(X,Y,Y,X)) --\n");
  SyntheticData data = GenerateSynthetic(params);
  CuboidSpec spec;
  spec.symbols = {"X", "Y", "Y", "X"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  std::printf("%24s %14s\n", "join mode", "runtime(ms)");
  for (size_t threshold : {size_t{0}, size_t{64}}) {
    EngineOptions opts;
    opts.bitmap_join_threshold = threshold;
    SOlapEngine engine(data.groups, data.hierarchies.get(), opts);
    Timer t;
    auto r = engine.Execute(spec, ExecStrategy::kInvertedIndex);
    if (!r.ok()) std::exit(1);
    std::printf("%24s %14.2f\n",
                threshold == 0 ? "sorted lists" : "bitmaps (len>64)",
                t.ElapsedMs());
  }
  std::printf("\n");
}

int Run(int argc, char** argv) {
  SyntheticParams params;
  params.num_sequences = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "100000").c_str(), nullptr, 10));
  std::printf("== E10 / §6 extension ablations (%s) ==\n\n",
              params.Tag().c_str());
  SyntheticData data = GenerateSynthetic(params);
  IcebergSweep(data);
  BitmapJoinAblation(params);
  IncrementalVsRebuild(params, data);
  OnlineEstimates(data);
  std::printf(
      "Expected shape: iceberg cost flat while surviving cells collapse; "
      "bitmap joins at parity or better when long lists dominate "
      "intersections (verification scans dominate otherwise); "
      "incremental maintenance cost tracks the delta, not the dataset; "
      "online estimates within a few percent well before 100%%.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
