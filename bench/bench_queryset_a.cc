// Experiments E2 + E3 — reproduce Figure 16 (QuerySet A, varying the
// number of sequences D) and the §5.2 "varying L" summary.
//
// QuerySet A: QA1 = SUBSTRING(X, Y); each QA_{k+1} slices QA_k's highest
// cell and APPENDs a fresh symbol, growing to size-six patterns. Size-two
// inverted indices at the finest abstraction level are precomputed for II
// (the paper reports their build time and size).
//
// Paper shape to reproduce: both CB and II scale linearly in D (and L);
// II outperforms CB throughout; CB rescans the whole dataset per query
// while II's follow-ups touch only the sliced lists (the paper's
// bracketed cumulative scan counts, e.g. 7.07k vs 500k at QA3/D100K).
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"
#include "solap/index/inverted_index.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

void RunOne(const SyntheticParams& params, size_t num_queries) {
  SyntheticData data = GenerateSynthetic(params);
  const LevelRef fine{SyntheticData::kAttr, "symbol"};

  // CB: no auxiliary structures at all.
  SOlapEngine cb_engine(data.groups, data.hierarchies.get(),
                        EngineOptions{ExecStrategy::kCounterBased,
                                      size_t{64} << 20,
                                      /*enable_index_cache=*/false});
  auto cb = bench::RunQaSession(cb_engine, ExecStrategy::kCounterBased,
                                InitialXY(), num_queries, fine);

  // II: precompute the size-2 index at the finest level (paper setup).
  SOlapEngine ii_engine(data.groups, data.hierarchies.get());
  Timer pre;
  if (!ii_engine.PrecomputeIndex(InitialXY(), 2, fine).ok()) std::exit(1);
  double pre_s = pre.ElapsedSec();
  std::printf("%s: precomputed L2 in %.3fs (%.1f MB)\n",
              params.Tag().c_str(), pre_s,
              bench::Mb(ii_engine.IndexCacheBytes()));
  ii_engine.stats().Clear();
  auto ii = bench::RunQaSession(ii_engine, ExecStrategy::kInvertedIndex,
                                InitialXY(), num_queries, fine);
  bench::PrintCumulativeSeries(cb, ii);
  std::printf("\n");
}

int Run(int argc, char** argv) {
  std::string mode = bench::FlagValue(argc, argv, "vary", "both");
  size_t num_queries = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "queries", "5").c_str(), nullptr, 10));
  std::vector<size_t> d_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "d-list", "100000,500000,1000000"));
  std::vector<size_t> l_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "l-list", "10,20,30"));
  size_t d_for_l = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d-for-l", "500000").c_str(), nullptr,
      10));

  if (mode == "D" || mode == "both") {
    std::printf(
        "== E2 / Figure 16: QuerySet A, varying D (I100.Lx20.t0.9) ==\n\n");
    for (size_t d : d_list) {
      SyntheticParams p;
      p.num_sequences = d;
      RunOne(p, num_queries);
    }
  }
  if (mode == "L" || mode == "both") {
    std::printf("== E3 / §5.2 QuerySet A (b): varying L (I100.t0.9.D%zu) "
                "==\n\n",
                d_for_l);
    for (size_t l : l_list) {
      SyntheticParams p;
      p.num_sequences = d_for_l;
      p.mean_length = static_cast<double>(l);
      RunOne(p, num_queries);
    }
  }
  std::printf(
      "Expected shape (paper Fig. 16): linear scaling in D and L; II below "
      "CB everywhere; II's cumulative scans frozen after QA2 while CB "
      "rescans D sequences per query.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
