// Shared helpers for the experiment harnesses: aligned table printing,
// per-query measurement records, and tiny flag parsing.
//
// Each bench binary regenerates one table/figure of the paper's §5
// evaluation; see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison.
#ifndef SOLAP_BENCH_BENCH_UTIL_H_
#define SOLAP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "solap/common/stats.h"
#include "solap/common/timer.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"

namespace solap {
namespace bench {

/// Measurement of one query under one strategy.
struct Measurement {
  std::string label;
  double runtime_ms = 0;
  uint64_t sequences_scanned = 0;
  uint64_t index_bytes_built = 0;
  size_t cells = 0;
};

/// Runs `spec` on `engine` with `strategy`, capturing runtime and the
/// stats delta; optionally hands back the result cuboid. Exits the process
/// on engine errors (benches are scripts). Templated on the engine type:
/// SOlapEngine and ShardedEngine share the Execute/stats surface, so the
/// shard-count sweep drives the same harness.
template <typename Engine>
Measurement RunQuery(Engine& engine, const CuboidSpec& spec,
                     ExecStrategy strategy, const std::string& label,
                     std::shared_ptr<const SCuboid>* out = nullptr) {
  Measurement m;
  m.label = label;
  ScanStats before = engine.stats();
  Timer t;
  auto r = engine.Execute(spec, strategy);
  m.runtime_ms = t.ElapsedMs();
  if (!r.ok()) {
    std::fprintf(stderr, "query '%s' failed: %s\n", label.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  m.cells = (*r)->num_cells();
  m.sequences_scanned = engine.stats().sequences_scanned -
                        before.sequences_scanned;
  m.index_bytes_built =
      engine.stats().index_bytes_built - before.index_bytes_built;
  if (out != nullptr) *out = *r;
  return m;
}

inline double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Prints a Table-1-style row block comparing CB and II measurements.
inline void PrintComparisonTable(const std::vector<Measurement>& cb,
                                 const std::vector<Measurement>& ii) {
  std::printf("%-10s | %12s %14s | %12s %14s %12s\n", "Query",
              "CB time(ms)", "CB seqs", "II time(ms)", "II seqs",
              "II size(MB)");
  std::printf("%.*s\n", 86,
              "---------------------------------------------------------"
              "-----------------------------");
  double cb_t = 0, ii_t = 0;
  uint64_t cb_s = 0, ii_s = 0, ii_b = 0;
  for (size_t i = 0; i < cb.size(); ++i) {
    std::printf("%-10s | %12.2f %14llu | %12.2f %14llu %12.3f\n",
                cb[i].label.c_str(), cb[i].runtime_ms,
                static_cast<unsigned long long>(cb[i].sequences_scanned),
                ii[i].runtime_ms,
                static_cast<unsigned long long>(ii[i].sequences_scanned),
                Mb(ii[i].index_bytes_built));
    cb_t += cb[i].runtime_ms;
    cb_s += cb[i].sequences_scanned;
    ii_t += ii[i].runtime_ms;
    ii_s += ii[i].sequences_scanned;
    ii_b += ii[i].index_bytes_built;
  }
  std::printf("%-10s | %12.2f %14llu | %12.2f %14llu %12.3f\n", "TOTAL",
              cb_t, static_cast<unsigned long long>(cb_s), ii_t,
              static_cast<unsigned long long>(ii_s), Mb(ii_b));
}

/// Runs a QuerySet-A-style iterative session (paper §5.2): the first query
/// is `initial`; each follow-up slices the previous result's highest cell
/// and APPENDs a fresh pattern symbol over `append_ref`. Returns one
/// measurement per query.
template <typename Engine>
std::vector<Measurement> RunQaSession(Engine& engine, ExecStrategy strategy,
                                      const CuboidSpec& initial,
                                      size_t num_queries,
                                      const LevelRef& append_ref) {
  std::vector<Measurement> out;
  CuboidSpec spec = initial;
  std::shared_ptr<const SCuboid> last;
  for (size_t q = 0; q < num_queries; ++q) {
    if (q > 0) {
      CellKey top = last->ArgMaxCell();
      if (top.empty()) break;
      auto sliced = ops::SliceToCell(spec, *last, top);
      if (!sliced.ok()) {
        std::fprintf(stderr, "slice failed: %s\n",
                     sliced.status().ToString().c_str());
        std::exit(1);
      }
      auto appended =
          ops::Append(*sliced, "S" + std::to_string(q), append_ref);
      if (!appended.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     appended.status().ToString().c_str());
        std::exit(1);
      }
      spec = *appended;
    }
    ScanStats before = engine.stats();
    Timer t;
    auto r = engine.Execute(spec, strategy);
    Measurement m;
    m.runtime_ms = t.ElapsedMs();
    m.label = "QA" + std::to_string(q + 1);
    if (!r.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", m.label.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    last = *r;
    m.cells = last->num_cells();
    m.sequences_scanned =
        engine.stats().sequences_scanned - before.sequences_scanned;
    m.index_bytes_built =
        engine.stats().index_bytes_built - before.index_bytes_built;
    out.push_back(m);
  }
  return out;
}

/// Prints a Figure-16-style block: cumulative runtimes with cumulative
/// (bracketed) thousands of sequences scanned, per strategy.
inline void PrintCumulativeSeries(const std::vector<Measurement>& cb,
                                  const std::vector<Measurement>& ii) {
  std::printf("%-6s | %16s %14s | %16s %14s\n", "Query", "CB cum time(ms)",
              "CB cum seqs(k)", "II cum time(ms)", "II cum seqs(k)");
  std::printf("%.*s\n", 76,
              "---------------------------------------------------------"
              "--------------------");
  double cb_t = 0, ii_t = 0;
  double cb_s = 0, ii_s = 0;
  for (size_t i = 0; i < cb.size() && i < ii.size(); ++i) {
    cb_t += cb[i].runtime_ms;
    ii_t += ii[i].runtime_ms;
    cb_s += static_cast<double>(cb[i].sequences_scanned) / 1000.0;
    ii_s += static_cast<double>(ii[i].sequences_scanned) / 1000.0;
    std::printf("%-6s | %16.2f %14.2f | %16.2f %14.2f\n",
                cb[i].label.c_str(), cb_t, cb_s, ii_t, ii_s);
  }
}

/// Minimal --key=value flag lookup.
inline std::string FlagValue(int argc, char** argv, const std::string& key,
                             const std::string& default_value) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return default_value;
}

/// Parses "a,b,c" into numbers.
inline std::vector<size_t> ParseSizeList(const std::string& s) {
  std::vector<size_t> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(s.substr(start, comma - start).c_str(), nullptr, 10)));
    start = comma + 1;
  }
  return out;
}

inline std::vector<double> ParseDoubleList(const std::string& s) {
  std::vector<double> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtod(s.substr(start, comma - start).c_str(),
                              nullptr));
    start = comma + 1;
  }
  return out;
}

}  // namespace bench
}  // namespace solap

#endif  // SOLAP_BENCH_BENCH_UTIL_H_
