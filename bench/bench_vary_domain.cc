// Experiment E7 — §5.2 "varying domain I": the QuerySet-A iterative
// session with different numbers of distinct event symbols.
//
// Paper shape to reproduce: II beats CB across domain sizes. A larger
// domain spreads the same data over more lists: the precomputed L2 grows
// in list count (more, shorter lists) while each hot list shrinks, so II's
// follow-up work *drops* with I; CB is insensitive to I.
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

int Run(int argc, char** argv) {
  std::vector<size_t> i_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "i-list", "50,100,200"));
  size_t d = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "200000").c_str(), nullptr, 10));
  std::printf("== E7 / §5.2: varying domain I (L20.t0.9.D%zu) ==\n\n", d);
  const LevelRef fine{SyntheticData::kAttr, "symbol"};
  for (size_t i : i_list) {
    SyntheticParams p;
    p.num_sequences = d;
    p.num_symbols = i;
    SyntheticData data = GenerateSynthetic(p);

    SOlapEngine cb_engine(data.groups, data.hierarchies.get(),
                          EngineOptions{ExecStrategy::kCounterBased,
                                        size_t{64} << 20, false});
    auto cb = bench::RunQaSession(cb_engine, ExecStrategy::kCounterBased,
                                  InitialXY(), 4, fine);
    SOlapEngine ii_engine(data.groups, data.hierarchies.get());
    Timer pre;
    if (!ii_engine.PrecomputeIndex(InitialXY(), 2, fine).ok()) return 1;
    std::printf("I = %zu: L2 precompute %.3fs, %.1f MB\n", i,
                pre.ElapsedSec(), bench::Mb(ii_engine.IndexCacheBytes()));
    ii_engine.stats().Clear();
    auto ii = bench::RunQaSession(ii_engine, ExecStrategy::kInvertedIndex,
                                  InitialXY(), 4, fine);
    bench::PrintCumulativeSeries(cb, ii);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: II ahead of CB at every I; II's follow-up scans "
      "shrink as I grows (hot lists get shorter), CB stays at D per "
      "query.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
