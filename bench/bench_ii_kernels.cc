// Perf-regression harness for the II query path (DESIGN.md "II execution").
//
// Part 1 — kernel microbenches: times each intersection kernel (linear /
// galloping / bitmap / adaptive dispatch) on synthetic sorted-sid lists
// covering the regimes the cost heuristic distinguishes: balanced pairs,
// skewed pairs, dense-list probes. The adaptive dispatcher must never lose
// to the scalar linear merge.
//
// Part 2 — query A/B timings: a QuerySet-A iterative session and a
// QuerySet-B roll-up, each run CB vs scalar-II vs adaptive-II on fresh
// engines, reproducing the paper's §5.2/§5.3 comparisons with the new
// kernels in play.
//
// Part 4 — distributed loopback (when built with SOLAP_SHARD_MAIN_PATH):
// the same sharded query answered by 2 in-process shard executors vs 2
// shard_main child processes over loopback HTTP, pricing the wire path
// (spec encode -> HTTP -> partial decode) against the function call.
//
// Part 5 — ingest throughput: streams round-trip batches into a warmed
// engine (cached formation + inverted indices, so every append pays
// incremental maintenance) with the delta merger kicked on every ingest
// vs deferred entirely, publishing events/sec for both arms
// ("ingest/merge_on", "ingest/merge_off") gated by min_events_per_sec
// floors in thresholds.json.
//
// Flags:
//   --quick           smaller data + fewer reps (the CI smoke mode)
//   --json=PATH       write all measurements as JSON (BENCH_ii.json)
//   --check=PATH      compare against a thresholds file (bench/
//                     thresholds.json); exit 1 when any benchmark runs
//                     slower than 2x its recorded baseline, or when a
//                     kernel loses to the scalar baseline / the required
//                     II speedup disappears.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "bench_util.h"
#include "solap/common/timer.h"
#include "solap/common/trace.h"
#include "solap/engine/sharded_engine.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"
#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/index/bitmap.h"
#include "solap/index/intersect.h"

#ifdef SOLAP_SHARD_MAIN_PATH
#include <unistd.h>

#include <filesystem>

#include "solap/service/shard_supervisor.h"
#include "solap/storage/hierarchy_io.h"
#include "solap/storage/io.h"
#endif

namespace solap {
namespace bench {
namespace {

struct Entry {
  std::string name;
  double ms = 0;
  // Optional context: >0 means "this many times faster than the named
  // reference" (reference stored as its own entry).
  double speedup = 0;
  // Optional throughput: >0 on ingest entries; gated by
  // "min_events_per_sec/<name>" thresholds rather than the 2x ms rule.
  double events_per_sec = 0;
};

std::vector<Sid> RandomSorted(size_t n, size_t universe, std::mt19937& rng) {
  // Sample without replacement by stepping: keeps lists sorted and unique.
  std::vector<Sid> out;
  out.reserve(n);
  double p = static_cast<double>(n) / static_cast<double>(universe);
  std::uniform_real_distribution<> coin(0, 1);
  for (size_t s = 0; s < universe && out.size() < n; ++s) {
    if (coin(rng) < p) out.push_back(static_cast<Sid>(s));
  }
  return out;
}

using KernelFn = void (*)(std::span<const Sid>, std::span<const Sid>,
                          std::vector<Sid>&);

double TimeKernel(const std::vector<Sid>& a, const std::vector<Sid>& b,
                  size_t reps, KernelFn fn) {
  std::vector<Sid> out;
  out.reserve(std::min(a.size(), b.size()));
  volatile size_t sink = 0;
  Timer t;
  for (size_t r = 0; r < reps; ++r) {
    fn(a, b, out);
    sink = sink + out.size();
  }
  (void)sink;
  return t.ElapsedMs() / static_cast<double>(reps);
}

// The adaptive dispatcher as the join drives it: universe known (density
// term live) and a scratch encoding reused across repeats, the same
// amortization a join gets from its per-L2-list bitmaps. The first repeat
// pays the encoding build, so the timing includes it amortized.
double TimeAdaptive(const std::vector<Sid>& a, const std::vector<Sid>& b,
                    size_t universe, size_t reps) {
  std::vector<Sid> out;
  out.reserve(std::min(a.size(), b.size()));
  IntersectScratch scratch;
  volatile size_t sink = 0;
  Timer t;
  for (size_t r = 0; r < reps; ++r) {
    IntersectAdaptive(a, b, universe, nullptr, &scratch, out);
    sink = sink + out.size();
  }
  (void)sink;
  return t.ElapsedMs() / static_cast<double>(reps);
}

// Times the three list regimes. Appends one entry per (scenario, kernel).
void RunMicrobenches(bool quick, std::vector<Entry>* entries) {
  std::mt19937 rng(8);
  const size_t scale = quick ? 4 : 1;
  const size_t reps = (quick ? 200 : 2000);
  // The universe shrinks with the list sizes so quick mode keeps the same
  // density classes as full mode — a fixed universe turned quick's
  // "balanced" pairs sparse and flipped the kernels the heuristic picks.
  const size_t universe = (1 << 18) / scale;

  struct Scenario {
    const char* name;
    size_t a_n, b_n;
  };
  const Scenario scenarios[] = {
      {"balanced", universe / 8, universe / 8},
      {"skewed_64x", universe / 256, universe / 4},
      {"needle_4096x", 64, universe / 2},
  };
  std::printf("-- intersection kernels (%zu reps, universe %zu) --\n", reps,
              universe);
  std::printf("%-14s | %12s %12s %12s %12s\n", "scenario", "linear(ms)",
              "gallop(ms)", "bitmap(ms)", "adaptive(ms)");
  for (const Scenario& sc : scenarios) {
    std::vector<Sid> a = RandomSorted(sc.a_n, universe, rng);
    std::vector<Sid> b = RandomSorted(sc.b_n, universe, rng);
    const double linear_ms = TimeKernel(a, b, reps, IntersectLinear);
    const double gallop_ms = TimeKernel(a, b, reps, IntersectGallopingSimd);
    Bitmap bm = Bitmap::FromSids(b, universe);
    std::vector<Sid> out;
    Timer t;
    for (size_t r = 0; r < reps; ++r) IntersectBitmap(a, bm, out);
    const double bitmap_ms = t.ElapsedMs() / static_cast<double>(reps);
    const double adaptive_ms = TimeAdaptive(a, b, universe, reps);
    std::printf("%-14s | %12.4f %12.4f %12.4f %12.4f\n", sc.name, linear_ms,
                gallop_ms, bitmap_ms, adaptive_ms);
    const std::string base = std::string("kernel/") + sc.name;
    entries->push_back({base + "/linear", linear_ms, 0});
    entries->push_back({base + "/galloping", gallop_ms, linear_ms / gallop_ms});
    entries->push_back({base + "/bitmap", bitmap_ms, linear_ms / bitmap_ms});
    entries->push_back({base + "/adaptive", adaptive_ms,
                        linear_ms / adaptive_ms});
  }
}

EngineOptions WithKernels(bool adaptive) {
  EngineOptions o;
  o.default_strategy = ExecStrategy::kInvertedIndex;
  o.adaptive_join_kernels = adaptive;
  return o;
}

// QuerySet-A iterative session (paper §5.2) and a QuerySet-B roll-up
// (§5.3), each CB vs scalar-II vs adaptive-II on fresh engines.
void RunQuerysets(bool quick, std::vector<Entry>* entries) {
  SyntheticParams p;
  p.num_sequences = quick ? 6000 : 50000;
  p.num_symbols = 30;
  p.mean_length = 10;
  p.num_groups = 4;
  SyntheticData data = GenerateSynthetic(p);
  const LevelRef sym{SyntheticData::kAttr, "symbol"};
  const size_t L = quick ? 3 : 5;

  CuboidSpec qa1;
  qa1.symbols = {"X", "Y"};
  qa1.dims = {PatternDim{"X", sym, {}, ""}, PatternDim{"Y", sym, {}, ""}};

  SOlapEngine cb_engine(data.groups, data.hierarchies.get());
  SOlapEngine ii_scalar(data.groups, data.hierarchies.get(),
                        WithKernels(false));
  SOlapEngine ii_adaptive(data.groups, data.hierarchies.get(),
                          WithKernels(true));
  auto cb = RunQaSession(cb_engine, ExecStrategy::kCounterBased, qa1, L, sym);
  auto iis = RunQaSession(ii_scalar, ExecStrategy::kInvertedIndex, qa1, L,
                          sym);
  auto iia = RunQaSession(ii_adaptive, ExecStrategy::kInvertedIndex, qa1, L,
                          sym);
  std::printf("\n-- queryset A (L=%zu, n=%u) --\n", L, p.num_sequences);
  std::printf("%-6s | %12s %14s %15s | %10s\n", "query", "CB(ms)",
              "II-scalar(ms)", "II-adaptive(ms)", "II-speedup");
  for (size_t i = 0; i < cb.size() && i < iia.size(); ++i) {
    const double speedup = iia[i].runtime_ms > 0
                               ? cb[i].runtime_ms / iia[i].runtime_ms
                               : 0;
    std::printf("%-6s | %12.2f %14.2f %15.2f | %9.2fx\n",
                cb[i].label.c_str(), cb[i].runtime_ms, iis[i].runtime_ms,
                iia[i].runtime_ms, speedup);
    const std::string base = "qa/" + cb[i].label;
    entries->push_back({base + "/cb", cb[i].runtime_ms, 0});
    entries->push_back({base + "/ii_scalar", iis[i].runtime_ms, 0});
    entries->push_back({base + "/ii", iia[i].runtime_ms, speedup});
  }

  // QuerySet B: fine-level query warms the cache, the coarse follow-up is
  // answered by P-ROLL-UP list merging (II) vs a fresh scan (CB).
  CuboidSpec fine = qa1;
  CuboidSpec coarse = qa1;
  coarse.dims[0].ref = {SyntheticData::kAttr, "group"};
  coarse.dims[1].ref = {SyntheticData::kAttr, "group"};
  SOlapEngine cb2(data.groups, data.hierarchies.get());
  SOlapEngine ii2(data.groups, data.hierarchies.get(), WithKernels(true));
  RunQuery(ii2, fine, ExecStrategy::kInvertedIndex, "QB-warm");
  Measurement qb_cb =
      RunQuery(cb2, coarse, ExecStrategy::kCounterBased, "QB-rollup");
  Measurement qb_ii =
      RunQuery(ii2, coarse, ExecStrategy::kInvertedIndex, "QB-rollup");
  const double qb_speedup =
      qb_ii.runtime_ms > 0 ? qb_cb.runtime_ms / qb_ii.runtime_ms : 0;
  std::printf("\n-- queryset B roll-up --\n");
  std::printf("CB %.2f ms, II (P-ROLL-UP) %.2f ms, speedup %.2fx\n",
              qb_cb.runtime_ms, qb_ii.runtime_ms, qb_speedup);
  entries->push_back({"qb/rollup/cb", qb_cb.runtime_ms, 0});
  entries->push_back({"qb/rollup/ii", qb_ii.runtime_ms, qb_speedup});
}

// Part 3 — shard-count sweep: the same balanced QuerySet-A session run on
// ShardedEngines with 1/2/4/8 shards (CB, scan-bound: the workload that
// scales with shard-local executors). Publishes per-count times, the best
// sharded speedup over 1 shard ("qa/balanced/sharded", gated by
// min_speedup in thresholds.json), a scatter/gather wall-time breakdown
// from a traced query, and "hw_threads" so the perf gate can skip the
// speedup floor on boxes without enough cores to scatter onto.
void RunShardSweep(bool quick, std::vector<Entry>* entries) {
  SyntheticParams p;
  p.num_sequences = quick ? 6000 : 50000;
  p.num_symbols = 30;
  p.mean_length = 10;
  p.num_groups = 4;
  p.seed = 43;
  SyntheticData data = GenerateSynthetic(p);
  const LevelRef sym{SyntheticData::kAttr, "symbol"};
  const size_t L = quick ? 3 : 5;

  CuboidSpec qa1;
  qa1.symbols = {"X", "Y"};
  qa1.dims = {PatternDim{"X", sym, {}, ""}, PatternDim{"Y", sym, {}, ""}};

  const size_t shard_counts[] = {1, 2, 4, 8};
  double t1 = 0, best_ms = 0, best_speedup = 0;
  size_t best_shards = 1;
  std::printf("\n-- shard-count sweep (CB session, L=%zu, n=%u) --\n", L,
              p.num_sequences);
  std::printf("%-8s | %12s %10s\n", "shards", "time(ms)", "vs 1-shard");
  for (size_t n : shard_counts) {
    EngineOptions opts;
    opts.shards = n;
    ShardedEngine engine(data.groups, data.hierarchies.get(), opts);
    auto session =
        RunQaSession(engine, ExecStrategy::kCounterBased, qa1, L, sym);
    double total_ms = 0;
    for (const Measurement& m : session) total_ms += m.runtime_ms;
    if (n == 1) t1 = total_ms;
    const double speedup = total_ms > 0 ? t1 / total_ms : 0;
    std::printf("%-8zu | %12.2f %9.2fx\n", n, total_ms, speedup);
    entries->push_back({"qa/balanced/shards" + std::to_string(n), total_ms,
                        n == 1 ? 0 : speedup});
    if (n > 1 && (best_ms == 0 || total_ms < best_ms)) {
      best_ms = total_ms;
      best_speedup = speedup;
      best_shards = n;
    }
  }
  entries->push_back({"qa/balanced/sharded", best_ms, best_speedup});

  // Scatter/gather breakdown: one traced query on a fresh engine with the
  // winning shard count (fresh so the facade repository cannot absorb it).
  EngineOptions opts;
  opts.shards = best_shards;
  ShardedEngine traced(data.groups, data.hierarchies.get(), opts);
  TraceContext trace;
  ExecControl control;
  control.trace = &trace;
  auto r = traced.Execute(qa1, ExecStrategy::kCounterBased, control);
  if (!r.ok()) {
    std::fprintf(stderr, "traced sweep query failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  double scatter_ms = 0, gather_ms = 0;
  for (const auto& span : trace.Snapshot()) {
    if (span.name == "shard.scatter") scatter_ms += span.dur_ns / 1e6;
    if (span.name == "shard.gather") gather_ms += span.dur_ns / 1e6;
  }
  std::printf("best: %zu shards %.2fx (scatter %.3f ms, gather %.3f ms)\n",
              best_shards, best_speedup, scatter_ms, gather_ms);
  entries->push_back({"qa/balanced/sharded/scatter", scatter_ms, 0});
  entries->push_back({"qa/balanced/sharded/gather", gather_ms, 0});
  entries->push_back(
      {"hw_threads",
       static_cast<double>(std::thread::hardware_concurrency()), 0});
}

// Part 4 — distributed loopback: one transit FP-SUM pair query executed
// repeatedly (coordinator + shard repositories disabled, so every rep pays
// the full scatter) on (a) a 2-shard in-process engine and (b) the same
// coordinator scattering to 2 shard_main child processes over loopback
// HTTP. Publishes both wall times, the loopback/in-process ratio (as the
// "speedup" of dist/loopback — expected < 1: the wire costs something),
// and the per-query RPC overhead in ms. No threshold gates these: loopback
// latency is too environment-sensitive for a 2x floor.
#ifdef SOLAP_SHARD_MAIN_PATH
void RunDistributedLoopback(bool quick, std::vector<Entry>* entries) {
  TransitParams p;
  p.num_passengers = quick ? 2000 : 8000;
  p.num_days = quick ? 3 : 7;
  p.seed = 7;
  TransitData data = GenerateTransit(p);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("solap_bench_dist_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string table_path = dir + "/table.solap";
  const std::string hier_path = dir + "/hier.json";
  if (!SaveTable(*data.table, table_path).ok() ||
      !SaveHierarchies(*data.hierarchies, hier_path).ok()) {
    std::fprintf(stderr, "distributed loopback: snapshot save failed\n");
    return;
  }

  constexpr size_t kShards = 2;
  std::vector<ShardProcessSpec> specs;
  for (size_t i = 0; i < kShards; ++i) {
    ShardProcessSpec spec;
    spec.args = {SOLAP_SHARD_MAIN_PATH,
                 "--table",      table_path,
                 "--hier",       hier_path,
                 "--shard",      std::to_string(i),
                 "--num-shards", std::to_string(kShards),
                 "--shard-by",   "card-id"};
    spec.port_file = dir + "/shard" + std::to_string(i) + ".port";
    specs.push_back(std::move(spec));
  }
  ShardSupervisor supervisor(std::move(specs), {});
  Status started = supervisor.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "distributed loopback skipped: %s\n",
                 started.ToString().c_str());
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return;
  }

  CuboidSpec spec;
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  EngineOptions opts;
  opts.shards = kShards;
  opts.shard_by = "card-id";
  opts.exec_threads = kShards;
  opts.repository_capacity_bytes = 0;
  ShardedEngine in_process(data.table.get(), data.hierarchies.get(), opts);
  ShardedEngine distributed(data.table.get(), data.hierarchies.get(), opts);
  Status remote = distributed.EnableRemoteScatter(supervisor.endpoints());
  if (!remote.ok()) {
    std::fprintf(stderr, "distributed loopback skipped: %s\n",
                 remote.ToString().c_str());
    supervisor.Stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return;
  }

  const size_t reps = quick ? 5 : 20;
  auto time_session = [&](ShardedEngine& engine) -> double {
    // One warm-up outside the clock (dictionary/page faults, connection
    // establishment on the remote side).
    auto warm = engine.Execute(spec, ExecStrategy::kCounterBased);
    if (!warm.ok()) {
      std::fprintf(stderr, "distributed loopback query failed: %s\n",
                   warm.status().ToString().c_str());
      return -1;
    }
    Timer t;
    for (size_t r = 0; r < reps; ++r) {
      auto res = engine.Execute(spec, ExecStrategy::kCounterBased);
      if (!res.ok()) {
        std::fprintf(stderr, "distributed loopback query failed: %s\n",
                     res.status().ToString().c_str());
        return -1;
      }
    }
    return t.ElapsedMs();
  };

  const double inproc_ms = time_session(in_process);
  const double loopback_ms = time_session(distributed);
  supervisor.Stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (inproc_ms < 0 || loopback_ms < 0) return;

  const double ratio = loopback_ms > 0 ? inproc_ms / loopback_ms : 0;
  const double overhead_ms =
      (loopback_ms - inproc_ms) / static_cast<double>(reps);
  std::printf("\n-- distributed loopback (2 shards, %zu reps, n=%zu) --\n",
              reps, p.num_passengers);
  std::printf(
      "in-process %.2f ms, loopback %.2f ms (%.2fx), rpc overhead "
      "%.3f ms/query\n",
      inproc_ms, loopback_ms, ratio, overhead_ms);
  entries->push_back({"dist/inproc", inproc_ms, 0});
  entries->push_back({"dist/loopback", loopback_ms, ratio});
  entries->push_back({"dist/loopback/rpc_overhead", overhead_ms, 0});
}
#endif  // SOLAP_SHARD_MAIN_PATH

// Part 5 — ingest throughput. One arm per merger policy, each on a fresh
// transit table (IngestRows mutates it): warm a pair query so the engine
// holds a cached formation + complete inverted indices, then stream
// round-trip batches of brand-new card-ids — the extension path every
// append-mostly workload lives on — and report events/sec. "merge_on"
// kicks the background merger after every ingest (delta_merge_bytes = 0),
// so its number prices continuous folding; "merge_off" defers all merging,
// pricing pure delta growth. A closing query on each arm keeps the run
// honest (the ingested events must be visible).
void RunIngestThroughput(bool quick, std::vector<Entry>* entries) {
  TransitParams p;
  p.num_passengers = quick ? 800 : 4000;
  p.num_days = 2;
  p.seed = 11;

  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  const size_t batches = quick ? 250 : 2500;
  constexpr size_t kRowsPerBatch = 4;  // one round trip per new card
  const int64_t t0 = MakeTimestamp(2007, 10, 20, 6, 0, 0);  // past the window

  std::printf("\n-- ingest throughput (%zu batches x %zu events) --\n",
              batches, kRowsPerBatch);
  auto run_arm = [&](bool merge_on) -> double {
    TransitData data = GenerateTransit(p);
    EngineOptions opts;
    opts.auto_delta_merge = merge_on;
    if (merge_on) opts.delta_merge_bytes = 0;  // fold after every ingest
    SOlapEngine engine(data.table.get(), data.hierarchies.get(), opts);
    auto warm = engine.Execute(spec, ExecStrategy::kInvertedIndex);
    if (!warm.ok()) {
      std::fprintf(stderr, "ingest warm-up query failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(1);
    }
    const size_t cells_before = (*warm)->num_cells();
    Timer t;
    for (size_t b = 0; b < batches; ++b) {
      const std::string card =
          "live-" + std::to_string(merge_on) + "-" + std::to_string(b);
      const int64_t base = t0 + static_cast<int64_t>(b) * 180;
      Status s = engine.IngestRows({
          {Value::Timestamp(base), Value::String(card),
           Value::String("Pentagon"), Value::String("in"), Value::Double(0)},
          {Value::Timestamp(base + 30 * 60), Value::String(card),
           Value::String("Clarendon"), Value::String("out"),
           Value::Double(-2.0)},
          {Value::Timestamp(base + 9 * 3600), Value::String(card),
           Value::String("Clarendon"), Value::String("in"), Value::Double(0)},
          {Value::Timestamp(base + 9 * 3600 + 30 * 60), Value::String(card),
           Value::String("Pentagon"), Value::String("out"),
           Value::Double(-2.0)},
      });
      if (!s.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    const double ms = t.ElapsedMs();
    auto after = engine.Execute(spec, ExecStrategy::kInvertedIndex);
    if (!after.ok() || (*after)->num_cells() < cells_before) {
      std::fprintf(stderr, "post-ingest query lost cells\n");
      std::exit(1);
    }
    const double eps =
        ms > 0 ? static_cast<double>(batches * kRowsPerBatch) / (ms / 1e3)
               : 0;
    std::printf("merge %-3s | %10.2f ms %12.0f events/s (epoch %llu)\n",
                merge_on ? "on" : "off", ms, eps,
                static_cast<unsigned long long>(engine.epoch()));
    entries->push_back({std::string("ingest/merge_") +
                            (merge_on ? "on" : "off"),
                        ms, 0, eps});
    return eps;
  };
  run_arm(true);
  run_arm(false);
}

void WriteJson(const std::string& path, const std::vector<Entry>& entries,
               bool quick) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"bench_ii_kernels\",\n  \"mode\": \""
      << (quick ? "quick" : "full") << "\",\n  \"entries\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].name << "\", \"ms\": "
        << entries[i].ms;
    if (entries[i].speedup > 0) {
      out << ", \"speedup\": " << entries[i].speedup;
    }
    if (entries[i].events_per_sec > 0) {
      out << ", \"events_per_sec\": " << entries[i].events_per_sec;
    }
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu entries to %s\n", entries.size(), path.c_str());
}

// Ad-hoc reader for bench/thresholds.json: every `"name": number` pair is
// a baseline in ms. Good enough for a file we also generate.
bool LoadThresholds(const std::string& path,
                    std::vector<std::pair<std::string, double>>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    size_t colon = line.find(':', q2);
    if (colon == std::string::npos) continue;
    double v = std::strtod(line.c_str() + colon + 1, nullptr);
    if (v > 0) out->emplace_back(line.substr(q1 + 1, q2 - q1 - 1), v);
  }
  return !out->empty();
}

// Regression gate for CI. Thresholds file entries are either
//   "<entry-name>": <baseline ms>      — fail when >2x slower, or
//   "min_speedup/<entry-name>": <x>    — fail when the entry's recorded
//                                        speedup drops below x.
// Built-in rules on top: the adaptive dispatcher never loses to the scalar
// merge (>=0.9x with timing slack), adaptive-II never loses to scalar-II
// on any queryset-A query (the parallel-cutoff regression this gate
// caught), and at least one queryset II query keeps a >=2x CB speedup.
int Check(const std::string& path, const std::vector<Entry>& entries) {
  std::vector<std::pair<std::string, double>> thresholds;
  if (!LoadThresholds(path, &thresholds)) {
    std::fprintf(stderr, "cannot read thresholds from %s\n", path.c_str());
    return 1;
  }
  auto find = [&](const std::string& name) -> const Entry* {
    for (const Entry& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  // The sharded speedup floor only means something with cores to scatter
  // onto: a 1-2 core box runs the fan-out inline and measures ~1.0x, so
  // its floor is skipped (the sweep still runs and publishes timings).
  const Entry* hw = find("hw_threads");
  const bool enough_cores = hw == nullptr || hw->ms >= 4.0;
  int failures = 0;
  for (const auto& [name, value] : thresholds) {
    if (name.rfind("min_events_per_sec/", 0) == 0) {
      const Entry* e = find(name.substr(std::strlen("min_events_per_sec/")));
      if (e == nullptr) {
        std::fprintf(stderr, "REGRESSION %s: entry missing\n", name.c_str());
        ++failures;
      } else if (e->events_per_sec < value) {
        std::fprintf(stderr,
                     "REGRESSION %s: %.0f events/s < required %.0f\n",
                     e->name.c_str(), e->events_per_sec, value);
        ++failures;
      }
      continue;
    }
    if (name.rfind("min_speedup/", 0) == 0) {
      if (!enough_cores && name.find("/sharded") != std::string::npos) {
        std::printf("skipping %s: only %.0f hardware threads (<4)\n",
                    name.c_str(), hw->ms);
        continue;
      }
      const Entry* e = find(name.substr(std::strlen("min_speedup/")));
      if (e == nullptr) {
        std::fprintf(stderr, "REGRESSION %s: entry missing\n", name.c_str());
        ++failures;
      } else if (e->speedup < value) {
        std::fprintf(stderr, "REGRESSION %s: speedup %.2fx < required %.2fx\n",
                     e->name.c_str(), e->speedup, value);
        ++failures;
      }
      continue;
    }
    const Entry* e = find(name);
    if (e != nullptr && e->ms > 2.0 * value) {
      std::fprintf(stderr, "REGRESSION %s: %.4f ms vs baseline %.4f ms (>2x)\n",
                   name.c_str(), e->ms, value);
      ++failures;
    }
  }
  for (const Entry& e : entries) {
    if (e.name.find("/adaptive") == std::string::npos) continue;
    if (e.speedup > 0 && e.speedup < 0.9) {
      std::fprintf(stderr,
                   "REGRESSION %s: adaptive is %.2fx of linear (<0.9x)\n",
                   e.name.c_str(), e.speedup);
      ++failures;
    }
  }
  for (const Entry& e : entries) {
    if (e.name.rfind("qa/", 0) != 0 || e.name.size() < 3 ||
        e.name.compare(e.name.size() - 3, 3, "/ii") != 0) {
      continue;
    }
    const Entry* scalar = find(e.name + "_scalar");
    // 10% slack absorbs timing noise; a real cutover bug costs more.
    if (scalar != nullptr && e.ms > 1.1 * scalar->ms) {
      std::fprintf(stderr,
                   "REGRESSION %s: adaptive II %.2f ms slower than scalar II "
                   "%.2f ms\n",
                   e.name.c_str(), e.ms, scalar->ms);
      ++failures;
    }
  }
  double best = 0;
  for (const Entry& e : entries) {
    // Sweep entries carry CB-vs-CB scaling, not II-vs-CB speedups —
    // keep them out of the best-II floor.
    if (e.name.find("/shard") != std::string::npos) continue;
    if (e.name.rfind("qa/", 0) == 0 || e.name.rfind("qb/", 0) == 0) {
      best = std::max(best, e.speedup);
    }
  }
  if (best < 2.0) {
    std::fprintf(stderr, "REGRESSION: best II-vs-CB speedup %.2fx < 2x\n",
                 best);
    ++failures;
  }
  if (failures == 0) std::printf("perf check passed (best II %.1fx)\n", best);
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  const bool quick = FlagValue(argc, argv, "quick", "") == "1" ||
                     std::count_if(argv + 1, argv + argc, [](const char* a) {
                       return std::strcmp(a, "--quick") == 0;
                     }) > 0;
  const std::string json = FlagValue(argc, argv, "json", "");
  const std::string check = FlagValue(argc, argv, "check", "");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg != "--quick" && arg.rfind("--json=", 0) != 0 &&
        arg.rfind("--check=", 0) != 0) {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: bench_ii_kernels [--quick] [--json=PATH] "
                   "[--check=THRESHOLDS]\n",
                   arg.c_str());
      return 2;
    }
  }

  std::vector<Entry> entries;
  RunMicrobenches(quick, &entries);
  RunQuerysets(quick, &entries);
  RunShardSweep(quick, &entries);
#ifdef SOLAP_SHARD_MAIN_PATH
  RunDistributedLoopback(quick, &entries);
#endif
  RunIngestThroughput(quick, &entries);
  if (!json.empty()) WriteJson(json, entries, quick);
  if (!check.empty()) return Check(check, entries);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace solap

int main(int argc, char** argv) { return solap::bench::Main(argc, argv); }
