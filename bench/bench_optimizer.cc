// Ablation for the cost-based strategy optimizer (engine/optimizer.h):
// an iterative exploration session executed three times — counter-based
// only, inverted-index only, and AUTO (the optimizer picks per query).
//
// Expected shape: AUTO tracks the better of the two fixed strategies at
// every step — CB-like on the cold first query, II-like once indices
// exist (the paper's §4.2.2 observation that neither strategy dominates,
// motivating "the design of an S-OLAP query optimizer").
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec XY(const std::string& y_level = "symbol") {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, y_level}, {}, ""}};
  return spec;
}

int Run(int argc, char** argv) {
  size_t d = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "200000").c_str(), nullptr, 10));
  SyntheticParams params;
  params.num_sequences = d;
  std::printf("== Optimizer ablation (%s) ==\n\n", params.Tag().c_str());
  SyntheticData data = GenerateSynthetic(params);

  // The session: cold (X, Y@group); P-ROLL-UP Y to super-groups;
  // P-DRILL-DOWN Y to symbols (a level never queried before); slice the
  // hottest cell of Q1 and APPEND; re-pose Q1 (a repository hit).
  const char* names[] = {"Q1 cold (X,Y@group)", "Q2 P-ROLL-UP Y",
                         "Q3 P-DRILL-DOWN Y", "Q4 slice+APPEND",
                         "Q5 Q1 again (cached)"};

  std::printf("%-22s", "Query");
  const char* strategies[] = {"CB(ms)", "II(ms)", "AUTO(ms)"};
  for (const char* s : strategies) std::printf("%12s", s);
  std::printf("\n%.*s\n", 60,
              "------------------------------------------------------------");

  double totals[3] = {0, 0, 0};
  std::vector<std::vector<double>> rows(5, std::vector<double>(3, 0));
  for (int si = 0; si < 3; ++si) {
    ExecStrategy strategy = si == 0   ? ExecStrategy::kCounterBased
                            : si == 1 ? ExecStrategy::kInvertedIndex
                                      : ExecStrategy::kAuto;
    SOlapEngine engine(data.groups, data.hierarchies.get());
    CuboidSpec specs[5];
    specs[0] = XY("group");
    specs[1] = XY("supergroup");
    specs[2] = XY("symbol");
    // specs[3] depends on Q1's result; built after Q1 runs.
    specs[4] = XY("group");  // == Q1: served by the cuboid repository

    std::shared_ptr<const SCuboid> q1_result;
    for (int q = 0; q < 5; ++q) {
      CuboidSpec spec = specs[q];
      if (q == 3) {
        CellKey top = q1_result->ArgMaxCell();
        spec = *ops::SliceToCell(XY("group"), *q1_result, top);
        spec = *ops::Append(spec, "Z", {SyntheticData::kAttr, "symbol"});
      }
      Timer t;
      auto r = engine.Execute(spec, strategy);
      double ms = t.ElapsedMs();
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      if (q == 0) q1_result = *r;
      rows[q][si] = ms;
      totals[si] += ms;
    }
  }
  for (int q = 0; q < 5; ++q) {
    std::printf("%-22s", names[q]);
    for (int si = 0; si < 3; ++si) std::printf("%12.2f", rows[q][si]);
    std::printf("\n");
  }
  std::printf("%-22s", "TOTAL");
  for (int si = 0; si < 3; ++si) std::printf("%12.2f", totals[si]);
  std::printf("\n\nExpected shape: AUTO ~= min(CB, II) per step; total "
              "below both fixed strategies.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
