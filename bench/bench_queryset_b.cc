// Experiment E4 — reproduces §5.2 QuerySet B: P-ROLL-UP and P-DRILL-DOWN
// performance under CB and II, varying D and L.
//
// Setup (paper): events organized into 3 concept levels (100 symbols ->
// 20 groups -> 5 super-groups, Zipf-sized). QB1 = SUBSTRING(X, Y, Z) with
// X at the middle (group) level; QB2 selects the subcube with the highest
// total for one X value and P-DRILL-DOWNs X to the finest level; QB3 takes
// the same subcube and P-ROLL-UPs Y to the highest (super-group) level.
// The index L3^(X,Y,Z) is precomputed for II.
//
// Paper shape to reproduce: CB and II comparable on QB2 (the subcube with
// the highest count is not selective, so II also scans a lot while
// refining); II beats CB on QB3 (list merging needs no data scan at all).
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec QB1() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y", "Z"};
  spec.dims = {
      PatternDim{"X", {SyntheticData::kAttr, "group"}, {}, ""},
      PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""},
      PatternDim{"Z", {SyntheticData::kAttr, "symbol"}, {}, ""},
  };
  return spec;
}

// The paper's "subcube with the highest total count for one X value".
std::string HottestXLabel(const SCuboid& cuboid) {
  std::unordered_map<Code, double> totals;
  for (const auto& [key, cell] : cuboid.cells()) {
    totals[key[0]] += cell.Value(AggKind::kCount);
  }
  Code best = 0;
  double best_total = -1;
  for (const auto& [code, total] : totals) {
    if (total > best_total) {
      best = code;
      best_total = total;
    }
  }
  return cuboid.LabelOf(0, best);
}

void RunOne(const SyntheticParams& params) {
  SyntheticData data = GenerateSynthetic(params);
  CuboidSpec qb1 = QB1();

  struct Row {
    const char* label;
    bench::Measurement cb, ii;
  };
  std::vector<Row> rows = {{"QB1", {}, {}}, {"QB2", {}, {}}, {"QB3", {}, {}}};

  for (ExecStrategy strategy :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    bool is_ii = strategy == ExecStrategy::kInvertedIndex;
    // Cuboid repository disabled: every query must really execute.
    SOlapEngine engine(data.groups, data.hierarchies.get(),
                       EngineOptions{strategy, 0,
                                     /*enable_index_cache=*/is_ii});
    if (is_ii) {
      // Paper: L3^(X,Y,Z) was precomputed in advance. Answering QB1 once
      // materializes exactly that index; drop the timing.
      (void)engine.Execute(qb1, strategy);
      engine.stats().Clear();
    }
    std::shared_ptr<const SCuboid> sub;
    bench::Measurement m1 =
        bench::RunQuery(engine, qb1, strategy, "QB1", &sub);
    std::string hot_x = HottestXLabel(*sub);
    auto sliced = ops::SlicePattern(qb1, "X", {hot_x});
    auto qb2 = ops::PDrillDown(*sliced, "X", *data.hierarchies);
    if (!qb2.ok()) std::exit(1);
    bench::Measurement m2 = bench::RunQuery(engine, *qb2, strategy, "QB2");

    auto qb3 = ops::PRollUpTo(*sliced, "Y", SyntheticData::kLevelSuper);
    if (!qb3.ok()) std::exit(1);
    bench::Measurement m3 = bench::RunQuery(engine, *qb3, strategy, "QB3");

    (is_ii ? rows[0].ii : rows[0].cb) = m1;
    (is_ii ? rows[1].ii : rows[1].cb) = m2;
    (is_ii ? rows[2].ii : rows[2].cb) = m3;
  }

  std::printf("%s (3-level hierarchy 100->20->5)\n", params.Tag().c_str());
  std::vector<bench::Measurement> cb, ii;
  for (const Row& r : rows) {
    cb.push_back(r.cb);
    ii.push_back(r.ii);
  }
  bench::PrintComparisonTable(cb, ii);
  std::printf("\n");
}

int Run(int argc, char** argv) {
  std::vector<size_t> d_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "d-list", "100000,250000"));
  std::vector<size_t> l_list =
      bench::ParseSizeList(bench::FlagValue(argc, argv, "l-list", "10,20"));
  std::printf("== E4 / §5.2 QuerySet B: P-ROLL-UP and P-DRILL-DOWN ==\n\n");
  std::printf("-- (a) varying D (L=20) --\n");
  for (size_t d : d_list) {
    SyntheticParams p;
    p.num_sequences = d;
    RunOne(p);
  }
  std::printf("-- (b) varying L (D=%zu) --\n", d_list.front());
  for (size_t l : l_list) {
    SyntheticParams p;
    p.num_sequences = d_list.front();
    p.mean_length = static_cast<double>(l);
    RunOne(p);
  }
  std::printf(
      "Expected shape (paper §5.2): CB and II comparable on QB2 "
      "(P-DRILL-DOWN of a non-selective subcube); II far ahead on QB3 "
      "(P-ROLL-UP answered by merging lists, zero sequences scanned).\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
