// Service throughput experiment, in three layers:
//
//   1. In-process scaling: queries-per-second of the concurrent query
//      service at 1/2/4/8 worker threads over a mixed CB/II batch with
//      repeated specs (repeats exercise single-flight dedup and the cuboid
//      repository, mirroring several clients exploring the same S-cube).
//   2. Closed-loop HTTP: N keep-alive clients over a loopback socket, each
//      issuing its next /query as soon as the previous answer lands —
//      measures end-to-end qps and client-observed latency percentiles
//      through the network front-end.
//   3. Open-loop HTTP: requests issued on a fixed schedule regardless of
//      completions, including a saturation run against a deliberately tiny
//      admission queue — shows the 429 shed behavior under overload.
//
// Results (client-side p50/p95/p99 plus the server's net_request_ms
// histogram) are written to BENCH_service.json.
//
// Each section gets a fresh engine so caches start cold and the runs are
// comparable. Scaling tops out at the machine's core count — on a
// single-core host every configuration is serialized and qps stays flat.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "solap/engine/operations.h"
#include "solap/gen/synthetic.h"
#include "solap/net/query_routes.h"
#include "solap/net/server.h"
#include "solap/service/query_service.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

// The batch: distinct specs sliced to the base cuboid's heaviest cells,
// alternating CB and II, each submitted `repeat` times.
struct Workload {
  std::vector<CuboidSpec> specs;
  std::vector<ExecStrategy> strategies;
};

Workload BuildWorkload(const SyntheticData& data, size_t num_queries,
                       size_t repeat) {
  SOlapEngine scout(data.groups, data.hierarchies.get());
  auto base = scout.Execute(InitialXY());
  if (!base.ok()) {
    std::fprintf(stderr, "base query failed: %s\n",
                 base.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::pair<CellKey, double>> cells =
      (*base)->TopCells(num_queries);
  if (cells.empty()) {
    std::fprintf(stderr, "base cuboid is empty\n");
    std::exit(1);
  }
  Workload w;
  for (size_t q = 0; q < num_queries; ++q) {
    auto sliced = ops::SliceToCell(InitialXY(), **base,
                                   cells[q % cells.size()].first);
    if (!sliced.ok()) {
      std::fprintf(stderr, "slice failed: %s\n",
                   sliced.status().ToString().c_str());
      std::exit(1);
    }
    ExecStrategy strategy = q % 2 == 0 ? ExecStrategy::kCounterBased
                                       : ExecStrategy::kInvertedIndex;
    for (size_t r = 0; r < repeat; ++r) {
      w.specs.push_back(*sliced);
      w.strategies.push_back(strategy);
    }
  }
  return w;
}

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  uint64_t repo_hits = 0;
  uint64_t shed = 0;
};

RunResult RunAtThreads(const SyntheticData& data, const Workload& w,
                       size_t threads) {
  SOlapEngine engine(data.groups, data.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = threads;
  opts.max_queue_depth = w.specs.size() + threads;  // no shedding here
  QueryService service(&engine, opts);

  Timer t;
  std::vector<QueryService::Ticket> tickets;
  tickets.reserve(w.specs.size());
  for (size_t i = 0; i < w.specs.size(); ++i) {
    SubmitOptions so;
    so.strategy = w.strategies[i];
    tickets.push_back(service.Submit(w.specs[i], so));
  }
  for (auto& ticket : tickets) {
    QueryResponse resp = ticket.response.get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
  }
  RunResult r;
  r.wall_ms = t.ElapsedMs();
  r.qps = static_cast<double>(w.specs.size()) / (r.wall_ms / 1000.0);
  r.repo_hits = service.metrics().counter("repository_hits")->Value();
  r.shed = service.metrics().counter("queries_shed")->Value();
  return r;
}

// ------------------------------------------------------- loopback clients

// Three spec shapes at different hierarchy levels so the HTTP sections mix
// repository hits with real executions, like clients exploring an S-cube.
const char* kHttpQueries[] = {
    "SELECT COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t "
    "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT symbol, "
    "Y AS symbol AT symbol LEFT-MAXIMALITY",
    "SELECT COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t "
    "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT group, "
    "Y AS symbol AT group LEFT-MAXIMALITY",
    "SELECT COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t "
    "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT supergroup, "
    "Y AS symbol AT supergroup LEFT-MAXIMALITY",
};
constexpr size_t kNumHttpQueries = 3;

/// A blocking keep-alive HTTP client over one loopback connection.
class HttpClient {
 public:
  ~HttpClient() { Close(); }

  bool Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    timeval tv{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  /// POSTs `body` to /query; returns the HTTP status, or 0 on a torn
  /// connection (the caller may reconnect).
  int Query(const std::string& body) {
    const std::string req =
        "POST /query HTTP/1.1\r\nHost: b\r\nX-Solap-Limit: 1\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    size_t off = 0;
    while (off < req.size()) {
      ssize_t n = ::send(fd_, req.data() + off, req.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return 0;
      off += static_cast<size_t>(n);
    }
    // Read one Content-Length-framed response.
    size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return 0;
    }
    const std::string head = buf_.substr(0, head_end);
    if (head.compare(0, 5, "HTTP/") != 0 || head.size() < 12) return 0;
    int status = std::atoi(head.c_str() + 9);
    size_t cl = head.find("ontent-Length:");
    size_t body_len =
        cl == std::string::npos
            ? 0
            : static_cast<size_t>(std::atoll(head.c_str() + cl + 14));
    while (buf_.size() < head_end + 4 + body_len) {
      if (!Fill()) return 0;
    }
    buf_.erase(0, head_end + 4 + body_len);
    return status;
  }

 private:
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }
  bool Fill() {
    char chunk[8192];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

struct HttpStats {
  uint64_t n200 = 0;
  uint64_t n429 = 0;
  uint64_t other = 0;  // torn connections and unexpected statuses
  std::vector<double> latencies_ms;
  double wall_ms = 0;

  double Qps() const {
    double total = static_cast<double>(n200 + n429 + other);
    return wall_ms > 0 ? total / (wall_ms / 1000.0) : 0;
  }
  double Percentile(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
  }
  void Merge(const HttpStats& o) {
    n200 += o.n200;
    n429 += o.n429;
    other += o.other;
    latencies_ms.insert(latencies_ms.end(), o.latencies_ms.begin(),
                        o.latencies_ms.end());
  }
};

void RecordOutcome(int status, double ms, HttpStats* stats) {
  if (status == 200) {
    ++stats->n200;
  } else if (status == 429) {
    ++stats->n429;
  } else {
    ++stats->other;
  }
  stats->latencies_ms.push_back(ms);
}

/// One service + HTTP server; sections borrow it so each run starts with a
/// fresh engine (cold repository).
struct HttpBench {
  explicit HttpBench(const SyntheticData& data, size_t threads,
                     size_t queue_depth)
      : engine(data.groups, data.hierarchies.get()) {
    ServiceOptions sopts;
    sopts.num_threads = threads;
    sopts.max_queue_depth = queue_depth;
    service = std::make_unique<QueryService>(&engine, sopts);
    net::HttpServerOptions hopts;
    hopts.num_workers = std::max<size_t>(threads * 2, 4);
    server = std::make_unique<net::HttpServer>(
        net::BuildSolapRouter(service.get()), hopts, &service->metrics());
    Status st = server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  ~HttpBench() { server->Stop(); }

  SOlapEngine engine;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::HttpServer> server;
};

/// Closed loop: each client drives its own keep-alive connection as fast
/// as responses come back.
HttpStats RunClosedLoop(uint16_t port, size_t clients,
                        size_t requests_per_client) {
  std::vector<HttpStats> per_client(clients);
  std::vector<std::thread> threads;
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(port)) return;
      for (size_t q = 0; q < requests_per_client; ++q) {
        const std::string body =
            kHttpQueries[(c + q) % kNumHttpQueries];
        Timer t;
        int status = client.Query(body);
        RecordOutcome(status, t.ElapsedMs(), &per_client[c]);
        if (status == 0 && !client.Connect(port)) return;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  HttpStats merged;
  for (const HttpStats& s : per_client) merged.Merge(s);
  merged.wall_ms = wall.ElapsedMs();
  return merged;
}

/// Open loop: `total` one-shot requests on a fixed schedule of
/// `rate_qps`, spread across a small issuer pool. Under overload the
/// issuers fall behind their schedule (classic open-loop backlog), which
/// is exactly when the service's 429 shedding should kick in.
HttpStats RunOpenLoop(uint16_t port, double rate_qps, size_t total) {
  constexpr size_t kIssuers = 16;
  std::vector<HttpStats> per_issuer(kIssuers);
  const auto t0 = std::chrono::steady_clock::now();
  const auto interval =
      std::chrono::duration<double>(rate_qps > 0 ? 1.0 / rate_qps : 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (size_t i = 0; i < kIssuers; ++i) {
    threads.emplace_back([&, i] {
      for (size_t k = i; k < total; k += kIssuers) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     interval * static_cast<double>(k)));
        HttpClient client;
        if (!client.Connect(port)) {
          ++per_issuer[i].other;
          continue;
        }
        const std::string body = kHttpQueries[k % kNumHttpQueries];
        Timer t;
        int status = client.Query(body);
        RecordOutcome(status, t.ElapsedMs(), &per_issuer[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  HttpStats merged;
  for (const HttpStats& s : per_issuer) merged.Merge(s);
  merged.wall_ms = wall.ElapsedMs();
  return merged;
}

void PrintHttpRow(const char* label, const HttpStats& s) {
  std::printf("%-14s | %8.1f %8llu %8llu %8llu | %8.2f %8.2f %8.2f\n",
              label, s.Qps(), static_cast<unsigned long long>(s.n200),
              static_cast<unsigned long long>(s.n429),
              static_cast<unsigned long long>(s.other), s.Percentile(0.50),
              s.Percentile(0.95), s.Percentile(0.99));
}

std::string HttpStatsJson(const HttpStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"qps\": %.1f, \"http_200\": %llu, \"http_429\": %llu, "
                "\"other\": %llu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                "\"p99_ms\": %.3f",
                s.Qps(), static_cast<unsigned long long>(s.n200),
                static_cast<unsigned long long>(s.n429),
                static_cast<unsigned long long>(s.other), s.Percentile(0.50),
                s.Percentile(0.95), s.Percentile(0.99));
  return buf;
}

int Run(int argc, char** argv) {
  size_t d = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "20000").c_str(), nullptr, 10));
  size_t num_queries = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "queries", "24").c_str(), nullptr, 10));
  size_t repeat = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "repeat", "2").c_str(), nullptr, 10));
  std::vector<size_t> thread_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads", "1,2,4,8"));
  std::vector<size_t> client_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "clients", "1,2,4"));
  size_t requests = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "requests", "100").c_str(), nullptr, 10));
  double rate = std::strtod(
      bench::FlagValue(argc, argv, "rate", "400").c_str(), nullptr);
  const std::string json =
      bench::FlagValue(argc, argv, "json", "BENCH_service.json");

  SyntheticParams p;
  p.num_sequences = d;
  SyntheticData data = GenerateSynthetic(p);
  Workload w = BuildWorkload(data, num_queries, repeat);

  std::printf("== 1. In-process scaling: %zu queries (%zu distinct x %zu), "
              "D=%zu, %u hardware threads ==\n\n",
              w.specs.size(), num_queries, repeat, d,
              std::thread::hardware_concurrency());
  std::printf("%8s | %12s %10s %10s %12s %6s\n", "threads", "wall(ms)",
              "qps", "speedup", "repo hits", "shed");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "------");
  std::string inprocess_json;
  double base_qps = 0;
  for (size_t threads : thread_list) {
    RunResult r = RunAtThreads(data, w, threads);
    if (base_qps == 0) base_qps = r.qps;
    std::printf("%8zu | %12.1f %10.1f %9.2fx %12llu %6llu\n", threads,
                r.wall_ms, r.qps, r.qps / base_qps,
                static_cast<unsigned long long>(r.repo_hits),
                static_cast<unsigned long long>(r.shed));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %zu, \"wall_ms\": %.1f, \"qps\": %.1f}",
                  threads, r.wall_ms, r.qps);
    inprocess_json += (inprocess_json.empty() ? "" : ",\n");
    inprocess_json += buf;
  }

  const char* header =
      "%-14s | %8s %8s %8s %8s | %8s %8s %8s\n";
  const char* rule =
      "--------------------------------------------------------------------"
      "--------\n";

  std::printf("\n== 2. Closed-loop HTTP over loopback: %zu requests/client "
              "==\n\n", requests);
  std::printf(header, "clients", "qps", "200", "429", "other", "p50ms",
              "p95ms", "p99ms");
  std::printf("%s", rule);
  std::string closed_json;
  for (size_t clients : client_list) {
    HttpBench bench(data, /*threads=*/4, /*queue_depth=*/64);
    HttpStats s = RunClosedLoop(bench.server->port(), clients, requests);
    char label[32];
    std::snprintf(label, sizeof(label), "%zu", clients);
    PrintHttpRow(label, s);
    closed_json += (closed_json.empty() ? "" : ",\n");
    closed_json += "    {\"clients\": " + std::to_string(clients) + ", " +
                   HttpStatsJson(s) + "}";
  }

  std::printf("\n== 3. Open-loop HTTP: scheduled arrivals ==\n\n");
  std::printf(header, "run", "qps", "200", "429", "other", "p50ms", "p95ms",
              "p99ms");
  std::printf("%s", rule);
  std::string open_json;
  std::string server_hist_json = "{}";
  {
    // Paced run: comfortably below capacity, queue depth 64.
    HttpBench bench(data, /*threads=*/4, /*queue_depth=*/64);
    HttpStats s = RunOpenLoop(bench.server->port(), rate,
                              static_cast<size_t>(rate));
    PrintHttpRow("paced", s);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", rate);
    open_json += "    {\"run\": \"paced\", \"target_qps\": ";
    open_json += buf;
    open_json += ", " + HttpStatsJson(s) + "}";

    Histogram::Snapshot hist =
        bench.service->metrics().histogram("net_request_ms")->TakeSnapshot();
    std::snprintf(buf, sizeof(buf), "%.3f", hist.p50_ms);
    server_hist_json = "{\"count\": " + std::to_string(hist.count) +
                       ", \"p50_ms\": " + buf;
    std::snprintf(buf, sizeof(buf), "%.3f", hist.p95_ms);
    server_hist_json += std::string(", \"p95_ms\": ") + buf;
    std::snprintf(buf, sizeof(buf), "%.3f", hist.p99_ms);
    server_hist_json += std::string(", \"p99_ms\": ") + buf + "}";
  }
  {
    // Saturation run: a single service thread behind a 2-deep queue at 8x
    // the paced rate — most arrivals must shed as 429, quickly.
    HttpBench bench(data, /*threads=*/1, /*queue_depth=*/2);
    HttpStats s = RunOpenLoop(bench.server->port(), rate * 8,
                              static_cast<size_t>(rate));
    PrintHttpRow("saturation", s);
    if (s.n429 == 0) {
      std::printf("note: saturation run shed nothing — host too fast for "
                  "rate=%.0f?\n", rate * 8);
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", rate * 8);
    open_json += ",\n    {\"run\": \"saturation\", \"target_qps\": ";
    open_json += buf;
    open_json += ", " + HttpStatsJson(s) + "}";
  }

  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"bench\": \"bench_service\",\n  \"inprocess\": [\n"
        << inprocess_json << "\n  ],\n  \"closed_loop\": [\n" << closed_json
        << "\n  ],\n  \"open_loop\": [\n" << open_json
        << "\n  ],\n  \"server_net_request_ms\": " << server_hist_json
        << "\n}\n";
    std::printf("\nwrote %s\n", json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
