// Service throughput experiment: queries-per-second of the concurrent
// query service at 1/2/4/8 worker threads over a mixed CB/II batch with
// repeated specs (repeats exercise single-flight dedup and the cuboid
// repository, mirroring several clients exploring the same S-cube).
//
// Each thread count gets a fresh engine so caches start cold and the runs
// are comparable. Scaling tops out at the machine's core count — on a
// single-core host every configuration is serialized and qps stays flat.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "solap/engine/operations.h"
#include "solap/gen/synthetic.h"
#include "solap/service/query_service.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

// The batch: distinct specs sliced to the base cuboid's heaviest cells,
// alternating CB and II, each submitted `repeat` times.
struct Workload {
  std::vector<CuboidSpec> specs;
  std::vector<ExecStrategy> strategies;
};

Workload BuildWorkload(const SyntheticData& data, size_t num_queries,
                       size_t repeat) {
  SOlapEngine scout(data.groups, data.hierarchies.get());
  auto base = scout.Execute(InitialXY());
  if (!base.ok()) {
    std::fprintf(stderr, "base query failed: %s\n",
                 base.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::pair<CellKey, double>> cells =
      (*base)->TopCells(num_queries);
  if (cells.empty()) {
    std::fprintf(stderr, "base cuboid is empty\n");
    std::exit(1);
  }
  Workload w;
  for (size_t q = 0; q < num_queries; ++q) {
    auto sliced = ops::SliceToCell(InitialXY(), **base,
                                   cells[q % cells.size()].first);
    if (!sliced.ok()) {
      std::fprintf(stderr, "slice failed: %s\n",
                   sliced.status().ToString().c_str());
      std::exit(1);
    }
    ExecStrategy strategy = q % 2 == 0 ? ExecStrategy::kCounterBased
                                       : ExecStrategy::kInvertedIndex;
    for (size_t r = 0; r < repeat; ++r) {
      w.specs.push_back(*sliced);
      w.strategies.push_back(strategy);
    }
  }
  return w;
}

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  uint64_t repo_hits = 0;
  uint64_t shed = 0;
};

RunResult RunAtThreads(const SyntheticData& data, const Workload& w,
                       size_t threads) {
  SOlapEngine engine(data.groups, data.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = threads;
  opts.max_queue_depth = w.specs.size() + threads;  // no shedding here
  QueryService service(&engine, opts);

  Timer t;
  std::vector<QueryService::Ticket> tickets;
  tickets.reserve(w.specs.size());
  for (size_t i = 0; i < w.specs.size(); ++i) {
    SubmitOptions so;
    so.strategy = w.strategies[i];
    tickets.push_back(service.Submit(w.specs[i], so));
  }
  for (auto& ticket : tickets) {
    QueryResponse resp = ticket.response.get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
  }
  RunResult r;
  r.wall_ms = t.ElapsedMs();
  r.qps = static_cast<double>(w.specs.size()) / (r.wall_ms / 1000.0);
  r.repo_hits = service.metrics().counter("repository_hits")->Value();
  r.shed = service.metrics().counter("queries_shed")->Value();
  return r;
}

int Run(int argc, char** argv) {
  size_t d = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "d", "20000").c_str(), nullptr, 10));
  size_t num_queries = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "queries", "24").c_str(), nullptr, 10));
  size_t repeat = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "repeat", "2").c_str(), nullptr, 10));
  std::vector<size_t> thread_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads", "1,2,4,8"));

  SyntheticParams p;
  p.num_sequences = d;
  SyntheticData data = GenerateSynthetic(p);
  Workload w = BuildWorkload(data, num_queries, repeat);

  std::printf("== Service throughput: %zu queries (%zu distinct x %zu), "
              "D=%zu, %u hardware threads ==\n\n",
              w.specs.size(), num_queries, repeat, d,
              std::thread::hardware_concurrency());
  std::printf("%8s | %12s %10s %10s %12s %6s\n", "threads", "wall(ms)",
              "qps", "speedup", "repo hits", "shed");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "------");
  double base_qps = 0;
  for (size_t threads : thread_list) {
    RunResult r = RunAtThreads(data, w, threads);
    if (base_qps == 0) base_qps = r.qps;
    std::printf("%8zu | %12.1f %10.1f %9.2fx %12llu %6llu\n", threads,
                r.wall_ms, r.qps, r.qps / base_qps,
                static_cast<unsigned long long>(r.repo_hits),
                static_cast<unsigned long long>(r.shed));
  }
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
