// Experiment E8 — §5.2 "experiments with subsequence patterns": the
// QuerySet-A iterative session with SUBSEQUENCE templates instead of
// SUBSTRING.
//
// Paper shape to reproduce: consistent with the §4.2 discussion — II
// remains ahead of CB. Subsequence matching enumerates gapped occurrences,
// so absolute costs are higher for both strategies; the II advantage on
// sliced follow-ups is preserved because list containment and greedy
// verification carry over unchanged.
#include <cstdio>

#include "bench_util.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

CuboidSpec InitialXY() {
  CuboidSpec spec;
  spec.kind = PatternKind::kSubsequence;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

int Run(int argc, char** argv) {
  std::vector<size_t> d_list = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "d-list", "25000,50000"));
  size_t queries = static_cast<size_t>(std::strtoull(
      bench::FlagValue(argc, argv, "queries", "3").c_str(), nullptr, 10));
  std::printf("== E8 / §5.2: SUBSEQUENCE patterns (I100.L10.t0.9) ==\n\n");
  const LevelRef fine{SyntheticData::kAttr, "symbol"};
  for (size_t d : d_list) {
    SyntheticParams p;
    p.num_sequences = d;
    p.mean_length = 10;  // subsequence enumeration is combinatorial
    SyntheticData data = GenerateSynthetic(p);

    SOlapEngine cb_engine(data.groups, data.hierarchies.get(),
                          EngineOptions{ExecStrategy::kCounterBased,
                                        size_t{64} << 20, false});
    auto cb = bench::RunQaSession(cb_engine, ExecStrategy::kCounterBased,
                                  InitialXY(), queries, fine);
    SOlapEngine ii_engine(data.groups, data.hierarchies.get());
    if (!ii_engine.PrecomputeIndex(InitialXY(), 2, fine).ok()) return 1;
    ii_engine.stats().Clear();
    auto ii = bench::RunQaSession(ii_engine, ExecStrategy::kInvertedIndex,
                                  InitialXY(), queries, fine);
    std::printf("%s (subsequence)\n", p.Tag().c_str());
    bench::PrintCumulativeSeries(cb, ii);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: same CB-vs-II relationship as the substring "
      "QuerySet A, at higher absolute cost.\n");
  return 0;
}

}  // namespace
}  // namespace solap

int main(int argc, char** argv) { return solap::Run(argc, argv); }
