// Quickstart: the S-OLAP API in five minutes.
//
// Builds the paper's tiny worked example (the Figure 8 sequence group as an
// event database), runs query Q3 through the query language, navigates with
// S-OLAP operations, and demonstrates why S-cuboids are non-summarizable
// (paper §3.4).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/parser/parser.h"

using namespace solap;

namespace {

// The Figure 8 traveling histories (station + alternating in/out actions).
std::shared_ptr<EventTable> MakeEventDatabase() {
  Schema schema({
      {"time", ValueType::kTimestamp, FieldRole::kDimension},
      {"card-id", ValueType::kString, FieldRole::kDimension},
      {"location", ValueType::kString, FieldRole::kDimension},
      {"action", ValueType::kString, FieldRole::kDimension},
      {"amount", ValueType::kDouble, FieldRole::kMeasure},
  });
  auto table = std::make_shared<EventTable>(std::move(schema));
  struct Trip {
    const char* card;
    std::vector<const char*> stations;
  };
  std::vector<Trip> history = {
      {"688", {"Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton",
               "Pentagon"}},
      {"23456", {"Pentagon", "Wheaton", "Wheaton", "Pentagon"}},
      {"1012", {"Clarendon", "Pentagon"}},
      {"77", {"Wheaton", "Clarendon", "Deanwood", "Wheaton"}},
  };
  int64_t t = MakeTimestamp(2007, 12, 25, 8, 0, 0);
  for (const Trip& trip : history) {
    for (size_t i = 0; i < trip.stations.size(); ++i) {
      (void)table->AppendRow({
          Value::Timestamp(t += 60),
          Value::String(trip.card),
          Value::String(trip.stations[i]),
          Value::String(i % 2 == 0 ? "in" : "out"),
          Value::Double(i % 2 == 0 ? 0.0 : -2.0),
      });
    }
  }
  return table;
}

std::shared_ptr<HierarchyRegistry> MakeHierarchies() {
  auto reg = std::make_shared<HierarchyRegistry>();
  auto location = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"station", "district"});
  (void)location->SetParent(0, "Pentagon", "D10");
  (void)location->SetParent(0, "Clarendon", "D10");
  (void)location->SetParent(0, "Wheaton", "D20");
  (void)location->SetParent(0, "Glenmont", "D20");
  (void)location->SetParent(0, "Deanwood", "D30");
  reg->Register("location", location);
  return reg;
}

void Show(const char* title, const SCuboid& cuboid) {
  std::printf("--- %s ---\n%s\n", title, cuboid.ToTable(10).c_str());
}

}  // namespace

int main() {
  auto table = MakeEventDatabase();
  auto hierarchies = MakeHierarchies();
  SOlapEngine engine(table.get(), hierarchies.get());

  // 1. Pose the paper's Q3 — single trips (X -> Y) — in the query language.
  auto q3 = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT card-id
    SEQUENCE BY time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
  )");
  if (!q3.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q3.status().ToString().c_str());
    return 1;
  }
  auto r3 = engine.Execute(*q3);
  if (!r3.ok()) {
    std::fprintf(stderr, "%s\n", r3.status().ToString().c_str());
    return 1;
  }
  Show("Q3: single-trip distribution (paper Fig. 12)", **r3);

  // 2. Navigate: APPEND Y and X to reach Q1's round-trip template
  //    (X, Y, Y, X); the engine reuses the inverted indices it built.
  CuboidSpec q1 = *q3;
  q1.symbols = {"X", "Y", "Y", "X"};
  q1.placeholders = {"x1", "y1", "y2", "x2"};
  q1.predicate = *ParseExpression(
      "x1.action = \"in\" AND y1.action = \"out\" AND "
      "y2.action = \"in\" AND x2.action = \"out\"");
  auto r1 = engine.Execute(q1);
  Show("Q1: round trips (X,Y,Y,X)", **r1);

  // 3. P-ROLL-UP the destination to districts.
  auto rolled = ops::PRollUp(*q3, "Y", *hierarchies);
  auto rr = engine.Execute(*rolled);
  Show("Q3 after P-ROLL-UP of Y to districts", **rr);

  // 4. Non-summarizability (paper §3.4): a DE-TAIL cannot be computed by
  //    aggregating the finer cuboid.
  auto raw = std::make_shared<SequenceGroupSet>("symbol");
  SequenceGroup& g = raw->GroupFor({});
  std::vector<Code> s3;
  for (const char* n :
       {"Pentagon", "Wheaton", "Pentagon", "Wheaton", "Glenmont"}) {
    s3.push_back(raw->raw_dictionary().GetOrAdd(n));
  }
  g.AddSequence(s3);
  SOlapEngine raw_engine(raw, nullptr);
  CuboidSpec xyz;
  xyz.symbols = {"X", "Y", "Z"};
  xyz.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
              PatternDim{"Y", {"symbol", "symbol"}, {}, ""},
              PatternDim{"Z", {"symbol", "symbol"}, {}, ""}};
  auto fine = raw_engine.Execute(xyz);
  auto coarse = raw_engine.Execute(*ops::DeTail(xyz));
  Show("SUBSTRING(X,Y,Z) on <P,W,P,W,G>", **fine);
  Show("After DE-TAIL: SUBSTRING(X,Y)", **coarse);
  std::printf(
      "Summing the two finer (Pentagon,Wheaton,*) cells would give 2, but "
      "the correct count for (Pentagon,Wheaton) is %.0f — S-cuboids are "
      "non-summarizable, so the engine always recomputes from data or "
      "indices, never from other cuboids.\n",
      (*coarse)->ValueAt((*coarse)->ArgMaxCell()));
  return 0;
}
