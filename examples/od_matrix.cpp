// The OD-matrix report (paper §6): "Every day, the IT department of the
// company processes the RFID-logged transactions and generates a so-called
// 'OD-matrix' ... a 2D-matrix which reports the number of passengers
// traveled from one station to another within the same day."
//
// With an S-OLAP engine the report is a single query — the customized
// programs with one-to-two-week turnaround the paper describes become a
// SELECT. This example renders the matrix for each simulated day and then
// answers the management's follow-up ("round-trip discounts?") with one
// more query, plus a regex query no fixed-length template can express.
//
//   ./build/examples/od_matrix [passengers] [days]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "solap/engine/engine.h"
#include "solap/gen/transit.h"
#include "solap/parser/parser.h"

using namespace solap;

int main(int argc, char** argv) {
  TransitParams params;
  params.num_passengers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  params.num_days = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  TransitData data = GenerateTransit(params);
  SOlapEngine engine(data.table.get(), data.hierarchies.get());

  // The OD-matrix: single trips (X -> Y) per day.
  auto spec = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    SEQUENCE GROUP BY time AT day
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
  )");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto r = engine.Execute(*spec);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  // Pivot the 3D cuboid (day, X, Y) into one matrix per day.
  std::map<std::string, std::map<std::pair<std::string, std::string>,
                                 int64_t>>
      days;
  std::map<std::string, int> stations;
  for (const auto& [key, cell] : (*r)->cells()) {
    std::string day = (*r)->LabelOf(0, key[0]);
    std::string origin = (*r)->LabelOf(1, key[1]);
    std::string dest = (*r)->LabelOf(2, key[2]);
    days[day][{origin, dest}] = cell.count;
    stations[origin] = stations[dest] = 1;
  }
  for (const auto& [day, matrix] : days) {
    std::printf("OD-matrix for %s (rows = origin, cols = destination)\n",
                day.c_str());
    std::printf("%-14s", "");
    for (const auto& [name, unused] : stations) {
      std::printf("%7.6s", name.c_str());
    }
    std::printf("\n");
    for (const auto& [origin, unused] : stations) {
      std::printf("%-14s", origin.c_str());
      for (const auto& [dest, unused2] : stations) {
        auto it = matrix.find({origin, dest});
        std::printf("%7lld",
                    it == matrix.end()
                        ? 0LL
                        : static_cast<long long>(it->second));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Management follow-up: how many candidates for a round-trip discount?
  auto round_trips = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1, y2, x2)
      WITH x1.action = "in" AND y1.action = "out" AND
           y2.action = "in" AND x2.action = "out"
  )");
  auto rt = engine.Execute(*round_trips);
  double total = 0;
  for (const auto& [key, cell] : (*rt)->cells()) total += cell.count;
  std::printf("Round-trip passenger-days (discount candidates): %.0f\n",
              total);

  // And a question no fixed-length template answers: passengers who
  // eventually RETURN to their first station, across any number of
  // intermediate stops (regex extension).
  auto returners = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    CUBOID BY PATTERN "X ( . )* X"
      WITH X AS location AT station
      LEFT-MAXIMALITY
  )");
  if (!returners.ok()) {
    std::fprintf(stderr, "%s\n", returners.status().ToString().c_str());
    return 1;
  }
  auto rr = engine.Execute(*returners);
  std::printf("\nStations passengers eventually return to (regex "
              "\"X ( . )* X\"), top 5:\n%s",
              (*rr)->ToTable(5).c_str());
  return 0;
}
