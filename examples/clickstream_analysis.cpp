// Clickstream analysis: the paper's §5.1 real-data use case — answering a
// KDD-Cup 2000 style question "in an OLAP data exploratory way".
//
// Session: Qa finds the hot (Assortment -> Legwear) category pair; a slice
// plus P-DRILL-DOWN (Qb) reveals which Legwear product pages were opened;
// an APPEND (Qc) checks for comparison shopping. Both construction
// strategies run side by side, with per-query timing and scan counts.
//
//   ./build/examples/clickstream_analysis [sessions]
#include <cstdio>
#include <cstdlib>

#include "solap/common/timer.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/clickstream.h"
#include "solap/parser/parser.h"

using namespace solap;

int main(int argc, char** argv) {
  ClickstreamParams params;
  if (argc > 1) params.num_sessions = std::strtoul(argv[1], nullptr, 10);
  std::printf("Generating clickstream: %zu sessions...\n",
              params.num_sessions);
  ClickstreamData data = GenerateClickstream(params);
  std::printf("event database: %zu click events\n\n",
              data.table->num_rows());

  auto qa = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY session-id AT session-id
    SEQUENCE BY request-time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS page AT page-category, Y AS page AT page-category
      LEFT-MAXIMALITY (x1, y1)
  )");
  if (!qa.ok()) {
    std::fprintf(stderr, "%s\n", qa.status().ToString().c_str());
    return 1;
  }
  CuboidSpec qb = *ops::SlicePattern(*qa, "X", {"Assortment"});
  qb = *ops::SlicePattern(qb, "Y", {"Legwear"});
  qb = *ops::PDrillDown(qb, "Y", *data.hierarchies);
  CuboidSpec qc = *ops::Append(qb, "Z", {"page", "raw-page"}, "z1");

  struct Step {
    const char* name;
    const char* story;
    const CuboidSpec* spec;
  };
  Step steps[] = {
      {"Qa", "two-step page accesses at the category level", &*qa},
      {"Qb", "slice (Assortment->Legwear) + P-DRILL-DOWN to product pages",
       &qb},
      {"Qc", "APPEND Z: do visitors compare a second product page?", &qc},
  };

  for (ExecStrategy strategy :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    const char* label =
        strategy == ExecStrategy::kCounterBased ? "CB" : "II";
    std::printf("=== strategy: %s ===\n", label);
    SOlapEngine engine(data.table.get(), data.hierarchies.get());
    (void)engine.WarmSequenceCache(qa->seq);
    for (const Step& step : steps) {
      uint64_t scans_before = engine.stats().sequences_scanned;
      Timer t;
      auto r = engine.Execute(*step.spec, strategy);
      double ms = t.ElapsedMs();
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", step.name,
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("%s (%s): %.2f ms, %llu sequences scanned, %zu cells\n",
                  step.name, step.story, ms,
                  static_cast<unsigned long long>(
                      engine.stats().sequences_scanned - scans_before),
                  (*r)->num_cells());
      if (strategy == ExecStrategy::kInvertedIndex) {
        std::printf("%s\n", (*r)->ToTable(5).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "As in the paper's Table 1: CB is competitive on the cold Qa, while "
      "II answers the selective follow-ups from its inverted lists, "
      "scanning a small fraction of the sessions.\n");
  return 0;
}
