// Transit analysis: the paper's motivating WMATA scenario (§1, §3).
//
// A transport-planning manager asks for the round-trip distribution over
// all origin-destination pairs, spots the hot pair, drills into follow-up
// trips (Q1 -> Q2 via slice + APPEND + APPEND), and de-fragments the view
// with a P-ROLL-UP to districts — the complete interactive session from
// the paper's introduction.
//
//   ./build/examples/transit_analysis [passengers] [days]
#include <cstdio>
#include <cstdlib>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/transit.h"
#include "solap/parser/parser.h"

using namespace solap;

namespace {

std::shared_ptr<const SCuboid> MustExecute(SOlapEngine& engine,
                                           const CuboidSpec& spec) {
  auto r = engine.Execute(spec);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *r;
}

}  // namespace

int main(int argc, char** argv) {
  TransitParams params;
  if (argc > 1) params.num_passengers = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) params.num_days = std::strtoul(argv[2], nullptr, 10);
  std::printf("Generating smart-card events: %zu passengers, %zu days...\n",
              params.num_passengers, params.num_days);
  TransitData data = GenerateTransit(params);
  std::printf("event database: %zu events\n\n", data.table->num_rows());
  SOlapEngine engine(data.table.get(), data.hierarchies.get());

  // Q1: "the number of round-trip passengers and their distributions over
  // all origin-destination station pairs", per day and fare group.
  auto q1 = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    SEQUENCE GROUP BY time AT day
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1, y2, x2)
      WITH x1.action = "in" AND y1.action = "out" AND
           y2.action = "in" AND x2.action = "out"
  )");
  if (!q1.ok()) {
    std::fprintf(stderr, "%s\n", q1.status().ToString().c_str());
    return 1;
  }
  auto r1 = MustExecute(engine, *q1);
  std::printf("Q1 — round trips per (day, origin X, destination Y), "
              "top 10 of %zu cells:\n%s\n",
              r1->num_cells(), r1->ToTable(10).c_str());

  // The manager spots the hot round trip and asks: do those passengers take
  // one more trip, and where to? (Q2 = slice + APPEND X + APPEND Z.)
  CellKey hot = r1->ArgMaxCell();
  std::printf("Hot cell: day %s, %s -> %s. Investigating follow-up "
              "trips...\n\n",
              r1->LabelOf(0, hot[0]).c_str(), r1->LabelOf(1, hot[1]).c_str(),
              r1->LabelOf(2, hot[2]).c_str());
  CuboidSpec sliced = *ops::SliceToCell(*q1, *r1, hot);
  CuboidSpec q2 = *ops::Append(sliced, "X", {}, "x3");
  q2 = *ops::Append(q2, "Z", {"location", "station"}, "z1");
  q2.predicate = *ParseExpression(
      "x1.action = \"in\" AND y1.action = \"out\" AND y2.action = \"in\" "
      "AND x2.action = \"out\" AND x3.action = \"in\" AND "
      "z1.action = \"out\"");
  auto r2 = MustExecute(engine, q2);
  std::printf("Q2 — third-trip destinations Z after the hot round trip:\n%s\n",
              r2->ToTable(10).c_str());

  // Too fragmented? P-ROLL-UP Z from stations to districts (§3.3).
  CuboidSpec q2_district = *ops::PRollUp(q2, "Z", *data.hierarchies);
  auto r3 = MustExecute(engine, q2_district);
  std::printf("Q2 after P-ROLL-UP of Z to districts:\n%s\n",
              r3->ToTable(10).c_str());

  // And the fare impact: SUM of amounts over whole matched sequences.
  CuboidSpec revenue = *q1;
  revenue.agg = AggKind::kSum;
  revenue.measure = "amount";
  revenue.restriction = CellRestriction::kLeftMaxDataGo;
  auto r4 = MustExecute(engine, revenue);
  std::printf("Fare revenue (SUM amount, whole sequences) by round trip, "
              "top 5:\n%s\n",
              r4->ToTable(5).c_str());
  std::printf("engine stats: %s\n", engine.stats().ToString().c_str());
  return 0;
}
