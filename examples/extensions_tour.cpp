// Tour of the §6 extensions: iceberg S-cuboids, online aggregation,
// incremental update, and bitmap-encoded inverted indices.
//
//   ./build/examples/extensions_tour
#include <cstdio>

#include "solap/engine/advisor.h"
#include "solap/engine/engine.h"
#include "solap/gen/synthetic.h"
#include "solap/index/bitmap_index.h"
#include "solap/index/build_index.h"
#include "solap/parser/parser.h"

using namespace solap;

int main() {
  SyntheticParams params;
  params.num_sequences = 50'000;
  std::printf("Synthetic dataset %s\n\n", params.Tag().c_str());
  SyntheticData data = GenerateSynthetic(params);
  SOlapEngine engine(data.groups, data.hierarchies.get());

  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};

  // 1. Iceberg S-cuboids: ICEBERG in the query language keeps only cells
  //    above a minimum support (many cells are sparse — paper §6).
  auto full = engine.Execute(spec);
  CuboidSpec iceberg = spec;
  iceberg.iceberg_min_count = 500;
  auto ice = engine.Execute(iceberg);
  std::printf("1. Iceberg: %zu cells -> %zu cells with min support 500\n\n",
              (*full)->num_cells(), (*ice)->num_cells());

  // 2. Online aggregation: report what we know so far; stop at 30%% with a
  //    scaled estimate of the hottest cell.
  CellKey hot = (*full)->ArgMaxCell();
  double exact = (*full)->CellAt(hot).count;
  SOlapEngine online_engine(data.groups, data.hierarchies.get());
  std::printf("2. Online aggregation (exact hottest count = %.0f):\n",
              exact);
  (void)online_engine.ExecuteOnline(
      spec, 5000, [&](const SCuboid& partial, double fraction) {
        std::printf("   %.0f%% processed -> estimate %.0f\n",
                    fraction * 100,
                    partial.CellAt(hot).count / fraction);
        return fraction < 0.3;  // stop once we trust the estimate
      });
  std::printf("\n");

  // 3. Incremental update: a new day of sequences arrives; cached complete
  //    indices are extended by scanning only the delta.
  SOlapEngine inc_engine(data.groups, data.hierarchies.get());
  (void)inc_engine.Execute(spec, ExecStrategy::kInvertedIndex);
  uint64_t scans_before = inc_engine.stats().sequences_scanned;
  auto delta = GenerateSyntheticBatch(params, 2'000, 20071226);
  if (!inc_engine.AppendRawSequences(0, delta).ok()) return 1;
  std::printf("3. Incremental update: appended %zu sequences; index "
              "maintenance scanned %llu sequences (the delta only)\n\n",
              delta.size(),
              static_cast<unsigned long long>(
                  inc_engine.stats().sequences_scanned - scans_before));

  // 4. Materialization advisor: given tomorrow's expected workload and a
  //    storage budget, which indices should tonight's batch job build?
  {
    MaterializationAdvisor advisor(&engine);
    CuboidSpec xyz = spec;
    xyz.symbols = {"X", "Y", "Z"};
    xyz.dims.push_back(
        PatternDim{"Z", {SyntheticData::kAttr, "symbol"}, {}, ""});
    auto recs = advisor.Recommend({{spec, 10.0}, {xyz, 1.0}},
                                  size_t{32} << 20);
    if (!recs.ok()) return 1;
    std::printf("4. Materialization advisor (32 MB budget):\n");
    for (const IndexRecommendation& r : *recs) {
      std::printf("   build %s\n", r.ToString().c_str());
    }
    if (!advisor.Materialize(*recs).ok()) return 1;
    std::printf("   materialized: %.1f MB of indices now serve the "
                "workload\n\n",
                engine.IndexCacheBytes() / 1048576.0);
  }

  // 5. Bitmap-encoded inverted index: same lists, word-parallel AND.
  IndexShape shape;
  shape.positions.assign(2, LevelRef{SyntheticData::kAttr, "symbol"});
  ScanStats stats;
  auto l2 = BuildIndex(&data.groups->groups()[0], *data.groups,
                       data.hierarchies.get(), shape, &stats);
  if (!l2.ok()) return 1;
  BitmapIndex bitmaps = BitmapIndex::FromInverted(
      **l2, data.groups->groups()[0].num_sequences());
  std::printf("5. Bitmap index: %zu lists, %.2f MB as sorted lists vs "
              "%.2f MB as bitmaps (domain %zu sequences)\n",
              (*l2)->num_lists(), (*l2)->ByteSize() / 1048576.0,
              bitmaps.ByteSize() / 1048576.0,
              data.groups->groups()[0].num_sequences());
  std::printf("   (bitmaps win on dense lists; see bench_extensions for "
              "the intersection micro-benchmarks)\n");
  return 0;
}
