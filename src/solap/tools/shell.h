// The interactive S-OLAP shell — the "User Interface" box of the paper's
// architecture (Fig. 6), as a scriptable command interpreter: load or
// generate an event database, declare concept hierarchies, pose S-cuboid
// queries in the query language, and navigate the S-cube with the six
// S-OLAP operations.
//
// The interpreter is a library class so it can be driven by the CLI
// binary (tools/solap_shell) and by tests alike.
#ifndef SOLAP_TOOLS_SHELL_H_
#define SOLAP_TOOLS_SHELL_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "solap/common/status.h"
#include "solap/engine/engine.h"
#include "solap/engine/sharded_engine.h"
#include "solap/net/server.h"
#include "solap/service/query_service.h"

namespace solap {

/// \brief One interactive session: owned data, engine, and navigation
/// state (the "current cuboid" the S-OLAP operations transform).
///
/// Command summary (see `help` for the full text):
///   schema <name:type[:measure],...>        declare the event schema
///   load csv <path> | load snapshot <path>  ingest events
///   save snapshot <path>                    persist the table
///   generate transit|clickstream|synthetic [n]
///   hierarchy <attr> <level0,level1,...>    declare levels
///   map <attr> <child> <parent>             declare a roll-up edge
///   select ... ;                            run a query (multi-line, ';')
///   append/prepend <sym> [attr level] | detail | dehead
///   rollup <sym> | drilldown <sym> | slice <sym> <label> | top [n]
///   parents | children                      S-cube lattice neighbors
///   shards <n> [column]                     scatter-gather shard count
///   ingest <v1,v2,...>[;<row>...]           append rows (epoch-gated)
///   evict <attr> <cutoff> | merge           retention / delta merge
///   serve start|stop|status                 concurrent query service
///     serve start [t [d]] --port <p>        + HTTP listener (0=ephemeral)
///   metrics                                 service counters/latencies
///   strategy cb|ii|auto | stats | show [n] | quit
class ShellSession {
 public:
  explicit ShellSession(std::ostream& out);
  ~ShellSession();

  /// Interprets one input line. Errors are printed, never thrown; the
  /// session survives bad input. Returns false once `quit` was seen.
  bool ExecLine(const std::string& line);

  /// Reads `in` line by line until EOF or `quit`.
  void Run(std::istream& in);

  bool done() const { return done_; }

 private:
  Status Dispatch(const std::string& line);
  Status CmdSchema(const std::string& args);
  Status CmdLoad(const std::string& args);
  Status CmdSave(const std::string& args);
  Status CmdGenerate(const std::string& args);
  Status CmdHierarchy(const std::string& args);
  Status CmdMap(const std::string& args);
  Status CmdStrategy(const std::string& args);
  Status CmdShards(const std::string& args);
  Status CmdServe(const std::string& args);
  Status CmdIngest(const std::string& args);
  Status CmdEvict(const std::string& args);
  Status RunQuery(const std::string& text);
  Status RunOp(const std::string& op, const std::string& args);
  Status ShowLattice(bool parents);
  Status RequireEngine() const;
  Status ExecuteCurrent();
  /// EXPLAIN: renders the optimizer's verdict for `spec` without executing.
  Status ExplainPlan(const CuboidSpec& spec);
  /// EXPLAIN ANALYZE: executes current_spec_ recording into `trace`, prints
  /// the span tree, and optionally writes Chrome trace JSON to `trace_out`.
  Status ExecuteAnalyze(TraceContext* trace, const std::string& trace_out);

  std::ostream& out_;
  bool done_ = false;
  std::string pending_query_;  // multi-line SELECT accumulation

  std::optional<Schema> schema_;
  std::shared_ptr<EventTable> table_;
  std::shared_ptr<SequenceGroupSet> raw_groups_;
  std::shared_ptr<HierarchyRegistry> hierarchies_;
  /// Rebuilds engine_ over the loaded table / raw groups with the current
  /// shard settings (no-op while no data is loaded).
  void ResetEngine();

  std::unique_ptr<ShardedEngine> engine_;
  size_t shards_ = 1;       // `shards` command; applied on (re)build
  std::string shard_by_;    // optional shard-by column override
  // Owns pool threads that reference engine_; must be reset before the
  // engine is replaced (CmdLoad / CmdGenerate) or destroyed. The HTTP
  // listener routes into service_, so it must be reset first again.
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<net::HttpServer> http_;
  ExecStrategy strategy_ = ExecStrategy::kAuto;

  std::optional<CuboidSpec> current_spec_;
  std::shared_ptr<const SCuboid> current_cuboid_;
  size_t show_limit_ = 15;
};

}  // namespace solap

#endif  // SOLAP_TOOLS_SHELL_H_
