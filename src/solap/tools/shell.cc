#include "solap/tools/shell.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "solap/common/strings.h"
#include "solap/common/timer.h"
#include "solap/cube/lattice.h"
#include "solap/engine/operations.h"
#include "solap/engine/optimizer.h"
#include "solap/gen/clickstream.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"
#include "solap/net/query_routes.h"
#include "solap/parser/parser.h"
#include "solap/storage/csv.h"
#include "solap/storage/io.h"

namespace solap {

namespace {

constexpr const char* kHelp = R"(commands:
  schema <name:type[:measure],...>   types: string,int64,double,timestamp
  load csv <path>                    requires a schema
  load snapshot <path>               binary table snapshot
  save snapshot <path>
  generate transit [passengers]      built-in workloads (with hierarchies)
  generate clickstream [sessions]
  generate synthetic [sequences]
  hierarchy <attr> <lvl0,lvl1,...>   declare abstraction levels
  map <attr> <child> <parent>        child value rolls up to parent value
  select ... ;                       S-cuboid query (may span lines)
  explain select ... ;               optimizer plan only (no execution)
  explain analyze select ... ;       execute and show the span tree
                                     (--trace-out=<file> dumps Chrome JSON)
  append <sym> [attr level] | prepend <sym> [attr level]
  detail | dehead                    DE-TAIL / DE-HEAD
  rollup <sym> | drilldown <sym>     P-ROLL-UP / P-DRILL-DOWN
  slice <sym> <label>                slice a pattern dimension
  top [n]                            re-show the current cuboid
  export <path.csv>                  write the current cuboid as CSV
  parents | children                 S-cube lattice neighbors
  serve start [threads [depth]]      start the concurrent query service
  serve stop | serve status          stop / inspect the service
  metrics [--prometheus]             service counters and latencies
  strategy cb|ii|auto                construction strategy
  shards <n> [column]                scatter-gather shard count
                                     (rebuilds the engine; column picks
                                     the table's shard-by attribute)
  ingest <v1,v2,...>[;<row2>...]     append event rows through the
                                     epoch-gated write path (values by
                                     schema order; ';' separates rows)
  evict <attr> <cutoff>              retention: drop rows below cutoff
  merge                              fold index delta segments now
  stats                              engine counters
  help | quit)";

std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  size_t sp = line.find(' ');
  if (sp == std::string::npos) return {line, ""};
  size_t rest = line.find_first_not_of(' ', sp);
  return {line.substr(0, sp),
          rest == std::string::npos ? "" : line.substr(rest)};
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string w;
  while (is >> w) out.push_back(w);
  return out;
}

}  // namespace

ShellSession::ShellSession(std::ostream& out)
    : out_(out), hierarchies_(std::make_shared<HierarchyRegistry>()) {}

ShellSession::~ShellSession() = default;

void ShellSession::Run(std::istream& in) {
  std::string line;
  while (!done_ && std::getline(in, line)) {
    if (!ExecLine(line)) break;
  }
}

bool ShellSession::ExecLine(const std::string& line) {
  Status st = Dispatch(line);
  if (!st.ok()) out_ << "error: " << st.ToString() << "\n";
  return !done_;
}

Status ShellSession::Dispatch(const std::string& raw) {
  std::string line = Trim(raw);
  if (!pending_query_.empty()) {
    pending_query_ += " " + line;
    if (!line.empty() && line.back() == ';') {
      std::string q = pending_query_.substr(0, pending_query_.size() - 1);
      pending_query_.clear();
      return RunQuery(q);
    }
    return Status::OK();
  }
  if (line.empty() || line[0] == '#') return Status::OK();

  auto [cmd, args] = SplitCommand(line);
  std::string c = ToLower(cmd);
  if (c == "quit" || c == "exit") {
    done_ = true;
    return Status::OK();
  }
  if (c == "help") {
    out_ << kHelp << "\n";
    return Status::OK();
  }
  if (c == "select" || c == "explain") {
    if (!line.empty() && line.back() == ';') {
      return RunQuery(line.substr(0, line.size() - 1));
    }
    pending_query_ = line;
    return Status::OK();
  }
  if (c == "schema") return CmdSchema(args);
  if (c == "load") return CmdLoad(args);
  if (c == "save") return CmdSave(args);
  if (c == "generate") return CmdGenerate(args);
  if (c == "hierarchy") return CmdHierarchy(args);
  if (c == "map") return CmdMap(args);
  if (c == "strategy") return CmdStrategy(args);
  if (c == "shards") return CmdShards(args);
  if (c == "serve") return CmdServe(args);
  if (c == "ingest") return CmdIngest(args);
  if (c == "evict") return CmdEvict(args);
  if (c == "merge") {
    SOLAP_RETURN_NOT_OK(RequireEngine());
    SOLAP_RETURN_NOT_OK(engine_->MergeDeltasNow());
    out_ << "delta segments merged (epoch " << engine_->epoch() << ")\n";
    return Status::OK();
  }
  if (c == "metrics") {
    if (service_ == nullptr) {
      return Status::InvalidArgument(
          "no service running; start one with 'serve start'");
    }
    std::string fmt = Trim(args);
    if (!fmt.empty() && fmt != "--prometheus") {
      return Status::InvalidArgument("metrics [--prometheus]");
    }
    service_->RefreshResourceMetrics();
    out_ << (fmt == "--prometheus" ? service_->metrics().ToPrometheus()
                                   : service_->metrics().ToString());
    return Status::OK();
  }
  if (c == "stats") {
    SOLAP_RETURN_NOT_OK(RequireEngine());
    out_ << engine_->StatsSnapshot().ToString()
         << " index_cache_bytes=" << engine_->IndexCacheBytes() << "\n";
    return Status::OK();
  }
  if (c == "top" || c == "show") {
    if (!args.empty()) show_limit_ = std::strtoul(args.c_str(), nullptr, 10);
    if (current_cuboid_ == nullptr) {
      return Status::InvalidArgument("no cuboid yet; run a query first");
    }
    out_ << current_cuboid_->ToTable(show_limit_);
    return Status::OK();
  }
  if (c == "export") {
    if (current_cuboid_ == nullptr) {
      return Status::InvalidArgument("no cuboid yet; run a query first");
    }
    std::string path = Trim(args);
    if (path.empty()) return Status::InvalidArgument("export <path.csv>");
    std::ofstream f(path);
    if (!f) return Status::NotFound("cannot create '" + path + "'");
    f << current_cuboid_->ToCsv();
    out_ << "exported " << current_cuboid_->num_cells() << " cells to "
         << path << "\n";
    return Status::OK();
  }
  if (c == "parents") return ShowLattice(true);
  if (c == "children") return ShowLattice(false);
  if (c == "append" || c == "prepend" || c == "detail" || c == "dehead" ||
      c == "rollup" || c == "drilldown" || c == "slice") {
    return RunOp(c, args);
  }
  return Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try 'help')");
}

Status ShellSession::CmdSchema(const std::string& args) {
  std::vector<Field> fields;
  for (const std::string& part : Split(args, ',')) {
    std::vector<std::string> bits = Split(Trim(part), ':');
    if (bits.size() < 2) {
      return Status::InvalidArgument("schema entries are name:type[:measure]");
    }
    Field f;
    f.name = bits[0];
    std::string type = ToLower(bits[1]);
    if (type == "string") {
      f.type = ValueType::kString;
    } else if (type == "int64") {
      f.type = ValueType::kInt64;
    } else if (type == "double") {
      f.type = ValueType::kDouble;
    } else if (type == "timestamp") {
      f.type = ValueType::kTimestamp;
    } else {
      return Status::InvalidArgument("unknown type '" + bits[1] + "'");
    }
    f.role = bits.size() > 2 && ToLower(bits[2]) == "measure"
                 ? FieldRole::kMeasure
                 : FieldRole::kDimension;
    fields.push_back(std::move(f));
  }
  schema_ = Schema(fields);
  out_ << "schema with " << fields.size() << " attributes\n";
  return Status::OK();
}

Status ShellSession::CmdLoad(const std::string& args) {
  auto [what, path] = SplitCommand(args);
  if (ToLower(what) == "csv") {
    if (!schema_.has_value()) {
      return Status::InvalidArgument("declare a schema before loading CSV");
    }
    SOLAP_ASSIGN_OR_RETURN(table_, LoadCsvFile(*schema_, Trim(path)));
  } else if (ToLower(what) == "snapshot") {
    SOLAP_ASSIGN_OR_RETURN(table_, LoadTable(Trim(path), RetryPolicy{}));
    schema_ = table_->schema();
  } else {
    return Status::InvalidArgument("load csv <path> | load snapshot <path>");
  }
  raw_groups_.reset();
  http_.reset();     // listener routes into service_
  service_.reset();  // pool threads reference the old engine
  ResetEngine();
  out_ << "loaded " << table_->num_rows() << " events\n";
  return Status::OK();
}

Status ShellSession::CmdSave(const std::string& args) {
  auto [what, path] = SplitCommand(args);
  if (ToLower(what) != "snapshot" || table_ == nullptr) {
    return Status::InvalidArgument(
        "save snapshot <path> (requires a loaded table)");
  }
  SOLAP_RETURN_NOT_OK(SaveTable(*table_, Trim(path), RetryPolicy{}));
  out_ << "saved " << table_->num_rows() << " events\n";
  return Status::OK();
}

Status ShellSession::CmdGenerate(const std::string& args) {
  std::vector<std::string> w = Words(args);
  if (w.empty()) {
    return Status::InvalidArgument(
        "generate transit|clickstream|synthetic [n]");
  }
  size_t n = w.size() > 1 ? std::strtoul(w[1].c_str(), nullptr, 10) : 0;
  std::string kind = ToLower(w[0]);
  http_.reset();     // listener routes into service_
  service_.reset();  // pool threads reference the old engine
  if (kind == "transit") {
    TransitParams p;
    if (n) p.num_passengers = n;
    TransitData data = GenerateTransit(p);
    table_ = data.table;
    hierarchies_ = data.hierarchies;
    raw_groups_.reset();
    ResetEngine();
  } else if (kind == "clickstream") {
    ClickstreamParams p;
    if (n) p.num_sessions = n;
    ClickstreamData data = GenerateClickstream(p);
    table_ = data.table;
    hierarchies_ = data.hierarchies;
    raw_groups_.reset();
    ResetEngine();
  } else if (kind == "synthetic") {
    SyntheticParams p;
    if (n) p.num_sequences = n;
    SyntheticData data = GenerateSynthetic(p);
    raw_groups_ = data.groups;
    hierarchies_ = data.hierarchies;
    table_.reset();
    ResetEngine();
  } else {
    return Status::InvalidArgument("unknown workload '" + w[0] + "'");
  }
  out_ << "generated " << kind << " workload"
       << (table_ ? " (" + std::to_string(table_->num_rows()) + " events)"
                  : "")
       << "\n";
  return Status::OK();
}

Status ShellSession::CmdHierarchy(const std::string& args) {
  std::vector<std::string> w = Words(args);
  if (w.size() != 2) {
    return Status::InvalidArgument("hierarchy <attr> <lvl0,lvl1,...>");
  }
  std::vector<std::string> levels = Split(w[1], ',');
  if (levels.size() < 2) {
    return Status::InvalidArgument("a hierarchy needs at least two levels");
  }
  hierarchies_->Register(w[0],
                         std::make_shared<ConceptHierarchy>(levels));
  out_ << "hierarchy on '" << w[0] << "' with " << levels.size()
       << " levels\n";
  return Status::OK();
}

Status ShellSession::CmdMap(const std::string& args) {
  std::vector<std::string> w = Words(args);
  if (w.size() != 3) return Status::InvalidArgument("map <attr> <child> <parent>");
  ConceptHierarchy* h = hierarchies_->Find(w[0]);
  if (h == nullptr) {
    return Status::NotFound("no hierarchy on '" + w[0] +
                            "'; declare it first");
  }
  // The child may live at any non-top level; find the level whose parent
  // mapping should hold it. Default: level 0.
  return h->SetParent(0, w[1], w[2]);
}

Status ShellSession::CmdStrategy(const std::string& args) {
  std::string s = ToLower(Trim(args));
  if (s == "cb") {
    strategy_ = ExecStrategy::kCounterBased;
  } else if (s == "ii") {
    strategy_ = ExecStrategy::kInvertedIndex;
  } else if (s == "auto") {
    strategy_ = ExecStrategy::kAuto;
  } else {
    return Status::InvalidArgument("strategy cb|ii|auto");
  }
  out_ << "strategy = " << s << "\n";
  return Status::OK();
}

Status ShellSession::CmdShards(const std::string& args) {
  std::vector<std::string> w = Words(args);
  if (w.empty() || w.size() > 2) {
    return Status::InvalidArgument("shards <n> [column]");
  }
  size_t n = std::strtoul(w[0].c_str(), nullptr, 10);
  if (n == 0) return Status::InvalidArgument("shard count must be >= 1");
  shards_ = n;
  shard_by_ = w.size() > 1 ? w[1] : "";
  if (engine_ == nullptr) {
    out_ << "shards = " << shards_ << " (applies at the next load/generate)\n";
    return Status::OK();
  }
  http_.reset();     // listener routes into service_
  service_.reset();  // pool threads reference the old engine
  ResetEngine();
  current_cuboid_.reset();
  out_ << "shards = " << engine_->num_shards();
  if (!shard_by_.empty()) out_ << " (by " << shard_by_ << ")";
  out_ << "\n";
  return Status::OK();
}

Status ShellSession::CmdIngest(const std::string& args) {
  SOLAP_RETURN_NOT_OK(RequireEngine());
  if (table_ == nullptr) {
    return Status::InvalidArgument(
        "ingest applies to table-backed engines (load or generate first)");
  }
  const Schema& schema = table_->schema();
  std::vector<std::vector<Value>> rows;
  for (const std::string& row_text : Split(Trim(args), ';')) {
    std::vector<std::string> parts = Split(Trim(row_text), ',');
    if (parts.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "row has " + std::to_string(parts.size()) + " values; schema has " +
          std::to_string(schema.num_fields()));
    }
    std::vector<Value> row;
    row.reserve(parts.size());
    for (size_t c = 0; c < parts.size(); ++c) {
      const std::string text = Trim(parts[c]);
      switch (schema.field(static_cast<int>(c)).type) {
        case ValueType::kString:
          row.push_back(Value::String(text));
          break;
        case ValueType::kInt64:
        case ValueType::kTimestamp: {
          char* end = nullptr;
          const long long v = std::strtoll(text.c_str(), &end, 10);
          if (end == text.c_str() || *end != '\0') {
            return Status::InvalidArgument("bad int64 '" + text + "' for '" +
                                           schema.field(static_cast<int>(c))
                                               .name +
                                           "'");
          }
          row.push_back(Value::Int64(v));
          break;
        }
        case ValueType::kDouble: {
          char* end = nullptr;
          const double v = std::strtod(text.c_str(), &end);
          if (end == text.c_str() || *end != '\0') {
            return Status::InvalidArgument("bad double '" + text + "' for '" +
                                           schema.field(static_cast<int>(c))
                                               .name +
                                           "'");
          }
          row.push_back(Value::Double(v));
          break;
        }
        case ValueType::kNull:
          row.push_back(Value::Null());
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  SOLAP_RETURN_NOT_OK(engine_->IngestRows(rows));
  out_ << "ingested " << rows.size() << " events (epoch "
       << engine_->epoch() << ")\n";
  return Status::OK();
}

Status ShellSession::CmdEvict(const std::string& args) {
  SOLAP_RETURN_NOT_OK(RequireEngine());
  std::vector<std::string> w = Words(args);
  if (w.size() != 2) return Status::InvalidArgument("evict <attr> <cutoff>");
  char* end = nullptr;
  const long long cutoff = std::strtoll(w[1].c_str(), &end, 10);
  if (end == w[1].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad cutoff '" + w[1] + "'");
  }
  SOLAP_RETURN_NOT_OK(engine_->EvictBefore(w[0], cutoff));
  out_ << "retention: " << w[0] << " >= " << cutoff << " (epoch "
       << engine_->epoch() << ")\n";
  return Status::OK();
}

void ShellSession::ResetEngine() {
  EngineOptions opts;
  opts.shards = shards_;
  opts.shard_by = shard_by_;
  if (table_ != nullptr) {
    engine_ = std::make_unique<ShardedEngine>(table_.get(),
                                              hierarchies_.get(), opts);
  } else if (raw_groups_ != nullptr) {
    engine_ =
        std::make_unique<ShardedEngine>(raw_groups_, hierarchies_.get(), opts);
  } else {
    engine_.reset();
  }
}

Status ShellSession::CmdServe(const std::string& args) {
  std::vector<std::string> w = Words(args);
  std::string sub = w.empty() ? "" : ToLower(w[0]);
  constexpr const char kUsage[] =
      "serve start [threads [depth]] [--port <p>] | stop | status";
  if (sub == "start") {
    SOLAP_RETURN_NOT_OK(RequireEngine());
    if (service_ != nullptr) {
      return Status::InvalidArgument(
          "service already running; 'serve stop' first");
    }
    // `--port <p>` / `--port=<p>` adds an HTTP listener (0 = ephemeral);
    // positional words remain [threads [depth]].
    bool with_listener = false;
    long port = 0;
    std::vector<std::string> positional;
    for (size_t i = 1; i < w.size(); ++i) {
      if (w[i] == "--port" || w[i].rfind("--port=", 0) == 0) {
        std::string value;
        if (w[i] == "--port") {
          if (i + 1 >= w.size()) return Status::InvalidArgument(kUsage);
          value = w[++i];
        } else {
          value = w[i].substr(sizeof("--port=") - 1);
        }
        char* end = nullptr;
        port = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || port < 0 ||
            port > 65535) {
          return Status::InvalidArgument("bad port '" + value + "'");
        }
        with_listener = true;
      } else {
        positional.push_back(w[i]);
      }
    }
    ServiceOptions opts;
    if (positional.size() > 0) {
      opts.num_threads = std::strtoul(positional[0].c_str(), nullptr, 10);
      if (opts.num_threads == 0) return Status::InvalidArgument(kUsage);
    }
    if (positional.size() > 1) {
      opts.max_queue_depth =
          std::strtoul(positional[1].c_str(), nullptr, 10);
    }
    service_ = std::make_unique<QueryService>(engine_.get(), opts);
    out_ << "service started: " << service_->num_threads()
         << " threads, queue depth " << opts.max_queue_depth << "\n";
    if (with_listener) {
      net::HttpServerOptions hopts;
      hopts.port = static_cast<uint16_t>(port);
      hopts.num_workers = opts.num_threads;
      QueryService* service = service_.get();
      auto server = std::make_unique<net::HttpServer>(
          net::BuildSolapRouter(service), hopts, &service->metrics(),
          /*drain_hook=*/[service] { service->BeginDrain(); });
      Status started = server->Start();
      if (!started.ok()) {
        service_.reset();
        return started;
      }
      http_ = std::move(server);
      out_ << "listening on " << hopts.bind_address << ":" << http_->port()
           << " (POST /query, GET /metrics, GET /healthz)\n";
    }
    return Status::OK();
  }
  if (sub == "stop") {
    if (service_ == nullptr) {
      return Status::InvalidArgument("no service running");
    }
    if (http_ != nullptr) {
      // Orderly drain: stop accepting, let in-flight queries finish, then
      // tear the listener down before the service it routes into.
      http_->Drain();
      service_->WaitIdle(std::chrono::seconds(5));
      http_->Stop();
      http_.reset();
      out_ << "listener stopped\n";
    }
    service_.reset();
    out_ << "service stopped\n";
    return Status::OK();
  }
  if (sub == "status") {
    if (service_ == nullptr) {
      out_ << "service: not running\n";
    } else {
      out_ << "service: running, " << service_->num_threads()
           << " threads, " << service_->PendingQueries() << " pending, "
           << service_->sessions().NumSessions() << " sessions\n";
      if (http_ != nullptr) {
        out_ << "listener: port " << http_->port() << ", "
             << http_->active_connections() << " active connections"
             << (http_->draining() ? ", draining" : "") << "\n";
      }
    }
    return Status::OK();
  }
  return Status::InvalidArgument(kUsage);
}

Status ShellSession::RequireEngine() const {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "no data yet: load csv/snapshot or generate a workload");
  }
  return Status::OK();
}

Status ShellSession::RunQuery(const std::string& text) {
  SOLAP_RETURN_NOT_OK(RequireEngine());
  // `--trace-out=<file>` is a shell option of EXPLAIN ANALYZE; strip it
  // before the text reaches the parser.
  std::string query;
  std::string trace_out;
  {
    std::istringstream is(text);
    std::string w;
    while (is >> w) {
      constexpr const char kTraceOut[] = "--trace-out=";
      if (w.rfind(kTraceOut, 0) == 0) {
        trace_out = w.substr(sizeof(kTraceOut) - 1);
      } else {
        if (!query.empty()) query += ' ';
        query += w;
      }
    }
  }
  // Constructed before parsing so the context's epoch precedes the parse
  // span (unused unless the statement is EXPLAIN ANALYZE; construction is
  // one clock read).
  TraceContext trace;
  const auto parse_start = std::chrono::steady_clock::now();
  SOLAP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(query));
  const auto parse_end = std::chrono::steady_clock::now();
  if (!trace_out.empty() && stmt.explain != ExplainMode::kAnalyze) {
    return Status::InvalidArgument("--trace-out requires EXPLAIN ANALYZE");
  }
  if (stmt.explain == ExplainMode::kPlan) {
    return ExplainPlan(stmt.spec);
  }
  current_spec_ = std::move(stmt.spec);
  if (stmt.explain == ExplainMode::kNone) return ExecuteCurrent();
  trace.AddTimedSpan("parse", parse_start, parse_end, -1);
  return ExecuteAnalyze(&trace, trace_out);
}

Status ShellSession::ExplainPlan(const CuboidSpec& spec) {
  out_ << "EXPLAIN\n";
  if (spec.is_regex()) {
    out_ << "  strategy: counter-based (regex templates always scan)\n";
    return Status::OK();
  }
  // The optimizer models the monolithic engine (with shards == 1 the only
  // executor); scattered execution shows up in EXPLAIN ANALYZE's span tree.
  StrategyOptimizer optimizer(engine_->Monolith());
  SOLAP_ASSIGN_OR_RETURN(StrategyChoice choice, optimizer.Choose(spec));
  const bool forced = strategy_ != ExecStrategy::kAuto;
  const ExecStrategy effective = forced ? strategy_ : choice.strategy;
  out_ << "  strategy: " << StrategyName(effective);
  if (forced) {
    out_ << " (forced by 'strategy'; optimizer prefers "
         << StrategyName(choice.strategy) << ")";
  } else {
    out_ << " (auto)";
  }
  out_ << "\n  reason: " << choice.reason << "\n"
       << "  cost estimate (sequences touched): cb=" << choice.cb_cost
       << " ii=" << choice.ii_cost << "\n";
  for (const GroupPlan& g : choice.groups) {
    out_ << "  group " << g.group_index << ": " << g.num_sequences
         << " sequences, cb=" << g.cb_cost << " ii=" << g.ii_cost
         << ", ii source: " << g.ii_source;
    if (!g.reused_index.empty()) out_ << ", reuses " << g.reused_index;
    out_ << "\n";
  }
  return Status::OK();
}

Status ShellSession::ExecuteAnalyze(TraceContext* trace,
                                    const std::string& trace_out) {
  if (service_ != nullptr) {
    SubmitOptions opts;
    opts.strategy = strategy_;
    opts.trace = trace;
    QueryResponse resp = service_->Run(*current_spec_, opts);
    SOLAP_RETURN_NOT_OK(resp.status);
    current_cuboid_ = resp.cuboid;
  } else {
    TraceSpan root(trace, "query");
    root.Note("strategy", StrategyName(strategy_));
    ExecControl control;
    control.trace = trace;
    SOLAP_ASSIGN_OR_RETURN(
        current_cuboid_, engine_->Execute(*current_spec_, strategy_, control));
    root.End();
  }
  char total[32];
  std::snprintf(total, sizeof(total), "%.3f", trace->TotalMs());
  out_ << "EXPLAIN ANALYZE  total " << total << " ms, "
       << current_cuboid_->num_cells() << " cells\n"
       << trace->ToString();
  if (!trace_out.empty()) {
    std::ofstream f(trace_out);
    if (!f) return Status::NotFound("cannot create '" + trace_out + "'");
    f << trace->ToChromeJson();
    out_ << "chrome trace written to " << trace_out << "\n";
  }
  return Status::OK();
}

Status ShellSession::ExecuteCurrent() {
  SOLAP_RETURN_NOT_OK(RequireEngine());
  Timer t;
  if (service_ != nullptr) {
    // Through the service: admission control, deadlines and metrics apply
    // to interactive queries exactly as they would to remote clients.
    SubmitOptions opts;
    opts.strategy = strategy_;
    QueryResponse resp = service_->Run(*current_spec_, opts);
    SOLAP_RETURN_NOT_OK(resp.status);
    current_cuboid_ = resp.cuboid;
  } else {
    SOLAP_ASSIGN_OR_RETURN(current_cuboid_,
                           engine_->Execute(*current_spec_, strategy_));
  }
  out_ << current_cuboid_->num_cells() << " cells in " << t.ElapsedMs()
       << " ms\n"
       << current_cuboid_->ToTable(show_limit_);
  return Status::OK();
}

Status ShellSession::RunOp(const std::string& op, const std::string& args) {
  if (!current_spec_.has_value()) {
    return Status::InvalidArgument("no current cuboid; run a query first");
  }
  std::vector<std::string> w = Words(args);
  Result<CuboidSpec> next = Status::Internal("unreached");
  if (op == "append" || op == "prepend") {
    if (w.empty()) return Status::InvalidArgument(op + " <sym> [attr level]");
    LevelRef ref;
    if (w.size() >= 3) ref = {w[1], w[2]};
    next = op == "append" ? ops::Append(*current_spec_, w[0], ref)
                          : ops::Prepend(*current_spec_, w[0], ref);
  } else if (op == "detail") {
    next = ops::DeTail(*current_spec_);
  } else if (op == "dehead") {
    next = ops::DeHead(*current_spec_);
  } else if (op == "rollup") {
    if (w.empty()) return Status::InvalidArgument("rollup <sym>");
    next = ops::PRollUp(*current_spec_, w[0], *hierarchies_);
  } else if (op == "drilldown") {
    if (w.empty()) return Status::InvalidArgument("drilldown <sym>");
    next = ops::PDrillDown(*current_spec_, w[0], *hierarchies_);
  } else if (op == "slice") {
    if (w.size() < 2) return Status::InvalidArgument("slice <sym> <label>");
    next = ops::SlicePattern(*current_spec_, w[0], {w[1]});
  }
  SOLAP_RETURN_NOT_OK(next.status());
  current_spec_ = *std::move(next);
  return ExecuteCurrent();
}

Status ShellSession::ShowLattice(bool parents) {
  if (!current_spec_.has_value()) {
    return Status::InvalidArgument("no current cuboid; run a query first");
  }
  SOLAP_ASSIGN_OR_RETURN(std::vector<CuboidSpec> neighbors,
                         parents
                             ? CoarserNeighbors(*current_spec_, *hierarchies_)
                             : FinerNeighbors(*current_spec_, *hierarchies_));
  out_ << (parents ? "parents" : "children") << " in the S-cube lattice:\n";
  for (const CuboidSpec& n : neighbors) {
    out_ << "  ";
    if (n.is_regex()) {
      out_ << "PATTERN \"" << n.regex << "\"";
    } else {
      out_ << PatternKindName(n.kind) << "(" << Join(n.symbols, ", ") << ")";
    }
    for (const PatternDim& d : n.dims) {
      out_ << " " << d.symbol << "@" << d.ref.level;
    }
    out_ << " | global:";
    for (const LevelRef& g : n.seq.group_by) out_ << " " << g.ToString();
    out_ << "\n";
  }
  return Status::OK();
}

}  // namespace solap
