#include "solap/common/strings.h"

#include <algorithm>
#include <cctype>

namespace solap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view expected) {
  if (s.size() != expected.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(expected[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace solap
