// Fixed-size worker pool: a bounded crew of threads draining a FIFO task
// queue. Deliberately minimal — admission control, deadlines and metrics
// live in QueryService, which composes this pool rather than burying
// policy inside it. The engine shares the same class for intra-query
// parallelism (CB scan partitions, II join/merge partitions); those two
// pools are distinct instances so a pool task never blocks on its own
// pool (see DESIGN.md "Threading model").
#ifndef SOLAP_COMMON_THREAD_POOL_H_
#define SOLAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace solap {

/// \brief Fixed-size thread pool with a FIFO work queue.
///
/// Tasks submitted after Shutdown() are rejected (Submit returns false);
/// tasks already queued at Shutdown() are drained before the workers exit,
/// so a graceful stop never drops accepted work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker. Returns false if the
  /// pool is shutting down (the task is not run).
  bool Submit(std::function<void()> task);

  /// Stops accepting work, drains the queue and joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks accepted but not yet started (approximate once returned).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// \brief A fork/join scope over a ThreadPool: Submit N closures, Wait for
/// all of them. Tasks run inline on the calling thread when the pool is
/// null or rejects the submission (shutdown), so callers need no fallback
/// path and a batch can never deadlock on a missing worker.
///
/// The waiting thread must not itself be a worker of the same pool (the
/// engine's compute pool is therefore separate from the service's
/// admission pool).
class TaskBatch {
 public:
  explicit TaskBatch(ThreadPool* pool) : pool_(pool) {}
  ~TaskBatch() { Wait(); }

  TaskBatch(const TaskBatch&) = delete;
  TaskBatch& operator=(const TaskBatch&) = delete;

  /// Runs `task` on the pool, or inline when there is no pool to run it.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Idempotent.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

}  // namespace solap

#endif  // SOLAP_COMMON_THREAD_POOL_H_
