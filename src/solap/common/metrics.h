// Service metrics: lock-free counters and log-scale latency histograms
// behind a name-keyed registry. The query service records queue depth,
// wait/exec latencies and cache hit rates here; the shell's `metrics`
// command and bench_service print Snapshot()s. Counters and histograms are
// safe to update from any number of threads; the registry hands out stable
// pointers so hot paths look a metric up once and cache it.
#ifndef SOLAP_COMMON_METRICS_H_
#define SOLAP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace solap {

/// \brief Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time value (resident bytes, budget sizes): set, not
/// accumulated. Refreshed on read paths (QueryService::RefreshResourceMetrics)
/// rather than on every mutation of the underlying quantity.
class Gauge {
 public:
  void Set(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Latency histogram over power-of-two microsecond buckets.
///
/// Bucket i counts observations in [2^(i-1), 2^i) microseconds (bucket 0:
/// < 1us); the last bucket is open-ended. Quantiles are reported as the
/// upper bound of the bucket holding the quantile — coarse (factor-2) but
/// allocation-free and wait-free to record.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 28;  // up to ~134s

  /// Upper bound of bucket `i` in microseconds: 2^i (bucket 0 covers
  /// < 1us; the last bucket is rendered as +Inf in Prometheus output).
  static double BucketUpperUs(size_t i) {
    return static_cast<double>(uint64_t{1} << i);
  }

  void ObserveMs(double ms) { ObserveUs(ms * 1000.0); }
  void ObserveUs(double us);

  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0;
    double mean_ms = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Per-bucket observation counts (not cumulative); bucket i counts
    /// observations in [2^(i-1), 2^i) us.
    std::array<uint64_t, kNumBuckets> buckets = {};
  };
  Snapshot TakeSnapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// \brief Name-keyed set of counters and histograms.
///
/// counter()/histogram() get-or-create under a mutex and return pointers
/// that stay valid for the registry's lifetime. Snapshot()/ToString()
/// render every metric in name order.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, uint64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Aligned text rendering of a full snapshot (shell `metrics` command).
  std::string ToString() const;

  /// Prometheus text exposition (version 0.0.4) of a full snapshot, every
  /// name prefixed `solap_` (shell `metrics --prometheus`). Histograms are
  /// rendered with cumulative `_bucket{le="..."}` series in milliseconds
  /// plus `_sum` / `_count`.
  std::string ToPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace solap

#endif  // SOLAP_COMMON_METRICS_H_
