#include "solap/common/stats.h"

#include <sstream>

namespace solap {

std::string ScanStats::ToString() const {
  std::ostringstream os;
  os << "scanned=" << sequences_scanned << " lists=" << lists_built
     << " intersections=" << list_intersections << " (linear="
     << intersections_linear << " gallop=" << intersections_galloping
     << " bitmap=" << intersections_bitmap << ")"
     << " containers=(array=" << container_array_ops
     << " bitmap=" << container_bitmap_ops << " run=" << container_run_ops
     << " gallop=" << container_gallop_ops << ")"
     << " index_bytes=" << index_bytes_built << " repo_hits=" << repository_hits
     << " index_hits=" << index_cache_hits
     << " degraded=" << degraded_queries;
  if (shard_scatters != 0 || shard_fallbacks != 0) {
    os << " shards=(scatters=" << shard_scatters
       << " partials=" << shard_partials
       << " merged_cells=" << shard_merged_cells
       << " fallbacks=" << shard_fallbacks << ")";
  }
  if (shard_rpc_retries != 0 || shard_rpc_hedges != 0 || partial_answers != 0) {
    os << " rpc=(retries=" << shard_rpc_retries
       << " hedges=" << shard_rpc_hedges
       << " partial=" << partial_answers << ")";
  }
  if (ingested_events != 0 || delta_merges != 0) {
    os << " ingest=(events=" << ingested_events
       << " merges=" << delta_merges << " patches=" << cuboid_patches
       << " stale_cuboids=" << stale_cuboid_invalidations
       << " stale_formations=" << formation_invalidations << ")";
  }
  return os.str();
}

}  // namespace solap
