// Memory governor: a single byte budget shared by everything the engine
// keeps resident or allocates in bulk — cached inverted indices, formed
// sequence groups, the cuboid repository, and transient II join scratch.
// Charges that would exceed the budget fail with ResourceExhausted instead
// of letting the process run into bad_alloc / the OOM killer; the engine
// reacts by skipping the cache or degrading the query to the CB path (see
// DESIGN.md "Robustness & fault model").
#ifndef SOLAP_COMMON_MEM_BUDGET_H_
#define SOLAP_COMMON_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "solap/common/status.h"

namespace solap {

/// \brief Atomic byte-budget accountant.
///
/// Thread-safe; all methods are lock-free. A budget of 0 means unlimited —
/// charges always succeed but are still counted, so `used()` stays
/// meaningful for metrics either way.
class MemoryGovernor {
 public:
  MemoryGovernor() = default;
  explicit MemoryGovernor(size_t budget_bytes) : budget_(budget_bytes) {}

  /// Reserves `bytes` against the budget. Returns ResourceExhausted (and
  /// counts a reject) when the reservation would exceed it; `what` names
  /// the consumer in the error message. Never over-reserves: a failed
  /// charge leaves `used()` untouched.
  Status TryCharge(size_t bytes, const char* what);

  /// Returns a previously successful charge. Saturates at zero rather than
  /// underflowing if a caller double-releases.
  void Release(size_t bytes);

  /// True when `bytes` more would still fit (always true with no budget).
  /// Advisory only — a concurrent charge can still win the race; use
  /// TryCharge for the authoritative reservation.
  bool HasHeadroom(size_t bytes) const {
    const size_t budget = budget_.load(std::memory_order_relaxed);
    return budget == 0 ||
           used_.load(std::memory_order_relaxed) + bytes <= budget;
  }

  size_t budget() const { return budget_.load(std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> budget_{0};
  std::atomic<size_t> used_{0};
  std::atomic<uint64_t> rejects_{0};
};

}  // namespace solap

#endif  // SOLAP_COMMON_MEM_BUDGET_H_
