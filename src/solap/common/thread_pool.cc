#include "solap/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace solap {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void TaskBatch::Submit(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  std::function<void()> wrapped = [this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) cv_.notify_all();
  };
  if (!pool_->Submit(wrapped)) {
    wrapped();  // pool shutting down: run inline, retiring the reservation
  }
}

void TaskBatch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace solap
