// Structured per-query tracing: a TraceContext records a tree of named,
// steady-clock-timed spans with attached counters and notes, threaded
// through parse -> optimize -> strategy execution and the service layer.
//
// Tracing is opt-in per query: every instrumentation site takes a
// `TraceContext*` that is nullptr in normal operation, so a disabled span
// costs one pointer test. An enabled span costs two steady_clock reads
// plus one short mutex-guarded append at construction and destruction.
//
// Spans nest implicitly on the recording thread (a thread-local frame
// tracks the innermost open span per context); work fanned out to pool
// threads passes the parent span id explicitly, so shard spans hang under
// the span that spawned them. Renderings: ToString() (the EXPLAIN ANALYZE
// tree, with per-span wall and self times) and ToChromeJson() (Chrome
// trace_event JSON for chrome://tracing / Perfetto flame graphs). See
// docs/OBSERVABILITY.md for the span naming scheme.
#ifndef SOLAP_COMMON_TRACE_H_
#define SOLAP_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace solap {

/// \brief One query's span tree. Thread-safe: spans may be opened and
/// closed from any thread (pool shards record concurrently).
class TraceContext {
 public:
  /// One recorded span. Times are nanoseconds since the context's epoch
  /// (its construction), so renderings are origin-zeroed.
  struct Span {
    std::string name;
    int parent = -1;       // index into spans(), -1 = root-level
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;   // 0 while still open
    uint32_t tid = 0;      // per-context ordinal of the recording thread
    bool open = true;
    /// Attached numeric facts ("sequences", "intersections", ...).
    std::vector<std::pair<std::string, uint64_t>> counters;
    /// Attached string facts ("strategy=ii", "kernel mix", ...).
    std::vector<std::pair<std::string, std::string>> notes;
  };

  TraceContext() : epoch_(std::chrono::steady_clock::now()) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span; returns its id. parent = -1 makes a root-level span.
  int BeginSpan(const char* name, int parent);
  /// Closes `id` (records its duration). Idempotent.
  void EndSpan(int id);

  void AddCounter(int id, const char* key, uint64_t value);
  void AddNote(int id, const char* key, std::string value);

  /// Records a retroactive span from explicit time points — used for
  /// intervals not scoped on one thread (service queue wait). Returns the
  /// span id; the span is already closed.
  int AddTimedSpan(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end, int parent);

  /// Consistent copy of the recorded spans (open spans have dur_ns = 0).
  std::vector<Span> Snapshot() const;

  /// Wall time covered by the trace: the latest span end (ms).
  double TotalMs() const;

  /// The EXPLAIN ANALYZE rendering: an indented tree, one line per span,
  /// with wall ms, self ms (wall minus direct children) and the span's
  /// counters and notes. Deterministic apart from the timing numbers.
  std::string ToString() const;

  /// Chrome trace_event JSON ("X" complete events, microsecond
  /// timestamps); loads in chrome://tracing and ui.perfetto.dev. Counters
  /// and notes become the event's "args".
  std::string ToChromeJson() const;

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  uint32_t TidOrdinalLocked(std::thread::id id);

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::unordered_map<std::thread::id, uint32_t> tids_;
};

/// \brief RAII span handle. Inactive (zero-cost beyond a null test) when
/// constructed with a null context.
///
/// The single-argument form nests under the innermost TraceSpan currently
/// open on this thread for the same context; the explicit-parent form is
/// for pool tasks, which run on threads with no open frame.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceContext* ctx, const char* name);
  /// Explicit parent (a TraceSpan::id() captured before the fan-out).
  TraceSpan(TraceContext* ctx, const char* name, int parent);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric fact to this span. No-op when inactive.
  void Count(const char* key, uint64_t value) {
    if (ctx_ != nullptr) ctx_->AddCounter(id_, key, value);
  }
  /// Attaches a string fact to this span. No-op when inactive.
  void Note(const char* key, std::string value) {
    if (ctx_ != nullptr) ctx_->AddNote(id_, key, std::move(value));
  }

  /// Closes the span now instead of at scope exit (for spans covering a
  /// prefix of a scope). Idempotent; no-op when inactive.
  void End();

  bool active() const { return ctx_ != nullptr; }
  /// This span's id, for parenting fan-out work; -1 when inactive.
  int id() const { return id_; }

 private:
  void Open(TraceContext* ctx, const char* name, int parent);

  TraceContext* ctx_ = nullptr;
  int id_ = -1;
  // Saved thread-local frame, restored on destruction.
  TraceContext* prev_ctx_ = nullptr;
  int prev_span_ = -1;
};

}  // namespace solap

#endif  // SOLAP_COMMON_TRACE_H_
