// Fundamental identifier and code types shared by all S-OLAP modules.
#ifndef SOLAP_COMMON_TYPES_H_
#define SOLAP_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "solap/common/small_vec.h"

namespace solap {

/// Row position inside an EventTable.
using RowId = uint32_t;
/// Identifier of a data sequence inside a sequence group.
using Sid = uint32_t;
/// Dense dictionary code of a dimension value at some abstraction level.
using Code = uint32_t;

/// Sentinel for "no code" (e.g. NULL dimension value).
inline constexpr Code kNullCode = static_cast<Code>(-1);

/// Inline capacity of pattern/cell keys: templates are short (the paper's
/// queries top out at size-six patterns), so keys almost never spill.
inline constexpr size_t kInlineKeyCodes = 8;

/// A concrete pattern: one code per pattern-template position. Inline
/// storage (common/small_vec.h) keeps key construction allocation-free on
/// the index-join and cuboid-fold hot paths.
using PatternKey = SmallVec<Code, kInlineKeyCodes>;
/// Coordinates of a cuboid cell: global-dimension codes ++ pattern-dimension
/// codes.
using CellKey = PatternKey;

/// FNV-1a style hash for code vectors; used to key hash maps on
/// PatternKey / CellKey (and plain std::vector<Code>).
struct CodeVecHash {
  template <typename Vec>
  size_t operator()(const Vec& v) const {
    size_t h = 1469598103934665603ull;
    for (Code c : v) {
      h ^= static_cast<size_t>(c) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace solap

#endif  // SOLAP_COMMON_TYPES_H_
