// Seqlock-style epoch gate for the streaming ingestion path (DESIGN.md §11,
// docs/INGESTION.md).
//
// One gate guards one engine's mutable state (event table, formed groups,
// index caches, cuboid repository). Readers — query executions — hold the
// gate SHARED for their whole execution and capture the epoch they ran
// against; writers — appends, delta merges, retention eviction — hold it
// EXCLUSIVE for their commit. The epoch counter follows the seqlock
// convention: even while stable, odd while a writer is inside its critical
// section, +2 per committed mutation. A reader therefore always observes an
// even epoch, and two answers that report the same epoch saw byte-identical
// engine state — the invariant ingest_consistency_test checks.
//
// Unlike a true seqlock, readers do block (shared_mutex) instead of
// retrying: query executions are long and touch many structures, so an
// optimistic retry loop would re-run entire scans. The odd/even counter is
// kept anyway because it is cheap, gives writers-in-progress an observable
// signature in /metrics (`epoch` gauge), and lets assertions distinguish
// "read a stable snapshot" from "raced a commit".
#ifndef SOLAP_COMMON_EPOCH_H_
#define SOLAP_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace solap {

class EpochGate {
 public:
  /// Current epoch; even when no writer is inside its critical section.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Shared (reader) guard: queries hold one for their whole execution.
  /// The captured epoch is stable for the guard's lifetime.
  class ReadLock {
   public:
    explicit ReadLock(EpochGate& gate)
        : lock_(gate.mu_), epoch_(gate.epoch()) {}
    uint64_t epoch() const { return epoch_; }

   private:
    std::shared_lock<std::shared_mutex> lock_;
    uint64_t epoch_;
  };

  /// Exclusive (writer) guard: the epoch goes odd on entry and lands two
  /// above its starting value on exit. Abandon() rolls the counter back to
  /// even without advancing it — for writers that turned out to be no-ops
  /// (e.g. a zero-row append), so "the epoch changed" always means "the
  /// observable state may have changed".
  class WriteLock {
   public:
    explicit WriteLock(EpochGate& gate) : gate_(gate), lock_(gate.mu_) {
      gate_.epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WriteLock() {
      gate_.epoch_.fetch_add(abandoned_ ? -1 : 1, std::memory_order_acq_rel);
    }
    /// The epoch readers will observe after this commit.
    uint64_t committed_epoch() const {
      return gate_.epoch_.load(std::memory_order_relaxed) + 1;
    }
    void Abandon() { abandoned_ = true; }

    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

   private:
    EpochGate& gate_;
    std::unique_lock<std::shared_mutex> lock_;
    bool abandoned_ = false;
  };

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace solap

#endif  // SOLAP_COMMON_EPOCH_H_
