// Status / Result error model for the S-OLAP library.
//
// Public APIs return Status (or Result<T>) instead of throwing across the
// library boundary, following the Arrow / RocksDB convention.
#ifndef SOLAP_COMMON_STATUS_H_
#define SOLAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace solap {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  /// The endpoint exists but is not accepting work right now (draining,
  /// shutting down). Distinct from kResourceExhausted so callers can tell
  /// "back off and retry" (overload) from "go elsewhere" (lame duck) —
  /// the network front-end maps them to 429 vs 503.
  kUnavailable,
};

/// The code's canonical name ("NotFound", "ResourceExhausted", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// heap-allocated message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value of type T or an error Status.
///
/// Result never holds both; accessing the value of an error Result is a
/// programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace solap

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SOLAP_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::solap::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status,
/// otherwise moves the value into `lhs`.
#define SOLAP_ASSIGN_OR_RETURN(lhs, rexpr)       \
  SOLAP_ASSIGN_OR_RETURN_IMPL(                   \
      SOLAP_CONCAT_(_solap_res_, __LINE__), lhs, rexpr)

#define SOLAP_CONCAT_INNER_(a, b) a##b
#define SOLAP_CONCAT_(a, b) SOLAP_CONCAT_INNER_(a, b)

#define SOLAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#endif  // SOLAP_COMMON_STATUS_H_
