#include "solap/common/trace.h"

#include <algorithm>
#include <cstdio>

namespace solap {

namespace {

// The innermost open TraceSpan of this thread: implicit parent for
// single-argument TraceSpan construction. One frame suffices because a
// thread executes at most one traced query at a time; a frame belonging
// to a different context (stale or foreign) is simply not matched.
struct TlsFrame {
  TraceContext* ctx = nullptr;
  int span = -1;
};
thread_local TlsFrame tls_frame;

// Minimal JSON string escaping (quotes, backslash, control characters).
void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

uint32_t TraceContext::TidOrdinalLocked(std::thread::id id) {
  auto [it, inserted] =
      tids_.emplace(id, static_cast<uint32_t>(tids_.size()));
  (void)inserted;
  return it->second;
}

int TraceContext::BeginSpan(const char* name, int parent) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.name = name;
  s.parent = parent;
  s.start_ns = now;
  s.tid = TidOrdinalLocked(std::this_thread::get_id());
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size()) - 1;
}

void TraceContext::EndSpan(int id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  Span& s = spans_[static_cast<size_t>(id)];
  if (!s.open) return;
  s.open = false;
  s.dur_ns = now >= s.start_ns ? now - s.start_ns : 0;
}

void TraceContext::AddCounter(int id, const char* key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].counters.emplace_back(key, value);
}

void TraceContext::AddNote(int id, const char* key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].notes.emplace_back(key, std::move(value));
}

int TraceContext::AddTimedSpan(const char* name,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point end,
                               int parent) {
  auto rel = [this](std::chrono::steady_clock::time_point t) -> uint64_t {
    if (t <= epoch_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
            .count());
  };
  const uint64_t s_ns = rel(start);
  const uint64_t e_ns = std::max(rel(end), s_ns);
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.name = name;
  s.parent = parent;
  s.start_ns = s_ns;
  s.dur_ns = e_ns - s_ns;
  s.open = false;
  s.tid = TidOrdinalLocked(std::this_thread::get_id());
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size()) - 1;
}

std::vector<TraceContext::Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

double TraceContext::TotalMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t latest = 0;
  for (const Span& s : spans_) {
    latest = std::max(latest, s.start_ns + s.dur_ns);
  }
  return static_cast<double>(latest) / 1e6;
}

std::string TraceContext::ToString() const {
  const std::vector<Span> spans = Snapshot();
  const size_t n = spans.size();
  // Children in recording order, and each span's direct-children time for
  // the self-time column.
  std::vector<std::vector<size_t>> children(n);
  std::vector<uint64_t> child_ns(n, 0);
  std::vector<size_t> roots;
  for (size_t i = 0; i < n; ++i) {
    const int p = spans[i].parent;
    if (p >= 0 && static_cast<size_t>(p) < n) {
      children[static_cast<size_t>(p)].push_back(i);
      child_ns[static_cast<size_t>(p)] += spans[i].dur_ns;
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  char buf[160];
  auto render = [&](auto&& self, size_t i, int depth) -> void {
    const Span& s = spans[i];
    const double wall = static_cast<double>(s.dur_ns) / 1e6;
    // Concurrent children (pool shards) can sum past the parent's wall
    // time; self-time floors at zero rather than going negative.
    const double self_ms =
        s.dur_ns > child_ns[i]
            ? static_cast<double>(s.dur_ns - child_ns[i]) / 1e6
            : 0.0;
    std::string label(static_cast<size_t>(depth) * 2, ' ');
    label += s.name;
    std::snprintf(buf, sizeof(buf), "%-36s %10.3f ms  self %8.3f ms",
                  label.c_str(), wall, self_ms);
    out += buf;
    for (const auto& [k, v] : s.counters) {
      std::snprintf(buf, sizeof(buf), "  %s=%llu", k.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
    for (const auto& [k, v] : s.notes) {
      out += "  " + k + "=" + v;
    }
    out += "\n";
    for (size_t c : children[i]) self(self, c, depth + 1);
  };
  for (size_t r : roots) render(render, r, 0);
  return out;
}

std::string TraceContext::ToChromeJson() const {
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"solap\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, s.tid);
    out += buf;
    if (!s.counters.empty() || !s.notes.empty()) {
      out += ",\"args\":{";
      bool farg = true;
      for (const auto& [k, v] : s.counters) {
        if (!farg) out += ",";
        farg = false;
        out += "\"";
        AppendJsonEscaped(out, k);
        std::snprintf(buf, sizeof(buf), "\":%llu",
                      static_cast<unsigned long long>(v));
        out += buf;
      }
      for (const auto& [k, v] : s.notes) {
        if (!farg) out += ",";
        farg = false;
        out += "\"";
        AppendJsonEscaped(out, k);
        out += "\":\"";
        AppendJsonEscaped(out, v);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceSpan::Open(TraceContext* ctx, const char* name, int parent) {
  ctx_ = ctx;
  id_ = ctx->BeginSpan(name, parent);
  prev_ctx_ = tls_frame.ctx;
  prev_span_ = tls_frame.span;
  tls_frame.ctx = ctx;
  tls_frame.span = id_;
}

TraceSpan::TraceSpan(TraceContext* ctx, const char* name) {
  if (ctx == nullptr) return;
  Open(ctx, name, tls_frame.ctx == ctx ? tls_frame.span : -1);
}

TraceSpan::TraceSpan(TraceContext* ctx, const char* name, int parent) {
  if (ctx == nullptr) return;
  Open(ctx, name, parent);
}

void TraceSpan::End() {
  if (ctx_ == nullptr) return;
  ctx_->EndSpan(id_);
  tls_frame.ctx = prev_ctx_;
  tls_frame.span = prev_span_;
  ctx_ = nullptr;
  id_ = -1;
}

TraceSpan::~TraceSpan() { End(); }

}  // namespace solap
