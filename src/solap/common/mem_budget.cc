#include "solap/common/mem_budget.h"

#include "solap/common/failpoint.h"

namespace solap {

Status MemoryGovernor::TryCharge(size_t bytes, const char* what) {
  {
    // Chaos tests arm this to simulate budget pressure without tuning real
    // sizes; a fired charge counts as a reject like a genuine one.
    Status injected = SOLAP_FAILPOINT_CHECK("mem.charge");
    if (!injected.ok()) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }
  const size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::OK();
  }
  size_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    if (bytes > budget || cur > budget - bytes) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          std::string(what) + " needs " + std::to_string(bytes) +
          " bytes but only " + std::to_string(budget - std::min(cur, budget)) +
          " of the " + std::to_string(budget) + "-byte memory budget remain");
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
}

void MemoryGovernor::Release(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    const size_t next = bytes > cur ? 0 : cur - bytes;
    if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace solap
