#include "solap/common/retry.h"

#include <algorithm>
#include <thread>

namespace solap {

namespace {

uint64_t SeedFor(const RetryPolicy& policy) {
  if (policy.jitter_seed != 0) return policy.jitter_seed;
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

/// initial_backoff * 2^(retry_index-1), saturating at max_backoff (the
/// shift is clamped so pathological attempt counts cannot overflow).
std::chrono::milliseconds CapFor(const RetryPolicy& policy, int retry_index) {
  const int64_t base = std::max<int64_t>(policy.initial_backoff.count(), 0);
  const int64_t cap = std::max<int64_t>(policy.max_backoff.count(), 0);
  if (base == 0 || cap == 0) return std::chrono::milliseconds(0);
  const int shift = std::min(retry_index - 1, 62);
  int64_t scaled;
  if (shift >= 0 && base <= (INT64_MAX >> shift)) {
    scaled = base << shift;
  } else {
    scaled = INT64_MAX;
  }
  return std::chrono::milliseconds(std::min(scaled, cap));
}

}  // namespace

bool IsTransientIoError(const Status& s) {
  return s.code() == StatusCode::kInternal;
}

std::chrono::milliseconds BackoffDelay(const RetryPolicy& policy,
                                       int retry_index, std::mt19937_64& rng) {
  const std::chrono::milliseconds cap = CapFor(policy, retry_index);
  if (!policy.full_jitter || cap.count() <= 0) return cap;
  std::uniform_int_distribution<int64_t> dist(0, cap.count());
  return std::chrono::milliseconds(dist(rng));
}

RetryBudget::RetryBudget(const RetryPolicy& policy,
                         std::chrono::steady_clock::time_point deadline)
    : policy_(policy), deadline_(deadline), rng_(SeedFor(policy)) {}

bool RetryBudget::BeforeAttempt(const StopToken* stop) {
  const int attempts = std::max(policy_.max_attempts, 1);
  if (started_ >= attempts) return false;
  if (stop != nullptr && stop->stop_requested()) return false;
  if (started_ == 0) {
    ++started_;
    return true;
  }
  const std::chrono::milliseconds delay = BackoffDelay(policy_, started_, rng_);
  const auto now = std::chrono::steady_clock::now();
  // A retry that cannot finish sleeping before the deadline is not worth
  // starting: give up now and let the caller surface its last error
  // instead of sleeping into a guaranteed DeadlineExceeded.
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      now + delay >= deadline_) {
    return false;
  }
  // Sleep in small slices so a cancel (drain, client disconnect) tears the
  // backoff down promptly instead of holding a pool worker hostage.
  const auto wake = now + delay;
  while (std::chrono::steady_clock::now() < wake) {
    if (stop != nullptr && stop->stop_requested()) return false;
    const auto remaining = wake - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(5)));
  }
  last_delay_ = delay;
  ++started_;
  return true;
}

Status RetryIo(const RetryPolicy& policy, const std::function<Status()>& op,
               std::atomic<uint64_t>* retries) {
  RetryBudget budget(policy);
  Status last = Status::OK();
  while (budget.BeforeAttempt()) {
    if (budget.retries() > 0 && retries != nullptr) {
      retries->fetch_add(1, std::memory_order_relaxed);
    }
    last = op();
    if (last.ok() || !IsTransientIoError(last)) return last;
  }
  return last;
}

}  // namespace solap
