#include "solap/common/retry.h"

#include <thread>

namespace solap {

bool IsTransientIoError(const Status& s) {
  return s.code() == StatusCode::kInternal;
}

Status RetryIo(const RetryPolicy& policy, const std::function<Status()>& op,
               std::atomic<uint64_t>* retries) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  std::chrono::milliseconds backoff = policy.initial_backoff;
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (retries != nullptr) {
        retries->fetch_add(1, std::memory_order_relaxed);
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
    last = op();
    if (last.ok() || !IsTransientIoError(last)) return last;
  }
  return last;
}

}  // namespace solap
