// Cooperative cancellation: a StopSource hands out StopTokens that
// long-running execution loops poll between units of work (sequences
// scanned, index-join steps). A token trips either because the owner
// requested a stop or because a deadline attached to it expired — the two
// cases surface as distinct Status codes so callers can tell a client
// cancel from a timeout.
//
// The deadline is set once, before the token is shared with a worker;
// only the stop flag itself is written concurrently.
#ifndef SOLAP_COMMON_STOP_H_
#define SOLAP_COMMON_STOP_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "solap/common/status.h"

namespace solap {

namespace internal {
struct StopState {
  std::atomic<bool> stop_requested{false};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};
}  // namespace internal

/// \brief Read side of a cancellation channel. Cheap to copy; default
/// constructed tokens never trip.
class StopToken {
 public:
  StopToken() = default;

  /// True once the owner called RequestStop().
  bool cancelled() const {
    return state_ != nullptr &&
           state_->stop_requested.load(std::memory_order_relaxed);
  }

  /// True once the attached deadline (if any) has passed.
  bool deadline_expired() const {
    return state_ != nullptr &&
           state_->deadline != std::chrono::steady_clock::time_point::max() &&
           std::chrono::steady_clock::now() >= state_->deadline;
  }

  bool stop_requested() const { return cancelled() || deadline_expired(); }

  /// The attached absolute deadline (time_point::max() when none) — read
  /// by the shard RPC layer to bound connect/send/recv and retry backoff.
  std::chrono::steady_clock::time_point deadline() const {
    return state_ == nullptr ? std::chrono::steady_clock::time_point::max()
                             : state_->deadline;
  }

  /// OK while running is allowed; Cancelled / DeadlineExceeded once the
  /// token tripped. `what` names the interrupted work for the message.
  Status Check(const char* what) const {
    if (state_ == nullptr) return Status::OK();
    if (cancelled()) {
      return Status::Cancelled(std::string(what) + " cancelled");
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its deadline");
    }
    return Status::OK();
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const internal::StopState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal::StopState> state_;
};

/// \brief Write side: owns the stop flag and optional deadline.
class StopSource {
 public:
  StopSource() : state_(std::make_shared<internal::StopState>()) {}

  /// Trips every token handed out by this source.
  void RequestStop() {
    state_->stop_requested.store(true, std::memory_order_relaxed);
  }

  /// Attaches an absolute deadline. Must be called before tokens are
  /// polled from other threads.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline = deadline;
  }
  /// Convenience: deadline `timeout` from now (non-positive = none).
  void SetTimeout(std::chrono::milliseconds timeout) {
    if (timeout.count() > 0) {
      SetDeadline(std::chrono::steady_clock::now() + timeout);
    }
  }

  StopToken token() const { return StopToken(state_); }

 private:
  std::shared_ptr<internal::StopState> state_;
};

/// Null-safe polling helper for execution loops holding a `const StopToken*`.
inline Status CheckStop(const StopToken* token, const char* what) {
  return token == nullptr ? Status::OK() : token->Check(what);
}

}  // namespace solap

#endif  // SOLAP_COMMON_STOP_H_
