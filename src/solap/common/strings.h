// Small string helpers shared across modules.
#ifndef SOLAP_COMMON_STRINGS_H_
#define SOLAP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace solap {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (query keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// True if `s` equals `expected` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view expected);

}  // namespace solap

#endif  // SOLAP_COMMON_STRINGS_H_
