// Execution statistics collected while answering S-OLAP queries.
//
// The paper's evaluation (Table 1, Figure 16) reports not only runtimes but
// also the number of data sequences scanned and the size of the inverted
// indices built; ScanStats is the counter block every execution path
// increments so benchmarks can report the same columns.
#ifndef SOLAP_COMMON_STATS_H_
#define SOLAP_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace solap {

/// \brief Counters describing the work done by one or more query executions.
struct ScanStats {
  /// Number of data sequences whose content was examined (CB scan,
  /// II verification / counting / refinement scans).
  uint64_t sequences_scanned = 0;
  /// Number of inverted lists materialized.
  uint64_t lists_built = 0;
  /// Number of list-intersection operations performed by index joins.
  uint64_t list_intersections = 0;
  /// Breakdown of `list_intersections` by the kernel chosen per pair
  /// (index/intersect.h): linear merge / galloping / bitmap probes. The
  /// scalar baseline (adaptive_join_kernels = false) counts as linear.
  uint64_t intersections_linear = 0;
  uint64_t intersections_galloping = 0;
  uint64_t intersections_bitmap = 0;
  /// Container-pair kernel mix inside those intersections and inside
  /// P-ROLL-UP unions (index/container.h): array×array merges, pairs
  /// touching a bitmap container, pairs touching a run container, and
  /// skewed array pairs that galloped.
  uint64_t container_array_ops = 0;
  uint64_t container_bitmap_ops = 0;
  uint64_t container_run_ops = 0;
  uint64_t container_gallop_ops = 0;
  /// Bytes of inverted-index storage created (sid entries + keys).
  uint64_t index_bytes_built = 0;
  /// Number of cuboid-repository hits (queries answered from cache).
  uint64_t repository_hits = 0;
  /// Number of index-cache hits (joins avoided entirely).
  uint64_t index_cache_hits = 0;
  /// Queries whose II execution failed transiently (budget reject, injected
  /// fault, bad_alloc) and were re-answered via the CB path.
  uint64_t degraded_queries = 0;
  /// Scatter-gather sharding (engine/sharded_engine.h): queries fanned out
  /// across shard-local executors.
  uint64_t shard_scatters = 0;
  /// Shard-local partial cuboids produced and gathered by scattered queries.
  uint64_t shard_partials = 0;
  /// Cells folded while merging shard partials into the final cuboid.
  uint64_t shard_merged_cells = 0;
  /// Queries a sharded engine could not scatter (non-base CLUSTER BY,
  /// online aggregation) and routed to its monolithic fallback executor.
  uint64_t shard_fallbacks = 0;
  /// Distributed scatter (engine/remote_shard.h): shard RPC attempts beyond
  /// the first, hedged duplicate requests fired after the latency threshold,
  /// and queries answered with one or more shard slices missing.
  uint64_t shard_rpc_retries = 0;
  uint64_t shard_rpc_hedges = 0;
  uint64_t partial_answers = 0;
  /// Streaming ingestion (engine/ingest.cc, docs/INGESTION.md): event rows
  /// committed through IngestRows, background/foreground delta-merge passes
  /// that folded at least one delta segment, cached cuboids delta-patched in
  /// place, cached cuboids invalidated because their spec could not be
  /// patched (regex, iceberg, or a stale formation), and cached formations
  /// dropped because an append touched an existing cluster key.
  uint64_t ingested_events = 0;
  uint64_t delta_merges = 0;
  uint64_t cuboid_patches = 0;
  uint64_t stale_cuboid_invalidations = 0;
  uint64_t formation_invalidations = 0;

  void Clear() { *this = ScanStats{}; }

  ScanStats& operator+=(const ScanStats& o) {
    sequences_scanned += o.sequences_scanned;
    lists_built += o.lists_built;
    list_intersections += o.list_intersections;
    intersections_linear += o.intersections_linear;
    intersections_galloping += o.intersections_galloping;
    intersections_bitmap += o.intersections_bitmap;
    container_array_ops += o.container_array_ops;
    container_bitmap_ops += o.container_bitmap_ops;
    container_run_ops += o.container_run_ops;
    container_gallop_ops += o.container_gallop_ops;
    index_bytes_built += o.index_bytes_built;
    repository_hits += o.repository_hits;
    index_cache_hits += o.index_cache_hits;
    degraded_queries += o.degraded_queries;
    shard_scatters += o.shard_scatters;
    shard_partials += o.shard_partials;
    shard_merged_cells += o.shard_merged_cells;
    shard_fallbacks += o.shard_fallbacks;
    shard_rpc_retries += o.shard_rpc_retries;
    shard_rpc_hedges += o.shard_rpc_hedges;
    partial_answers += o.partial_answers;
    ingested_events += o.ingested_events;
    delta_merges += o.delta_merges;
    cuboid_patches += o.cuboid_patches;
    stale_cuboid_invalidations += o.stale_cuboid_invalidations;
    formation_invalidations += o.formation_invalidations;
    return *this;
  }

  /// One-line human-readable rendering for logs and benches.
  std::string ToString() const;
};

}  // namespace solap

#endif  // SOLAP_COMMON_STATS_H_
