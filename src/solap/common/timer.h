// Wall-clock timer used by benchmarks and the engine's statistics.
#ifndef SOLAP_COMMON_TIMER_H_
#define SOLAP_COMMON_TIMER_H_

#include <chrono>

namespace solap {

/// \brief Simple wall-clock stopwatch.
///
/// Starts on construction; ElapsedMs() can be read repeatedly.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSec() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace solap

#endif  // SOLAP_COMMON_TIMER_H_
