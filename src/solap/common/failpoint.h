// Fault-injection points for robustness testing (tests/fault_injection_test,
// tests/chaos_test). A failpoint is a named site in the code — IO calls,
// allocation-heavy index operations, pool boundaries — that tests can arm to
// return an error, throw std::bad_alloc or inject a delay, with deterministic
// per-hit decisions so a chaos run is exactly reproducible from its seed.
//
// The framework is compiled out entirely unless the build defines
// SOLAP_FAILPOINTS (cmake -DSOLAP_FAILPOINTS=ON): the macros expand to
// nothing, failpoint.cc contributes no symbols, and production code pays
// zero cost. tools/check.sh verifies both properties.
//
// Armed sites in this codebase (grep for SOLAP_FAILPOINT to confirm):
//   io.snapshot.open / write / sync / rename / read   storage/io.cc
//   csv.read                                          storage/csv.cc
//   index.build                                       index/build_index.cc
//   index.join / join.scratch                         index/index_ops.cc
//   index.rollup / index.refine / index.extend_scan   index/index_ops.cc
//   engine.formation                                  engine/engine.cc
//   service.submit                                    service/query_service.cc
//   net.accept / net.read / net.write                 net/server.cc, net/connection.cc
//   mem.charge                                        common/mem_budget.cc
#ifndef SOLAP_COMMON_FAILPOINT_H_
#define SOLAP_COMMON_FAILPOINT_H_

#include "solap/common/status.h"

#ifdef SOLAP_FAILPOINTS

#include <cstdint>
#include <string>
#include <vector>

namespace solap {

/// \brief What an armed failpoint does when its trigger condition fires.
struct FailpointConfig {
  enum class Action {
    /// Evaluate() returns Status(code, message).
    kReturnError,
    /// Evaluate() throws std::bad_alloc — exercises the engine's
    /// query-boundary exception handling. Only arm at sites reached from a
    /// catching frame (engine execution); a throw escaping into a thread
    /// pool worker would std::terminate, exactly like a real allocation
    /// failure there would.
    kThrowBadAlloc,
    /// Evaluate() sleeps delay_ms, then returns OK — exposes timeout and
    /// cancellation races without failing the operation.
    kDelay,
  };

  Action action = Action::kReturnError;
  /// Error code for kReturnError (kInternal models transient IO faults,
  /// kResourceExhausted models budget pressure).
  StatusCode code = StatusCode::kInternal;
  /// Appended to the generated "failpoint '<name>' fired" message.
  std::string message;
  /// Chance that one evaluation fires, decided deterministically from
  /// (seed, per-failpoint hit ordinal) — two runs with the same seed and
  /// the same per-site evaluation order fire identically. 1.0 = always.
  double probability = 1.0;
  uint64_t seed = 0;
  /// When > 0, overrides probability: fire on every Nth evaluation.
  uint64_t every_nth = 0;
  /// Fire at most once, then behave as disarmed (stays registered so hit
  /// counters keep counting).
  bool one_shot = false;
  uint32_t delay_ms = 0;
};

/// \brief Process-wide registry of named failpoints.
///
/// Thread-safe: Arm/Disarm take an exclusive lock; Evaluate takes a shared
/// lock only when at least one failpoint is armed (a relaxed atomic guards
/// the common nothing-armed case).
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  void Arm(const std::string& name, FailpointConfig config);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Total evaluations of `name` since it was last armed (0 if never).
  /// Arm() restarts both counters and the hit ordinal, so re-arming with
  /// the same seed replays the same fire pattern.
  uint64_t Evaluations(const std::string& name) const;
  /// Times `name` actually fired its action since it was last armed.
  uint64_t Fires(const std::string& name) const;
  std::vector<std::string> ArmedNames() const;

  /// Called by the SOLAP_FAILPOINT macros. May throw std::bad_alloc or
  /// sleep, per the armed config.
  Status Evaluate(const char* name);

 private:
  FailpointRegistry() = default;
  struct State;
  struct Impl;
  Impl* impl();  // lazily built, leaked at exit (no static-destruction order)
};

/// Macro target: fast no-op when nothing is armed anywhere.
Status FailpointEval(const char* name);

}  // namespace solap

/// Evaluates failpoint `name`, returning its error from the enclosing
/// function when it fires (the enclosing function must return Status or
/// Result<T>).
#define SOLAP_FAILPOINT(name) SOLAP_RETURN_NOT_OK(::solap::FailpointEval(name))
/// Expression form for call sites that handle the Status themselves.
#define SOLAP_FAILPOINT_CHECK(name) ::solap::FailpointEval(name)

#else  // !SOLAP_FAILPOINTS

#define SOLAP_FAILPOINT(name) \
  do {                        \
  } while (0)
#define SOLAP_FAILPOINT_CHECK(name) ::solap::Status::OK()

#endif  // SOLAP_FAILPOINTS

#endif  // SOLAP_COMMON_FAILPOINT_H_
