// Small-vector with inline storage for the short code vectors that key
// every hot hash map in the system (pattern keys, cell keys).
//
// Pattern templates are short (the paper: users "seldom pose S-OLAP
// queries with long pattern templates"), so almost every PatternKey and
// CellKey fits in a handful of codes. Storing them inline removes one
// heap allocation per key built, copied or hashed — the dominant
// allocation churn of index joins and cuboid folds before this type
// existed. Vectors longer than the inline capacity spill to the heap and
// behave like std::vector.
#ifndef SOLAP_COMMON_SMALL_VEC_H_
#define SOLAP_COMMON_SMALL_VEC_H_

#include <algorithm>
#include <compare>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace solap {

/// \brief A std::vector-compatible sequence with N elements of inline
/// storage. Restricted to trivially copyable element types so growth and
/// moves are memcpy's.
template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using size_type = size_t;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  explicit SmallVec(size_t n, T value = T()) {
    resize(n);
    std::fill(begin(), end(), value);
  }

  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename It>
  SmallVec(It first, It last) {
    assign(first, last);
  }

  /// Bridge from any vector-like range of T (e.g. std::vector<T>).
  template <typename R>
    requires requires(const R& r) {
      { r.data() } -> std::convertible_to<const T*>;
      { r.size() } -> std::convertible_to<size_t>;
    }
  SmallVec(const R& range) {  // NOLINT(google-explicit-constructor)
    assign(range.data(), range.data() + range.size());
  }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      assign(other.begin(), other.end());
      other.size_ = 0;
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    if (other.on_heap()) {
      if (on_heap()) delete[] data_;
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      assign(other.begin(), other.end());
      other.size_ = 0;
    }
    return *this;
  }

  ~SmallVec() {
    if (on_heap()) delete[] data_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void resize(size_t n) {
    reserve(n);
    if (n > size_) std::fill(data_ + size_, data_ + n, T());
    size_ = n;
  }

  void push_back(T value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() { --size_; }

  template <typename It>
  void assign(It first, It last) {
    size_t n = static_cast<size_t>(std::distance(first, last));
    reserve(n);
    std::copy(first, last, data_);
    size_ = n;
  }

  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    size_t at = static_cast<size_t>(pos - data_);
    size_t n = static_cast<size_t>(std::distance(first, last));
    reserve(size_ + n);
    std::memmove(data_ + at + n, data_ + at, (size_ - at) * sizeof(T));
    std::copy(first, last, data_ + at);
    size_ += n;
    return data_ + at;
  }

  iterator insert(const_iterator pos, T value) {
    return insert(pos, &value, &value + 1);
  }

  iterator erase(const_iterator first, const_iterator last) {
    size_t at = static_cast<size_t>(first - data_);
    size_t n = static_cast<size_t>(last - first);
    std::memmove(data_ + at, data_ + at + n, (size_ - at - n) * sizeof(T));
    size_ -= n;
    return data_ + at;
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  friend auto operator<=>(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }

 private:
  bool on_heap() const { return data_ != inline_; }

  void Grow(size_t n) {
    size_t cap = std::max(n, capacity_ * 2);
    T* heap = new T[cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (on_heap()) delete[] data_;
    data_ = heap;
    capacity_ = cap;
  }

  T* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = N;
  T inline_[N];
};

}  // namespace solap

#endif  // SOLAP_COMMON_SMALL_VEC_H_
