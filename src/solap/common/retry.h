// Bounded-exponential-backoff retry for transient IO (snapshot save/load).
// Only kInternal is treated as transient — NotFound, ParseError and the
// rest describe the request or the file content, not the medium, and
// retrying them would just repeat the same answer slower.
#ifndef SOLAP_COMMON_RETRY_H_
#define SOLAP_COMMON_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "solap/common/status.h"

namespace solap {

/// \brief Attempt/backoff bounds for RetryIo.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retrying).
  int max_attempts = 3;
  /// Sleep before retry k is initial_backoff * 2^(k-1), capped at
  /// max_backoff — bounded so a dying disk fails in bounded time.
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{50};
};

/// True if `s` is worth retrying (transient medium fault, not a permanent
/// property of the request or the data).
bool IsTransientIoError(const Status& s);

/// Runs `op` up to policy.max_attempts times, sleeping bounded-exponential
/// backoff between transient failures. Every retry (not the first attempt)
/// increments `*retries` when given. Returns the first success or the last
/// failure.
Status RetryIo(const RetryPolicy& policy, const std::function<Status()>& op,
               std::atomic<uint64_t>* retries = nullptr);

}  // namespace solap

#endif  // SOLAP_COMMON_RETRY_H_
