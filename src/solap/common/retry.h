// Bounded-exponential-backoff retry, shared by transient snapshot IO
// (storage/io.cc) and the shard RPC layer (engine/remote_shard.cc).
//
// Two schedules exist behind one policy struct:
//  - the legacy deterministic schedule (full_jitter = false): sleep before
//    retry k is initial_backoff * 2^(k-1) capped at max_backoff — what the
//    storage call sites have always used;
//  - full-jitter (full_jitter = true): sleep ~ U[0, cap_k] with the same
//    cap_k, the AWS-style schedule that decorrelates a fleet of clients
//    hammering one recovering shard (thundering-herd avoidance).
//
// RetryBudget adds the deadline awareness the RPC path needs: a retry
// whose backoff sleep would land past the caller's deadline is not taken
// at all — the budget gives up immediately instead of sleeping into a
// guaranteed DeadlineExceeded.
//
// Only kInternal is treated as transient by RetryIo — NotFound, ParseError
// and the rest describe the request or the file content, not the medium,
// and retrying them would just repeat the same answer slower.
#ifndef SOLAP_COMMON_RETRY_H_
#define SOLAP_COMMON_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>

#include "solap/common/status.h"
#include "solap/common/stop.h"

namespace solap {

/// \brief Attempt/backoff bounds for RetryIo / RetryBudget.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retrying).
  int max_attempts = 3;
  /// Sleep before retry k is drawn from the range capped at
  /// initial_backoff * 2^(k-1), itself capped at max_backoff — bounded so
  /// a dying disk or a dead shard fails in bounded time.
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{50};
  /// Full-jitter backoff: each retry sleeps U[0, cap_k] instead of exactly
  /// cap_k, so many clients retrying against one recovering server spread
  /// out instead of re-colliding in lockstep.
  bool full_jitter = false;
  /// Seed of the jitter PRNG; 0 seeds from std::random_device (each budget
  /// independent). Tests pass a fixed seed for reproducible schedules.
  uint64_t jitter_seed = 0;
};

/// True if `s` is worth retrying (transient medium fault, not a permanent
/// property of the request or the data).
bool IsTransientIoError(const Status& s);

/// The backoff delay retry `retry_index` (1-based) would sleep under
/// `policy`, drawing jitter from `rng` when the policy asks for it.
/// Exposed for tests (jitter-bound assertions) and for callers that manage
/// their own sleeping.
std::chrono::milliseconds BackoffDelay(const RetryPolicy& policy,
                                       int retry_index, std::mt19937_64& rng);

/// \brief One operation's retry state: attempts taken, backoff schedule,
/// and a hard deadline the backoff may not sleep across.
///
/// Usage:
///   RetryBudget budget(policy, deadline);
///   while (budget.BeforeAttempt(stop)) {
///     if (TryOnce().ok()) break;
///   }
///
/// The first BeforeAttempt returns true immediately; each later call
/// computes the next backoff delay and (a) returns false without sleeping
/// when attempts are exhausted, the sleep would end past the deadline, or
/// `stop` has tripped — the caller's last observed error stands — or
/// (b) sleeps the delay (polling `stop` while asleep) and returns true.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryPolicy& policy,
                       std::chrono::steady_clock::time_point deadline =
                           std::chrono::steady_clock::time_point::max());

  /// See class comment. `stop`, when non-null, aborts backoff sleeps early
  /// and refuses further attempts once tripped.
  bool BeforeAttempt(const StopToken* stop = nullptr);

  /// Attempts whose BeforeAttempt returned true so far.
  int attempts_started() const { return started_; }
  /// Retries granted (attempts_started() - 1, floored at 0).
  int retries() const { return started_ > 1 ? started_ - 1 : 0; }
  /// The delay slept before the most recent retry (0 before any retry).
  std::chrono::milliseconds last_delay() const { return last_delay_; }

 private:
  RetryPolicy policy_;
  std::chrono::steady_clock::time_point deadline_;
  int started_ = 0;
  std::chrono::milliseconds last_delay_{0};
  std::mt19937_64 rng_;
};

/// Runs `op` up to policy.max_attempts times, sleeping bounded-exponential
/// backoff between transient failures. Every retry (not the first attempt)
/// increments `*retries` when given. Returns the first success or the last
/// failure.
Status RetryIo(const RetryPolicy& policy, const std::function<Status()>& op,
               std::atomic<uint64_t>* retries = nullptr);

}  // namespace solap

#endif  // SOLAP_COMMON_RETRY_H_
