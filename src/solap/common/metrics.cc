#include "solap/common/metrics.h"

#include <cmath>
#include <cstdio>

namespace solap {

namespace {

size_t BucketOf(double us) {
  if (us < 1.0) return 0;
  size_t b = static_cast<size_t>(std::log2(us)) + 1;
  return b >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1 : b;
}

}  // namespace

void Histogram::ObserveUs(double us) {
  if (us < 0) us = 0;
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(us), std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  std::array<uint64_t, kNumBuckets>& buckets = s.buckets;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += buckets[i];
  }
  s.sum_ms = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
             1000.0;
  if (s.count == 0) return s;
  s.mean_ms = s.sum_ms / static_cast<double>(s.count);
  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(s.count - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen > rank) return BucketUpperUs(i) / 1000.0;
    }
    return BucketUpperUs(kNumBuckets - 1) / 1000.0;
  };
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  return s;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->TakeSnapshot());
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  Snapshot s = TakeSnapshot();
  std::string out;
  char buf[256];
  for (const auto& [name, value] : s.counters) {
    std::snprintf(buf, sizeof(buf), "%-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : s.gauges) {
    std::snprintf(buf, sizeof(buf), "%-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, h] : s.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-32s count=%llu mean=%.3fms p50=%.3fms p95=%.3fms "
                  "p99=%.3fms\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean_ms, h.p50_ms, h.p95_ms, h.p99_ms);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  Snapshot s = TakeSnapshot();
  std::string out;
  char buf[256];
  auto emit_scalar = [&](const std::string& name, const char* type,
                         uint64_t value) {
    std::snprintf(buf, sizeof(buf), "# TYPE solap_%s %s\nsolap_%s %llu\n",
                  name.c_str(), type, name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  };
  for (const auto& [name, value] : s.counters) {
    emit_scalar(name, "counter", value);
  }
  for (const auto& [name, value] : s.gauges) {
    emit_scalar(name, "gauge", value);
  }
  for (const auto& [name, h] : s.histograms) {
    std::snprintf(buf, sizeof(buf), "# TYPE solap_%s histogram\n",
                  name.c_str());
    out += buf;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += h.buckets[i];
      if (i + 1 == Histogram::kNumBuckets) {
        std::snprintf(buf, sizeof(buf),
                      "solap_%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                      static_cast<unsigned long long>(cumulative));
      } else {
        std::snprintf(buf, sizeof(buf),
                      "solap_%s_bucket{le=\"%.6g\"} %llu\n", name.c_str(),
                      Histogram::BucketUpperUs(i) / 1000.0,
                      static_cast<unsigned long long>(cumulative));
      }
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "solap_%s_sum %.6f\nsolap_%s_count %llu\n", name.c_str(),
                  h.sum_ms, name.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

}  // namespace solap
