#include "solap/common/metrics.h"

#include <cmath>
#include <cstdio>

namespace solap {

namespace {

// Upper bound of bucket i in microseconds: 2^i (bucket 0 covers < 1us).
double BucketUpperUs(size_t i) {
  return static_cast<double>(uint64_t{1} << i);
}

size_t BucketOf(double us) {
  if (us < 1.0) return 0;
  size_t b = static_cast<size_t>(std::log2(us)) + 1;
  return b >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1 : b;
}

}  // namespace

void Histogram::ObserveUs(double us) {
  if (us < 0) us = 0;
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(us), std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  uint64_t buckets[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += buckets[i];
  }
  s.sum_ms = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
             1000.0;
  if (s.count == 0) return s;
  s.mean_ms = s.sum_ms / static_cast<double>(s.count);
  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(s.count - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen > rank) return BucketUpperUs(i) / 1000.0;
    }
    return BucketUpperUs(kNumBuckets - 1) / 1000.0;
  };
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  return s;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->TakeSnapshot());
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  Snapshot s = TakeSnapshot();
  std::string out;
  char buf[256];
  for (const auto& [name, value] : s.counters) {
    std::snprintf(buf, sizeof(buf), "%-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : s.gauges) {
    std::snprintf(buf, sizeof(buf), "%-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, h] : s.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-32s count=%llu mean=%.3fms p50=%.3fms p95=%.3fms "
                  "p99=%.3fms\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean_ms, h.p50_ms, h.p95_ms, h.p99_ms);
    out += buf;
  }
  return out;
}

}  // namespace solap
