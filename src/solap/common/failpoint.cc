#include "solap/common/failpoint.h"

// The whole translation unit compiles away in default builds; tools/check.sh
// asserts that libsolap.a carries no failpoint symbol without the option.
#ifdef SOLAP_FAILPOINTS

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

namespace solap {

namespace {

// How many failpoints are armed across the process. Evaluate() reads this
// before touching any lock, so un-armed builds-with-failpoints still run
// hot paths at full speed.
std::atomic<int> g_armed_count{0};

// splitmix64: decorrelates (seed, name hash, hit ordinal) into an
// independent uniform draw per evaluation. Deterministic by construction —
// no global RNG state, so concurrent evaluations of other failpoints never
// perturb this one's fire pattern.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Status MakeStatus(StatusCode code, const std::string& msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kParseError:
      return Status::ParseError(msg);
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(msg);
    case StatusCode::kCancelled:
      return Status::Cancelled(msg);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    case StatusCode::kUnavailable:
      return Status::Unavailable(msg);
    case StatusCode::kInternal:
    case StatusCode::kOk:
      break;
  }
  return Status::Internal(msg);
}

}  // namespace

struct FailpointRegistry::State {
  FailpointConfig config;
  uint64_t name_hash = 0;
  bool armed = false;
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> fires{0};
  std::atomic<bool> exhausted{false};  // one_shot already fired
};

struct FailpointRegistry::Impl {
  mutable std::shared_mutex mu;
  // unique_ptr values: State addresses stay stable across rehashes, so
  // Evaluate can drop the shared lock before sleeping/throwing.
  std::unordered_map<std::string, std::unique_ptr<State>> points;
};

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* reg = new FailpointRegistry();
  return *reg;
}

FailpointRegistry::Impl* FailpointRegistry::impl() {
  static Impl* impl = new Impl();
  return impl;
}

void FailpointRegistry::Arm(const std::string& name, FailpointConfig config) {
  Impl* i = impl();
  std::unique_lock<std::shared_mutex> lock(i->mu);
  auto& slot = i->points[name];
  if (slot == nullptr) slot = std::make_unique<State>();
  if (!slot->armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  slot->config = std::move(config);
  slot->name_hash = HashName(name);
  slot->armed = true;
  slot->exhausted.store(false, std::memory_order_relaxed);
  // Restart the hit ordinal: re-arming with the same seed must replay the
  // same fire pattern, and counters must not leak across test cases.
  slot->evaluations.store(0, std::memory_order_relaxed);
  slot->fires.store(0, std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  Impl* i = impl();
  std::unique_lock<std::shared_mutex> lock(i->mu);
  auto it = i->points.find(name);
  if (it != i->points.end() && it->second->armed) {
    it->second->armed = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  Impl* i = impl();
  std::unique_lock<std::shared_mutex> lock(i->mu);
  for (auto& [name, state] : i->points) {
    if (state->armed) {
      state->armed = false;
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FailpointRegistry::Evaluations(const std::string& name) const {
  Impl* i = const_cast<FailpointRegistry*>(this)->impl();
  std::shared_lock<std::shared_mutex> lock(i->mu);
  auto it = i->points.find(name);
  return it == i->points.end()
             ? 0
             : it->second->evaluations.load(std::memory_order_relaxed);
}

uint64_t FailpointRegistry::Fires(const std::string& name) const {
  Impl* i = const_cast<FailpointRegistry*>(this)->impl();
  std::shared_lock<std::shared_mutex> lock(i->mu);
  auto it = i->points.find(name);
  return it == i->points.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  Impl* i = const_cast<FailpointRegistry*>(this)->impl();
  std::shared_lock<std::shared_mutex> lock(i->mu);
  std::vector<std::string> out;
  for (const auto& [name, state] : i->points) {
    if (state->armed) out.push_back(name);
  }
  return out;
}

Status FailpointRegistry::Evaluate(const char* name) {
  Impl* i = impl();
  State* state = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(i->mu);
    auto it = i->points.find(name);
    if (it == i->points.end() || !it->second->armed) return Status::OK();
    state = it->second.get();
  }
  // The config is only mutated under the exclusive lock while armed stays
  // true for the test's duration; chaos tests arm everything up front.
  const FailpointConfig& cfg = state->config;
  const uint64_t hit = state->evaluations.fetch_add(1, std::memory_order_relaxed);

  bool fire;
  if (cfg.every_nth > 0) {
    fire = (hit + 1) % cfg.every_nth == 0;
  } else if (cfg.probability >= 1.0) {
    fire = true;
  } else if (cfg.probability <= 0.0) {
    fire = false;
  } else {
    const uint64_t draw = Mix64(cfg.seed ^ state->name_hash ^ hit);
    fire = static_cast<double>(draw >> 11) * 0x1.0p-53 < cfg.probability;
  }
  if (!fire) return Status::OK();
  if (cfg.one_shot && state->exhausted.exchange(true)) return Status::OK();
  state->fires.fetch_add(1, std::memory_order_relaxed);

  switch (cfg.action) {
    case FailpointConfig::Action::kThrowBadAlloc:
      throw std::bad_alloc();
    case FailpointConfig::Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.delay_ms));
      return Status::OK();
    case FailpointConfig::Action::kReturnError:
      break;
  }
  std::string msg = "failpoint '" + std::string(name) + "' fired";
  if (!cfg.message.empty()) msg += ": " + cfg.message;
  return MakeStatus(cfg.code, msg);
}

Status FailpointEval(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();
  return FailpointRegistry::Global().Evaluate(name);
}

}  // namespace solap

#endif  // SOLAP_FAILPOINTS
