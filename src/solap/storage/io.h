// Binary persistence for the warehouse: snapshot an event database or a
// precomputed inverted index to disk and load it back. Format: "SOLP"
// magic, version, typed payload, CRC-32 trailer (torn/corrupt files are
// detected at load).
//
// Codes are stable across a save/load round trip (dictionaries are
// serialized in code order), so inverted indices saved alongside a table
// remain valid against the reloaded table.
#ifndef SOLAP_STORAGE_IO_H_
#define SOLAP_STORAGE_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "solap/common/retry.h"
#include "solap/common/status.h"
#include "solap/index/inverted_index.h"
#include "solap/storage/event_table.h"

namespace solap {

/// Writes a snapshot of `table` to `path`. Atomic: the bytes go to
/// `<path>.tmp` which is fsynced and renamed into place, so a failure or
/// crash at any point leaves the previous snapshot untouched.
Status SaveTable(const EventTable& table, const std::string& path);

/// Loads a table snapshot; verifies magic, version and checksum.
Result<std::shared_ptr<EventTable>> LoadTable(const std::string& path);

/// Retry-enabled variants: transient (kInternal) failures are retried with
/// bounded exponential backoff per `retry`; each retry counts into the
/// process-wide SnapshotIoRetries() total (the service's `io_retries`
/// metric). Permanent errors (NotFound, ParseError) return immediately.
Status SaveTable(const EventTable& table, const std::string& path,
                 const RetryPolicy& retry);
Result<std::shared_ptr<EventTable>> LoadTable(const std::string& path,
                                              const RetryPolicy& retry);

/// Snapshot IO retries performed process-wide since start.
uint64_t SnapshotIoRetries();

/// Writes one inverted index (shape + completeness + lists) to `path`.
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Loads an inverted index snapshot.
Result<std::shared_ptr<InvertedIndex>> LoadIndex(const std::string& path);

/// CRC-32 (IEEE 802.3) of a byte buffer — exposed for tests.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace solap

#endif  // SOLAP_STORAGE_IO_H_
