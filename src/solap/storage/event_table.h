// Columnar event database (the paper's Figure 1): typed columns with
// dictionary encoding for string dimensions.
#ifndef SOLAP_STORAGE_EVENT_TABLE_H_
#define SOLAP_STORAGE_EVENT_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/storage/dictionary.h"
#include "solap/storage/schema.h"
#include "solap/storage/value.h"

namespace solap {

/// \brief The event database: a columnar fact table of events.
///
/// String columns are dictionary-encoded so that grouping, sequence symbols
/// and inverted-index keys all operate on dense Code values; numeric and
/// timestamp columns are stored raw. Rows are append-only, which is what the
/// paper's incremental-update scenario (§6) assumes: a new day of events is
/// appended, never mutated.
class EventTable {
 public:
  explicit EventTable(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends one event. `values` must match the schema arity and each value
  /// must match (or be losslessly convertible to) the column type.
  Status AppendRow(const std::vector<Value>& values);

  /// Batch append (the streaming-ingestion entry point, docs/INGESTION.md):
  /// validates EVERY row against the schema before touching any column, so
  /// a bad row rejects the whole batch and the table is never left with a
  /// half-applied batch. A non-empty committed batch advances the table
  /// epoch by one; an empty batch is a no-op on the epoch. Not internally
  /// synchronized — the engine's EpochGate serializes writers against
  /// readers.
  Status Append(const std::vector<std::vector<Value>>& rows);

  /// Monotonic count of committed non-empty Append batches. Storage-level
  /// bookkeeping only; the query-visible epoch is the engine gate's.
  uint64_t epoch() const { return epoch_; }

  /// Number of entries in string column `col`'s dictionary (0 for
  /// non-string columns). With `DictionaryTail`, the primitive of the
  /// sharded append path's dictionary synchronization.
  size_t DictionarySize(int col) const {
    return dicts_[col] ? dicts_[col]->size() : 0;
  }

  /// Values [from, size) of string column `col`'s dictionary in code order
  /// — the entries a replica whose dictionary has `from` entries must
  /// append (in this order) to assign the same codes this table did.
  std::vector<std::string> DictionaryTail(int col, size_t from) const;

  /// Applies a dictionary tail: value `values[i]` must end up under code
  /// `from + i` in string column `col`'s dictionary. Entries below the
  /// current size are verified (idempotent retries re-send overlap);
  /// entries at the boundary are appended. InvalidArgument on any
  /// positional mismatch — divergent replicas must fail loudly, not
  /// mis-merge codes.
  Status SyncDictionary(int col, size_t from,
                        const std::vector<std::string>& values);

  /// Value of column `col` at `row` (strings are decoded).
  Value GetValue(RowId row, int col) const;

  /// Dictionary code of string column `col` at `row`.
  Code CodeAt(RowId row, int col) const { return code_cols_[col][row]; }

  /// Raw int64 of an int64/timestamp column.
  int64_t Int64At(RowId row, int col) const { return int_cols_[col][row]; }

  /// Raw double of a double column.
  double DoubleAt(RowId row, int col) const { return dbl_cols_[col][row]; }

  /// Splits the rows into `num_shards` tables that share this table's
  /// schema and dictionary coding verbatim: row r goes to slice
  /// `shard_of(r)`, keeping source order within each slice, and every
  /// dictionary is cloned unchanged rather than re-encoded — so codes (and
  /// therefore group keys, symbols and inverted-index keys) are directly
  /// comparable across slices and with this table. Used by the sharded
  /// engine's load-time partitioning (engine/sharded_engine.h).
  std::vector<std::unique_ptr<EventTable>> PartitionRows(
      size_t num_shards, const std::function<size_t(RowId)>& shard_of) const;

  /// Dictionary of string column `col` (nullptr for non-string columns).
  const Dictionary* dictionary(int col) const {
    return dicts_[col] ? dicts_[col].get() : nullptr;
  }
  Dictionary* mutable_dictionary(int col) { return dicts_[col].get(); }

 private:
  friend class TableIo;  // binary persistence (storage/io.cc)

  /// Schema check shared by AppendRow and Append's validate-first pass.
  Status ValidateRow(const std::vector<Value>& values) const;

  Schema schema_;
  size_t num_rows_ = 0;
  uint64_t epoch_ = 0;
  // Per-column storage; only the vector matching the column type is used.
  std::vector<std::vector<Code>> code_cols_;
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<double>> dbl_cols_;
  std::vector<std::unique_ptr<Dictionary>> dicts_;
};

}  // namespace solap

#endif  // SOLAP_STORAGE_EVENT_TABLE_H_
