// Typed scalar values used by the event database and expression evaluation.
#ifndef SOLAP_STORAGE_VALUE_H_
#define SOLAP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace solap {

/// Physical type of an event attribute.
enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
  /// Seconds since the Unix epoch; stored as int64 but carries calendar
  /// semantics (day/week/month bucketing in concept hierarchies).
  kTimestamp,
};

/// Name of a ValueType ("int64", "string", ...).
const char* ValueTypeName(ValueType type);

/// \brief A dynamically typed scalar: NULL, int64, double, string or
/// timestamp.
///
/// Value is the currency of expression evaluation and of row-level access to
/// the EventTable. It is a small tagged union; strings own their storage.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(ValueType::kInt64, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.data_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.data_ = std::move(v);
    return out;
  }
  static Value Timestamp(int64_t seconds) {
    return Value(ValueType::kTimestamp, seconds);
  }
  static Value Bool(bool b) { return Int64(b ? 1 : 0); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Underlying int64 (valid for kInt64 and kTimestamp).
  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric view: int64/timestamp widened to double; NULL -> 0.
  double AsDouble() const;
  /// Truthiness for predicate results: non-zero numeric; NULL is false.
  bool AsBool() const;

  /// Total-order comparison within the same type family (numeric types
  /// compare numerically with each other; strings lexicographically).
  /// Comparing a string with a number returns false for all of ==,<,>.
  bool Equals(const Value& other) const;
  bool LessThan(const Value& other) const;

  /// Display form ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

 private:
  Value(ValueType type, int64_t v) : type_(type), data_(v) {}

  ValueType type_;
  std::variant<int64_t, double, std::string> data_ = int64_t{0};
};

}  // namespace solap

#endif  // SOLAP_STORAGE_VALUE_H_
