#include "solap/storage/value.h"

#include <sstream>

namespace solap {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble ||
         t == ValueType::kTimestamp;
}

}  // namespace

double Value::AsDouble() const {
  switch (type_) {
    case ValueType::kNull:
      return 0.0;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return static_cast<double>(int64());
    case ValueType::kDouble:
      return dbl();
    case ValueType::kString:
      return 0.0;
  }
  return 0.0;
}

bool Value::AsBool() const {
  if (is_null()) return false;
  if (type_ == ValueType::kString) return !str().empty();
  return AsDouble() != 0.0;
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    return str() == other.str();
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    return AsDouble() == other.AsDouble();
  }
  return false;
}

bool Value::LessThan(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    return str() < other.str();
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    return AsDouble() < other.AsDouble();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::to_string(int64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << dbl();
      return os.str();
    }
    case ValueType::kString:
      return str();
  }
  return "?";
}

}  // namespace solap
