// Hierarchy snapshots: persist a HierarchyRegistry so a shard-server
// process (tools/shard_main.cc) can reconstruct the exact hierarchies its
// coordinator uses. Table snapshots (storage/io.h) carry dictionaries but
// not hierarchies — those are normally built programmatically — so the
// distributed tier needs this companion file.
//
// Format: one JSON document (written through net/json's strict escaping,
// read back through its strict parser):
//
//   {"v":1,"hierarchies":[
//     {"attr":"location","levels":["station","district"],
//      "parents":[[["s1","d1"],["s2","d1"]]]}]}
//
// `parents[l]` lists the [child, parent] name pairs declared from level l
// to level l+1 (so it has num_levels-1 entries). Hierarchies and pairs are
// emitted sorted, making the snapshot a pure function of registry content.
//
// Only the *declared* mappings are saved — the lazily compiled code tables
// rebuild identically on the other side because level dictionaries assign
// codes in MapBaseCode call order, which is determined by the (identical)
// table dictionary and these (identical) mappings.
#ifndef SOLAP_STORAGE_HIERARCHY_IO_H_
#define SOLAP_STORAGE_HIERARCHY_IO_H_

#include <memory>
#include <string>

#include "solap/common/status.h"
#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {

/// Renders `registry` as the JSON snapshot text (exposed for tests).
std::string EncodeHierarchies(const HierarchyRegistry& registry);

/// Strict inverse of EncodeHierarchies.
Result<std::shared_ptr<HierarchyRegistry>> DecodeHierarchies(
    std::string_view text);

/// Writes the snapshot atomically (tmp + rename, like SaveTable).
Status SaveHierarchies(const HierarchyRegistry& registry,
                       const std::string& path);

/// Loads a hierarchy snapshot written by SaveHierarchies.
Result<std::shared_ptr<HierarchyRegistry>> LoadHierarchies(
    const std::string& path);

}  // namespace solap

#endif  // SOLAP_STORAGE_HIERARCHY_IO_H_
