#include "solap/storage/dictionary.h"

namespace solap {

Code Dictionary::GetOrAdd(const std::string& value) {
  auto it = codes_.find(value);
  if (it != codes_.end()) return it->second;
  Code code = static_cast<Code>(values_.size());
  values_.push_back(value);
  codes_.emplace(value, code);
  return code;
}

Code Dictionary::Lookup(const std::string& value) const {
  auto it = codes_.find(value);
  return it == codes_.end() ? kNullCode : it->second;
}

}  // namespace solap
