#include "solap/storage/schema.h"

#include <sstream>

namespace solap {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::RequireField(const std::string& name) const {
  int idx = FieldIndex(name);
  if (idx >= 0) return idx;
  std::ostringstream os;
  os << "unknown attribute '" << name << "'; schema has:";
  for (const Field& f : fields_) os << " " << f.name;
  return Status::InvalidArgument(os.str());
}

}  // namespace solap
