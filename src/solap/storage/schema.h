// Schema of an event database: named, typed attributes with dimension /
// measure roles.
#ifndef SOLAP_STORAGE_SCHEMA_H_
#define SOLAP_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/status.h"
#include "solap/storage/value.h"

namespace solap {

/// Whether an attribute participates in grouping (dimension) or in
/// aggregation (measure), mirroring the paper's event model (§3.1).
enum class FieldRole { kDimension, kMeasure };

/// One attribute of an event.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
  FieldRole role = FieldRole::kDimension;
};

/// \brief Ordered collection of fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Field index or InvalidArgument listing the known names.
  Result<int> RequireField(const std::string& name) const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace solap

#endif  // SOLAP_STORAGE_SCHEMA_H_
