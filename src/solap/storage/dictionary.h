// Dictionary encoding of dimension values to dense codes.
#ifndef SOLAP_STORAGE_DICTIONARY_H_
#define SOLAP_STORAGE_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/types.h"

namespace solap {

/// \brief Bidirectional mapping between strings and dense codes [0, size).
///
/// Codes are assigned in first-seen order and never recycled, so appending
/// new events (incremental update, §6 of the paper) only grows the domain.
class Dictionary {
 public:
  /// Code for `value`, inserting it if unseen.
  Code GetOrAdd(const std::string& value);

  /// Code for `value`, or kNullCode if it was never inserted.
  Code Lookup(const std::string& value) const;

  /// String for `code`; code must be < size().
  const std::string& ValueOf(Code code) const { return values_[code]; }

  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, Code> codes_;
  std::vector<std::string> values_;
};

}  // namespace solap

#endif  // SOLAP_STORAGE_DICTIONARY_H_
