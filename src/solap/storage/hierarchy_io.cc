#include "solap/storage/hierarchy_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "solap/net/json.h"

namespace solap {

namespace {

using net::JsonString;
using net::JsonValue;

}  // namespace

std::string EncodeHierarchies(const HierarchyRegistry& registry) {
  std::vector<std::pair<std::string, const ConceptHierarchy*>> entries;
  entries.reserve(registry.all().size());
  for (const auto& [attr, hierarchy] : registry.all()) {
    entries.emplace_back(attr, hierarchy.get());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::ostringstream os;
  os << "{\"v\":1,\"hierarchies\":[";
  for (size_t e = 0; e < entries.size(); ++e) {
    const auto& [attr, h] = entries[e];
    if (e != 0) os << ",";
    os << "{\"attr\":" << JsonString(attr) << ",\"levels\":[";
    for (size_t l = 0; l < h->num_levels(); ++l) {
      if (l != 0) os << ",";
      os << JsonString(h->level_name(static_cast<int>(l)));
    }
    os << "],\"parents\":[";
    for (size_t l = 0; l + 1 < h->num_levels(); ++l) {
      if (l != 0) os << ",";
      std::vector<std::pair<std::string, std::string>> pairs(
          h->parent_maps()[l].begin(), h->parent_maps()[l].end());
      std::sort(pairs.begin(), pairs.end());
      os << "[";
      for (size_t p = 0; p < pairs.size(); ++p) {
        if (p != 0) os << ",";
        os << "[" << JsonString(pairs[p].first) << ","
           << JsonString(pairs[p].second) << "]";
      }
      os << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

Result<std::shared_ptr<HierarchyRegistry>> DecodeHierarchies(
    std::string_view text) {
  SOLAP_ASSIGN_OR_RETURN(JsonValue root, net::JsonParse(text));
  if (!root.IsObject()) {
    return Status::ParseError("hierarchy snapshot must be an object");
  }
  SOLAP_ASSIGN_OR_RETURN(int64_t version, root.RequireInt("v"));
  if (version != 1) {
    return Status::ParseError("unsupported hierarchy snapshot version " +
                              std::to_string(version));
  }
  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* list,
      root.Require("hierarchies", JsonValue::Kind::kArray));

  auto registry = std::make_shared<HierarchyRegistry>();
  for (const JsonValue& hv : list->items) {
    if (!hv.IsObject()) {
      return Status::ParseError("hierarchy entry must be an object");
    }
    SOLAP_ASSIGN_OR_RETURN(std::string attr, hv.RequireString("attr"));
    SOLAP_ASSIGN_OR_RETURN(
        const JsonValue* levels_v,
        hv.Require("levels", JsonValue::Kind::kArray));
    std::vector<std::string> levels;
    for (const JsonValue& lv : levels_v->items) {
      if (!lv.IsString()) {
        return Status::ParseError("level name must be a string");
      }
      levels.push_back(lv.s);
    }
    if (levels.empty()) {
      return Status::ParseError("hierarchy has no levels: " + attr);
    }
    SOLAP_ASSIGN_OR_RETURN(
        const JsonValue* parents_v,
        hv.Require("parents", JsonValue::Kind::kArray));
    if (parents_v->items.size() != levels.size() - 1) {
      return Status::ParseError(
          "parents array size does not match level count: " + attr);
    }
    auto hierarchy = std::make_shared<ConceptHierarchy>(levels);
    for (size_t l = 0; l < parents_v->items.size(); ++l) {
      const JsonValue& pairs = parents_v->items[l];
      if (!pairs.IsArray()) {
        return Status::ParseError("parent pair list must be an array");
      }
      for (const JsonValue& pair : pairs.items) {
        if (!pair.IsArray() || pair.items.size() != 2 ||
            !pair.items[0].IsString() || !pair.items[1].IsString()) {
          return Status::ParseError(
              "parent entry must be a [child, parent] pair");
        }
        SOLAP_RETURN_NOT_OK(hierarchy->SetParent(
            static_cast<int>(l), pair.items[0].s, pair.items[1].s));
      }
    }
    registry->Register(attr, std::move(hierarchy));
  }
  return registry;
}

Status SaveHierarchies(const HierarchyRegistry& registry,
                       const std::string& path) {
  const std::string text = EncodeHierarchies(registry);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open for write: " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + path);
  }
  return Status::OK();
}

Result<std::shared_ptr<HierarchyRegistry>> LoadHierarchies(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no hierarchy snapshot at " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return DecodeHierarchies(buf.str());
}

}  // namespace solap
