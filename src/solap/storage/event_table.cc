#include "solap/storage/event_table.h"

#include <sstream>

namespace solap {

EventTable::EventTable(Schema schema) : schema_(std::move(schema)) {
  size_t n = schema_.num_fields();
  code_cols_.resize(n);
  int_cols_.resize(n);
  dbl_cols_.resize(n);
  dicts_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (schema_.field(i).type == ValueType::kString) {
      dicts_[i] = std::make_unique<Dictionary>();
    }
  }
}

Status EventTable::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != schema_.num_fields()) {
    std::ostringstream os;
    os << "row arity " << values.size() << " != schema arity "
       << schema_.num_fields();
    return Status::InvalidArgument(os.str());
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Field& f = schema_.field(i);
    const Value& v = values[i];
    switch (f.type) {
      case ValueType::kString:
        if (v.type() != ValueType::kString) {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects string, got " +
                                         ValueTypeName(v.type()));
        }
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        if (v.type() != ValueType::kInt64 &&
            v.type() != ValueType::kTimestamp) {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects integer, got " +
                                         ValueTypeName(v.type()));
        }
        break;
      case ValueType::kDouble:
        if (v.type() != ValueType::kDouble && v.type() != ValueType::kInt64) {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects double, got " +
                                         ValueTypeName(v.type()));
        }
        break;
      case ValueType::kNull:
        return Status::InvalidArgument("column '" + f.name +
                                       "' has null type");
    }
  }
  return Status::OK();
}

Status EventTable::AppendRow(const std::vector<Value>& values) {
  SOLAP_RETURN_NOT_OK(ValidateRow(values));
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    switch (schema_.field(i).type) {
      case ValueType::kString:
        code_cols_[i].push_back(dicts_[i]->GetOrAdd(v.str()));
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        int_cols_[i].push_back(v.int64());
        break;
      case ValueType::kDouble:
        dbl_cols_[i].push_back(v.type() == ValueType::kDouble
                                   ? v.dbl()
                                   : static_cast<double>(v.int64()));
        break;
      case ValueType::kNull:
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status EventTable::Append(const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return Status::OK();  // no-op: the epoch does not move
  // Validate-all-first: a bad row anywhere rejects the whole batch before
  // any column (or dictionary) is touched, so the table never holds a
  // partially applied batch.
  for (const std::vector<Value>& row : rows) {
    SOLAP_RETURN_NOT_OK(ValidateRow(row));
  }
  for (const std::vector<Value>& row : rows) {
    Status s = AppendRow(row);
    // Unreachable after validation, but never bump the epoch on a torn
    // batch should AppendRow grow a new failure mode.
    if (!s.ok()) return s;
  }
  ++epoch_;
  return Status::OK();
}

std::vector<std::string> EventTable::DictionaryTail(int col,
                                                    size_t from) const {
  std::vector<std::string> tail;
  if (!dicts_[col]) return tail;
  const size_t n = dicts_[col]->size();
  tail.reserve(n > from ? n - from : 0);
  for (size_t c = from; c < n; ++c) {
    tail.push_back(dicts_[col]->ValueOf(static_cast<Code>(c)));
  }
  return tail;
}

Status EventTable::SyncDictionary(int col, size_t from,
                                  const std::vector<std::string>& values) {
  if (!dicts_[col]) {
    return Status::InvalidArgument("column " + std::to_string(col) +
                                   " is not dictionary-encoded");
  }
  Dictionary& dict = *dicts_[col];
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t want = from + i;
    if (want < dict.size()) {
      // Overlap with entries this replica already holds (idempotent
      // retries): verify, don't re-insert.
      if (dict.ValueOf(static_cast<Code>(want)) != values[i]) {
        return Status::InvalidArgument(
            "dictionary sync diverged at code " + std::to_string(want) +
            ": have '" + dict.ValueOf(static_cast<Code>(want)) + "', got '" +
            values[i] + "'");
      }
      continue;
    }
    if (want != dict.size()) {
      return Status::InvalidArgument(
          "dictionary sync gap: tail starts at code " + std::to_string(want) +
          " but dictionary has " + std::to_string(dict.size()) + " entries");
    }
    if (dict.GetOrAdd(values[i]) != static_cast<Code>(want)) {
      return Status::InvalidArgument("dictionary sync diverged: '" +
                                     values[i] +
                                     "' already coded differently");
    }
  }
  return Status::OK();
}

std::vector<std::unique_ptr<EventTable>> EventTable::PartitionRows(
    size_t num_shards, const std::function<size_t(RowId)>& shard_of) const {
  std::vector<std::unique_ptr<EventTable>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto t = std::make_unique<EventTable>(schema_);
    // Clone the dictionaries verbatim: AppendRow would re-encode values in
    // first-seen order, giving each slice a private code space.
    for (size_t c = 0; c < dicts_.size(); ++c) {
      if (dicts_[c]) *t->dicts_[c] = *dicts_[c];
    }
    shards.push_back(std::move(t));
  }
  size_t n = schema_.num_fields();
  for (RowId r = 0; r < num_rows_; ++r) {
    EventTable& t = *shards[shard_of(r) % num_shards];
    for (size_t c = 0; c < n; ++c) {
      switch (schema_.field(c).type) {
        case ValueType::kString:
          t.code_cols_[c].push_back(code_cols_[c][r]);
          break;
        case ValueType::kInt64:
        case ValueType::kTimestamp:
          t.int_cols_[c].push_back(int_cols_[c][r]);
          break;
        case ValueType::kDouble:
          t.dbl_cols_[c].push_back(dbl_cols_[c][r]);
          break;
        case ValueType::kNull:
          break;
      }
    }
    ++t.num_rows_;
  }
  return shards;
}

Value EventTable::GetValue(RowId row, int col) const {
  const Field& f = schema_.field(col);
  switch (f.type) {
    case ValueType::kString:
      return Value::String(dicts_[col]->ValueOf(code_cols_[col][row]));
    case ValueType::kInt64:
      return Value::Int64(int_cols_[col][row]);
    case ValueType::kTimestamp:
      return Value::Timestamp(int_cols_[col][row]);
    case ValueType::kDouble:
      return Value::Double(dbl_cols_[col][row]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

}  // namespace solap
