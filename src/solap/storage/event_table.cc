#include "solap/storage/event_table.h"

#include <sstream>

namespace solap {

EventTable::EventTable(Schema schema) : schema_(std::move(schema)) {
  size_t n = schema_.num_fields();
  code_cols_.resize(n);
  int_cols_.resize(n);
  dbl_cols_.resize(n);
  dicts_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (schema_.field(i).type == ValueType::kString) {
      dicts_[i] = std::make_unique<Dictionary>();
    }
  }
}

Status EventTable::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_fields()) {
    std::ostringstream os;
    os << "row arity " << values.size() << " != schema arity "
       << schema_.num_fields();
    return Status::InvalidArgument(os.str());
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Field& f = schema_.field(i);
    const Value& v = values[i];
    switch (f.type) {
      case ValueType::kString:
        if (v.type() != ValueType::kString) {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects string, got " +
                                         ValueTypeName(v.type()));
        }
        code_cols_[i].push_back(dicts_[i]->GetOrAdd(v.str()));
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        if (v.type() != ValueType::kInt64 &&
            v.type() != ValueType::kTimestamp) {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects integer, got " +
                                         ValueTypeName(v.type()));
        }
        int_cols_[i].push_back(v.int64());
        break;
      case ValueType::kDouble:
        if (v.type() == ValueType::kDouble) {
          dbl_cols_[i].push_back(v.dbl());
        } else if (v.type() == ValueType::kInt64) {
          dbl_cols_[i].push_back(static_cast<double>(v.int64()));
        } else {
          return Status::InvalidArgument("column '" + f.name +
                                         "' expects double, got " +
                                         ValueTypeName(v.type()));
        }
        break;
      case ValueType::kNull:
        return Status::InvalidArgument("column '" + f.name +
                                       "' has null type");
    }
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<std::unique_ptr<EventTable>> EventTable::PartitionRows(
    size_t num_shards, const std::function<size_t(RowId)>& shard_of) const {
  std::vector<std::unique_ptr<EventTable>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto t = std::make_unique<EventTable>(schema_);
    // Clone the dictionaries verbatim: AppendRow would re-encode values in
    // first-seen order, giving each slice a private code space.
    for (size_t c = 0; c < dicts_.size(); ++c) {
      if (dicts_[c]) *t->dicts_[c] = *dicts_[c];
    }
    shards.push_back(std::move(t));
  }
  size_t n = schema_.num_fields();
  for (RowId r = 0; r < num_rows_; ++r) {
    EventTable& t = *shards[shard_of(r) % num_shards];
    for (size_t c = 0; c < n; ++c) {
      switch (schema_.field(c).type) {
        case ValueType::kString:
          t.code_cols_[c].push_back(code_cols_[c][r]);
          break;
        case ValueType::kInt64:
        case ValueType::kTimestamp:
          t.int_cols_[c].push_back(int_cols_[c][r]);
          break;
        case ValueType::kDouble:
          t.dbl_cols_[c].push_back(dbl_cols_[c][r]);
          break;
        case ValueType::kNull:
          break;
      }
    }
    ++t.num_rows_;
  }
  return shards;
}

Value EventTable::GetValue(RowId row, int col) const {
  const Field& f = schema_.field(col);
  switch (f.type) {
    case ValueType::kString:
      return Value::String(dicts_[col]->ValueOf(code_cols_[col][row]));
    case ValueType::kInt64:
      return Value::Int64(int_cols_[col][row]);
    case ValueType::kTimestamp:
      return Value::Timestamp(int_cols_[col][row]);
    case ValueType::kDouble:
      return Value::Double(dbl_cols_[col][row]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

}  // namespace solap
