// CSV ingestion and export for event databases — the practical loading
// path for real event logs (web access logs, smart-card dumps) into the
// warehouse.
#ifndef SOLAP_STORAGE_CSV_H_
#define SOLAP_STORAGE_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "solap/common/status.h"
#include "solap/storage/event_table.h"

namespace solap {

struct CsvOptions {
  char delimiter = ',';
  /// First line names the columns; they are matched to the schema by name
  /// (any order, extra columns ignored). Without a header the columns must
  /// match the schema positionally.
  bool has_header = true;
};

/// Parses CSV text from `in` into a new table with `schema`. Timestamp
/// columns accept "YYYY-MM-DD[THH:MM[:SS]]" (a space also separates date
/// and time) or raw epoch seconds. Returns the row count via the table.
Result<std::shared_ptr<EventTable>> LoadCsv(const Schema& schema,
                                            std::istream& in,
                                            const CsvOptions& options = {});

/// Appends CSV rows to an existing table (incremental loads).
Status AppendCsv(EventTable* table, std::istream& in,
                 const CsvOptions& options = {});

/// Writes `table` as CSV (header + rows; timestamps as epoch seconds).
Status WriteCsv(const EventTable& table, std::ostream& out,
                const CsvOptions& options = {});

/// File convenience wrappers.
Result<std::shared_ptr<EventTable>> LoadCsvFile(const Schema& schema,
                                                const std::string& path,
                                                const CsvOptions& options = {});
Status WriteCsvFile(const EventTable& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace solap

#endif  // SOLAP_STORAGE_CSV_H_
