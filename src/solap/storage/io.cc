#include "solap/storage/io.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "solap/common/failpoint.h"

namespace solap {

namespace {

// Snapshot retries performed process-wide (the retry-enabled Save/Load
// overloads count here; surfaced as the service's `io_retries` gauge).
std::atomic<uint64_t> g_io_retries{0};

// Durability barrier between writing the tmp file and renaming it over the
// destination: without the fsync, a crash after the rename could publish a
// file whose blocks never reached the disk.
Status SyncFile(const std::string& path) {
  SOLAP_FAILPOINT("io.snapshot.sync");
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("cannot reopen '" + path + "' to sync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed for '" + path + "'");
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace

namespace {

constexpr char kMagic[4] = {'S', 'O', 'L', 'P'};
// v2: inverted-index posting lists are serialized container-wise
// (index/container.h) instead of as flat sid vectors.
constexpr uint32_t kVersion = 2;
constexpr uint8_t kKindTable = 'T';
constexpr uint8_t kKindIndex = 'I';

// --- buffered writer / reader with running CRC ------------------------------

class Writer {
 public:
  void Raw(const void* data, size_t size) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  // Atomic publish: the snapshot is written to `<path>.tmp`, fsynced, and
  // renamed into place. A crash or failure at any step leaves either the
  // old destination file or a stale .tmp — never a torn destination (the
  // pre-existing snapshot is the recovery point).
  Status Flush(const std::string& path) {
    SOLAP_FAILPOINT("io.snapshot.open");
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::NotFound("cannot create '" + tmp + "'");
      uint32_t crc = Crc32(buf_.data(), buf_.size());
      // The write failpoint sits between two half-writes so a fired fault
      // leaves a genuinely torn tmp file on disk, as a crash mid-write
      // would — fault tests assert the destination survives it.
      const size_t half = buf_.size() / 2;
      out.write(buf_.data(), static_cast<std::streamsize>(half));
      Status torn = SOLAP_FAILPOINT_CHECK("io.snapshot.write");
      if (!torn.ok()) return torn;
      out.write(buf_.data() + half,
                static_cast<std::streamsize>(buf_.size() - half));
      out.write(reinterpret_cast<const char*>(&crc), 4);
      out.flush();
      if (!out.good()) {
        out.close();
        std::remove(tmp.c_str());
        return Status::Internal("write failed for '" + tmp + "'");
      }
    }
    Status synced = SyncFile(tmp);
    if (!synced.ok()) {
      std::remove(tmp.c_str());
      return synced;
    }
    Status renamed = SOLAP_FAILPOINT_CHECK("io.snapshot.rename");
    if (renamed.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      renamed = Status::Internal("cannot rename '" + tmp + "' to '" + path +
                                 "'");
    }
    if (!renamed.ok()) {
      std::remove(tmp.c_str());
      return renamed;
    }
    return Status::OK();
  }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  static Result<Reader> Open(const std::string& path) {
    SOLAP_FAILPOINT("io.snapshot.read");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open '" + path + "'");
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    if (bytes.size() < 4 + sizeof(kMagic)) {
      return Status::ParseError("'" + path + "' is truncated");
    }
    uint32_t stored;
    std::memcpy(&stored, bytes.data() + bytes.size() - 4, 4);
    if (Crc32(bytes.data(), bytes.size() - 4) != stored) {
      return Status::ParseError("'" + path + "' failed its checksum");
    }
    bytes.resize(bytes.size() - 4);
    Reader r;
    r.buf_ = std::move(bytes);
    return r;
  }

  Status Raw(void* out, size_t size) {
    if (pos_ + size > buf_.size()) {
      return Status::ParseError("snapshot ends unexpectedly");
    }
    std::memcpy(out, buf_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }
  Result<uint8_t> U8() {
    uint8_t v;
    SOLAP_RETURN_NOT_OK(Raw(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v;
    SOLAP_RETURN_NOT_OK(Raw(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v;
    SOLAP_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<int64_t> I64() {
    int64_t v;
    SOLAP_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<double> F64() {
    double v;
    SOLAP_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  // Length prefixes are validated against the bytes actually remaining
  // BEFORE allocating (and without `n * sizeof(T)` overflow), so a corrupt
  // or adversarial length field is a clean ParseError, never a multi-GB
  // allocation attempt.
  Result<std::string> Str() {
    SOLAP_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > buf_.size() - pos_) {
      return Status::ParseError("snapshot string exceeds file size");
    }
    std::string s(n, '\0');
    SOLAP_RETURN_NOT_OK(Raw(s.data(), n));
    return s;
  }
  template <typename T>
  Result<std::vector<T>> Vec() {
    SOLAP_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > (buf_.size() - pos_) / sizeof(T)) {
      return Status::ParseError("snapshot vector exceeds file size");
    }
    std::vector<T> v(n);
    SOLAP_RETURN_NOT_OK(Raw(v.data(), n * sizeof(T)));
    return v;
  }

 private:
  std::vector<char> buf_;
  size_t pos_ = 0;
};

Status CheckHeader(Reader& r, uint8_t expected_kind) {
  char magic[4];
  SOLAP_RETURN_NOT_OK(r.Raw(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not a S-OLAP snapshot (bad magic)");
  }
  SOLAP_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version));
  }
  SOLAP_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind != expected_kind) {
    return Status::ParseError("snapshot holds a different object kind");
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

/// Accessor bridge into EventTable internals (declared friend there).
class TableIo {
 public:
  static Status Save(const EventTable& t, const std::string& path) {
    Writer w;
    w.Raw(kMagic, 4);
    w.U32(kVersion);
    w.U8(kKindTable);
    const Schema& schema = t.schema();
    w.U32(static_cast<uint32_t>(schema.num_fields()));
    for (const Field& f : schema.fields()) {
      w.Str(f.name);
      w.U8(static_cast<uint8_t>(f.type));
      w.U8(static_cast<uint8_t>(f.role));
    }
    w.U64(t.num_rows_);
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      switch (schema.field(c).type) {
        case ValueType::kString: {
          const Dictionary& dict = *t.dicts_[c];
          w.U32(static_cast<uint32_t>(dict.size()));
          for (Code code = 0; code < dict.size(); ++code) {
            w.Str(dict.ValueOf(code));
          }
          w.Vec(t.code_cols_[c]);
          break;
        }
        case ValueType::kInt64:
        case ValueType::kTimestamp:
          w.Vec(t.int_cols_[c]);
          break;
        case ValueType::kDouble:
          w.Vec(t.dbl_cols_[c]);
          break;
        case ValueType::kNull:
          break;
      }
    }
    return w.Flush(path);
  }

  static Result<std::shared_ptr<EventTable>> Load(const std::string& path) {
    SOLAP_ASSIGN_OR_RETURN(Reader r, Reader::Open(path));
    SOLAP_RETURN_NOT_OK(CheckHeader(r, kKindTable));
    SOLAP_ASSIGN_OR_RETURN(uint32_t nfields, r.U32());
    std::vector<Field> fields(nfields);
    for (Field& f : fields) {
      SOLAP_ASSIGN_OR_RETURN(f.name, r.Str());
      SOLAP_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      SOLAP_ASSIGN_OR_RETURN(uint8_t role, r.U8());
      f.type = static_cast<ValueType>(type);
      f.role = static_cast<FieldRole>(role);
    }
    auto table = std::make_shared<EventTable>(Schema(fields));
    SOLAP_ASSIGN_OR_RETURN(uint64_t nrows, r.U64());
    table->num_rows_ = nrows;
    for (size_t c = 0; c < fields.size(); ++c) {
      switch (fields[c].type) {
        case ValueType::kString: {
          SOLAP_ASSIGN_OR_RETURN(uint32_t dict_size, r.U32());
          for (uint32_t i = 0; i < dict_size; ++i) {
            SOLAP_ASSIGN_OR_RETURN(std::string value, r.Str());
            if (table->dicts_[c]->GetOrAdd(value) != i) {
              return Status::ParseError("duplicate dictionary entry in "
                                        "snapshot");
            }
          }
          SOLAP_ASSIGN_OR_RETURN(table->code_cols_[c], r.Vec<Code>());
          for (Code code : table->code_cols_[c]) {
            if (code >= dict_size) {
              return Status::ParseError("snapshot code out of dictionary "
                                        "range");
            }
          }
          if (table->code_cols_[c].size() != nrows) {
            return Status::ParseError("snapshot column length mismatch");
          }
          break;
        }
        case ValueType::kInt64:
        case ValueType::kTimestamp: {
          SOLAP_ASSIGN_OR_RETURN(table->int_cols_[c], r.Vec<int64_t>());
          if (table->int_cols_[c].size() != nrows) {
            return Status::ParseError("snapshot column length mismatch");
          }
          break;
        }
        case ValueType::kDouble: {
          SOLAP_ASSIGN_OR_RETURN(table->dbl_cols_[c], r.Vec<double>());
          if (table->dbl_cols_[c].size() != nrows) {
            return Status::ParseError("snapshot column length mismatch");
          }
          break;
        }
        case ValueType::kNull:
          return Status::ParseError("snapshot schema has a null column");
      }
    }
    return table;
  }
};

Status SaveTable(const EventTable& table, const std::string& path) {
  return TableIo::Save(table, path);
}

Result<std::shared_ptr<EventTable>> LoadTable(const std::string& path) {
  return TableIo::Load(path);
}

Status SaveTable(const EventTable& table, const std::string& path,
                 const RetryPolicy& retry) {
  return RetryIo(
      retry, [&] { return TableIo::Save(table, path); }, &g_io_retries);
}

Result<std::shared_ptr<EventTable>> LoadTable(const std::string& path,
                                              const RetryPolicy& retry) {
  Result<std::shared_ptr<EventTable>> result =
      Status::Internal("snapshot load never ran");
  Status st = RetryIo(
      retry,
      [&] {
        result = TableIo::Load(path);
        return result.status();
      },
      &g_io_retries);
  if (!st.ok()) return st;
  return result;
}

uint64_t SnapshotIoRetries() {
  return g_io_retries.load(std::memory_order_relaxed);
}

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  if (index.has_delta()) {
    // Snapshots persist the LOGICAL index. Fold a copy's delta so the
    // on-disk format stays single-segment; the live index is untouched.
    InvertedIndex merged = index;
    merged.MergeDeltaIntoBase();
    return SaveIndex(merged, path);
  }
  Writer w;
  w.Raw(kMagic, 4);
  w.U32(kVersion);
  w.U8(kKindIndex);
  const IndexShape& shape = index.shape();
  w.U8(static_cast<uint8_t>(shape.kind));
  w.U32(static_cast<uint32_t>(shape.size()));
  for (const LevelRef& ref : shape.positions) {
    w.Str(ref.attr);
    w.Str(ref.level);
  }
  w.U8(index.complete() ? 1 : 0);
  w.Str(index.constraint_sig());
  w.U64(index.num_lists());
  for (const auto& [key, list] : index.lists()) {
    w.Raw(key.data(), key.size() * sizeof(Code));
    // Lists are stored in their container representation: the on-disk
    // bytes mirror the in-memory layout, so a dense chunk round-trips as
    // a bitmap without re-deriving the encoding on load.
    w.U32(static_cast<uint32_t>(list.containers().size()));
    for (const SidContainer& c : list.containers()) {
      w.U32(c.key);
      w.U8(static_cast<uint8_t>(c.kind));
      w.U32(c.cardinality);
      if (c.kind == SidContainer::Kind::kBitmap) {
        w.Vec(c.words);
      } else {
        w.Vec(c.values);
      }
    }
  }
  return w.Flush(path);
}

Result<std::shared_ptr<InvertedIndex>> LoadIndex(const std::string& path) {
  SOLAP_ASSIGN_OR_RETURN(Reader r, Reader::Open(path));
  SOLAP_RETURN_NOT_OK(CheckHeader(r, kKindIndex));
  IndexShape shape;
  SOLAP_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  shape.kind = static_cast<PatternKind>(kind);
  SOLAP_ASSIGN_OR_RETURN(uint32_t m, r.U32());
  shape.positions.resize(m);
  for (LevelRef& ref : shape.positions) {
    SOLAP_ASSIGN_OR_RETURN(ref.attr, r.Str());
    SOLAP_ASSIGN_OR_RETURN(ref.level, r.Str());
  }
  SOLAP_ASSIGN_OR_RETURN(uint8_t complete, r.U8());
  SOLAP_ASSIGN_OR_RETURN(std::string sig, r.Str());
  auto index = std::make_shared<InvertedIndex>(shape, complete != 0);
  index->set_constraint_sig(sig);
  SOLAP_ASSIGN_OR_RETURN(uint64_t nlists, r.U64());
  PatternKey key(m);
  for (uint64_t i = 0; i < nlists; ++i) {
    SOLAP_RETURN_NOT_OK(r.Raw(key.data(), m * sizeof(Code)));
    SOLAP_ASSIGN_OR_RETURN(uint32_t ncontainers, r.U32());
    SidList list;
    list.containers().reserve(ncontainers);
    uint32_t prev_key = 0;
    for (uint32_t c = 0; c < ncontainers; ++c) {
      SidContainer cont;
      SOLAP_ASSIGN_OR_RETURN(uint32_t ckey, r.U32());
      if (ckey > 0xffff || (c > 0 && ckey <= prev_key)) {
        return Status::ParseError("snapshot container keys out of order");
      }
      cont.key = static_cast<uint16_t>(ckey);
      prev_key = ckey;
      SOLAP_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      SOLAP_ASSIGN_OR_RETURN(cont.cardinality, r.U32());
      switch (kind) {
        case static_cast<uint8_t>(SidContainer::Kind::kArray): {
          cont.kind = SidContainer::Kind::kArray;
          SOLAP_ASSIGN_OR_RETURN(cont.values, r.Vec<uint16_t>());
          if (cont.values.size() != cont.cardinality ||
              cont.cardinality == 0) {
            return Status::ParseError("snapshot array container malformed");
          }
          break;
        }
        case static_cast<uint8_t>(SidContainer::Kind::kBitmap): {
          cont.kind = SidContainer::Kind::kBitmap;
          SOLAP_ASSIGN_OR_RETURN(cont.words, r.Vec<uint64_t>());
          if (cont.words.size() != kContainerWords) {
            return Status::ParseError("snapshot bitmap container malformed");
          }
          uint32_t card = 0;
          for (uint64_t w : cont.words) {
            card += static_cast<uint32_t>(__builtin_popcountll(w));
          }
          if (card != cont.cardinality || card == 0) {
            return Status::ParseError("snapshot bitmap container malformed");
          }
          break;
        }
        case static_cast<uint8_t>(SidContainer::Kind::kRun): {
          cont.kind = SidContainer::Kind::kRun;
          SOLAP_ASSIGN_OR_RETURN(cont.values, r.Vec<uint16_t>());
          if (cont.values.empty() || cont.values.size() % 2 != 0) {
            return Status::ParseError("snapshot run container malformed");
          }
          uint64_t card = 0;
          for (size_t p = 0; p + 1 < cont.values.size(); p += 2) {
            if (cont.values[p + 1] < cont.values[p]) {
              return Status::ParseError("snapshot run container malformed");
            }
            card += cont.values[p + 1] - cont.values[p] + 1;
          }
          if (card != cont.cardinality) {
            return Status::ParseError("snapshot run container malformed");
          }
          break;
        }
        default:
          return Status::ParseError("snapshot container kind unknown");
      }
      list.containers().push_back(std::move(cont));
    }
    list.RecomputeMeta();
    index->lists().emplace(key, std::move(list));
  }
  return index;
}

}  // namespace solap
