#include "solap/storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "solap/common/failpoint.h"
#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {

namespace {

// Splits one CSV record honoring double-quoted fields ("" escapes a quote).
std::vector<std::string> SplitRecord(const std::string& line,
                                     char delimiter) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      out.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return out;
}

Result<Value> ParseField(const Field& field, const std::string& text,
                         size_t line_no) {
  auto fail = [&](const std::string& what) {
    return Status::ParseError("line " + std::to_string(line_no) + ", column '" +
                              field.name + "': " + what + " ('" + text +
                              "')");
  };
  switch (field.type) {
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kInt64:
      try {
        size_t used = 0;
        int64_t v = std::stoll(text, &used);
        if (used != text.size()) return fail("trailing characters");
        return Value::Int64(v);
      } catch (...) {
        return fail("not an integer");
      }
    case ValueType::kDouble:
      try {
        size_t used = 0;
        double v = std::stod(text, &used);
        if (used != text.size()) return fail("trailing characters");
        return Value::Double(v);
      } catch (...) {
        return fail("not a number");
      }
    case ValueType::kTimestamp: {
      int y, mo, d, h = 0, mi = 0, s = 0;
      int n = std::sscanf(text.c_str(), "%d-%d-%d%*1[T ]%d:%d:%d", &y, &mo,
                          &d, &h, &mi, &s);
      if (n >= 3) {
        if (mo < 1 || mo > 12 || d < 1 || d > 31) {
          return fail("invalid calendar date");
        }
        return Value::Timestamp(MakeTimestamp(y, mo, d, h, mi, s));
      }
      try {
        return Value::Timestamp(std::stoll(text));
      } catch (...) {
        return fail("not a date/time");
      }
    }
    case ValueType::kNull:
      break;
  }
  return fail("unsupported column type");
}

}  // namespace

Status AppendCsv(EventTable* table, std::istream& in,
                 const CsvOptions& options) {
  const Schema& schema = table->schema();
  std::string line;
  size_t line_no = 0;
  // Column mapping: csv position -> schema field (-1 = ignored).
  std::vector<int> mapping;
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::ParseError("empty input: missing CSV header");
    }
    ++line_no;
    std::vector<std::string> names = SplitRecord(line, options.delimiter);
    size_t matched = 0;
    for (const std::string& name : names) {
      int idx = schema.FieldIndex(name);
      mapping.push_back(idx);
      if (idx >= 0) ++matched;
    }
    if (matched != schema.num_fields()) {
      return Status::ParseError(
          "CSV header does not cover the schema: matched " +
          std::to_string(matched) + " of " +
          std::to_string(schema.num_fields()) + " attributes");
    }
  } else {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      mapping.push_back(static_cast<int>(i));
    }
  }

  std::vector<Value> row(schema.num_fields());
  while (std::getline(in, line)) {
    ++line_no;
    SOLAP_FAILPOINT("csv.read");
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> fields = SplitRecord(line, options.delimiter);
    if (fields.size() < mapping.size()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                std::to_string(fields.size()) +
                                " fields, expected at least " +
                                std::to_string(mapping.size()));
    }
    for (size_t i = 0; i < mapping.size(); ++i) {
      if (mapping[i] < 0) continue;
      SOLAP_ASSIGN_OR_RETURN(
          row[mapping[i]],
          ParseField(schema.field(mapping[i]), fields[i], line_no));
    }
    SOLAP_RETURN_NOT_OK(table->AppendRow(row));
  }
  // getline ends the loop on EOF *and* on a failed read; only the former is
  // a complete file. badbit means the stream broke mid-read — report it
  // rather than silently returning the rows parsed so far as a full table.
  if (in.bad()) {
    return Status::Internal("CSV input failed after line " +
                            std::to_string(line_no) +
                            " (read error, table is incomplete)");
  }
  return Status::OK();
}

Result<std::shared_ptr<EventTable>> LoadCsv(const Schema& schema,
                                            std::istream& in,
                                            const CsvOptions& options) {
  auto table = std::make_shared<EventTable>(schema);
  SOLAP_RETURN_NOT_OK(AppendCsv(table.get(), in, options));
  return table;
}

Status WriteCsv(const EventTable& table, std::ostream& out,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (i) out << options.delimiter;
      out << schema.field(i).name;
    }
    out << "\n";
  }
  for (RowId row = 0; row < table.num_rows(); ++row) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (i) out << options.delimiter;
      Value v = table.GetValue(row, static_cast<int>(i));
      if (v.type() == ValueType::kString &&
          (v.str().find(options.delimiter) != std::string::npos ||
           v.str().find('"') != std::string::npos)) {
        out << '"';
        for (char c : v.str()) {
          if (c == '"') out << '"';
          out << c;
        }
        out << '"';
      } else {
        out << v.ToString();
      }
    }
    out << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("CSV write failed");
}

Result<std::shared_ptr<EventTable>> LoadCsvFile(const Schema& schema,
                                                const std::string& path,
                                                const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return LoadCsv(schema, in, options);
}

Status WriteCsvFile(const EventTable& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot create '" + path + "'");
  return WriteCsv(table, out, options);
}

}  // namespace solap
