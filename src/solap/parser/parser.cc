#include "solap/parser/parser.h"

#include "solap/common/strings.h"
#include "solap/parser/lexer.h"
#include "solap/pattern/regex.h"

namespace solap {

namespace {

/// Token-stream cursor with keyword helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool AcceptKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Status::ParseError("expected keyword '" + kw + "' but found '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }
  bool AcceptPunct(const std::string& p) {
    if (Peek().type == TokenType::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectPunct(const std::string& p) {
    if (AcceptPunct(p)) return Status::OK();
    return Status::ParseError("expected '" + p + "' but found '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }
  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected " + what + " but found '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Next().text;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  // --- expressions --------------------------------------------------------

  Result<ExprPtr> ParseOr() {
    SOLAP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      SOLAP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SOLAP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      SOLAP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      SOLAP_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Not(e);
    }
    if (AcceptPunct("(")) {
      SOLAP_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
      SOLAP_RETURN_NOT_OK(ExpectPunct(")"));
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SOLAP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
    const Token& op = Peek();
    ExprOp kind;
    if (op.type != TokenType::kPunct) {
      return Status::ParseError("expected a comparison operator at offset " +
                                std::to_string(op.offset));
    }
    if (op.text == "=") {
      kind = ExprOp::kEq;
    } else if (op.text == "!=") {
      kind = ExprOp::kNe;
    } else if (op.text == "<") {
      kind = ExprOp::kLt;
    } else if (op.text == "<=") {
      kind = ExprOp::kLe;
    } else if (op.text == ">") {
      kind = ExprOp::kGt;
    } else if (op.text == ">=") {
      kind = ExprOp::kGe;
    } else {
      return Status::ParseError("unknown comparison operator '" + op.text +
                                "' at offset " + std::to_string(op.offset));
    }
    Next();
    SOLAP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
    return Expr::Cmp(kind, lhs, rhs);
  }

  Result<ExprPtr> ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kNumber:
      case TokenType::kString:
      case TokenType::kDateTime:
        return Expr::Lit(Next().literal);
      case TokenType::kIdent: {
        std::string first = Next().text;
        if (AcceptPunct(".")) {
          SOLAP_ASSIGN_OR_RETURN(std::string attr,
                                 ExpectIdent("attribute name"));
          return Expr::PCol(first, attr);
        }
        return Expr::Col(first);
      }
      default:
        return Status::ParseError("expected an operand at offset " +
                                  std::to_string(t.offset));
    }
  }

  // --- clause pieces --------------------------------------------------------

  Result<LevelRef> ParseLevelRef() {
    LevelRef ref;
    SOLAP_ASSIGN_OR_RETURN(ref.attr, ExpectIdent("attribute name"));
    SOLAP_RETURN_NOT_OK(ExpectKeyword("AT"));
    SOLAP_ASSIGN_OR_RETURN(ref.level, ExpectIdent("abstraction level"));
    return ref;
  }

  Result<std::vector<LevelRef>> ParseLevelRefList() {
    std::vector<LevelRef> out;
    do {
      SOLAP_ASSIGN_OR_RETURN(LevelRef r, ParseLevelRef());
      out.push_back(std::move(r));
    } while (AcceptPunct(","));
    return out;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<AggKind> ParseAggName(const std::string& name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggKind::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggKind::kSum;
  if (EqualsIgnoreCase(name, "AVG")) return AggKind::kAvg;
  if (EqualsIgnoreCase(name, "MIN")) return AggKind::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggKind::kMax;
  return Status::ParseError("unknown aggregate function '" + name + "'");
}

// Parses the query proper from a token stream (the EXPLAIN prefix, when
// present, was already consumed by ParseStatement).
Result<CuboidSpec> ParseQueryTokens(std::vector<Token> tokens) {
  Parser p(std::move(tokens));
  CuboidSpec spec;

  // SELECT agg FROM ident
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("SELECT"));
  SOLAP_ASSIGN_OR_RETURN(std::string agg_name,
                         p.ExpectIdent("aggregate function"));
  SOLAP_ASSIGN_OR_RETURN(spec.agg, ParseAggName(agg_name));
  SOLAP_RETURN_NOT_OK(p.ExpectPunct("("));
  if (spec.agg == AggKind::kCount) {
    SOLAP_RETURN_NOT_OK(p.ExpectPunct("*"));
  } else {
    SOLAP_ASSIGN_OR_RETURN(spec.measure, p.ExpectIdent("measure attribute"));
  }
  SOLAP_RETURN_NOT_OK(p.ExpectPunct(")"));
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("FROM"));
  SOLAP_ASSIGN_OR_RETURN(std::string table, p.ExpectIdent("table name"));
  (void)table;  // single event database; the name is documentation

  // [WHERE expr]
  if (p.AcceptKeyword("WHERE")) {
    SOLAP_ASSIGN_OR_RETURN(spec.seq.where, p.ParseOr());
  }

  // CLUSTER BY a AT l {, ...}
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("CLUSTER"));
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("BY"));
  SOLAP_ASSIGN_OR_RETURN(spec.seq.cluster_by, p.ParseLevelRefList());

  // SEQUENCE BY ident [ASCENDING|DESCENDING]
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("SEQUENCE"));
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("BY"));
  SOLAP_ASSIGN_OR_RETURN(spec.seq.sequence_by,
                         p.ExpectIdent("ordering attribute"));
  if (p.AcceptKeyword("ASCENDING")) {
    spec.seq.ascending = true;
  } else if (p.AcceptKeyword("DESCENDING")) {
    spec.seq.ascending = false;
  }

  // [SEQUENCE GROUP BY a AT l {, ...}]
  if (p.PeekKeyword("SEQUENCE") && p.PeekKeyword("GROUP", 1)) {
    p.Next();
    p.Next();
    SOLAP_RETURN_NOT_OK(p.ExpectKeyword("BY"));
    SOLAP_ASSIGN_OR_RETURN(spec.seq.group_by, p.ParseLevelRefList());
  }

  // CUBOID BY (SUBSTRING|SUBSEQUENCE)(sym, ...) WITH symdefs restriction
  // [(placeholders)] [WITH predicate]
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("CUBOID"));
  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("BY"));
  if (p.AcceptKeyword("PATTERN")) {
    // Regex template extension: CUBOID BY PATTERN "X ( . )* X" WITH ...
    if (p.Peek().type != TokenType::kString) {
      return Status::ParseError(
          "PATTERN expects a quoted regular expression");
    }
    spec.regex = p.Next().text;
  } else if (p.AcceptKeyword("SUBSTRING")) {
    spec.kind = PatternKind::kSubstring;
  } else if (p.AcceptKeyword("SUBSEQUENCE")) {
    spec.kind = PatternKind::kSubsequence;
  } else {
    return Status::ParseError(
        "expected SUBSTRING, SUBSEQUENCE or PATTERN after CUBOID BY");
  }
  if (!spec.is_regex()) {
    SOLAP_RETURN_NOT_OK(p.ExpectPunct("("));
    do {
      SOLAP_ASSIGN_OR_RETURN(std::string sym,
                             p.ExpectIdent("pattern symbol"));
      spec.symbols.push_back(std::move(sym));
    } while (p.AcceptPunct(","));
    SOLAP_RETURN_NOT_OK(p.ExpectPunct(")"));
  }

  SOLAP_RETURN_NOT_OK(p.ExpectKeyword("WITH"));
  do {
    PatternDim dim;
    SOLAP_ASSIGN_OR_RETURN(dim.symbol, p.ExpectIdent("pattern symbol"));
    SOLAP_RETURN_NOT_OK(p.ExpectKeyword("AS"));
    SOLAP_ASSIGN_OR_RETURN(dim.ref, p.ParseLevelRef());
    spec.dims.push_back(std::move(dim));
  } while (p.AcceptPunct(","));

  if (p.AcceptKeyword("LEFT-MAXIMALITY")) {
    spec.restriction = CellRestriction::kLeftMaxMatchedGo;
  } else if (p.AcceptKeyword("LEFT-MAXIMALITY-DATA")) {
    spec.restriction = CellRestriction::kLeftMaxDataGo;
  } else if (p.AcceptKeyword("ALL-MATCHED")) {
    spec.restriction = CellRestriction::kAllMatchedGo;
  } else {
    return Status::ParseError(
        "expected a cell restriction (LEFT-MAXIMALITY, "
        "LEFT-MAXIMALITY-DATA or ALL-MATCHED) but found '" +
        p.Peek().text + "'");
  }
  if (p.AcceptPunct("(")) {
    do {
      SOLAP_ASSIGN_OR_RETURN(std::string ph,
                             p.ExpectIdent("event placeholder"));
      spec.placeholders.push_back(std::move(ph));
    } while (p.AcceptPunct(","));
    SOLAP_RETURN_NOT_OK(p.ExpectPunct(")"));
  }
  if (p.AcceptKeyword("WITH")) {
    SOLAP_ASSIGN_OR_RETURN(spec.predicate, p.ParseOr());
  }

  // [ICEBERG n] — iceberg S-cuboid extension (paper §6).
  if (p.AcceptKeyword("ICEBERG")) {
    const Token& t = p.Peek();
    if (t.type != TokenType::kNumber) {
      return Status::ParseError("ICEBERG expects a minimum support count");
    }
    spec.iceberg_min_count = p.Next().literal.int64();
  }

  if (!p.AtEnd()) {
    return Status::ParseError("unexpected trailing input starting at '" +
                              p.Peek().text + "' (offset " +
                              std::to_string(p.Peek().offset) + ")");
  }
  // Basic semantic validation, so errors surface at parse time.
  if (spec.is_regex()) {
    if (!spec.placeholders.empty() || spec.predicate != nullptr) {
      return Status::ParseError(
          "event placeholders / matching predicates are not supported with "
          "PATTERN templates");
    }
    SOLAP_ASSIGN_OR_RETURN(RegexTemplate rt,
                           RegexTemplate::Parse(spec.regex, spec.dims));
    (void)rt;
    return spec;
  }
  SOLAP_ASSIGN_OR_RETURN(PatternTemplate tmpl, spec.MakeTemplate());
  if (!spec.placeholders.empty() &&
      spec.placeholders.size() != tmpl.num_positions()) {
    return Status::ParseError(
        "the cell restriction declares " +
        std::to_string(spec.placeholders.size()) +
        " event placeholders but the pattern template has " +
        std::to_string(tmpl.num_positions()) + " positions");
  }
  return spec;
}

}  // namespace

Result<CuboidSpec> ParseQuery(const std::string& query) {
  SOLAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  return ParseQueryTokens(std::move(tokens));
}

Result<Statement> ParseStatement(const std::string& query) {
  SOLAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Statement stmt;
  size_t skip = 0;
  auto is_kw = [&](size_t i, const char* kw) {
    return i < tokens.size() && tokens[i].type == TokenType::kIdent &&
           EqualsIgnoreCase(tokens[i].text, kw);
  };
  if (is_kw(0, "EXPLAIN")) {
    stmt.explain = ExplainMode::kPlan;
    skip = 1;
    if (is_kw(1, "ANALYZE")) {
      stmt.explain = ExplainMode::kAnalyze;
      skip = 2;
    }
  }
  tokens.erase(
      tokens.begin(),
      tokens.begin() + static_cast<std::vector<Token>::difference_type>(skip));
  SOLAP_ASSIGN_OR_RETURN(stmt.spec, ParseQueryTokens(std::move(tokens)));
  return stmt;
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SOLAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  SOLAP_ASSIGN_OR_RETURN(ExprPtr e, p.ParseOr());
  if (!p.AtEnd()) {
    return Status::ParseError("unexpected trailing input in expression");
  }
  return e;
}

}  // namespace solap
