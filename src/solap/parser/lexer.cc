#include "solap/parser/lexer.h"

#include <cctype>
#include <cstdio>

#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

// Parses "YYYY-MM-DD[THH:MM[:SS]]" into a timestamp Value.
bool ParseDateTime(const std::string& text, Value* out) {
  int y, mo, d, h = 0, mi = 0, s = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%d", &y, &mo, &d, &h,
                      &mi, &s);
  if (n != 3 && n != 5 && n != 6) return false;
  if (mo < 1 || mo > 12 || d < 1 || d > 31) return false;
  *out = Value::Timestamp(MakeTimestamp(y, mo, d, h, mi, s));
  return true;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      t.type = TokenType::kIdent;
      t.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Number or datetime: consume the maximal run of characters that can
      // appear in either, then classify.
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.' || input[j] == ':' ||
                       input[j] == '-')) {
        // A '-' only continues a datetime if followed by a digit.
        if (input[j] == '-' &&
            (j + 1 >= n ||
             !std::isdigit(static_cast<unsigned char>(input[j + 1])))) {
          break;
        }
        ++j;
      }
      t.text = input.substr(i, j - i);
      if (t.text.find('-') != std::string::npos ||
          t.text.find(':') != std::string::npos ||
          t.text.find('T') != std::string::npos) {
        if (!ParseDateTime(t.text, &t.literal)) {
          return Status::ParseError("malformed date/time literal '" + t.text +
                                    "' at offset " + std::to_string(i));
        }
        t.type = TokenType::kDateTime;
      } else if (t.text.find('.') != std::string::npos) {
        t.type = TokenType::kNumber;
        t.literal = Value::Double(std::stod(t.text));
      } else {
        t.type = TokenType::kNumber;
        t.literal = Value::Int64(std::stoll(t.text));
      }
      i = j;
    } else if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && input[j] != quote) ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      t.type = TokenType::kString;
      t.text = input.substr(i + 1, j - i - 1);
      t.literal = Value::String(t.text);
      i = j + 1;
    } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == '.' ||
               c == '=') {
      t.type = TokenType::kPunct;
      t.text = std::string(1, c);
      ++i;
    } else if (c == '!' || c == '<' || c == '>') {
      t.type = TokenType::kPunct;
      if (i + 1 < n && input[i + 1] == '=') {
        t.text = input.substr(i, 2);
        i += 2;
      } else if (c == '!') {
        return Status::ParseError("expected '=' after '!' at offset " +
                                  std::to_string(i));
      } else {
        t.text = std::string(1, c);
        ++i;
      }
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace solap
