// Recursive-descent parser for the S-cuboid specification language.
//
// Grammar (paper Fig. 3; [] optional, {} repetition):
//
//   query      := SELECT agg FROM ident
//                 [WHERE expr]
//                 CLUSTER BY levelRef {, levelRef}
//                 SEQUENCE BY ident [ASCENDING | DESCENDING]
//                 [SEQUENCE GROUP BY levelRef {, levelRef}]
//                 CUBOID BY (SUBSTRING | SUBSEQUENCE) ( sym {, sym} )
//                   WITH symDef {, symDef}
//                   restriction [( placeholder {, placeholder} )]
//                   [WITH expr]
//                 [ICEBERG number]                      -- §6 extension
//   agg        := COUNT ( * ) | (SUM|AVG|MIN|MAX) ( ident )
//   levelRef   := ident AT ident
//   symDef     := sym AS ident AT ident
//   restriction:= LEFT-MAXIMALITY | LEFT-MAXIMALITY-DATA | ALL-MATCHED
//   expr       := and-or tree of comparisons over attributes,
//                 placeholder.attribute references and literals
#ifndef SOLAP_PARSER_PARSER_H_
#define SOLAP_PARSER_PARSER_H_

#include <string>

#include "solap/common/status.h"
#include "solap/cube/cuboid_spec.h"

namespace solap {

/// Parses a full S-cuboid specification query.
Result<CuboidSpec> ParseQuery(const std::string& query);

/// How a statement asks to be run (grammar extension:
/// `[EXPLAIN [ANALYZE]] query`).
enum class ExplainMode {
  /// Execute normally.
  kNone,
  /// EXPLAIN: print the optimizer's plan without executing.
  kPlan,
  /// EXPLAIN ANALYZE: execute and render the recorded span tree.
  kAnalyze,
};

/// A possibly EXPLAIN-wrapped query.
struct Statement {
  ExplainMode explain = ExplainMode::kNone;
  CuboidSpec spec;
};

/// Parses `[EXPLAIN [ANALYZE]] query`; plain queries parse with
/// `explain == kNone`, identical to ParseQuery.
Result<Statement> ParseStatement(const std::string& query);

/// Parses a standalone boolean expression (useful for building WHERE
/// clauses and matching predicates programmatically from text).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace solap

#endif  // SOLAP_PARSER_PARSER_H_
