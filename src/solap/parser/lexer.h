// Lexer for the S-cuboid specification language (paper Fig. 3/5/11).
#ifndef SOLAP_PARSER_LEXER_H_
#define SOLAP_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/storage/value.h"

namespace solap {

enum class TokenType {
  kIdent,     ///< identifiers and keywords (incl. hyphenated: card-id,
              ///< LEFT-MAXIMALITY)
  kNumber,    ///< integer or decimal literal
  kString,    ///< double-quoted string literal
  kDateTime,  ///< 2007-10-01T00:00-style literal (becomes a timestamp)
  kPunct,     ///< ( ) , * . = != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< raw text (identifier name, punct, digits)
  Value literal;      ///< value of number/string/datetime tokens
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes `input`. Keywords are not distinguished here — the parser
/// matches identifier text case-insensitively.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace solap

#endif  // SOLAP_PARSER_LEXER_H_
