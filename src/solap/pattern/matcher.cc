#include "solap/pattern/matcher.h"

namespace solap {

Result<BoundPattern> BoundPattern::Bind(
    const PatternTemplate* tmpl, SequenceGroup* group,
    const SequenceGroupSet& set, const HierarchyRegistry* reg,
    const ExprPtr& predicate, const std::vector<std::string>& placeholders) {
  if (tmpl->num_positions() > kMaxTemplatePositions) {
    return Status::InvalidArgument("pattern template exceeds the supported "
                                   "maximum of " +
                                   std::to_string(kMaxTemplatePositions) +
                                   " positions");
  }
  BoundPattern bp;
  bp.tmpl_ = tmpl;
  bp.group_ = group;
  bp.offsets_ = group->offsets().data();

  // Bind each pattern dimension and materialize its symbol view.
  std::vector<const std::vector<Code>*> dim_views(tmpl->num_dims());
  for (size_t d = 0; d < tmpl->num_dims(); ++d) {
    SOLAP_ASSIGN_OR_RETURN(DimensionBinding b,
                           set.BindDimension(reg, tmpl->dim(d).ref));
    dim_views[d] = &group->ViewFor(b);
    bp.dim_bindings_.push_back(std::move(b));
  }
  bp.pos_view_.resize(tmpl->num_positions());
  for (size_t pos = 0; pos < tmpl->num_positions(); ++pos) {
    bp.pos_view_[pos] = dim_views[tmpl->dim_of(pos)]->data();
  }

  // Resolve slice/dice labels to allowed codes at each dimension's level.
  // Unknown labels resolve to kNullCode, which matches nothing (an empty
  // slice); labels given at a coarser level expand to every covered code.
  bp.fixed_codes_.resize(tmpl->num_dims());
  for (size_t d = 0; d < tmpl->num_dims(); ++d) {
    const PatternDim& dim = tmpl->dim(d);
    if (dim.fixed_labels.empty()) continue;
    SOLAP_ASSIGN_OR_RETURN(
        bp.fixed_codes_[d],
        bp.dim_bindings_[d].AllowedCodes(dim.fixed_level, dim.fixed_labels));
    if (bp.fixed_codes_[d].empty()) {
      // Guarantee "matches nothing" instead of "unrestricted".
      bp.fixed_codes_[d].push_back(kNullCode);
    }
  }

  // Bind the matching predicate against the table schema + placeholders.
  if (predicate != nullptr) {
    if (set.is_raw()) {
      return Status::InvalidArgument(
          "matching predicates reference event attributes and are not "
          "supported on raw sequence groups");
    }
    if (placeholders.size() != tmpl->num_positions()) {
      return Status::InvalidArgument(
          "cell restriction must declare exactly one event placeholder per "
          "template position (" +
          std::to_string(tmpl->num_positions()) + "), got " +
          std::to_string(placeholders.size()));
    }
    SOLAP_RETURN_NOT_OK(
        predicate->Bind(set.table()->schema(), &placeholders));
    bp.predicate_ = predicate.get();
  }
  return bp;
}

bool BoundPattern::EvalPredicate(Sid s, const uint32_t* idx) const {
  if (predicate_ == nullptr) return true;
  std::span<const RowId> rows = group_->Rows(s);
  RowId matched[kMaxTemplatePositions];
  const size_t m = tmpl_->num_positions();
  for (size_t i = 0; i < m; ++i) matched[i] = rows[idx[i]];
  return predicate_->EvalMatch(*group_->table(), matched).AsBool();
}

bool BoundPattern::ContainsConcrete(Sid s, const PatternKey& key) const {
  const size_t m = tmpl_->num_positions();
  const uint32_t len = group_->length(s);
  if (len < m) return false;
  if (tmpl_->kind() == PatternKind::kSubstring) {
    for (uint32_t p = 0; p + m <= len; ++p) {
      bool ok = true;
      for (size_t i = 0; i < m; ++i) {
        if (CodeAt(i, s, p + i) != key[i]) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  }
  // Subsequence: greedy left-to-right scan suffices for containment.
  size_t pos = 0;
  for (uint32_t i = 0; i < len && pos < m; ++i) {
    if (CodeAt(pos, s, i) == key[pos]) ++pos;
  }
  return pos == m;
}

bool BoundPattern::HasValidOccurrence(Sid s, const PatternKey& key) const {
  bool found = false;
  ForEachConcreteOccurrence(s, key, /*apply_predicate=*/true,
                            [&](const uint32_t*) {
                              found = true;
                              return false;  // stop at first
                            });
  return found;
}

}  // namespace solap
