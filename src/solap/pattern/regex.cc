#include "solap/pattern/regex.h"

#include <algorithm>
#include <cctype>

namespace solap {

namespace {

// --- regex tokenization ------------------------------------------------------

enum class RTok { kIdent, kLiteral, kDot, kLParen, kRParen, kAlt, kStar,
                  kPlus, kOpt, kEnd };

struct RToken {
  RTok kind;
  std::string text;
};

Result<std::vector<RToken>> RexTokenize(const std::string& s) {
  std::vector<RToken> out;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[j])) ||
              s[j] == '_' || s[j] == '-')) {
        ++j;
      }
      out.push_back({RTok::kIdent, s.substr(i, j - i)});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = s.find('\'', i + 1);
      if (j == std::string::npos) {
        return Status::ParseError("unterminated literal in pattern '" + s +
                                  "'");
      }
      out.push_back({RTok::kLiteral, s.substr(i + 1, j - i - 1)});
      i = j + 1;
      continue;
    }
    RTok kind;
    switch (c) {
      case '.':
        kind = RTok::kDot;
        break;
      case '(':
        kind = RTok::kLParen;
        break;
      case ')':
        kind = RTok::kRParen;
        break;
      case '|':
        kind = RTok::kAlt;
        break;
      case '*':
        kind = RTok::kStar;
        break;
      case '+':
        kind = RTok::kPlus;
        break;
      case '?':
        kind = RTok::kOpt;
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in pattern '" + s + "'");
    }
    out.push_back({kind, std::string(1, c)});
    ++i;
  }
  out.push_back({RTok::kEnd, ""});
  return out;
}

// --- Thompson construction ---------------------------------------------------

struct Fragment {
  int start;
  int end;
};

class Builder {
 public:
  Builder(std::vector<std::vector<RegexTemplate::Edge>>* states,
          const std::vector<PatternDim>* dims,
          std::vector<std::string>* literals,
          std::vector<RToken> tokens)
      : states_(states),
        dims_(dims),
        literals_(literals),
        tokens_(std::move(tokens)) {}

  Result<Fragment> ParseAlt() {
    SOLAP_ASSIGN_OR_RETURN(Fragment lhs, ParseCat());
    while (Peek().kind == RTok::kAlt) {
      ++pos_;
      SOLAP_ASSIGN_OR_RETURN(Fragment rhs, ParseCat());
      int s = NewState(), e = NewState();
      Eps(s, lhs.start);
      Eps(s, rhs.start);
      Eps(lhs.end, e);
      Eps(rhs.end, e);
      lhs = {s, e};
    }
    return lhs;
  }

  const RToken& Peek() const { return tokens_[pos_]; }

 private:
  Result<Fragment> ParseCat() {
    SOLAP_ASSIGN_OR_RETURN(Fragment frag, ParseRep());
    while (true) {
      RTok k = Peek().kind;
      if (k != RTok::kIdent && k != RTok::kLiteral && k != RTok::kDot &&
          k != RTok::kLParen) {
        break;
      }
      SOLAP_ASSIGN_OR_RETURN(Fragment next, ParseRep());
      Eps(frag.end, next.start);
      frag.end = next.end;
    }
    return frag;
  }

  Result<Fragment> ParseRep() {
    SOLAP_ASSIGN_OR_RETURN(Fragment frag, ParseAtom());
    RTok k = Peek().kind;
    if (k != RTok::kStar && k != RTok::kPlus && k != RTok::kOpt) {
      return frag;
    }
    ++pos_;
    int s = NewState(), e = NewState();
    Eps(s, frag.start);
    Eps(frag.end, e);
    if (k == RTok::kStar || k == RTok::kPlus) Eps(frag.end, frag.start);
    if (k == RTok::kStar || k == RTok::kOpt) Eps(s, e);
    return Fragment{s, e};
  }

  Result<Fragment> ParseAtom() {
    const RToken tok = Peek();
    switch (tok.kind) {
      case RTok::kIdent: {
        ++pos_;
        int d = -1;
        for (size_t i = 0; i < dims_->size(); ++i) {
          if ((*dims_)[i].symbol == tok.text) {
            d = static_cast<int>(i);
            break;
          }
        }
        if (d < 0) {
          return Status::ParseError("pattern symbol '" + tok.text +
                                    "' has no WITH ... AS declaration");
        }
        return Leaf(RegexTemplate::EdgeKind::kSymbol, d);
      }
      case RTok::kLiteral: {
        ++pos_;
        auto it = std::find(literals_->begin(), literals_->end(), tok.text);
        int ordinal;
        if (it == literals_->end()) {
          ordinal = static_cast<int>(literals_->size());
          literals_->push_back(tok.text);
        } else {
          ordinal = static_cast<int>(it - literals_->begin());
        }
        return Leaf(RegexTemplate::EdgeKind::kLiteral, ordinal);
      }
      case RTok::kDot:
        ++pos_;
        return Leaf(RegexTemplate::EdgeKind::kAny, 0);
      case RTok::kLParen: {
        ++pos_;
        SOLAP_ASSIGN_OR_RETURN(Fragment inner, ParseAlt());
        if (Peek().kind != RTok::kRParen) {
          return Status::ParseError("missing ')' in pattern");
        }
        ++pos_;
        return inner;
      }
      default:
        return Status::ParseError("unexpected '" + tok.text +
                                  "' in pattern");
    }
  }

  int NewState() {
    states_->emplace_back();
    return static_cast<int>(states_->size() - 1);
  }
  void Eps(int from, int to) {
    (*states_)[from].push_back(
        {RegexTemplate::EdgeKind::kEpsilon, to, 0});
  }
  Fragment Leaf(RegexTemplate::EdgeKind kind, int index) {
    int s = NewState(), e = NewState();
    (*states_)[s].push_back({kind, e, index});
    return {s, e};
  }

  std::vector<std::vector<RegexTemplate::Edge>>* states_;
  const std::vector<PatternDim>* dims_;
  std::vector<std::string>* literals_;
  std::vector<RToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexTemplate> RegexTemplate::Parse(const std::string& pattern,
                                           std::vector<PatternDim> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument(
        "a regex template needs at least one declared pattern dimension "
        "(the template's domain)");
  }
  for (const PatternDim& d : dims) {
    if (!(d.ref == dims.front().ref)) {
      return Status::InvalidArgument(
          "all dimensions of a regex template must share one domain; '" +
          d.symbol + "' is at " + d.ref.ToString() + " but '" +
          dims.front().symbol + "' is at " + dims.front().ref.ToString());
    }
  }
  RegexTemplate t;
  t.pattern_ = pattern;
  t.dims_ = std::move(dims);
  SOLAP_ASSIGN_OR_RETURN(std::vector<RToken> tokens, RexTokenize(pattern));
  Builder b(&t.states_, &t.dims_, &t.literal_labels_, std::move(tokens));
  SOLAP_ASSIGN_OR_RETURN(Fragment frag, b.ParseAlt());
  if (b.Peek().kind != RTok::kEnd) {
    return Status::ParseError("unexpected trailing '" + b.Peek().text +
                              "' in pattern '" + pattern + "'");
  }
  t.start_ = frag.start;
  t.accept_ = frag.end;
  // Every declared dimension must be reachable in the pattern.
  std::vector<bool> used(t.dims_.size(), false);
  for (const auto& edges : t.states_) {
    for (const Edge& e : edges) {
      if (e.kind == EdgeKind::kSymbol) used[e.index] = true;
    }
  }
  for (size_t d = 0; d < used.size(); ++d) {
    if (!used[d]) {
      return Status::InvalidArgument("pattern dimension '" +
                                     t.dims_[d].symbol +
                                     "' never occurs in the pattern");
    }
  }
  return t;
}

}  // namespace solap
