#include "solap/pattern/pattern_template.h"

#include <algorithm>

namespace solap {

const char* PatternKindName(PatternKind kind) {
  return kind == PatternKind::kSubstring ? "SUBSTRING" : "SUBSEQUENCE";
}

const char* CellRestrictionName(CellRestriction r) {
  switch (r) {
    case CellRestriction::kLeftMaxMatchedGo:
      return "LEFT-MAXIMALITY";
    case CellRestriction::kLeftMaxDataGo:
      return "LEFT-MAXIMALITY-DATA";
    case CellRestriction::kAllMatchedGo:
      return "ALL-MATCHED";
  }
  return "?";
}

Result<PatternTemplate> PatternTemplate::Make(PatternKind kind,
                                              std::vector<std::string> symbols,
                                              std::vector<PatternDim> dims) {
  if (symbols.empty()) {
    return Status::InvalidArgument("pattern template must have at least one "
                                   "symbol");
  }
  PatternTemplate t;
  t.kind_ = kind;
  t.symbols_ = std::move(symbols);
  t.dims_ = std::move(dims);
  t.dim_of_.resize(t.symbols_.size());
  t.first_pos_.assign(t.dims_.size(), -1);
  for (size_t pos = 0; pos < t.symbols_.size(); ++pos) {
    int d = -1;
    for (size_t i = 0; i < t.dims_.size(); ++i) {
      if (t.dims_[i].symbol == t.symbols_[pos]) {
        d = static_cast<int>(i);
        break;
      }
    }
    if (d < 0) {
      return Status::InvalidArgument("pattern symbol '" + t.symbols_[pos] +
                                     "' has no WITH ... AS declaration");
    }
    t.dim_of_[pos] = d;
    if (t.first_pos_[d] < 0) t.first_pos_[d] = static_cast<int>(pos);
  }
  t.positions_of_dim_.resize(t.dims_.size());
  for (size_t pos = 0; pos < t.dim_of_.size(); ++pos) {
    t.positions_of_dim_[t.dim_of_[pos]].push_back(
        static_cast<uint32_t>(pos));
  }
  for (size_t i = 0; i < t.dims_.size(); ++i) {
    if (t.first_pos_[i] < 0) {
      return Status::InvalidArgument("pattern dimension '" +
                                     t.dims_[i].symbol +
                                     "' never occurs in the template");
    }
  }
  return t;
}

bool PatternTemplate::HasRepeatedSymbols() const {
  return dim_of_.size() > dims_.size();
}

bool PatternTemplate::HasRestrictedDims() const {
  return std::any_of(dims_.begin(), dims_.end(),
                     [](const PatternDim& d) { return d.restricted(); });
}

PatternKey PatternTemplate::DimCodesOf(const PatternKey& position_key) const {
  PatternKey out(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    out[d] = position_key[first_pos_[d]];
  }
  return out;
}

bool PatternTemplate::ConsistentPrefix(
    const PatternKey& position_key, size_t prefix_len,
    const std::vector<std::vector<Code>>& fixed_codes) const {
  for (size_t pos = 0; pos < prefix_len; ++pos) {
    int d = dim_of_[pos];
    // Repeated-symbol equality against the dimension's first position (when
    // that position is inside the prefix).
    size_t fp = static_cast<size_t>(first_pos_[d]);
    if (fp < pos && position_key[pos] != position_key[fp]) return false;
    if (!fixed_codes[d].empty()) {
      const std::vector<Code>& allowed = fixed_codes[d];
      if (std::find(allowed.begin(), allowed.end(), position_key[pos]) ==
          allowed.end()) {
        return false;
      }
    }
  }
  return true;
}

std::string PatternTemplate::CanonicalString() const {
  std::string out = PatternKindName(kind_);
  out += "(";
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (i) out += ",";
    out += symbols_[i];
  }
  out += ")WITH";
  for (const PatternDim& d : dims_) {
    out += d.symbol + ":" + d.ref.ToString();
    if (!d.fixed_labels.empty()) {
      out += "=" + d.fixed_level + "[";
      for (const std::string& l : d.fixed_labels) out += l + ";";
      out += "]";
    }
    out += ",";
  }
  return out;
}

}  // namespace solap
