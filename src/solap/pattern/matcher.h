// Pattern matching against data sequences: binding a PatternTemplate to a
// sequence group and enumerating its occurrences.
#ifndef SOLAP_PATTERN_MATCHER_H_
#define SOLAP_PATTERN_MATCHER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/expr/expr.h"
#include "solap/pattern/pattern_template.h"
#include "solap/seq/sequence_group.h"

namespace solap {

/// Maximum supported template length. Far above anything practical — the
/// paper notes users "seldom pose S-OLAP queries with long pattern
/// templates"; this bound lets occurrence buffers live on the stack.
inline constexpr size_t kMaxTemplatePositions = 32;

/// \brief A PatternTemplate bound to one sequence group: symbol views
/// resolved, slice/dice labels translated to codes, predicate bound.
///
/// All matching entry points live here. Occurrences are reported as
/// position-index arrays (indices into the sequence, ascending; contiguous
/// for substring templates).
class BoundPattern {
 public:
  /// Binds `tmpl` against `group`. `predicate` (may be null) is the
  /// matching predicate; `placeholders` names its event placeholders in
  /// template position order (x1, y1, ... — paper §3.2 part 5c) and must
  /// have one entry per template position when a predicate is present.
  static Result<BoundPattern> Bind(const PatternTemplate* tmpl,
                                   SequenceGroup* group,
                                   const SequenceGroupSet& set,
                                   const HierarchyRegistry* reg,
                                   const ExprPtr& predicate,
                                   const std::vector<std::string>& placeholders);

  const PatternTemplate& tmpl() const { return *tmpl_; }
  SequenceGroup& group() const { return *group_; }
  const DimensionBinding& dim_binding(size_t d) const {
    return dim_bindings_[d];
  }
  const std::vector<std::vector<Code>>& fixed_codes() const {
    return fixed_codes_;
  }
  bool has_predicate() const { return predicate_ != nullptr; }

  /// Code of position `pos` at in-sequence index `idx` of sequence `s`.
  Code CodeAt(size_t pos, Sid s, uint32_t idx) const {
    return pos_view_[pos][offsets_[s] + idx];
  }

  /// Evaluates the matching predicate for an occurrence (`idx[i]` is the
  /// in-sequence index matched to template position i). True when there is
  /// no predicate.
  bool EvalPredicate(Sid s, const uint32_t* idx) const;

  /// Enumerates occurrences of the template in sequence `s` that satisfy
  /// symbol-equality, fixed-dim restrictions and the predicate, in
  /// lexicographic position order. `fn(const uint32_t* idx)` receives the
  /// m in-sequence indices and returns false to stop early.
  template <typename Fn>
  void ForEachOccurrence(Sid s, Fn&& fn) const {
    if (tmpl_->kind() == PatternKind::kSubstring) {
      ForEachSubstring(s, std::forward<Fn>(fn));
    } else {
      ForEachSubsequence(s, std::forward<Fn>(fn));
    }
  }

  /// Enumerates occurrences of one *concrete* pattern (per-position codes),
  /// with or without applying the predicate.
  template <typename Fn>
  void ForEachConcreteOccurrence(Sid s, const PatternKey& key,
                                 bool apply_predicate, Fn&& fn) const {
    if (tmpl_->kind() == PatternKind::kSubstring) {
      ForEachConcreteSubstring(s, key, apply_predicate, std::forward<Fn>(fn));
    } else {
      ForEachConcreteSubsequence(s, key, apply_predicate,
                                 std::forward<Fn>(fn));
    }
  }

  /// Containment test for a concrete pattern, ignoring the predicate —
  /// the check used when verifying joined inverted lists.
  bool ContainsConcrete(Sid s, const PatternKey& key) const;

  /// True if some occurrence of `key` satisfies the predicate under the
  /// given cell restriction: for LEFT-MAXIMALITY* semantics occurrences are
  /// still scanned in order and any valid one qualifies the sequence.
  bool HasValidOccurrence(Sid s, const PatternKey& key) const;

 private:
  BoundPattern() = default;

  template <typename Fn>
  void ForEachSubstring(Sid s, Fn&& fn) const;
  template <typename Fn>
  void ForEachSubsequence(Sid s, Fn&& fn) const;
  template <typename Fn>
  void ForEachConcreteSubstring(Sid s, const PatternKey& key,
                                bool apply_predicate, Fn&& fn) const;
  template <typename Fn>
  void ForEachConcreteSubsequence(Sid s, const PatternKey& key,
                                  bool apply_predicate, Fn&& fn) const;

  /// Symbol-equality + fixed-dim check for position `pos` holding `code`,
  /// given already-chosen indices idx[0..pos-1].
  bool PositionOk(Sid s, size_t pos, Code code, const uint32_t* idx) const {
    int d = tmpl_->dim_of(pos);
    size_t fp = static_cast<size_t>(tmpl_->first_position_of(d));
    if (fp < pos) {
      return CodeAt(fp, s, idx[fp]) == code;
    }
    const std::vector<Code>& allowed = fixed_codes_[d];
    if (!allowed.empty()) {
      for (Code c : allowed) {
        if (c == code) return true;
      }
      return false;
    }
    return true;
  }

  const PatternTemplate* tmpl_ = nullptr;
  SequenceGroup* group_ = nullptr;
  std::vector<DimensionBinding> dim_bindings_;
  std::vector<const Code*> pos_view_;          // per position
  std::vector<std::vector<Code>> fixed_codes_;  // per dim (empty = free)
  const uint32_t* offsets_ = nullptr;
  const Expr* predicate_ = nullptr;
};

// ---------------------------------------------------------------------------
// Template implementations.

template <typename Fn>
void BoundPattern::ForEachSubstring(Sid s, Fn&& fn) const {
  const size_t m = tmpl_->num_positions();
  const uint32_t len = group_->length(s);
  if (len < m) return;
  uint32_t idx[kMaxTemplatePositions] = {0};
  for (uint32_t p = 0; p + m <= len; ++p) {
    bool ok = true;
    for (size_t i = 0; i < m; ++i) {
      idx[i] = p + static_cast<uint32_t>(i);
      Code c = CodeAt(i, s, idx[i]);
      if (!PositionOk(s, i, c, idx)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (!EvalPredicate(s, idx)) continue;
    if (!fn(static_cast<const uint32_t*>(idx))) return;
  }
}

template <typename Fn>
void BoundPattern::ForEachSubsequence(Sid s, Fn&& fn) const {
  const size_t m = tmpl_->num_positions();
  const uint32_t len = group_->length(s);
  if (len < m) return;
  uint32_t idx[kMaxTemplatePositions] = {0};
  bool stop = false;
  // Depth-first enumeration of ascending index tuples with early pruning on
  // symbol-equality / fixed-dim violations.
  auto rec = [&](auto&& self, size_t pos, uint32_t start) -> void {
    if (stop) return;
    if (pos == m) {
      if (EvalPredicate(s, idx)) {
        if (!fn(static_cast<const uint32_t*>(idx))) stop = true;
      }
      return;
    }
    for (uint32_t i = start; i + (m - pos) <= len && !stop; ++i) {
      Code c = CodeAt(pos, s, i);
      if (!PositionOk(s, pos, c, idx)) continue;
      idx[pos] = i;
      self(self, pos + 1, i + 1);
    }
  };
  rec(rec, 0, 0);
}

template <typename Fn>
void BoundPattern::ForEachConcreteSubstring(Sid s, const PatternKey& key,
                                            bool apply_predicate,
                                            Fn&& fn) const {
  const size_t m = tmpl_->num_positions();
  const uint32_t len = group_->length(s);
  if (len < m) return;
  uint32_t idx[kMaxTemplatePositions] = {0};
  for (uint32_t p = 0; p + m <= len; ++p) {
    bool ok = true;
    for (size_t i = 0; i < m; ++i) {
      if (CodeAt(i, s, p + i) != key[i]) {
        ok = false;
        break;
      }
      idx[i] = p + static_cast<uint32_t>(i);
    }
    if (!ok) continue;
    if (apply_predicate && !EvalPredicate(s, idx)) continue;
    if (!fn(static_cast<const uint32_t*>(idx))) return;
  }
}

template <typename Fn>
void BoundPattern::ForEachConcreteSubsequence(Sid s, const PatternKey& key,
                                              bool apply_predicate,
                                              Fn&& fn) const {
  const size_t m = tmpl_->num_positions();
  const uint32_t len = group_->length(s);
  if (len < m) return;
  uint32_t idx[kMaxTemplatePositions] = {0};
  bool stop = false;
  auto rec = [&](auto&& self, size_t pos, uint32_t start) -> void {
    if (stop) return;
    if (pos == m) {
      if (!apply_predicate || EvalPredicate(s, idx)) {
        if (!fn(static_cast<const uint32_t*>(idx))) stop = true;
      }
      return;
    }
    for (uint32_t i = start; i + (m - pos) <= len && !stop; ++i) {
      if (CodeAt(pos, s, i) != key[pos]) continue;
      idx[pos] = i;
      self(self, pos + 1, i + 1);
    }
  };
  rec(rec, 0, 0);
}

}  // namespace solap

#endif  // SOLAP_PATTERN_MATCHER_H_
