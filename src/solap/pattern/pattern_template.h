// Pattern templates, pattern dimensions and cell restrictions —
// the CUBOID BY clause of an S-cuboid specification (paper §3.2 part 5).
#ifndef SOLAP_PATTERN_PATTERN_TEMPLATE_H_
#define SOLAP_PATTERN_PATTERN_TEMPLATE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/seq/dimension.h"

namespace solap {

/// SUBSTRING patterns match contiguous runs; SUBSEQUENCE patterns match
/// order-preserving (possibly gapped) selections.
enum class PatternKind { kSubstring, kSubsequence };

/// How a data sequence with multiple occurrences of a cell's pattern is
/// assigned to the cell (paper §3.2 part 5b).
enum class CellRestriction {
  /// Only the first matched substring/subsequence is assigned.
  kLeftMaxMatchedGo,
  /// The whole data sequence is assigned (affects SUM-like aggregates;
  /// COUNT still contributes 1 per sequence).
  kLeftMaxDataGo,
  /// Every matched occurrence is assigned.
  kAllMatchedGo,
};

const char* PatternKindName(PatternKind kind);
const char* CellRestrictionName(CellRestriction r);

/// \brief One pattern dimension: a distinct symbol of the template with its
/// value domain (attribute at an abstraction level) and optional slice/dice
/// restriction to specific values.
struct PatternDim {
  std::string symbol;  ///< e.g. "X"
  LevelRef ref;        ///< e.g. location AT station
  /// Slice (one label) or dice (several) restriction; empty = unrestricted.
  std::vector<std::string> fixed_labels;
  /// Level the fixed labels are expressed at; empty means `ref.level`.
  /// A coarser fixed level arises when a slice precedes a P-DRILL-DOWN on
  /// the same dimension: the slice keeps its original level and restricts
  /// the drilled-down domain to the values rolling up into it.
  std::string fixed_level;

  bool restricted() const { return !fixed_labels.empty(); }
};

/// \brief A pattern template: an ordered list of m symbols drawn from n
/// distinct pattern dimensions (n <= m); e.g. SUBSTRING(X, Y, Y, X).
///
/// Repeated symbols must be instantiated with equal values, which is what
/// distinguishes (Pentagon,Wheaton,Wheaton,Pentagon) — an instantiation of
/// (X,Y,Y,X) — from (Pentagon,Wheaton,Glenmont,Pentagon), which is not.
class PatternTemplate {
 public:
  /// Empty template; invalid until assigned from Make(). Exists so that
  /// owning structs can be default-constructed.
  PatternTemplate() = default;

  /// `symbols[i]` names the dimension of template position i; every symbol
  /// must appear in `dims` exactly once.
  static Result<PatternTemplate> Make(PatternKind kind,
                                      std::vector<std::string> symbols,
                                      std::vector<PatternDim> dims);

  PatternKind kind() const { return kind_; }
  /// m — number of template positions (pattern symbols).
  size_t num_positions() const { return dim_of_.size(); }
  /// n — number of distinct pattern dimensions.
  size_t num_dims() const { return dims_.size(); }

  /// Dimension index of template position `pos`.
  int dim_of(size_t pos) const { return dim_of_[pos]; }
  const PatternDim& dim(size_t d) const { return dims_[d]; }
  const std::vector<PatternDim>& dims() const { return dims_; }
  /// First template position where dimension `d` occurs.
  int first_position_of(size_t d) const { return first_pos_[d]; }
  /// All template positions of dimension `d`, ascending.
  const std::vector<uint32_t>& positions_of(size_t d) const {
    return positions_of_dim_[d];
  }

  /// First position in window [offset, pos) sharing `pos`'s dimension, or
  /// `pos` itself when none exists. Precomputed per-dimension position
  /// lists make this O(log m) instead of the O(m) rescan the window
  /// consistency checks previously paid per position per key.
  size_t FirstPositionInWindow(size_t offset, size_t pos) const {
    const std::vector<uint32_t>& occ = positions_of_dim_[dim_of_[pos]];
    auto it = std::lower_bound(occ.begin(), occ.end(),
                               static_cast<uint32_t>(offset));
    return *it < pos ? *it : pos;  // occ contains pos, so it != end()
  }

  /// True if any dimension occurs at more than one position.
  bool HasRepeatedSymbols() const;
  /// True if any dimension carries a slice/dice restriction.
  bool HasRestrictedDims() const;

  /// Converts a per-position concrete pattern key into per-dimension cell
  /// coordinates (reads each dimension's first position).
  PatternKey DimCodesOf(const PatternKey& position_key) const;

  /// True if a per-position key is a valid instantiation considering only
  /// positions [0, prefix_len): repeated dims equal, fixed dims allowed.
  /// `fixed_codes[d]` lists the allowed codes of dim d (empty = free).
  bool ConsistentPrefix(const PatternKey& position_key, size_t prefix_len,
                        const std::vector<std::vector<Code>>& fixed_codes) const;

  /// Canonical text, e.g. "SUBSTRING(X@location@station,Y@...)"; feeds the
  /// cuboid-repository key.
  std::string CanonicalString() const;

 private:
  PatternKind kind_ = PatternKind::kSubstring;
  std::vector<std::string> symbols_;
  std::vector<PatternDim> dims_;
  std::vector<int> dim_of_;
  std::vector<int> first_pos_;
  std::vector<std::vector<uint32_t>> positions_of_dim_;  // per dim, ascending
};

}  // namespace solap

#endif  // SOLAP_PATTERN_PATTERN_TEMPLATE_H_
