// Regular-expression pattern templates — the §3.2 extension the paper
// leaves open: "the current S-cuboid specification only supports substring
// or subsequence pattern templates. It can be extended so that pattern
// templates of regular expressions can be supported."
//
// A regex template matches *contiguous* runs of a sequence against a
// regular expression whose atoms are:
//   X            a pattern symbol: binds dimension X; every occurrence of
//                X inside one match must carry the same value
//   'Pentagon'   a literal value of the template's domain
//   .            wildcard: any value, no binding
// combined with concatenation, alternation `|`, grouping `( )` and the
// quantifiers `*`, `+`, `?`. Example — "commuters who hop through any
// number of intermediate stations and return":
//
//     X ( . )* X        with X AS location AT station
//
// Cell coordinates are the symbol bindings; a symbol that an accepting
// path never visits (one arm of an alternation) binds the null value,
// displayed as "*". All pattern dimensions of one regex template share a
// single domain (attribute @ level).
//
// Matching compiles the expression to a Thompson NFA and enumerates
// accepting (start, end, bindings) triples by depth-first search with
// binding backtracking; epsilon cycles are pruned per (state, position).
#ifndef SOLAP_PATTERN_REGEX_H_
#define SOLAP_PATTERN_REGEX_H_

#include <span>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/pattern/pattern_template.h"

namespace solap {

/// \brief A parsed, compiled regex template (literals still unresolved —
/// they are labels until bound against a group's dictionary).
class RegexTemplate {
 public:
  /// Empty template; invalid until assigned from Parse(). Exists so owning
  /// structs can be default-constructed.
  RegexTemplate() = default;

  /// Parses `pattern` against the declared dimensions. Every identifier in
  /// the pattern must name a declared symbol; every dimension must share
  /// the same attribute/level (the template's domain).
  static Result<RegexTemplate> Parse(const std::string& pattern,
                                     std::vector<PatternDim> dims);

  const std::string& pattern() const { return pattern_; }
  const std::vector<PatternDim>& dims() const { return dims_; }
  size_t num_dims() const { return dims_.size(); }
  /// The shared domain of all symbols and literals.
  const LevelRef& domain() const { return dims_.front().ref; }
  /// Literal labels appearing in the pattern, in first-use order.
  const std::vector<std::string>& literal_labels() const {
    return literal_labels_;
  }

  /// Edge kinds of the compiled NFA.
  enum class EdgeKind : uint8_t { kEpsilon, kSymbol, kLiteral, kAny };
  struct Edge {
    EdgeKind kind;
    int target;
    int index;  ///< dimension index (kSymbol) or literal ordinal (kLiteral)
  };

  const std::vector<std::vector<Edge>>& states() const { return states_; }
  int start_state() const { return start_; }
  int accept_state() const { return accept_; }

 private:
  std::string pattern_;
  std::vector<PatternDim> dims_;
  std::vector<std::string> literal_labels_;
  std::vector<std::vector<Edge>> states_;
  int start_ = 0;
  int accept_ = 0;
};

/// \brief A RegexTemplate bound to concrete data: literal labels resolved
/// to codes, ready to enumerate matches over symbol-code spans.
class BoundRegex {
 public:
  /// `literal_codes[i]` is the code of literal_labels()[i] in the target
  /// domain (kNullCode for unknown labels: those edges never fire).
  BoundRegex(const RegexTemplate* tmpl, std::vector<Code> literal_codes)
      : tmpl_(tmpl), literal_codes_(std::move(literal_codes)) {}

  /// Enumerates accepting matches over `seq` in order of (start, end):
  /// `fn(start, end, bindings)` where `bindings` has num_dims() codes
  /// (kNullCode = dimension unbound on the accepting path). Return false
  /// from `fn` to stop. Matches are deduplicated per (start, end,
  /// bindings).
  template <typename Fn>
  void ForEachMatch(std::span<const Code> seq, Fn&& fn) const;

 private:
  template <typename Fn>
  bool MatchFrom(std::span<const Code> seq, uint32_t start, Fn&& fn) const;

  const RegexTemplate* tmpl_;
  std::vector<Code> literal_codes_;
};

// ---------------------------------------------------------------------------

template <typename Fn>
void BoundRegex::ForEachMatch(std::span<const Code> seq, Fn&& fn) const {
  for (uint32_t start = 0; start < seq.size(); ++start) {
    if (!MatchFrom(seq, start, fn)) return;
  }
}

template <typename Fn>
bool BoundRegex::MatchFrom(std::span<const Code> seq, uint32_t start,
                           Fn&& fn) const {
  const auto& states = tmpl_->states();
  const size_t n_dims = tmpl_->num_dims();
  std::vector<Code> bindings(n_dims, kNullCode);
  // Epsilon-cycle guard: a (state, pos) pair revisited without consuming
  // input within one DFS path means an epsilon loop (bindings cannot have
  // changed since the position did not advance).
  std::vector<uint8_t> on_path(states.size() * (seq.size() + 1), 0);
  bool keep_going = true;
  // Dedup of emitted (end, bindings) for this start.
  std::vector<std::pair<uint32_t, std::vector<Code>>> emitted;

  auto rec = [&](auto&& self, int state, uint32_t pos) -> void {
    if (!keep_going) return;
    if (state == tmpl_->accept_state() && pos > start) {
      bool fresh = true;
      for (const auto& [e, b] : emitted) {
        if (e == pos && b == bindings) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        emitted.emplace_back(pos, bindings);
        if (!fn(start, pos, bindings.data())) {
          keep_going = false;
          return;
        }
      }
    }
    const size_t guard = static_cast<size_t>(state) * (seq.size() + 1) + pos;
    if (on_path[guard]) return;
    on_path[guard] = 1;
    for (const RegexTemplate::Edge& edge : states[state]) {
      if (!keep_going) break;
      switch (edge.kind) {
        case RegexTemplate::EdgeKind::kEpsilon:
          self(self, edge.target, pos);
          break;
        case RegexTemplate::EdgeKind::kAny:
          if (pos < seq.size()) self(self, edge.target, pos + 1);
          break;
        case RegexTemplate::EdgeKind::kLiteral:
          if (pos < seq.size() &&
              seq[pos] == literal_codes_[edge.index]) {
            self(self, edge.target, pos + 1);
          }
          break;
        case RegexTemplate::EdgeKind::kSymbol: {
          if (pos >= seq.size()) break;
          Code& slot = bindings[edge.index];
          if (slot == kNullCode) {
            slot = seq[pos];
            self(self, edge.target, pos + 1);
            slot = kNullCode;  // backtrack
          } else if (slot == seq[pos]) {
            self(self, edge.target, pos + 1);
          }
          break;
        }
      }
    }
    on_path[guard] = 0;
  };
  rec(rec, tmpl_->start_state(), start);
  return keep_going;
}

}  // namespace solap

#endif  // SOLAP_PATTERN_REGEX_H_
