#include "solap/service/shard_supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "solap/net/http_client.h"

namespace solap {

namespace {

/// True when `pid` has exited (reaped here). WNOHANG so the monitor loop
/// never blocks on a live child.
bool TryReap(pid_t pid) {
  if (pid <= 0) return false;
  int status = 0;
  return ::waitpid(pid, &status, WNOHANG) == pid;
}

}  // namespace

ShardSupervisor::ShardSupervisor(std::vector<ShardProcessSpec> specs,
                                 ShardSupervisorOptions options,
                                 MetricsRegistry* metrics)
    : specs_(std::move(specs)), options_(options) {
  if (metrics != nullptr) {
    restarts_counter_ = metrics->counter("shard_restarts");
  }
  states_.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    states_.push_back(std::make_unique<ShardState>());
  }
  endpoints_.resize(specs_.size());
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

Status ShardSupervisor::Spawn(size_t i) {
  ShardState& st = *states_[i];
  // Stale port files would make ReadPortFile report the PREVIOUS
  // incarnation's port as if the new child were up.
  std::remove(specs_[i].port_file.c_str());

  // Build the argv before fork: only async-signal-safe calls are legal in
  // the child of a multithreaded parent.
  std::vector<std::string> args = specs_[i].args;
  args.push_back("--port");
  args.push_back(std::to_string(st.port));  // 0 on first launch = ephemeral
  args.push_back("--port-file");
  args.push_back(specs_[i].port_file);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed for shard " +
                                       std::to_string(i));
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the monitor sees the exit and backs off
  }
  st.pid.store(pid);
  st.awaiting_start = true;
  st.spawn_deadline = std::chrono::steady_clock::now() +
                      options_.startup_deadline;
  return Status::OK();
}

Result<uint16_t> ShardSupervisor::ReadPortFile(size_t i) {
  std::ifstream in(specs_[i].port_file);
  if (!in) return Status::Unavailable("port file not written yet");
  long port = 0;
  in >> port;
  if (!in || port <= 0 || port > 65535) {
    return Status::Unavailable("port file not complete yet");
  }
  return static_cast<uint16_t>(port);
}

Status ShardSupervisor::Probe(size_t i) {
  auto resp = net::HttpExchange(
      specs_[i].host, endpoints_[i].port, "GET", "/healthz", "", {},
      std::chrono::steady_clock::now() + options_.health_timeout);
  if (!resp.ok()) return resp.status();
  if (resp->status != 200) {
    return Status::Unavailable("healthz answered " +
                               std::to_string(resp->status));
  }
  return Status::OK();
}

void ShardSupervisor::SetHealthy(size_t i, bool healthy) {
  const bool was = states_[i]->healthy.exchange(healthy);
  if (was == healthy) return;
  HealthFn fn;
  {
    std::lock_guard<std::mutex> lock(health_fn_mu_);
    fn = health_fn_;
  }
  if (fn) fn(i, healthy);
}

bool ShardSupervisor::ReapIfDead(size_t i) {
  ShardState& st = *states_[i];
  const pid_t pid = st.pid.load();
  if (!TryReap(pid)) return false;
  st.pid.store(-1);
  st.awaiting_start = false;
  return true;
}

Status ShardSupervisor::Start() {
  if (started_) return Status::InvalidArgument("supervisor already started");
  started_ = true;

  for (size_t i = 0; i < specs_.size(); ++i) {
    Status s = Spawn(i);
    if (!s.ok()) {
      KillAll();
      return s;
    }
  }

  // Confirm every shard: port file written, pinned, first probe green.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.startup_deadline;
  for (size_t i = 0; i < specs_.size(); ++i) {
    ShardState& st = *states_[i];
    for (;;) {
      if (ReapIfDead(i)) {
        KillAll();
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " exited during startup");
      }
      auto port = ReadPortFile(i);
      if (port.ok()) {
        st.port = *port;  // pin: restarts reuse this port
        endpoints_[i] = ShardEndpoint{specs_[i].host, *port};
        if (Probe(i).ok()) break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        KillAll();
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " did not become healthy in time");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    st.awaiting_start = false;
    SetHealthy(i, true);
  }

  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void ShardSupervisor::MonitorLoop() {
  while (!stopping_.load()) {
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < specs_.size(); ++i) {
      ShardState& st = *states_[i];

      if (st.pid.load() > 0 && ReapIfDead(i)) {
        SetHealthy(i, false);
        st.backoff = st.backoff.count() == 0
                         ? options_.restart_backoff
                         : std::min(st.backoff * 2,
                                    options_.max_restart_backoff);
        st.next_spawn = now + st.backoff;
        continue;
      }

      if (st.pid.load() <= 0) {
        // Dead and waiting out the restart backoff.
        if (now >= st.next_spawn && !stopping_.load()) {
          if (Spawn(i).ok()) {
            restarts_.fetch_add(1);
            if (restarts_counter_ != nullptr) restarts_counter_->Inc();
          } else {
            st.next_spawn = now + options_.restart_backoff;
          }
        }
        continue;
      }

      if (st.awaiting_start) {
        // Restarted child: wait for its (pinned-port) listener, confirmed
        // by the port file reappearing AND a green probe.
        if (ReadPortFile(i).ok() && Probe(i).ok()) {
          st.awaiting_start = false;
          st.consecutive_failures = 0;
          st.backoff = std::chrono::milliseconds(0);
          SetHealthy(i, true);
        } else if (now >= st.spawn_deadline) {
          // Wedged at startup: kill and let the reap path reschedule.
          ::kill(st.pid.load(), SIGKILL);
        }
        continue;
      }

      if (Probe(i).ok()) {
        st.consecutive_failures = 0;
        SetHealthy(i, true);
      } else if (++st.consecutive_failures >= options_.unhealthy_after) {
        SetHealthy(i, false);
      }
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

void ShardSupervisor::KillAll() {
  // SIGTERM everyone first (parallel grace), then escalate.
  for (auto& st : states_) {
    const pid_t pid = st->pid.load();
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  const auto grace_end =
      std::chrono::steady_clock::now() + options_.stop_grace;
  for (auto& st : states_) {
    pid_t pid = st->pid.load();
    if (pid <= 0) continue;
    for (;;) {
      if (TryReap(pid)) break;
      if (std::chrono::steady_clock::now() >= grace_end) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    st->pid.store(-1);
  }
}

void ShardSupervisor::Stop() {
  if (!started_) return;
  stopping_.store(true);
  if (monitor_.joinable()) monitor_.join();
  KillAll();
  started_ = false;
}

}  // namespace solap
