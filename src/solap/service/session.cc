#include "solap/service/session.h"

#include <utility>

#include "solap/engine/operations.h"

namespace solap {

SessionManager::SessionManager(const HierarchyRegistry* hierarchies,
                               SessionManagerOptions options, Clock clock)
    : hierarchies_(hierarchies),
      options_(options),
      clock_(clock != nullptr
                 ? std::move(clock)
                 : [] { return std::chrono::steady_clock::now(); }) {}

SessionId SessionManager::Open(CuboidSpec initial) {
  std::lock_guard<std::mutex> lock(mu_);
  ExpireStaleLocked();
  while (options_.max_sessions > 0 &&
         sessions_.size() >= options_.max_sessions) {
    SessionId victim = lru_.back();
    lru_.pop_back();
    sessions_.erase(victim);
  }
  SessionId id = next_id_++;
  lru_.push_front(id);
  sessions_.emplace(
      id, Session{std::move(initial), clock_(), lru_.begin()});
  return id;
}

Result<CuboidSpec> SessionManager::Apply(SessionId id, const SessionOp& op) {
  std::lock_guard<std::mutex> lock(mu_);
  ExpireStaleLocked();
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(id) +
                            " (closed or expired)");
  }
  SOLAP_ASSIGN_OR_RETURN(CuboidSpec next, ApplyOp(it->second.spec, op));
  it->second.spec = next;
  TouchLocked(it->second);
  return next;
}

Result<CuboidSpec> SessionManager::Current(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ExpireStaleLocked();
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(id) +
                            " (closed or expired)");
  }
  TouchLocked(it->second);
  return it->second.spec;
}

void SessionManager::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  lru_.erase(it->second.lru_pos);
  sessions_.erase(it);
}

size_t SessionManager::NumSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionManager::ExpireStaleLocked() {
  if (options_.ttl.count() <= 0) return;
  const auto now = clock_();
  while (!lru_.empty()) {
    auto it = sessions_.find(lru_.back());
    if (now - it->second.last_touch < options_.ttl) break;
    sessions_.erase(it);
    lru_.pop_back();
  }
}

void SessionManager::TouchLocked(Session& s) {
  s.last_touch = clock_();
  lru_.splice(lru_.begin(), lru_, s.lru_pos);
}

Result<CuboidSpec> SessionManager::ApplyOp(const CuboidSpec& spec,
                                           const SessionOp& op) {
  if (op.op == "append") {
    return ops::Append(spec, op.symbol, op.ref);
  }
  if (op.op == "prepend") {
    return ops::Prepend(spec, op.symbol, op.ref);
  }
  if (op.op == "detail") {
    return ops::DeTail(spec);
  }
  if (op.op == "dehead") {
    return ops::DeHead(spec);
  }
  if (op.op == "prollup") {
    if (!op.level.empty()) return ops::PRollUpTo(spec, op.symbol, op.level);
    if (hierarchies_ == nullptr) {
      return Status::InvalidArgument(
          "one-step prollup needs a hierarchy registry");
    }
    return ops::PRollUp(spec, op.symbol, *hierarchies_);
  }
  if (op.op == "pdrilldown") {
    if (!op.level.empty()) {
      return ops::PDrillDownTo(spec, op.symbol, op.level);
    }
    if (hierarchies_ == nullptr) {
      return Status::InvalidArgument(
          "one-step pdrilldown needs a hierarchy registry");
    }
    return ops::PDrillDown(spec, op.symbol, *hierarchies_);
  }
  if (op.op == "slice") {
    return ops::SlicePattern(spec, op.symbol, op.labels, op.level);
  }
  return Status::InvalidArgument(
      "unknown session operation '" + op.op +
      "' (append|prepend|detail|dehead|prollup|pdrilldown|slice)");
}

}  // namespace solap
