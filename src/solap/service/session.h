// Client sessions for the query service. A session is the service-side
// embodiment of the paper's iterative query model (§3.3, §5.2): a client
// holds a current CuboidSpec and refines it step by step with the S-OLAP
// operations (APPEND, PREPEND, DE-TAIL, DE-HEAD, P-ROLL-UP, P-DRILL-DOWN,
// slice). Keeping the spec server-side is what makes the engine's index
// caches pay off — consecutive specs of one session differ by one
// operation, exactly the reuse pattern the II strategy exploits.
#ifndef SOLAP_SERVICE_SESSION_H_
#define SOLAP_SERVICE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/status.h"
#include "solap/cube/cuboid_spec.h"
#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {

using SessionId = uint64_t;

/// One iterative step, named after the paper's operations.
struct SessionOp {
  /// append | prepend | detail | dehead | prollup | pdrilldown | slice.
  std::string op;
  /// Pattern symbol the operation targets (append/prepend: the new symbol).
  std::string symbol;
  /// Domain of a newly appended/prepended symbol (existing symbols: empty).
  LevelRef ref;
  /// Explicit level for prollup/pdrilldown/slice ("" = one step / current).
  std::string level;
  /// Slice labels.
  std::vector<std::string> labels;
};

/// Tuning knobs of the session table.
struct SessionManagerOptions {
  /// Oldest session is evicted when a new Open would exceed this.
  size_t max_sessions = 64;
  /// Sessions idle longer than this are expired lazily (0 = never).
  std::chrono::milliseconds ttl{std::chrono::minutes(30)};
};

/// \brief Table of live sessions with LRU capacity eviction and TTL expiry.
///
/// Thread-safe: all public calls lock an internal mutex (session state is
/// tiny — a spec and a timestamp — so the critical sections are short).
/// Expiry is lazy: stale sessions are collected at the next public call,
/// so no background reaper thread is needed.
class SessionManager {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// `hierarchies` drives the one-step P-ROLL-UP / P-DRILL-DOWN forms.
  /// `clock` is injectable for TTL tests; defaults to steady_clock::now.
  explicit SessionManager(const HierarchyRegistry* hierarchies,
                          SessionManagerOptions options = {},
                          Clock clock = nullptr);

  /// Opens a session whose first query is `initial`. Evicts the least
  /// recently used session when at capacity.
  SessionId Open(CuboidSpec initial);

  /// Applies one iterative operation to the session's current spec and
  /// returns the new current spec. The spec is only replaced when the
  /// operation succeeds, so a failed step leaves the session intact.
  Result<CuboidSpec> Apply(SessionId id, const SessionOp& op);

  /// The session's current spec (refreshes recency).
  Result<CuboidSpec> Current(SessionId id);

  /// Closes the session; unknown ids are a no-op (idempotent).
  void Close(SessionId id);

  size_t NumSessions() const;

 private:
  struct Session {
    CuboidSpec spec;
    std::chrono::steady_clock::time_point last_touch;
    std::list<SessionId>::iterator lru_pos;
  };

  // All callees below require mu_ to be held.
  void ExpireStaleLocked();
  void TouchLocked(Session& s);
  Result<CuboidSpec> ApplyOp(const CuboidSpec& spec, const SessionOp& op);

  const HierarchyRegistry* hierarchies_;
  SessionManagerOptions options_;
  Clock clock_;

  mutable std::mutex mu_;
  SessionId next_id_ = 1;
  std::unordered_map<SessionId, Session> sessions_;
  std::list<SessionId> lru_;  // front = most recently used
};

}  // namespace solap

#endif  // SOLAP_SERVICE_SESSION_H_
