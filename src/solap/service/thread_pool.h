// Fixed-size worker pool for the query service: a bounded crew of threads
// draining a FIFO task queue. Deliberately minimal — admission control,
// deadlines and metrics live in QueryService, which composes this pool
// rather than burying policy inside it.
#ifndef SOLAP_SERVICE_THREAD_POOL_H_
#define SOLAP_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace solap {

/// \brief Fixed-size thread pool with a FIFO work queue.
///
/// Tasks submitted after Shutdown() are rejected (Submit returns false);
/// tasks already queued at Shutdown() are drained before the workers exit,
/// so a graceful stop never drops accepted work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker. Returns false if the
  /// pool is shutting down (the task is not run).
  bool Submit(std::function<void()> task);

  /// Stops accepting work, drains the queue and joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks accepted but not yet started (approximate once returned).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace solap

#endif  // SOLAP_SERVICE_THREAD_POOL_H_
