#include "solap/service/query_service.h"

#include <thread>
#include <utility>

#include "solap/common/failpoint.h"
#include "solap/storage/io.h"

namespace solap {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

QueryService::QueryService(SOlapEngine* engine, ServiceOptions options)
    : QueryService(std::make_unique<ShardedEngine>(engine), options) {}

QueryService::QueryService(std::unique_ptr<ShardedEngine> owned,
                           ServiceOptions options)
    : QueryService(owned.get(), options) {
  owned_engine_ = std::move(owned);
}

QueryService::QueryService(ShardedEngine* engine, ServiceOptions options)
    : engine_(engine),
      options_(options),
      sessions_(engine->hierarchies(), options.sessions),
      submitted_(metrics_.counter("queries_submitted")),
      ok_(metrics_.counter("queries_ok")),
      errors_(metrics_.counter("queries_error")),
      shed_(metrics_.counter("queries_shed")),
      timeouts_(metrics_.counter("queries_timeout")),
      cancelled_(metrics_.counter("queries_cancelled")),
      repo_hits_(metrics_.counter("repository_hits")),
      index_hits_(metrics_.counter("index_cache_hits")),
      seqs_scanned_(metrics_.counter("sequences_scanned")),
      degraded_(metrics_.counter("degraded_queries")),
      container_array_ops_(metrics_.counter("ii_container_array_ops")),
      container_bitmap_ops_(metrics_.counter("ii_container_bitmap_ops")),
      container_run_ops_(metrics_.counter("ii_container_run_ops")),
      container_gallop_ops_(metrics_.counter("ii_container_gallop_ops")),
      shard_scatters_(metrics_.counter("shard_scatters")),
      shard_partials_(metrics_.counter("shard_partials")),
      shard_merged_cells_(metrics_.counter("shard_merged_cells")),
      shard_fallbacks_(metrics_.counter("shard_fallbacks")),
      shard_rpc_retries_(metrics_.counter("shard_rpc_retries")),
      shard_rpc_hedges_(metrics_.counter("shard_rpc_hedges")),
      partial_answers_(metrics_.counter("partial_answers")),
      ingest_events_(metrics_.counter("ingest_events")),
      delta_merges_(metrics_.counter("delta_merges")),
      stale_cuboid_invalidations_(
          metrics_.counter("stale_cuboid_invalidations")),
      mem_used_(metrics_.gauge("mem_used_bytes")),
      mem_budget_(metrics_.gauge("mem_budget_bytes")),
      mem_rejects_(metrics_.gauge("mem_budget_rejects")),
      io_retries_(metrics_.gauge("io_retries")),
      epoch_gauge_(metrics_.gauge("epoch")),
      delta_segments_(metrics_.gauge("delta_segments")),
      queue_depth_(metrics_.histogram("queue_depth")),
      wait_ms_(metrics_.histogram("queue_wait_ms")),
      exec_cb_(metrics_.histogram("exec_ms_cb")),
      exec_ii_(metrics_.histogram("exec_ms_ii")),
      exec_auto_(metrics_.histogram("exec_ms_auto")),
      pool_(options.num_threads) {}

QueryService::~QueryService() { Shutdown(); }

QueryService::Ticket QueryService::Submit(const CuboidSpec& spec,
                                          SubmitOptions opts) {
  const auto admit_start = std::chrono::steady_clock::now();
  submitted_->Inc();
  auto canceller = std::make_shared<StopSource>();
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  Ticket ticket{promise->get_future(), canceller};

  auto shed = [&](Status why) {
    shed_->Inc();
    QueryResponse resp;
    resp.status = std::move(why);
    promise->set_value(std::move(resp));
  };

  if (shutdown_.load(std::memory_order_acquire)) {
    shed(Status::ResourceExhausted("query service is shut down"));
    return ticket;
  }
  // Lame duck (BeginDrain): reject new work with a distinct code so the
  // network layer can answer 503 instead of the overload 429.
  if (draining_.load(std::memory_order_acquire)) {
    shed(Status::Unavailable("query service is draining"));
    return ticket;
  }
  // Chaos hook: an armed "service.submit" failpoint sheds the query at
  // admission, exercising the same path as a saturated queue.
  if (Status injected = SOLAP_FAILPOINT_CHECK("service.submit");
      !injected.ok()) {
    shed(std::move(injected));
    return ticket;
  }
  // Admission control: pending counts queued + executing queries. The
  // increment reserves a slot before the capacity check so that racing
  // submitters cannot all slip under the bound.
  size_t depth = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.max_queue_depth > 0 && depth >= options_.max_queue_depth) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    shed(Status::ResourceExhausted("query queue is full (" +
                                   std::to_string(depth) + " pending)"));
    return ticket;
  }
  // Recorded in plain units: the "ms" columns of the rendering read as
  // queries pending at admission time.
  queue_depth_->ObserveMs(static_cast<double>(depth));

  std::chrono::milliseconds timeout =
      opts.timeout.count() > 0 ? opts.timeout : options_.default_timeout;
  canceller->SetTimeout(timeout);

  // Trace sampling decision happens at admission so a sampled context's
  // epoch precedes the queue wait it measures. Explicit sinks win.
  std::shared_ptr<TraceContext> sampled;
  if (opts.trace == nullptr && options_.trace_sample_every > 0) {
    const uint64_t seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
    if (seq % options_.trace_sample_every == 0) {
      sampled = std::make_shared<TraceContext>();
    }
  }
  if (opts.trace != nullptr) {
    opts.trace->AddTimedSpan("service.admission", admit_start,
                             std::chrono::steady_clock::now(), -1);
  }

  const auto submitted_at = std::chrono::steady_clock::now();
  bool queued = pool_.Submit([this, spec, opts, stop = canceller->token(),
                              submitted_at, promise, sampled]() mutable {
    Execute(spec, opts, std::move(stop), submitted_at, std::move(promise),
            std::move(sampled));
  });
  if (!queued) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    shed(Status::ResourceExhausted("query service is shut down"));
  }
  return ticket;
}

QueryResponse QueryService::Run(const CuboidSpec& spec, SubmitOptions opts) {
  return Submit(spec, opts).response.get();
}

void QueryService::Execute(
    const CuboidSpec& spec, SubmitOptions opts, StopToken stop,
    std::chrono::steady_clock::time_point submitted,
    std::shared_ptr<std::promise<QueryResponse>> promise,
    std::shared_ptr<TraceContext> sampled) {
  QueryResponse resp;
  const auto started = std::chrono::steady_clock::now();
  resp.wait_ms = MsBetween(submitted, started);
  wait_ms_->ObserveMs(resp.wait_ms);
  TraceContext* trace = opts.trace != nullptr ? opts.trace : sampled.get();
  if (trace != nullptr) {
    trace->AddTimedSpan("service.queue_wait", submitted, started, -1);
  }

  auto finish = [&] {
    const Status& st = resp.status;
    if (st.ok()) {
      ok_->Inc();
    } else if (st.code() == StatusCode::kDeadlineExceeded) {
      timeouts_->Inc();
    } else if (st.code() == StatusCode::kCancelled) {
      cancelled_->Inc();
    } else {
      errors_->Inc();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    promise->set_value(std::move(resp));
  };

  if (shutdown_.load(std::memory_order_acquire)) {
    resp.status = Status::Cancelled("query service shut down before start");
    finish();
    return;
  }
  // A query whose deadline passed while queued is failed without touching
  // the engine — under overload this sheds work instead of burning the
  // pool on answers nobody is waiting for.
  resp.status = stop.Check("query");
  if (!resp.status.ok()) {
    finish();
    return;
  }

  const bool flight = options_.single_flight;
  const std::string key = flight ? spec.CanonicalString() : std::string();
  // Duplicates of an in-flight spec wait for the executor, then run the
  // engine themselves and land on the freshly cached cuboid — the same
  // miss-then-hits accounting a sequential client would see.
  const bool holder = flight ? EnterFlight(key) : false;

  ExecControl control;
  control.stop = &stop;
  control.stats_out = &resp.stats;
  control.trace = trace;
  control.missing_shards = &resp.missing_shards;
  const auto exec_start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const SCuboid>> result = [&] {
    // Engine spans (optimize, exec.cb/ii, ...) open on this thread while
    // the frame is live, so they nest under service.execute.
    TraceSpan exec_span(trace, "service.execute");
    exec_span.Note("strategy", StrategyName(opts.strategy));
    return engine_->Execute(spec, opts.strategy, control);
  }();
  resp.exec_ms = MsBetween(exec_start, std::chrono::steady_clock::now());

  if (holder) FinishFlight(key);
  if (sampled != nullptr) {
    std::lock_guard<std::mutex> lock(sampled_mu_);
    sampled_trace_ = std::move(sampled);
  }

  switch (opts.strategy) {
    case ExecStrategy::kCounterBased:
      exec_cb_->ObserveMs(resp.exec_ms);
      break;
    case ExecStrategy::kInvertedIndex:
      exec_ii_->ObserveMs(resp.exec_ms);
      break;
    case ExecStrategy::kAuto:
      exec_auto_->ObserveMs(resp.exec_ms);
      break;
  }
  repo_hits_->Inc(resp.stats.repository_hits);
  index_hits_->Inc(resp.stats.index_cache_hits);
  seqs_scanned_->Inc(resp.stats.sequences_scanned);
  degraded_->Inc(resp.stats.degraded_queries);
  container_array_ops_->Inc(resp.stats.container_array_ops);
  container_bitmap_ops_->Inc(resp.stats.container_bitmap_ops);
  container_run_ops_->Inc(resp.stats.container_run_ops);
  container_gallop_ops_->Inc(resp.stats.container_gallop_ops);
  shard_scatters_->Inc(resp.stats.shard_scatters);
  shard_partials_->Inc(resp.stats.shard_partials);
  shard_merged_cells_->Inc(resp.stats.shard_merged_cells);
  shard_fallbacks_->Inc(resp.stats.shard_fallbacks);
  shard_rpc_retries_->Inc(resp.stats.shard_rpc_retries);
  shard_rpc_hedges_->Inc(resp.stats.shard_rpc_hedges);
  partial_answers_->Inc(resp.stats.partial_answers);

  if (result.ok()) {
    resp.cuboid = *std::move(result);
  } else {
    resp.status = result.status();
  }
  finish();
}

bool QueryService::EnterFlight(const std::string& key) {
  std::shared_ptr<FlightGate> gate;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flights_.emplace(key, std::make_shared<FlightGate>());
      return true;
    }
    gate = it->second;
  }
  std::unique_lock<std::mutex> glock(gate->mu);
  gate->cv.wait(glock, [&] { return gate->done; });
  return false;
}

void QueryService::FinishFlight(const std::string& key) {
  std::shared_ptr<FlightGate> gate;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    gate = std::move(it->second);
    flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> glock(gate->mu);
    gate->done = true;
  }
  gate->cv.notify_all();
}

SessionId QueryService::OpenSession(CuboidSpec initial) {
  return sessions_.Open(std::move(initial));
}

Result<QueryService::Ticket> QueryService::SubmitSessionOp(
    SessionId id, const SessionOp& op, SubmitOptions opts) {
  TraceSpan span(opts.trace, "service.session_op");
  SOLAP_ASSIGN_OR_RETURN(CuboidSpec spec, sessions_.Apply(id, op));
  span.End();
  return Submit(spec, opts);
}

Result<QueryService::Ticket> QueryService::SubmitSessionCurrent(
    SessionId id, SubmitOptions opts) {
  TraceSpan span(opts.trace, "service.session_op");
  SOLAP_ASSIGN_OR_RETURN(CuboidSpec spec, sessions_.Current(id));
  span.End();
  return Submit(spec, opts);
}

void QueryService::CloseSession(SessionId id) { sessions_.Close(id); }

void QueryService::RefreshResourceMetrics() {
  mem_used_->Set(engine_->MemUsed());
  mem_budget_->Set(engine_->MemBudget());
  mem_rejects_->Set(engine_->MemRejects());
  io_retries_->Set(SnapshotIoRetries());
  epoch_gauge_->Set(engine_->epoch());
  delta_segments_->Set(engine_->DeltaSnapshot().segments);
  // The background merger and the ingest path advance engine totals off
  // any service thread; publish the monotone diff since the last refresh.
  const ScanStats totals = engine_->StatsSnapshot();
  std::lock_guard<std::mutex> lock(ingest_metrics_mu_);
  delta_merges_->Inc(totals.delta_merges - last_delta_merges_);
  last_delta_merges_ = totals.delta_merges;
  stale_cuboid_invalidations_->Inc(totals.stale_cuboid_invalidations -
                                   last_stale_invalidations_);
  last_stale_invalidations_ = totals.stale_cuboid_invalidations;
}

QueryService::IngestResult QueryService::Ingest(
    const std::vector<std::vector<Value>>& rows, TraceContext* trace) {
  IngestResult out;
  if (shutdown_.load(std::memory_order_acquire)) {
    out.status = Status::Unavailable("query service is shut down");
    return out;
  }
  if (draining_.load(std::memory_order_acquire)) {
    out.status = Status::Unavailable("query service is draining");
    return out;
  }
  out.status = engine_->IngestRows(rows, trace);
  if (out.status.ok()) {
    out.events = rows.size();
    out.epoch = engine_->epoch();
    ingest_events_->Inc(rows.size());
  }
  return out;
}

Status QueryService::EvictBefore(const std::string& order_attr,
                                 int64_t cutoff) {
  return engine_->EvictBefore(order_attr, cutoff);
}

Status QueryService::MergeDeltasNow() { return engine_->MergeDeltasNow(); }

void QueryService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

bool QueryService::WaitIdle(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // pending_ is a plain atomic with no condition variable; polling keeps
  // the hot Submit/Execute paths free of extra synchronization, and drain
  // is a once-per-process event where a few ms of latency is irrelevant.
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

void QueryService::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  // Drains the queue: tasks still queued observe shutdown_ at start and
  // resolve their promises with kCancelled without executing.
  pool_.Shutdown();
}

}  // namespace solap
