// The shard supervisor: spawns one shard-server process per slice
// (tools/shard_main.cc), health-checks them over GET /healthz, restarts
// crashed or wedged processes with their slice, and reports health flips
// to the coordinator (ShardedEngine::SetShardHealthy) so scatters skip a
// dead shard instead of burning retry budget against a closed port.
//
// Port handshake: every shard is first launched with `--port 0
// --port-file <path>` and the supervisor reads the ephemeral port from the
// file (written tmp+rename by shard_main, so a poll never sees a torn
// write). The port is then PINNED — restarts relaunch with `--port <same>`
// (the listener sets SO_REUSEADDR) — so the coordinator's per-shard
// endpoints stay valid across restarts without re-registration.
//
// Failure discipline: a process exit is an immediate health-down; a live
// process failing `unhealthy_after` consecutive probes is treated the same
// (wedged ≈ dead). Restarts back off exponentially (restart_backoff
// doubling to max_restart_backoff) so a crash-looping shard cannot consume
// the box, and each one counts into the `shard_restarts` counter.
#ifndef SOLAP_SERVICE_SHARD_SUPERVISOR_H_
#define SOLAP_SERVICE_SHARD_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "solap/common/metrics.h"
#include "solap/common/status.h"
#include "solap/engine/remote_shard.h"

namespace solap {

/// How to launch one shard process. `args` is the full argv (binary path
/// first, e.g. {"./shard_main", "--table", "t.solap", "--shard", "0",
/// "--num-shards", "2"}) WITHOUT --port/--port-file — the supervisor owns
/// those (see the port handshake above).
struct ShardProcessSpec {
  std::vector<std::string> args;
  std::string host = "127.0.0.1";
  /// Where shard_main writes its bound port. Must be writable and unique
  /// per shard.
  std::string port_file;
};

struct ShardSupervisorOptions {
  /// Monitor loop cadence (process reap + health probe).
  std::chrono::milliseconds poll_interval{100};
  /// Per-probe /healthz budget.
  std::chrono::milliseconds health_timeout{250};
  /// Consecutive failed probes before a live process counts as down.
  int unhealthy_after = 3;
  /// First restart delay; doubles per consecutive restart, capped below.
  std::chrono::milliseconds restart_backoff{200};
  std::chrono::milliseconds max_restart_backoff{2000};
  /// Budget for a (re)started process to write its port file and answer
  /// its first probe.
  std::chrono::milliseconds startup_deadline{10000};
  /// Stop(): grace between SIGTERM and SIGKILL.
  std::chrono::milliseconds stop_grace{2000};
};

/// \brief Process supervisor for a fleet of shard servers.
///
/// Lifecycle: construct → Start() → endpoints() feed
/// ShardedEngine::EnableRemoteScatter → SetHealthCallback (optional,
/// any time) → Stop() before the callback's target is destroyed.
/// Thread-safe after Start(): the monitor thread writes per-shard state
/// through atomics; accessors may be called from any thread.
class ShardSupervisor {
 public:
  /// (shard index, now healthy). Fired from the monitor thread on every
  /// health FLIP (not every probe); wire it to SetShardHealthy.
  using HealthFn = std::function<void(size_t, bool)>;

  explicit ShardSupervisor(std::vector<ShardProcessSpec> specs,
                           ShardSupervisorOptions options = {},
                           MetricsRegistry* metrics = nullptr);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// May be set at any time, from any thread (the monitor thread copies
  /// it under a lock before invoking). The callback's target must outlive
  /// the monitor: Stop() the supervisor before destroying the engine the
  /// callback feeds.
  void SetHealthCallback(HealthFn fn) {
    std::lock_guard<std::mutex> lock(health_fn_mu_);
    health_fn_ = std::move(fn);
  }

  /// Spawns every shard, waits for all ports and first-probe health within
  /// startup_deadline, then starts the monitor thread. On failure all
  /// spawned children are stopped and the error returned.
  Status Start();

  /// SIGTERM → stop_grace → SIGKILL every live child, join the monitor.
  /// Idempotent; implied by the destructor.
  void Stop();

  /// One endpoint per shard, ports pinned; valid after a successful Start.
  const std::vector<ShardEndpoint>& endpoints() const { return endpoints_; }

  /// Live pid of shard `i`, or -1 between death and respawn. Exposed so
  /// chaos tests can SIGKILL a specific shard.
  pid_t pid(size_t i) const { return states_[i]->pid.load(); }

  bool healthy(size_t i) const { return states_[i]->healthy.load(); }
  uint64_t restarts() const { return restarts_.load(); }
  size_t num_shards() const { return specs_.size(); }

 private:
  struct ShardState {
    std::atomic<pid_t> pid{-1};
    std::atomic<bool> healthy{false};
    uint16_t port = 0;  // pinned after the first successful start
    int consecutive_failures = 0;
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point next_spawn;
    std::chrono::steady_clock::time_point spawn_deadline;
    bool awaiting_start = false;  // spawned, port/health not yet confirmed
  };

  /// fork+execv shard `i` with --port (pinned or 0) and --port-file.
  Status Spawn(size_t i);
  /// Polls the port file; returns the port once readable.
  Result<uint16_t> ReadPortFile(size_t i);
  Status Probe(size_t i);
  void SetHealthy(size_t i, bool healthy);
  /// Reaps (WNOHANG) shard `i` if it exited; true when the process died.
  bool ReapIfDead(size_t i);
  void MonitorLoop();
  void KillAll();

  std::vector<ShardProcessSpec> specs_;
  ShardSupervisorOptions options_;
  HealthFn health_fn_;
  std::mutex health_fn_mu_;
  Counter* restarts_counter_ = nullptr;

  std::vector<std::unique_ptr<ShardState>> states_;
  std::vector<ShardEndpoint> endpoints_;
  std::atomic<uint64_t> restarts_{0};

  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace solap

#endif  // SOLAP_SERVICE_SHARD_SUPERVISOR_H_
