// The concurrent S-OLAP query service: turns one SOlapEngine into a
// multi-client endpoint. Queries are admitted against a bounded queue
// (overload sheds with ResourceExhausted rather than queueing unboundedly),
// executed on a fixed-size thread pool under per-query deadlines with
// cooperative cancellation, and measured into a MetricsRegistry. Client
// sessions (service/session.h) carry iterative query state so consecutive
// specs hit the engine's cuboid repository and index caches.
//
// Lock hierarchy (acquire strictly downward; see DESIGN.md "Service
// layer"): service single-flight map -> pool queue -> engine stats/cache
// maps -> repository / sequence cache / group index caches -> group view
// mutex -> hierarchy mutex. No callback ever re-enters the service, so the
// hierarchy is acyclic by construction.
#ifndef SOLAP_SERVICE_QUERY_SERVICE_H_
#define SOLAP_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "solap/common/metrics.h"
#include "solap/common/stop.h"
#include "solap/engine/engine.h"
#include "solap/engine/sharded_engine.h"
#include "solap/service/session.h"
#include "solap/common/thread_pool.h"

namespace solap {

/// Tuning knobs of the query service.
struct ServiceOptions {
  size_t num_threads = 4;
  /// Admission bound: queries submitted while this many are already
  /// pending (queued or executing) are shed with ResourceExhausted.
  size_t max_queue_depth = 64;
  /// Deadline applied to queries that do not set their own (0 = none).
  std::chrono::milliseconds default_timeout{0};
  /// Identical specs submitted concurrently execute once; the duplicates
  /// wait and are then served from the cuboid repository.
  bool single_flight = true;
  /// Trace sampling: every Nth submission records a span tree retrievable
  /// via LastSampledTrace(). 0 (the default) disables sampling — the hot
  /// path then never touches the tracing machinery.
  size_t trace_sample_every = 0;
  SessionManagerOptions sessions;
};

/// Per-submission overrides.
struct SubmitOptions {
  ExecStrategy strategy = ExecStrategy::kAuto;
  /// Overrides ServiceOptions::default_timeout when positive.
  std::chrono::milliseconds timeout{0};
  /// Caller-owned span sink (EXPLAIN ANALYZE). Must outlive the response
  /// future. Takes precedence over service-level sampling.
  TraceContext* trace = nullptr;
};

/// Everything the service knows about one answered query.
struct QueryResponse {
  Status status = Status::OK();
  std::shared_ptr<const SCuboid> cuboid;  // nullptr unless status.ok()
  /// This query's own counters (not the engine totals).
  ScanStats stats;
  /// Degraded-mode partial answers (distributed scatter, DESIGN.md §10):
  /// the shards whose slices are absent from `cuboid`. Empty = complete.
  std::vector<size_t> missing_shards;
  double wait_ms = 0;  // admission to start of execution
  double exec_ms = 0;  // execution only
};

/// \brief Concurrent query endpoint over one engine.
///
/// Routes through a ShardedEngine, so a service fronts one monolithic
/// executor or N shard-local executors transparently (the legacy
/// SOlapEngine constructor wraps the engine in a 1-shard delegate).
///
/// Thread-safe; Submit may be called from any thread. Destruction (or
/// Shutdown) stops admitting, cancels queued-but-unstarted queries and
/// joins the workers — every future obtained from Submit is fulfilled.
class QueryService {
 public:
  /// `engine` must outlive the service and not receive mutating admin
  /// calls (AppendRawSequences / NotifyTableAppend) while queries run.
  QueryService(SOlapEngine* engine, ServiceOptions options = {});
  /// Sharded front: scattered queries, per-shard counters and scatter/
  /// gather spans flow through the service unchanged.
  QueryService(ShardedEngine* engine, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// A submitted query: the eventual response plus a cancel handle.
  struct Ticket {
    std::future<QueryResponse> response;
    /// Trips the query's stop token; the executor notices at its next
    /// cancellation poll and the response resolves with kCancelled.
    std::shared_ptr<StopSource> canceller;
  };

  /// Queues `spec` for execution. Sheds immediately (ResourceExhausted
  /// response, future already ready) when the service is saturated or
  /// shutting down.
  Ticket Submit(const CuboidSpec& spec, SubmitOptions opts = {});

  /// Blocking convenience: Submit + wait.
  QueryResponse Run(const CuboidSpec& spec, SubmitOptions opts = {});

  // -- Streaming ingestion ---------------------------------------------------

  /// Outcome of one ingest batch.
  struct IngestResult {
    Status status = Status::OK();
    size_t events = 0;   ///< rows appended (0 unless status.ok())
    uint64_t epoch = 0;  ///< engine epoch after the commit
  };

  /// Appends one batch of event rows through the engine's epoch-gated
  /// write path (docs/INGESTION.md). Runs on the CALLING thread — writers
  /// serialize on the engine gate instead of competing with queries for
  /// the pool — and is rejected with kUnavailable while draining or shut
  /// down. All-or-nothing per batch, like SOlapEngine::IngestRows.
  IngestResult Ingest(const std::vector<std::vector<Value>>& rows,
                      TraceContext* trace = nullptr);

  /// Time-window retention fan-in; see SOlapEngine::EvictBefore.
  Status EvictBefore(const std::string& order_attr, int64_t cutoff);

  /// Foreground delta merge across every shard (admin, tests).
  Status MergeDeltasNow();

  /// Engine epoch — what /metrics reports as the `epoch` gauge.
  uint64_t epoch() const { return engine_->epoch(); }

  // -- Sessions --------------------------------------------------------------

  /// Opens an iterative session starting from `initial`.
  SessionId OpenSession(CuboidSpec initial);
  /// Applies `op` to the session (atomically under the session lock) and
  /// queues the session's new current spec.
  Result<Ticket> SubmitSessionOp(SessionId id, const SessionOp& op,
                                 SubmitOptions opts = {});
  /// Re-queues the session's current spec (a repository hit when the
  /// session already ran it — the paper's repeated-query case).
  Result<Ticket> SubmitSessionCurrent(SessionId id, SubmitOptions opts = {});
  void CloseSession(SessionId id);
  SessionManager& sessions() { return sessions_; }

  // -- Introspection ---------------------------------------------------------

  MetricsRegistry& metrics() { return metrics_; }
  /// The most recently completed sampled trace (ServiceOptions::
  /// trace_sample_every), or nullptr when sampling is off / none finished.
  std::shared_ptr<const TraceContext> LastSampledTrace() const {
    std::lock_guard<std::mutex> lock(sampled_mu_);
    return sampled_trace_;
  }
  /// Refreshes the resource gauges — governor usage/budget/rejects and the
  /// process-wide snapshot-IO retry count — from their live sources.
  /// Gauges are pull-based: call this before rendering metrics.
  void RefreshResourceMetrics();
  /// Queries admitted but not finished (queued or executing).
  size_t PendingQueries() const {
    return pending_.load(std::memory_order_relaxed);
  }
  size_t num_threads() const { return pool_.num_threads(); }

  /// Drain hook for front-ends (net/server.h): stops admitting new queries
  /// — they shed immediately with kUnavailable (not kResourceExhausted, so
  /// clients can tell lame-duck from overload) — while queued and executing
  /// queries run to completion. Idempotent; does not stop the workers.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// Blocks until no query is pending (queued or executing) or `timeout`
  /// elapses; returns true when idle was reached. Meaningful after
  /// BeginDrain, when the pending count can only fall.
  bool WaitIdle(std::chrono::milliseconds timeout);

  /// Stops admitting, fails queued-but-unstarted queries with kCancelled,
  /// waits for executing queries to finish. Idempotent.
  void Shutdown();

 private:
  /// Legacy-constructor plumbing: owns the 1-shard delegate wrapper.
  QueryService(std::unique_ptr<ShardedEngine> owned, ServiceOptions options);

  /// Synchronizes duplicate in-flight specs (single-flight): the first
  /// submitter executes, duplicates wait on the gate and then read the
  /// repository.
  struct FlightGate {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  /// `sampled` is the service-owned trace of an every-Nth sampled query
  /// (null when the caller supplied its own sink or sampling is off);
  /// it is published via LastSampledTrace() when the query finishes.
  void Execute(const CuboidSpec& spec, SubmitOptions opts, StopToken stop,
               std::chrono::steady_clock::time_point submitted,
               std::shared_ptr<std::promise<QueryResponse>> promise,
               std::shared_ptr<TraceContext> sampled);
  /// Blocks while another thread executes the same spec. Returns true if
  /// this caller is the designated executor (must call FinishFlight).
  bool EnterFlight(const std::string& key);
  void FinishFlight(const std::string& key);

  // Owned 1-shard delegate built by the legacy SOlapEngine constructor;
  // engine_ then points at it. Declared before engine_'s users.
  std::unique_ptr<ShardedEngine> owned_engine_;
  ShardedEngine* engine_;
  ServiceOptions options_;
  MetricsRegistry metrics_;
  SessionManager sessions_;

  std::atomic<size_t> pending_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> draining_{false};

  // Trace sampling (ServiceOptions::trace_sample_every).
  std::atomic<uint64_t> submit_seq_{0};
  mutable std::mutex sampled_mu_;
  std::shared_ptr<const TraceContext> sampled_trace_;

  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<FlightGate>> flights_;

  // Cached metric handles (hot path looks them up once).
  Counter* submitted_;
  Counter* ok_;
  Counter* errors_;
  Counter* shed_;
  Counter* timeouts_;
  Counter* cancelled_;
  Counter* repo_hits_;
  Counter* index_hits_;
  Counter* seqs_scanned_;
  Counter* degraded_;
  Counter* container_array_ops_;
  Counter* container_bitmap_ops_;
  Counter* container_run_ops_;
  Counter* container_gallop_ops_;
  Counter* shard_scatters_;
  Counter* shard_partials_;
  Counter* shard_merged_cells_;
  Counter* shard_fallbacks_;
  Counter* shard_rpc_retries_;
  Counter* shard_rpc_hedges_;
  Counter* partial_answers_;
  Counter* ingest_events_;
  Counter* delta_merges_;
  Counter* stale_cuboid_invalidations_;
  Gauge* mem_used_;
  Gauge* mem_budget_;
  Gauge* mem_rejects_;
  Gauge* io_retries_;
  Gauge* epoch_gauge_;
  Gauge* delta_segments_;

  // Engine-total watermarks behind the monotone ingest counters: the
  // background merger and the ingest path both advance engine totals, and
  // RefreshResourceMetrics publishes the diff since the last refresh.
  std::mutex ingest_metrics_mu_;
  uint64_t last_delta_merges_ = 0;
  uint64_t last_stale_invalidations_ = 0;
  Histogram* queue_depth_;
  Histogram* wait_ms_;
  Histogram* exec_cb_;
  Histogram* exec_ii_;
  Histogram* exec_auto_;

  // Declared last: workers must stop before members they use are torn down.
  ThreadPool pool_;
};

}  // namespace solap

#endif  // SOLAP_SERVICE_QUERY_SERVICE_H_
