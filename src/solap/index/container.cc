#include "solap/index/container.h"

#include <algorithm>

#include "solap/index/intersect.h"

#if defined(SOLAP_X86_DISPATCH)
#include <immintrin.h>
#endif

namespace solap {

namespace {

using Kind = SidContainer::Kind;

// Sets bits [s, l] (inclusive) in a bitmap container's words.
void SetWordRange(std::vector<uint64_t>& words, uint32_t s, uint32_t l) {
  for (uint32_t wi = s / 64; wi <= l / 64; ++wi) {
    uint64_t m = ~0ull;
    if (wi == s / 64) m &= ~0ull << (s % 64);
    if (wi == l / 64) {
      const uint32_t r = l % 64;
      m &= r == 63 ? ~0ull : ((1ull << (r + 1)) - 1);
    }
    words[wi] |= m;
  }
}

// Number of maximal runs in the container's member set.
uint32_t NumRuns(const SidContainer& c) {
  switch (c.kind) {
    case Kind::kRun:
      return static_cast<uint32_t>(c.values.size() / 2);
    case Kind::kArray: {
      if (c.values.empty()) return 0;
      uint32_t runs = 1;
      for (size_t i = 1; i < c.values.size(); ++i) {
        if (c.values[i] != c.values[i - 1] + 1) ++runs;
      }
      return runs;
    }
    case Kind::kBitmap: {
      uint32_t runs = 0;
      uint64_t carry = 0;  // bit 63 of the previous word
      for (uint64_t w : c.words) {
        runs += static_cast<uint32_t>(
            __builtin_popcountll(w & ~((w << 1) | carry)));
        carry = w >> 63;
      }
      return runs;
    }
  }
  return 0;
}

}  // namespace

size_t SidContainer::ByteSize() const {
  return sizeof(SidContainer) + values.capacity() * sizeof(uint16_t) +
         words.capacity() * sizeof(uint64_t);
}

bool SidContainer::Contains(uint16_t low) const {
  switch (kind) {
    case Kind::kArray:
      return std::binary_search(values.begin(), values.end(), low);
    case Kind::kBitmap:
      return (words[low >> 6] >> (low & 63)) & 1;
    case Kind::kRun: {
      // Last pair whose start <= low; pairs are sorted and disjoint.
      size_t lo = 0, hi = values.size() / 2;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (values[mid * 2] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo > 0 && low <= values[(lo - 1) * 2 + 1];
    }
  }
  return false;
}

void SidContainer::ConvertToBitmap() {
  if (kind == Kind::kBitmap) return;
  std::vector<uint64_t> w(kContainerWords, 0);
  if (kind == Kind::kArray) {
    for (uint16_t v : values) w[v >> 6] |= 1ull << (v & 63);
  } else {
    for (size_t i = 0; i + 1 < values.size(); i += 2) {
      SetWordRange(w, values[i], values[i + 1]);
    }
  }
  words = std::move(w);
  values.clear();
  values.shrink_to_fit();
  kind = Kind::kBitmap;
}

void SidContainer::AppendLow(uint16_t low) {
  switch (kind) {
    case Kind::kArray:
      if (cardinality >= kArrayBitmapCrossover) {
        ConvertToBitmap();
        words[low >> 6] |= 1ull << (low & 63);
      } else {
        values.push_back(low);
      }
      break;
    case Kind::kBitmap:
      words[low >> 6] |= 1ull << (low & 63);
      break;
    case Kind::kRun:
      if (!values.empty() &&
          static_cast<uint32_t>(values.back()) + 1 == low) {
        values.back() = low;  // extends the last run
      } else {
        values.push_back(low);
        values.push_back(low);
      }
      break;
  }
  ++cardinality;
}

uint16_t SidContainer::LastLow() const {
  switch (kind) {
    case Kind::kArray:
    case Kind::kRun:
      return values.back();
    case Kind::kBitmap:
      for (size_t wi = words.size(); wi-- > 0;) {
        if (words[wi] != 0) {
          return static_cast<uint16_t>(wi * 64 + 63 -
                                       __builtin_clzll(words[wi]));
        }
      }
      break;
  }
  return 0;
}

void SidContainer::Normalize() {
  if (cardinality == 0) {
    kind = Kind::kArray;
    values.clear();
    words.clear();
    return;
  }
  const uint32_t runs = NumRuns(*this);
  const size_t array_bytes = cardinality <= kArrayBitmapCrossover
                                 ? cardinality * sizeof(uint16_t)
                                 : static_cast<size_t>(-1);
  const size_t run_bytes = runs * 2 * sizeof(uint16_t);
  const size_t bitmap_bytes = kContainerWords * sizeof(uint64_t);

  if (array_bytes <= run_bytes && array_bytes <= bitmap_bytes) {
    if (kind != Kind::kArray) {
      std::vector<uint16_t> lows;
      lows.reserve(cardinality);
      ForEachLow([&](uint16_t v) { lows.push_back(v); });
      values = std::move(lows);
      words.clear();
      words.shrink_to_fit();
      kind = Kind::kArray;
    } else {
      values.shrink_to_fit();
    }
    return;
  }
  if (run_bytes <= bitmap_bytes) {
    if (kind == Kind::kRun) {
      values.shrink_to_fit();
      return;
    }
    std::vector<uint16_t> pairs;
    pairs.reserve(runs * 2);
    bool open = false;
    uint16_t prev = 0;
    ForEachLow([&](uint16_t v) {
      if (!open || v != static_cast<uint16_t>(prev + 1) || v == 0) {
        if (open) pairs.push_back(prev);
        pairs.push_back(v);
        open = true;
      }
      prev = v;
    });
    if (open) pairs.push_back(prev);
    values = std::move(pairs);
    words.clear();
    words.shrink_to_fit();
    kind = Kind::kRun;
    return;
  }
  ConvertToBitmap();
}

SidList SidList::FromSorted(std::span<const Sid> sids) {
  SidList out;
  for (Sid s : sids) out.Append(s);
  out.Normalize();
  return out;
}

size_t SidList::ByteSize() const {
  size_t bytes = sizeof(SidList) +
                 containers_.capacity() * sizeof(SidContainer);
  for (const SidContainer& c : containers_) {
    bytes += c.ByteSize() - sizeof(SidContainer);
  }
  return bytes;
}

bool SidList::Contains(Sid sid) const {
  const uint16_t key = static_cast<uint16_t>(sid >> 16);
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const SidContainer& c, uint16_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  return it->Contains(static_cast<uint16_t>(sid & 0xffff));
}

void SidList::Normalize() {
  for (SidContainer& c : containers_) c.Normalize();
}

void SidList::RecomputeMeta() {
  size_ = 0;
  for (const SidContainer& c : containers_) size_ += c.cardinality;
  has_last_ = size_ > 0;
  if (has_last_) {
    const SidContainer& back = containers_.back();
    last_ = (static_cast<Sid>(back.key) << 16) | back.LastLow();
  }
}

std::vector<Sid> SidList::ToVector() const {
  std::vector<Sid> out;
  out.reserve(size_);
  ForEach([&](Sid s) { out.push_back(s); });
  return out;
}

bool SidList::Cursor::LoadWithin() {
  const SidContainer& c = list_->containers_[ci_];
  const Sid base = static_cast<Sid>(c.key) << 16;
  switch (c.kind) {
    case Kind::kArray:
      if (vi_ >= c.values.size()) return false;
      value_ = base | c.values[vi_];
      return true;
    case Kind::kRun:
      while (vi_ * 2 + 1 < c.values.size()) {
        const uint32_t v = static_cast<uint32_t>(c.values[vi_ * 2]) + off_;
        if (v <= c.values[vi_ * 2 + 1]) {
          value_ = base | static_cast<uint16_t>(v);
          return true;
        }
        ++vi_;
        off_ = 0;
      }
      return false;
    case Kind::kBitmap:
      while (word_ == 0) {
        ++wi_;
        if (wi_ >= c.words.size()) return false;
        word_ = c.words[wi_];
      }
      value_ = base | static_cast<uint16_t>(
                          wi_ * 64 + static_cast<size_t>(
                                         __builtin_ctzll(word_)));
      return true;
  }
  return false;
}

void SidList::Cursor::SkipToValid(size_t ci) {
  for (ci_ = ci; ci_ < list_->containers_.size(); ++ci_) {
    const SidContainer& c = list_->containers_[ci_];
    vi_ = 0;
    off_ = 0;
    wi_ = 0;
    word_ = c.kind == Kind::kBitmap && !c.words.empty() ? c.words[0] : 0;
    if (LoadWithin()) return;
  }
}

void SidList::Cursor::Next() {
  const SidContainer& c = list_->containers_[ci_];
  switch (c.kind) {
    case Kind::kArray:
      ++vi_;
      break;
    case Kind::kRun:
      ++off_;
      break;
    case Kind::kBitmap:
      word_ &= word_ - 1;
      break;
  }
  if (LoadWithin()) return;
  SkipToValid(ci_ + 1);
}

bool operator==(const SidList& a, const SidList& b) {
  if (a.size_ != b.size_) return false;
  SidList::Cursor ca = a.cursor(), cb = b.cursor();
  while (ca.valid() && cb.valid()) {
    if (ca.value() != cb.value()) return false;
    ca.Next();
    cb.Next();
  }
  return !ca.valid() && !cb.valid();
}

bool operator==(const SidList& a, const std::vector<Sid>& b) {
  if (a.size_ != b.size()) return false;
  size_t i = 0;
  for (SidList::Cursor c = a.cursor(); c.valid(); c.Next()) {
    if (c.value() != b[i++]) return false;
  }
  return i == b.size();
}

namespace {

// ---------- array × array ----------

#if defined(SOLAP_X86_DISPATCH)
// SSE4.2 STTNI kernel: _mm_cmpestrm compares each u16 of one 8-lane block
// against every u16 of the other in one instruction (the Lemire & Boytsov
// technique). Blocks advance like a merge on their maxima; the tail runs
// scalar. Sids within a list are distinct, so each match emits once.
__attribute__((target("sse4.2"))) void IntersectU16Sttni(
    const uint16_t* a, size_t na, const uint16_t* b, size_t nb, Sid base,
    std::vector<Sid>& out) {
  size_t ia = 0, ib = 0;
  while (ia + 8 <= na && ib + 8 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + ia));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    const __m128i mask = _mm_cmpestrm(
        vb, 8, va, 8,
        _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
    unsigned r = static_cast<unsigned>(_mm_cvtsi128_si32(mask));
    while (r != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctz(r));
      out.push_back(base | a[ia + i]);
      r &= r - 1;
    }
    const uint16_t amax = a[ia + 7], bmax = b[ib + 7];
    if (amax <= bmax) ia += 8;
    if (bmax <= amax) ib += 8;
  }
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      out.push_back(base | a[ia]);
      ++ia;
      ++ib;
    }
  }
}
#endif

void IntersectU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                        size_t nb, Sid base, std::vector<Sid>& out) {
  size_t ia = 0, ib = 0;
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      out.push_back(base | a[ia]);
      ++ia;
      ++ib;
    }
  }
}

// First index in [lo, n) with v[i] >= x (exponential probe + binary search).
size_t GallopLowerBoundU16(const std::vector<uint16_t>& v, size_t lo,
                           uint16_t x) {
  const size_t n = v.size();
  size_t bound = 1;
  while (lo + bound < n && v[lo + bound] < x) bound <<= 1;
  const size_t hi = std::min(lo + bound, n);
  lo = lo + bound / 2;
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), x) -
      v.begin());
}

void IntersectArrayArray(const SidContainer& a, const SidContainer& b,
                         Sid base, std::vector<Sid>& out,
                         ContainerOpCounts* counts) {
  const SidContainer& small = a.cardinality <= b.cardinality ? a : b;
  const SidContainer& large = a.cardinality <= b.cardinality ? b : a;
  if (small.cardinality * kGallopSizeRatio <= large.cardinality) {
    if (counts != nullptr) ++counts->gallop_ops;
    size_t lo = 0;
    for (uint16_t x : small.values) {
      lo = GallopLowerBoundU16(large.values, lo, x);
      if (lo == large.values.size()) return;
      if (large.values[lo] == x) {
        out.push_back(base | x);
        ++lo;
      }
    }
    return;
  }
  if (counts != nullptr) ++counts->array_ops;
#if defined(SOLAP_X86_DISPATCH)
  if (CpuHasSse42()) {
    IntersectU16Sttni(a.values.data(), a.values.size(), b.values.data(),
                      b.values.size(), base, out);
    return;
  }
#endif
  IntersectU16Scalar(a.values.data(), a.values.size(), b.values.data(),
                     b.values.size(), base, out);
}

// ---------- pairs involving a bitmap ----------

void ExtractWord(uint64_t w, Sid word_base, std::vector<Sid>& out) {
  while (w != 0) {
    out.push_back(word_base +
                  static_cast<Sid>(__builtin_ctzll(w)));
    w &= w - 1;
  }
}

void IntersectBitmapBitmap(const SidContainer& a, const SidContainer& b,
                           Sid base, std::vector<Sid>& out) {
  for (size_t wi = 0; wi < kContainerWords; ++wi) {
    ExtractWord(a.words[wi] & b.words[wi],
                base + static_cast<Sid>(wi * 64), out);
  }
}

void IntersectArrayBitmap(const SidContainer& arr, const SidContainer& bm,
                          Sid base, std::vector<Sid>& out) {
  for (uint16_t v : arr.values) {
    if ((bm.words[v >> 6] >> (v & 63)) & 1) out.push_back(base | v);
  }
}

void IntersectRunBitmap(const SidContainer& run, const SidContainer& bm,
                        Sid base, std::vector<Sid>& out) {
  for (size_t i = 0; i + 1 < run.values.size(); i += 2) {
    const uint32_t s = run.values[i], l = run.values[i + 1];
    for (uint32_t wi = s / 64; wi <= l / 64; ++wi) {
      uint64_t m = bm.words[wi];
      if (wi == s / 64) m &= ~0ull << (s % 64);
      if (wi == l / 64) {
        const uint32_t r = l % 64;
        m &= r == 63 ? ~0ull : ((1ull << (r + 1)) - 1);
      }
      ExtractWord(m, base + static_cast<Sid>(wi * 64), out);
    }
  }
}

// ---------- pairs involving a run ----------

void IntersectRunRun(const SidContainer& a, const SidContainer& b, Sid base,
                     std::vector<Sid>& out) {
  size_t i = 0, j = 0;
  while (i + 1 < a.values.size() && j + 1 < b.values.size()) {
    const uint32_t s = std::max(a.values[i], b.values[j]);
    const uint32_t l = std::min(a.values[i + 1], b.values[j + 1]);
    for (uint32_t v = s; v <= l; ++v) {
      out.push_back(base | static_cast<uint16_t>(v));
    }
    if (a.values[i + 1] <= b.values[j + 1]) {
      i += 2;
    } else {
      j += 2;
    }
  }
}

void IntersectRunArray(const SidContainer& run, const SidContainer& arr,
                       Sid base, std::vector<Sid>& out) {
  size_t ri = 0;
  for (uint16_t v : arr.values) {
    while (ri + 1 < run.values.size() && run.values[ri + 1] < v) ri += 2;
    if (ri + 1 >= run.values.size()) return;
    if (run.values[ri] <= v) out.push_back(base | v);
  }
}

// Per-pair kind dispatch; both containers share `key`.
void IntersectContainers(const SidContainer& a, const SidContainer& b,
                         std::vector<Sid>& out, ContainerOpCounts* counts) {
  const Sid base = static_cast<Sid>(a.key) << 16;
  if (a.kind == Kind::kRun || b.kind == Kind::kRun) {
    if (counts != nullptr) ++counts->run_ops;
    const SidContainer& x = a.kind == Kind::kRun ? a : b;
    const SidContainer& y = a.kind == Kind::kRun ? b : a;
    switch (y.kind) {
      case Kind::kRun:
        IntersectRunRun(x, y, base, out);
        return;
      case Kind::kArray:
        IntersectRunArray(x, y, base, out);
        return;
      case Kind::kBitmap:
        IntersectRunBitmap(x, y, base, out);
        return;
    }
    return;
  }
  if (a.kind == Kind::kBitmap || b.kind == Kind::kBitmap) {
    if (counts != nullptr) ++counts->bitmap_ops;
    if (a.kind == Kind::kBitmap && b.kind == Kind::kBitmap) {
      IntersectBitmapBitmap(a, b, base, out);
    } else if (a.kind == Kind::kArray) {
      IntersectArrayBitmap(a, b, base, out);
    } else {
      IntersectArrayBitmap(b, a, base, out);
    }
    return;
  }
  IntersectArrayArray(a, b, base, out, counts);
}

}  // namespace

void IntersectSidLists(const SidList& a, const SidList& b,
                       std::vector<Sid>& out, ContainerOpCounts* counts) {
  out.clear();
  const std::vector<SidContainer>& ca = a.containers();
  const std::vector<SidContainer>& cb = b.containers();
  size_t i = 0, j = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i].key < cb[j].key) {
      ++i;
    } else if (cb[j].key < ca[i].key) {
      ++j;
    } else {
      IntersectContainers(ca[i], cb[j], out, counts);
      ++i;
      ++j;
    }
  }
}

void IntersectSidListsScalar(const SidList& a, const SidList& b,
                             std::vector<Sid>& out) {
  out.clear();
  SidList::Cursor ca = a.cursor(), cb = b.cursor();
  while (ca.valid() && cb.valid()) {
    const Sid va = ca.value(), vb = cb.value();
    if (va < vb) {
      ca.Next();
    } else if (vb < va) {
      cb.Next();
    } else {
      out.push_back(va);
      ca.Next();
      cb.Next();
    }
  }
}

SidList UnionManySidLists(std::span<const SidList* const> inputs,
                          ContainerOpCounts* counts) {
  SidList out;
  if (inputs.empty()) return out;
  if (inputs.size() == 1) return *inputs[0];

  std::vector<size_t> pos(inputs.size(), 0);
  std::vector<uint64_t> acc;
  for (;;) {
    uint32_t min_key = kContainerSpan;  // > any uint16_t key
    for (size_t n = 0; n < inputs.size(); ++n) {
      const auto& cs = inputs[n]->containers();
      if (pos[n] < cs.size()) {
        min_key = std::min(min_key, static_cast<uint32_t>(cs[pos[n]].key));
      }
    }
    if (min_key == kContainerSpan) break;

    const SidContainer* single = nullptr;
    size_t contributors = 0;
    for (size_t n = 0; n < inputs.size(); ++n) {
      const auto& cs = inputs[n]->containers();
      if (pos[n] < cs.size() && cs[pos[n]].key == min_key) {
        ++contributors;
        single = &cs[pos[n]];
      }
    }
    if (contributors == 1) {
      out.containers().push_back(*single);
    } else {
      acc.assign(kContainerWords, 0);
      for (size_t n = 0; n < inputs.size(); ++n) {
        const auto& cs = inputs[n]->containers();
        if (pos[n] >= cs.size() || cs[pos[n]].key != min_key) continue;
        const SidContainer& c = cs[pos[n]];
        switch (c.kind) {
          case Kind::kArray:
            if (counts != nullptr) ++counts->array_ops;
            for (uint16_t v : c.values) acc[v >> 6] |= 1ull << (v & 63);
            break;
          case Kind::kBitmap:
            if (counts != nullptr) ++counts->bitmap_ops;
            for (size_t wi = 0; wi < kContainerWords; ++wi) {
              acc[wi] |= c.words[wi];
            }
            break;
          case Kind::kRun:
            if (counts != nullptr) ++counts->run_ops;
            for (size_t p = 0; p + 1 < c.values.size(); p += 2) {
              SetWordRange(acc, c.values[p], c.values[p + 1]);
            }
            break;
        }
      }
      SidContainer merged;
      merged.key = static_cast<uint16_t>(min_key);
      merged.kind = Kind::kBitmap;
      uint32_t card = 0;
      for (uint64_t w : acc) {
        card += static_cast<uint32_t>(__builtin_popcountll(w));
      }
      merged.cardinality = card;
      merged.words = acc;
      merged.Normalize();
      out.containers().push_back(std::move(merged));
    }
    for (size_t n = 0; n < inputs.size(); ++n) {
      const auto& cs = inputs[n]->containers();
      if (pos[n] < cs.size() && cs[pos[n]].key == min_key) ++pos[n];
    }
  }
  out.RecomputeMeta();
  return out;
}

}  // namespace solap
