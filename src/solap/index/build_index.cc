#include "solap/index/build_index.h"

#include <algorithm>
#include <unordered_set>

#include "solap/common/failpoint.h"

namespace solap {

namespace {

// Per-sequence window dedup. A sequence of mean length L yields at most
// L - m + 1 substring windows — typically a handful — so a linear scan
// over a small flat vector beats a node-allocating hash set (the
// per-window set insert dominated QA1's index build); long sequences and
// subsequence DFS enumeration fall back to the set.
class WindowDeduper {
 public:
  void Reset() {
    small_.clear();
    if (use_big_) {
      big_.clear();
      use_big_ = false;
    }
  }

  // True when `key` was not seen since the last Reset.
  bool Insert(const PatternKey& key) {
    if (!use_big_) {
      if (std::find(small_.begin(), small_.end(), key) != small_.end()) {
        return false;
      }
      if (small_.size() < kLinearMax) {
        small_.push_back(key);
        return true;
      }
      use_big_ = true;
      big_.insert(small_.begin(), small_.end());
    }
    return big_.insert(key).second;
  }

 private:
  // Past this many distinct windows the linear scan loses to hashing.
  static constexpr size_t kLinearMax = 24;
  std::vector<PatternKey> small_;  // keeps capacity across Reset
  std::unordered_set<PatternKey, CodeVecHash> big_;
  bool use_big_ = false;
};

// Shared scan behind AppendToIndex (to_delta=false, writes base lists) and
// AppendToIndexDelta (to_delta=true, writes the delta segment).
Status AppendToIndexImpl(InvertedIndex* index, SequenceGroup* group,
                         const SequenceGroupSet& set,
                         const HierarchyRegistry* hierarchies, Sid from_sid,
                         ScanStats* stats, MemoryGovernor* governor,
                         bool to_delta) {
  SOLAP_FAILPOINT("index.build");
  const IndexShape& shape = index->shape();
  const size_t m = shape.size();
  if (m == 0) {
    return Status::InvalidArgument("index shape must have at least one "
                                   "position");
  }
  // Bind one view per distinct attribute/level; positions share views.
  std::vector<const Code*> pos_view(m);
  {
    std::unordered_map<std::string, const std::vector<Code>*> by_ref;
    for (size_t i = 0; i < m; ++i) {
      const LevelRef& ref = shape.positions[i];
      auto it = by_ref.find(ref.ToString());
      if (it == by_ref.end()) {
        SOLAP_ASSIGN_OR_RETURN(DimensionBinding b,
                               set.BindDimension(hierarchies, ref));
        it = by_ref.emplace(ref.ToString(), &group->ViewFor(b)).first;
      }
      pos_view[i] = it->second->data();
    }
  }

  const std::vector<uint32_t>& offsets = group->offsets();
  const size_t num_seq = group->num_sequences();
  WindowDeduper seen;  // per-sequence dedup
  PatternKey key(m);

  // Abort the scan early when the index under construction can no longer
  // fit in the remaining budget; the cache-insert TryCharge is the
  // authoritative check, this one just bounds peak usage during the build.
  const bool budgeted = governor != nullptr && governor->budget() != 0;

  for (Sid s = from_sid; s < num_seq; ++s) {
    if (budgeted && ((s - from_sid) & 0x3FF) == 0x3FF) {
      // Probe-charge the index built so far: a failure aborts the scan
      // (counting a budget reject), a success is released immediately —
      // the cache insert makes the lasting reservation.
      const size_t bytes = index->ByteSize();
      SOLAP_RETURN_NOT_OK(governor->TryCharge(bytes, "index build"));
      governor->Release(bytes);
    }
    const uint32_t base = offsets[s];
    const uint32_t len = offsets[s + 1] - base;
    if (len < m) continue;
    seen.Reset();
    auto add = [&](const PatternKey& k, Sid sid) {
      if (to_delta) {
        index->AddDeltaSid(k, sid);
      } else {
        index->AddSid(k, sid);
      }
    };
    if (shape.kind == PatternKind::kSubstring) {
      for (uint32_t p = 0; p + m <= len; ++p) {
        for (size_t i = 0; i < m; ++i) key[i] = pos_view[i][base + p + i];
        if (seen.Insert(key)) add(key, s);
      }
    } else {
      // Depth-first enumeration of unique length-m subsequences.
      auto rec = [&](auto&& self, size_t pos, uint32_t start) -> void {
        if (pos == m) {
          if (seen.Insert(key)) add(key, s);
          return;
        }
        for (uint32_t i = start; i + (m - pos) <= len; ++i) {
          key[pos] = pos_view[pos][base + i];
          self(self, pos + 1, i + 1);
        }
      };
      rec(rec, 0, 0);
    }
  }
  // Shrink every touched list to its smallest container representation —
  // incremental appends may have left array tails on otherwise dense
  // chunks.
  index->NormalizeLists();
  if (stats != nullptr) {
    stats->sequences_scanned += num_seq - from_sid;
  }
  return Status::OK();
}

}  // namespace

Status AppendToIndex(InvertedIndex* index, SequenceGroup* group,
                     const SequenceGroupSet& set,
                     const HierarchyRegistry* hierarchies, Sid from_sid,
                     ScanStats* stats, MemoryGovernor* governor) {
  return AppendToIndexImpl(index, group, set, hierarchies, from_sid, stats,
                           governor, /*to_delta=*/false);
}

Status AppendToIndexDelta(InvertedIndex* index, SequenceGroup* group,
                          const SequenceGroupSet& set,
                          const HierarchyRegistry* hierarchies, Sid from_sid,
                          ScanStats* stats, MemoryGovernor* governor) {
  return AppendToIndexImpl(index, group, set, hierarchies, from_sid, stats,
                           governor, /*to_delta=*/true);
}

Result<std::shared_ptr<InvertedIndex>> BuildIndex(
    SequenceGroup* group, const SequenceGroupSet& set,
    const HierarchyRegistry* hierarchies, const IndexShape& shape,
    ScanStats* stats, MemoryGovernor* governor) {
  auto index = std::make_shared<InvertedIndex>(shape, /*complete=*/true);
  SOLAP_RETURN_NOT_OK(
      AppendToIndex(index.get(), group, set, hierarchies, 0, stats, governor));
  if (stats != nullptr) {
    stats->lists_built += index->num_lists();
    stats->index_bytes_built += index->ByteSize();
  }
  return index;
}

}  // namespace solap
