// Inverted indices over sequence groups (paper §4.2.2, Figures 9, 10).
//
// A size-m inverted index L_m maps every concrete length-m pattern (one code
// per position, at a specific attribute/level per position) to the sorted
// list of sids of the group's sequences containing it.
#ifndef SOLAP_INDEX_INVERTED_INDEX_H_
#define SOLAP_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/types.h"
#include "solap/index/container.h"
#include "solap/seq/dimension.h"
#include "solap/pattern/pattern_template.h"

namespace solap {

/// \brief Identity of an inverted index: pattern kind plus the
/// attribute@level of each of its m positions.
struct IndexShape {
  PatternKind kind = PatternKind::kSubstring;
  std::vector<LevelRef> positions;

  size_t size() const { return positions.size(); }
  std::string CanonicalString() const;
  bool operator==(const IndexShape&) const = default;

  /// Shape extended by one more position on the right / left.
  IndexShape ExtendedRight(const LevelRef& ref) const;
  IndexShape ExtendedLeft(const LevelRef& ref) const;
};

/// \brief The inverted index itself: pattern key -> sorted sid list.
///
/// `complete` distinguishes a full BuildIndex product (lists for *every*
/// pattern occurring in the group) from a join product filtered by template
/// constraints (repeated symbols / sliced dimensions). Only complete indices
/// may be merged by P-ROLL-UP — the paper's §4.2.2 caveat, where merging
/// restricted L4^(X,Y,Y,X) lists at the district level loses sequence s6.
class InvertedIndex {
 public:
  /// Lists are chunked container sets (index/container.h), not flat
  /// vectors: sparse 2^16-sid chunks are sorted u16 arrays, dense chunks
  /// bitmaps, contiguous chunks run intervals.
  using ListMap = std::unordered_map<PatternKey, SidList, CodeVecHash>;

  InvertedIndex(IndexShape shape, bool complete)
      : shape_(std::move(shape)), complete_(complete) {}

  const IndexShape& shape() const { return shape_; }
  bool complete() const { return complete_; }
  void set_complete(bool complete) { complete_ = complete; }
  /// Signature of the template constraints the index was filtered by
  /// (empty for complete indices); part of the cache key.
  const std::string& constraint_sig() const { return constraint_sig_; }
  void set_constraint_sig(std::string sig) {
    constraint_sig_ = std::move(sig);
  }

  ListMap& lists() { return lists_; }
  const ListMap& lists() const { return lists_; }

  /// Appends `sid` to the list of `key`, deduplicating consecutive appends
  /// of the same sid (callers iterate sids in ascending order, so lists
  /// stay sorted).
  void AddSid(const PatternKey& key, Sid sid) { lists_[key].Append(sid); }

  const SidList* Find(const PatternKey& key) const {
    auto it = lists_.find(key);
    return it == lists_.end() ? nullptr : &it->second;
  }

  // -- Delta segment (streaming ingestion, docs/INGESTION.md) ---------------
  //
  // Sids appended after the base was built land in a secondary ListMap, the
  // index's *delta segment*, until the background merge folds them into the
  // base containers. Invariant (the per-index watermark): every delta sid is
  // strictly greater than every base sid of the SAME index, because sids
  // only grow and the delta only ever receives newly assigned ones. The
  // two-segment read path (index_ops.cc, intersect.cc IntersectSegmented)
  // treats base ⋈ delta as one logical list. Note the watermark says
  // nothing about sids across two DIFFERENT indices — a freshly built
  // index holds new sids in its base while an older one still has them in
  // its delta, so segmented intersection computes all four pairwise terms.

  /// Appends `sid` to the DELTA list of `key`; same ascending-order,
  /// consecutive-dedup contract as AddSid.
  void AddDeltaSid(const PatternKey& key, Sid sid) { delta_[key].Append(sid); }

  const SidList* FindDelta(const PatternKey& key) const {
    auto it = delta_.find(key);
    return it == delta_.end() ? nullptr : &it->second;
  }

  bool has_delta() const { return !delta_.empty(); }
  const ListMap& delta() const { return delta_; }
  /// Bytes held by the delta segment alone (keys + containers).
  size_t DeltaByteSize() const;

  /// Folds the delta segment into the base containers and clears it. Cheap
  /// by the watermark invariant: per key, delta sids append after the
  /// base's maximum, then the touched lists renormalize. Callers hold the
  /// engine's epoch gate exclusively — logical content is unchanged, so
  /// the epoch does not advance.
  void MergeDeltaIntoBase();

  /// Visits the union of base and delta keys, passing whichever segment
  /// lists exist (either pointer may be null, never both). The read-path
  /// primitive for iterating an index's LOGICAL lists.
  template <typename Fn>  // Fn(const PatternKey&, const SidList* base,
                          //    const SidList* delta)
  void ForEachLogicalList(Fn&& fn) const {
    for (const auto& [key, list] : lists_) {
      fn(key, &list, FindDelta(key));
    }
    for (const auto& [key, list] : delta_) {
      if (lists_.find(key) == lists_.end()) fn(key, nullptr, &list);
    }
  }

  /// The logical list of `key` materialized into `scratch` when a delta
  /// exists for it (returns &scratch), or the base list unchanged (returns
  /// it directly; scratch untouched). nullptr when the key is absent from
  /// both segments.
  const SidList* LogicalList(const PatternKey& key, SidList* scratch) const;

  size_t num_lists() const { return lists_.size(); }
  size_t total_entries() const;
  /// Storage footprint: keys plus the bytes the containers actually hold,
  /// base and delta segments both — this is what index caching charges
  /// against the MemoryGovernor.
  size_t ByteSize() const;
  /// Rewrites every list's containers to their smallest representation
  /// (builders call this once after the append phase).
  void NormalizeLists();

 private:
  IndexShape shape_;
  bool complete_;
  std::string constraint_sig_;
  ListMap lists_;
  ListMap delta_;
};

/// Sorted-vector intersection (linear merge), the core of index joins.
std::vector<Sid> IntersectSorted(const std::vector<Sid>& a,
                                 const std::vector<Sid>& b);

/// Container-list intersection with adaptive per-container kernels.
std::vector<Sid> IntersectSorted(const SidList& a, const SidList& b);

/// Sorted-vector union with deduplication, the core of P-ROLL-UP merging.
std::vector<Sid> UnionSorted(const std::vector<Sid>& a,
                             const std::vector<Sid>& b);

/// Container-list union (two-input wrapper over UnionManySidLists).
std::vector<Sid> UnionSorted(const SidList& a, const SidList& b);

}  // namespace solap

#endif  // SOLAP_INDEX_INVERTED_INDEX_H_
