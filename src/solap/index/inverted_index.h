// Inverted indices over sequence groups (paper §4.2.2, Figures 9, 10).
//
// A size-m inverted index L_m maps every concrete length-m pattern (one code
// per position, at a specific attribute/level per position) to the sorted
// list of sids of the group's sequences containing it.
#ifndef SOLAP_INDEX_INVERTED_INDEX_H_
#define SOLAP_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/types.h"
#include "solap/index/container.h"
#include "solap/seq/dimension.h"
#include "solap/pattern/pattern_template.h"

namespace solap {

/// \brief Identity of an inverted index: pattern kind plus the
/// attribute@level of each of its m positions.
struct IndexShape {
  PatternKind kind = PatternKind::kSubstring;
  std::vector<LevelRef> positions;

  size_t size() const { return positions.size(); }
  std::string CanonicalString() const;
  bool operator==(const IndexShape&) const = default;

  /// Shape extended by one more position on the right / left.
  IndexShape ExtendedRight(const LevelRef& ref) const;
  IndexShape ExtendedLeft(const LevelRef& ref) const;
};

/// \brief The inverted index itself: pattern key -> sorted sid list.
///
/// `complete` distinguishes a full BuildIndex product (lists for *every*
/// pattern occurring in the group) from a join product filtered by template
/// constraints (repeated symbols / sliced dimensions). Only complete indices
/// may be merged by P-ROLL-UP — the paper's §4.2.2 caveat, where merging
/// restricted L4^(X,Y,Y,X) lists at the district level loses sequence s6.
class InvertedIndex {
 public:
  /// Lists are chunked container sets (index/container.h), not flat
  /// vectors: sparse 2^16-sid chunks are sorted u16 arrays, dense chunks
  /// bitmaps, contiguous chunks run intervals.
  using ListMap = std::unordered_map<PatternKey, SidList, CodeVecHash>;

  InvertedIndex(IndexShape shape, bool complete)
      : shape_(std::move(shape)), complete_(complete) {}

  const IndexShape& shape() const { return shape_; }
  bool complete() const { return complete_; }
  void set_complete(bool complete) { complete_ = complete; }
  /// Signature of the template constraints the index was filtered by
  /// (empty for complete indices); part of the cache key.
  const std::string& constraint_sig() const { return constraint_sig_; }
  void set_constraint_sig(std::string sig) {
    constraint_sig_ = std::move(sig);
  }

  ListMap& lists() { return lists_; }
  const ListMap& lists() const { return lists_; }

  /// Appends `sid` to the list of `key`, deduplicating consecutive appends
  /// of the same sid (callers iterate sids in ascending order, so lists
  /// stay sorted).
  void AddSid(const PatternKey& key, Sid sid) { lists_[key].Append(sid); }

  const SidList* Find(const PatternKey& key) const {
    auto it = lists_.find(key);
    return it == lists_.end() ? nullptr : &it->second;
  }

  size_t num_lists() const { return lists_.size(); }
  size_t total_entries() const;
  /// Storage footprint: keys plus the bytes the containers actually hold —
  /// this is what index caching charges against the MemoryGovernor.
  size_t ByteSize() const;
  /// Rewrites every list's containers to their smallest representation
  /// (builders call this once after the append phase).
  void NormalizeLists();

 private:
  IndexShape shape_;
  bool complete_;
  std::string constraint_sig_;
  ListMap lists_;
};

/// Sorted-vector intersection (linear merge), the core of index joins.
std::vector<Sid> IntersectSorted(const std::vector<Sid>& a,
                                 const std::vector<Sid>& b);

/// Container-list intersection with adaptive per-container kernels.
std::vector<Sid> IntersectSorted(const SidList& a, const SidList& b);

/// Sorted-vector union with deduplication, the core of P-ROLL-UP merging.
std::vector<Sid> UnionSorted(const std::vector<Sid>& a,
                             const std::vector<Sid>& b);

/// Container-list union (two-input wrapper over UnionManySidLists).
std::vector<Sid> UnionSorted(const SidList& a, const SidList& b);

}  // namespace solap

#endif  // SOLAP_INDEX_INVERTED_INDEX_H_
