#include "solap/index/bitmap_index.h"

namespace solap {

BitmapIndex BitmapIndex::FromInverted(const InvertedIndex& index,
                                      size_t num_sequences) {
  BitmapIndex out(index.shape(), num_sequences);
  for (const auto& [key, list] : index.lists()) {
    out.lists_.emplace(key, Bitmap::FromSids(list, num_sequences));
  }
  return out;
}

std::shared_ptr<InvertedIndex> BitmapIndex::ToInverted(bool complete) const {
  auto out = std::make_shared<InvertedIndex>(shape_, complete);
  for (const auto& [key, bitmap] : lists_) {
    out->lists().emplace(key, bitmap.ToSids());
  }
  return out;
}

size_t BitmapIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, bitmap] : lists_) {
    bytes += key.size() * sizeof(Code) + bitmap.ByteSize();
  }
  return bytes;
}

}  // namespace solap
