#include "solap/index/bitmap_index.h"

namespace solap {

BitmapIndex BitmapIndex::FromInverted(const InvertedIndex& index,
                                      size_t num_sequences) {
  BitmapIndex out(index.shape(), num_sequences);
  index.ForEachLogicalList([&](const PatternKey& key, const SidList* base,
                               const SidList* delta) {
    Bitmap bm(num_sequences);
    auto set = [&](Sid s) { bm.Set(s); };
    if (base != nullptr) base->ForEach(set);
    if (delta != nullptr) delta->ForEach(set);
    out.lists_.emplace(key, std::move(bm));
  });
  return out;
}

std::shared_ptr<InvertedIndex> BitmapIndex::ToInverted(bool complete) const {
  auto out = std::make_shared<InvertedIndex>(shape_, complete);
  for (const auto& [key, bitmap] : lists_) {
    out->lists().emplace(key, SidList::FromSorted(bitmap.ToSids()));
  }
  return out;
}

size_t BitmapIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, bitmap] : lists_) {
    bytes += key.size() * sizeof(Code) + bitmap.ByteSize();
  }
  return bytes;
}

}  // namespace solap
