#include "solap/index/index_cache.h"

namespace solap {

namespace {

std::string KeyOf(const IndexShape& shape, const std::string& sig) {
  return shape.CanonicalString() + "|" + sig;
}

}  // namespace

std::shared_ptr<InvertedIndex> GroupIndexCache::FindLocked(
    const IndexShape& shape, const std::string& constraint_sig) const {
  auto it = by_key_.find(KeyOf(shape, constraint_sig));
  return it == by_key_.end() ? nullptr : entries_[it->second];
}

std::shared_ptr<InvertedIndex> GroupIndexCache::Find(
    const IndexShape& shape, const std::string& constraint_sig) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindLocked(shape, constraint_sig);
}

std::shared_ptr<InvertedIndex> GroupIndexCache::FindUsable(
    const IndexShape& shape, const std::string& constraint_sig) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (auto exact = FindLocked(shape, constraint_sig)) return exact;
  if (!constraint_sig.empty()) {
    if (auto complete = FindLocked(shape, "")) return complete;
  }
  return nullptr;
}

Status GroupIndexCache::Insert(std::shared_ptr<InvertedIndex> index) {
  std::string key = KeyOf(index->shape(), index->constraint_sig());
  const size_t bytes = index->ByteSize();
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  // Replacing an entry nets out against its existing charge; only the
  // growth is a new reservation.
  const size_t old_bytes = it != by_key_.end() ? entry_bytes_[it->second] : 0;
  if (governor_ != nullptr) {
    if (bytes > old_bytes) {
      SOLAP_RETURN_NOT_OK(
          governor_->TryCharge(bytes - old_bytes, "index cache"));
      charged_bytes_ += bytes - old_bytes;
    } else {
      governor_->Release(old_bytes - bytes);
      charged_bytes_ -= old_bytes - bytes;
    }
  }
  if (it != by_key_.end()) {
    entries_[it->second] = std::move(index);
    entry_bytes_[it->second] = bytes;
    return Status::OK();
  }
  by_key_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(index));
  entry_bytes_.push_back(bytes);
  return Status::OK();
}

std::vector<std::shared_ptr<InvertedIndex>> GroupIndexCache::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_;
}

size_t GroupIndexCache::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& e : entries_) bytes += e->ByteSize();
  return bytes;
}

void GroupIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (governor_ != nullptr) governor_->Release(charged_bytes_);
  charged_bytes_ = 0;
  entries_.clear();
  entry_bytes_.clear();
  by_key_.clear();
}

GroupIndexCache::~GroupIndexCache() {
  if (governor_ != nullptr) governor_->Release(charged_bytes_);
}

}  // namespace solap
