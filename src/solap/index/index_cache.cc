#include "solap/index/index_cache.h"

namespace solap {

namespace {

std::string KeyOf(const IndexShape& shape, const std::string& sig) {
  return shape.CanonicalString() + "|" + sig;
}

}  // namespace

std::shared_ptr<InvertedIndex> GroupIndexCache::FindLocked(
    const IndexShape& shape, const std::string& constraint_sig) const {
  auto it = by_key_.find(KeyOf(shape, constraint_sig));
  return it == by_key_.end() ? nullptr : entries_[it->second];
}

std::shared_ptr<InvertedIndex> GroupIndexCache::Find(
    const IndexShape& shape, const std::string& constraint_sig) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindLocked(shape, constraint_sig);
}

std::shared_ptr<InvertedIndex> GroupIndexCache::FindUsable(
    const IndexShape& shape, const std::string& constraint_sig) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (auto exact = FindLocked(shape, constraint_sig)) return exact;
  if (!constraint_sig.empty()) {
    if (auto complete = FindLocked(shape, "")) return complete;
  }
  return nullptr;
}

void GroupIndexCache::Insert(std::shared_ptr<InvertedIndex> index) {
  std::string key = KeyOf(index->shape(), index->constraint_sig());
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    entries_[it->second] = std::move(index);
    return;
  }
  by_key_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(index));
}

std::vector<std::shared_ptr<InvertedIndex>> GroupIndexCache::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_;
}

size_t GroupIndexCache::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& e : entries_) bytes += e->ByteSize();
  return bytes;
}

void GroupIndexCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  by_key_.clear();
}

}  // namespace solap
