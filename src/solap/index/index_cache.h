// Per-group cache of inverted indices — the "auxiliary data structures"
// store of the paper's architecture (Fig. 6). Indices created as
// by-products of answering one query are reused by follow-up queries in the
// same iterative session (paper §4.2.2).
//
// Thread-safe for the service layer: lookups (the common case — iterative
// sessions hit cached indices far more often than they build) take a
// shared lock; cache-populating inserts take the exclusive lock. Cached
// InvertedIndex objects are immutable once inserted, so the shared_ptrs a
// reader obtains stay valid with no lock held.
#ifndef SOLAP_INDEX_INDEX_CACHE_H_
#define SOLAP_INDEX_INDEX_CACHE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/mem_budget.h"
#include "solap/common/status.h"
#include "solap/index/inverted_index.h"

namespace solap {

/// \brief Cache of inverted indices for one sequence group.
///
/// Indices are keyed by shape (per-position attribute@level + kind). Each
/// shape may hold several variants: the complete index plus
/// template-filtered ones distinguished by constraint signature.
class GroupIndexCache {
 public:
  /// Index matching `shape` with exactly `constraint_sig` ("" = complete),
  /// or nullptr.
  std::shared_ptr<InvertedIndex> Find(const IndexShape& shape,
                                      const std::string& constraint_sig) const;

  /// Best usable index for a query window needing `constraint_sig`: an
  /// exact-signature match, else the complete index (always a superset —
  /// inconsistent keys are skipped at use sites). Returns nullptr if
  /// neither exists.
  std::shared_ptr<InvertedIndex> FindUsable(
      const IndexShape& shape, const std::string& constraint_sig) const;

  /// Caches `index`, charging its ByteSize() to the governor (if set).
  /// Returns ResourceExhausted without inserting when the charge is
  /// rejected — callers either propagate (degrading the query) or continue
  /// uncached.
  Status Insert(std::shared_ptr<InvertedIndex> index);

  /// Attaches the byte-budget accountant charged by Insert and credited by
  /// Clear/destruction. Set once at engine construction, before any use.
  void set_governor(MemoryGovernor* governor) { governor_ = governor; }

  /// Snapshot of all cached indices (inspection, derivation searches,
  /// eviction). Returned by value: the cache may be concurrently extended.
  std::vector<std::shared_ptr<InvertedIndex>> entries() const;

  size_t TotalBytes() const;
  void Clear();

  ~GroupIndexCache();

 private:
  std::shared_ptr<InvertedIndex> FindLocked(
      const IndexShape& shape, const std::string& constraint_sig) const;

  mutable std::shared_mutex mu_;
  MemoryGovernor* governor_ = nullptr;
  size_t charged_bytes_ = 0;  // total currently charged to governor_
  std::vector<std::shared_ptr<InvertedIndex>> entries_;
  // Governor charge of the matching entries_ slot (refunded on replace).
  std::vector<size_t> entry_bytes_;
  // shape canonical + "|" + constraint sig -> entry position.
  std::unordered_map<std::string, size_t> by_key_;
};

}  // namespace solap

#endif  // SOLAP_INDEX_INDEX_CACHE_H_
