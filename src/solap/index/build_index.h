// BuildIndex (paper Figure 9): offline construction of a complete size-m
// inverted index for one sequence group.
#ifndef SOLAP_INDEX_BUILD_INDEX_H_
#define SOLAP_INDEX_BUILD_INDEX_H_

#include <memory>

#include "solap/common/mem_budget.h"
#include "solap/common/stats.h"
#include "solap/common/status.h"
#include "solap/index/inverted_index.h"
#include "solap/seq/sequence_group.h"

namespace solap {

/// Scans every sequence of `group` and records, for each unique length-m
/// substring (or subsequence) at the shape's abstraction levels, the sids
/// containing it. The result is a *complete* index: it carries no template
/// filtering, so later queries with any symbol structure — and P-ROLL-UP
/// merges — can be derived from it.
/// When `governor` is non-null and carries a finite budget, construction
/// periodically checks that the index under build still fits in the
/// remaining headroom and aborts with ResourceExhausted otherwise (the
/// engine then degrades the query to the counter-based path).
Result<std::shared_ptr<InvertedIndex>> BuildIndex(
    SequenceGroup* group, const SequenceGroupSet& set,
    const HierarchyRegistry* hierarchies, const IndexShape& shape,
    ScanStats* stats, MemoryGovernor* governor = nullptr);

/// Extends `index` with the contents of sequences [from_sid, end of group) —
/// the incremental-update path (paper §6): when a new batch of sequences is
/// appended to a group, only the delta is scanned. Sids grow monotonically,
/// so each list stays sorted.
Status AppendToIndex(InvertedIndex* index, SequenceGroup* group,
                     const SequenceGroupSet& set,
                     const HierarchyRegistry* hierarchies, Sid from_sid,
                     ScanStats* stats, MemoryGovernor* governor = nullptr);

/// Same scan as AppendToIndex, but new sids land in the index's DELTA
/// segment (inverted_index.h) instead of the base containers — the
/// streaming-ingestion write path. Readers holding an epoch snapshot keep
/// seeing base lists untouched; the new sids become visible through the
/// two-segment read path once the writer commits, and the background merge
/// later folds them into the base via MergeDeltaIntoBase.
Status AppendToIndexDelta(InvertedIndex* index, SequenceGroup* group,
                          const SequenceGroupSet& set,
                          const HierarchyRegistry* hierarchies, Sid from_sid,
                          ScanStats* stats,
                          MemoryGovernor* governor = nullptr);

}  // namespace solap

#endif  // SOLAP_INDEX_BUILD_INDEX_H_
