// Online index algebra (paper §4.2.2): joining inverted indices to extend
// pattern length (APPEND / PREPEND / QueryIndices growth), merging lists for
// P-ROLL-UP, and refining lists for P-DRILL-DOWN.
#ifndef SOLAP_INDEX_INDEX_OPS_H_
#define SOLAP_INDEX_INDEX_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "solap/common/mem_budget.h"
#include "solap/common/stats.h"
#include "solap/common/status.h"
#include "solap/common/thread_pool.h"
#include "solap/index/intersect.h"
#include "solap/index/inverted_index.h"
#include "solap/pattern/matcher.h"

namespace solap {

/// Execution knobs shared by the index-join operators (see
/// DESIGN.md "II execution").
struct JoinExecOptions {
  /// §6 bitmap extension: an L2 list longer than this is bitmap-encoded
  /// once per join and intersections against it become membership probes.
  /// 0 = no explicit cutoff; with `adaptive_kernels` the density heuristic
  /// still encodes lists covering at least 1/kBitmapDensityDiv of the
  /// group's sid space.
  size_t bitmap_threshold = 0;
  /// Per-pair kernel selection (galloping for skewed pairs, bitmap probes
  /// for dense L2 lists). false = the scalar linear-merge baseline
  /// everywhere — benchmarks A/B against this.
  bool adaptive_kernels = true;
  /// Joins and merges partition their list work across this pool
  /// (nullptr = serial). Partition merge order is deterministic, so
  /// results are identical to the serial path.
  ThreadPool* pool = nullptr;
  /// List-count cutoff (EngineOptions::parallel_min_lists): joins with
  /// fewer base lists than this stay serial. Since PR 7 it is paired with
  /// `parallel_min_work` below — the count alone misjudged many-tiny-list
  /// joins, so both cutoffs must pass for a job to go parallel.
  size_t parallel_min_lists = 64;
  /// Joins and merges whose total posting-list work (sum of input list
  /// entries) is below this also stay serial: many tiny lists fan out past
  /// `parallel_min_lists` yet each shard finishes in microseconds, and the
  /// fork/join + shard-merge overhead made parallel QA1 slower than the
  /// scalar II path. Both cutoffs must pass for a job to go parallel.
  size_t parallel_min_work = size_t{1} << 14;
  /// Engine-wide memory budget. Joins transiently charge an estimate of
  /// their scratch (bitmap encodings + output lists) before fanning out and
  /// release it after the merge; a rejected charge fails the join with
  /// ResourceExhausted, which the engine degrades to the CB path.
  MemoryGovernor* governor = nullptr;
};

/// True if template window [offset, offset+len) carries constraints that
/// filter the instantiation space: a repeated symbol with both occurrences
/// inside the window, or a sliced/diced dimension occurring in the window.
bool WindowHasConstraints(const PatternTemplate& tmpl, size_t offset,
                          size_t len,
                          const std::vector<std::vector<Code>>& fixed_codes);

/// Constraint signature of a window — equal-position structure plus fixed
/// codes — used to key template-filtered indices in the index cache.
/// Empty string means "no constraints" (the index is complete).
std::string WindowConstraintSig(
    const PatternTemplate& tmpl, size_t offset, size_t len,
    const std::vector<std::vector<Code>>& fixed_codes);

/// True if `key` (length = window length) is a valid instantiation of
/// template window [offset, offset+len): repeated symbols equal, sliced
/// dimensions within their allowed codes.
bool WindowConsistent(const PatternTemplate& tmpl, size_t offset,
                      const PatternKey& key,
                      const std::vector<std::vector<Code>>& fixed_codes);

/// Containment check of a concrete window pattern in sequence `s`, reading
/// symbol codes through `bp` at template positions [offset, offset+|key|).
bool ContainsWindow(const BoundPattern& bp, Sid s, const PatternKey& key,
                    size_t offset);

/// L_{k+1} = L_k ⋈ L_2 (paper Fig. 15 lines 6-9): `left` covers template
/// window [offset, offset+k), `l2` covers [offset+k-1, offset+k+1). Lists
/// are intersected on the shared position, then candidates are verified by
/// scanning the data sequences ("eliminate invalid entries"). Result keys
/// are filtered to instantiations consistent with the grown window.
///
/// Intersections run on the lists' container representation directly
/// (index/container.h): dense chunks are already bitmap-encoded, so each
/// container pair dispatches its kernel by kind; an L2 list past
/// `exec.bitmap_threshold` is force-probed (§6 bitmap extension). Base
/// lists are partitioned across `exec.pool` (when both parallel cutoffs
/// pass) with a deterministic merge — the parallel result is identical to
/// the serial one.
Result<std::shared_ptr<InvertedIndex>> JoinExtendRight(
    const InvertedIndex& left, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, const JoinExecOptions& exec = {});

/// Mirror image for PREPEND: `right` covers [offset+1, offset+1+k), `l2`
/// covers [offset, offset+2); the result covers [offset, offset+1+k).
Result<std::shared_ptr<InvertedIndex>> JoinExtendLeft(
    const InvertedIndex& right, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, const JoinExecOptions& exec = {});

/// P-ROLL-UP list merging: unions fine-level lists whose keys coincide
/// after mapping each position through `maps` (empty vector = identity for
/// that position). Only valid on *complete* source indices — the caller
/// enforces the paper's restricted-symbol caveat. When `tmpl` and
/// `fixed_codes` (per-dimension allowed codes at the *coarse* level) are
/// given, only lists whose mapped key is consistent with the template are
/// merged — a sliced P-ROLL-UP then merges just its subcube; the result is
/// template-filtered and the caller must mark it incomplete.
///
/// The merge itself is a k-way container union per coarse key
/// (UnionManySidLists): single-source containers are copied, multi-source
/// ones OR-ed through a bitmap accumulator — no flat append + re-sort.
/// With `exec.pool` (and both parallel cutoffs passing), key mapping and
/// the per-target unions are partitioned across workers; targets are keyed
/// in the serial order, so the result is identical to a serial merge.
Result<std::shared_ptr<InvertedIndex>> RollUpMerge(
    const InvertedIndex& fine, const std::vector<std::vector<Code>>& maps,
    IndexShape coarse_shape, const PatternTemplate* tmpl,
    const std::vector<std::vector<Code>>* fixed_codes, ScanStats* stats,
    const JoinExecOptions& exec = {});

/// P-DRILL-DOWN list refinement: splits each coarse list into fine-level
/// lists by re-scanning its member sequences. `bp_fine` must be bound to
/// the full fine-level template (no predicate); `maps` maps fine codes up
/// to the coarse level per position. When `coarse_fixed_codes` is non-null
/// (per-dimension allowed codes *at the coarse level*), coarse lists
/// inconsistent with it are skipped entirely — this is what makes a
/// slice + P-DRILL-DOWN scan only the sliced cell's list (paper §5.1,
/// where Qb touches 2,201 of 50,524 sequences).
Result<std::shared_ptr<InvertedIndex>> DrillDownRefine(
    const InvertedIndex& coarse, const std::vector<std::vector<Code>>& maps,
    const BoundPattern& bp_fine, IndexShape fine_shape,
    const std::vector<std::vector<Code>>* coarse_fixed_codes,
    ScanStats* stats);

/// Grows `base` (covering template window [offset_base, offset_base + k))
/// by one position WITHOUT a size-2 index: each base list's member
/// sequences are scanned directly for the extended window's occurrences.
/// This is the engine's choice when the base index is highly selective
/// (a sliced iterative follow-up): the cost is proportional to the base
/// index's entries, not to the group size.
Result<std::shared_ptr<InvertedIndex>> ExtendByScan(
    const InvertedIndex& base, const PatternTemplate& tmpl, size_t offset,
    bool grow_right, const BoundPattern& bp, ScanStats* stats);

}  // namespace solap

#endif  // SOLAP_INDEX_INDEX_OPS_H_
