// Fixed-width bitmaps: the paper's §6 "Performance" extension — when the
// pattern-dimension domain is small, inverted lists can be encoded as
// bitmaps so that list intersection becomes word-parallel bitwise AND.
#ifndef SOLAP_INDEX_BITMAP_H_
#define SOLAP_INDEX_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "solap/common/types.h"

namespace solap {

/// \brief A bitset over sid space [0, num_bits).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  static Bitmap FromSids(const std::vector<Sid>& sids, size_t num_bits);

  size_t num_bits() const { return num_bits_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// this &= other (sizes must match).
  void AndWith(const Bitmap& other);
  /// this |= other (sizes must match).
  void OrWith(const Bitmap& other);

  /// Number of set bits.
  size_t Count() const;

  /// Set bits as a sorted sid list.
  std::vector<Sid> ToSids() const;

  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace solap

#endif  // SOLAP_INDEX_BITMAP_H_
