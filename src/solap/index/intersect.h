// Posting-list intersection kernels for inverted-index joins.
//
// The II strategy's wall-clock lives in intersecting sorted sid lists
// (paper §4.2.2, Fig. 15 line 9's L_k ⋈ L_2 step). One kernel does not fit
// all list pairs: balanced pairs want a linear merge, skewed pairs want
// galloping (exponential + binary search, cf. Lemire & Boytsov's SIMD
// intersection study in PAPERS.md), and dense lists reused across many
// pairs want a one-time bitmap encoding so each intersection becomes
// membership probes. ChooseIntersectKernel picks per pair from list sizes;
// callers pass reusable output buffers so the kernels allocate nothing in
// steady state.
#ifndef SOLAP_INDEX_INTERSECT_H_
#define SOLAP_INDEX_INTERSECT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "solap/common/types.h"
#include "solap/index/bitmap.h"

namespace solap {

/// Size ratio (larger/smaller) above which galloping beats a linear merge:
/// the merge reads |a|+|b| elements, galloping ~|small|·log(|large|/|small|).
inline constexpr size_t kGallopSizeRatio = 16;

/// Which kernel an intersection ran with (also the cost model's output).
enum class IntersectKernel { kLinear, kGalloping, kBitmap };

/// Cost heuristic: kBitmap when a bitmap of the larger list is already
/// built, kGalloping when the pair is skewed past kGallopSizeRatio,
/// kLinear otherwise.
inline IntersectKernel ChooseIntersectKernel(size_t a_size, size_t b_size,
                                             bool bitmap_available) {
  if (bitmap_available) return IntersectKernel::kBitmap;
  const size_t small = a_size < b_size ? a_size : b_size;
  const size_t large = a_size < b_size ? b_size : a_size;
  if (small == 0 || large / small >= kGallopSizeRatio) {
    return IntersectKernel::kGalloping;
  }
  return IntersectKernel::kLinear;
}

/// out = a ∩ b by linear merge (the scalar baseline). `out` is cleared
/// first; its capacity is reused across calls.
void IntersectLinear(std::span<const Sid> a, std::span<const Sid> b,
                     std::vector<Sid>& out);

/// out = a ∩ b by galloping search: each element of the smaller list is
/// located in the larger by exponential probing from a moving frontier,
/// then binary search. O(|small| · log(|large|/|small|)).
void IntersectGalloping(std::span<const Sid> a, std::span<const Sid> b,
                        std::vector<Sid>& out);

/// out = {s ∈ probe : bm.Get(s)} — intersection against a bitmap-encoded
/// list. O(|probe|) regardless of the encoded list's length.
void IntersectBitmap(std::span<const Sid> probe, const Bitmap& bm,
                     std::vector<Sid>& out);

/// Dispatches to the kernel ChooseIntersectKernel selects. `b_bitmap` is
/// the optional bitmap encoding of `b` (density-triggered, built once by
/// the join and shared across pairs).
void IntersectAdaptive(std::span<const Sid> a, std::span<const Sid> b,
                       const Bitmap* b_bitmap, std::vector<Sid>& out);

}  // namespace solap

#endif  // SOLAP_INDEX_INTERSECT_H_
