// Posting-list intersection kernels for inverted-index joins.
//
// The II strategy's wall-clock lives in intersecting sorted sid lists
// (paper §4.2.2, Fig. 15 line 9's L_k ⋈ L_2 step). One kernel does not fit
// all list pairs: balanced pairs want a (SIMD) linear merge, skewed pairs
// want galloping (exponential + binary search, cf. Lemire & Boytsov's SIMD
// intersection study in PAPERS.md), and dense lists want bitmap membership
// probes whose one-time encoding is amortized across pairs (the join
// shares one encoding per L2 list; standalone callers share one via
// IntersectScratch). ChooseIntersectKernel picks per pair from list sizes
// AND the sid-universe density — without the density term, balanced dense
// pairs mispredicted to linear and ran slower than the scalar baseline
// (the BENCH_ii.json regression this file's history fixed). Callers pass
// reusable output buffers so the kernels allocate nothing in steady state.
#ifndef SOLAP_INDEX_INTERSECT_H_
#define SOLAP_INDEX_INTERSECT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "solap/common/types.h"
#include "solap/index/bitmap.h"
#include "solap/index/container.h"

namespace solap {

/// Size ratio (larger/smaller) above which galloping beats a linear merge:
/// the merge reads |a|+|b| elements, galloping ~|small|·log(|large|/|small|).
/// The comparison is multiplicative (small·ratio <= large), so e.g.
/// 100 vs 1599 stays linear — integer division used to round 15.99 down
/// and flip balanced pairs into the slower galloping kernel.
inline constexpr size_t kGallopSizeRatio = 16;

/// Density divisor of the bitmap heuristic: a list covering at least
/// 1/kBitmapDensityDiv of the sid universe is dense enough that one
/// bitmap encoding plus membership probes beats merging.
inline constexpr size_t kBitmapDensityDiv = 8;

/// Universes smaller than this never trigger the density term — the
/// encoding would cost more than the merge it replaces.
inline constexpr size_t kBitmapMinUniverse = 256;

/// Which kernel an intersection ran with (also the cost model's output).
enum class IntersectKernel { kLinear, kGalloping, kBitmap };

/// Cost heuristic. `universe` is the group's sid count (0 = unknown,
/// disables the density term). Order: kBitmap when an encoding is already
/// built; kBitmap when the larger list is dense enough that building one
/// pays for itself (the caller must then supply an IntersectScratch);
/// kGalloping when the pair is skewed past kGallopSizeRatio; kLinear
/// otherwise.
inline IntersectKernel ChooseIntersectKernel(size_t a_size, size_t b_size,
                                             size_t universe,
                                             bool bitmap_available) {
  if (bitmap_available) return IntersectKernel::kBitmap;
  const size_t small = a_size < b_size ? a_size : b_size;
  const size_t large = a_size < b_size ? b_size : a_size;
  if (universe >= kBitmapMinUniverse &&
      large * kBitmapDensityDiv >= universe) {
    return IntersectKernel::kBitmap;
  }
  if (small == 0 || small * kGallopSizeRatio <= large) {
    return IntersectKernel::kGalloping;
  }
  return IntersectKernel::kLinear;
}

/// out = a ∩ b by linear merge (the scalar baseline the SIMD kernels and
/// the container path are verified against). `out` is cleared first; its
/// capacity is reused across calls.
void IntersectLinear(std::span<const Sid> a, std::span<const Sid> b,
                     std::vector<Sid>& out);

/// out = a ∩ b by a 4-lane SSE2 block merge (all-pairs compare of 4×4
/// blocks via shuffles, cf. Lemire & Boytsov); falls back to the scalar
/// merge off x86.
void IntersectLinearSimd(std::span<const Sid> a, std::span<const Sid> b,
                         std::vector<Sid>& out);

/// out = a ∩ b by galloping search: each element of the smaller list is
/// located in the larger by exponential probing from a moving frontier,
/// then binary search. O(|small| · log(|large|/|small|)).
void IntersectGalloping(std::span<const Sid> a, std::span<const Sid> b,
                        std::vector<Sid>& out);

/// Galloping with an AVX2 8-lane compare resolving the final bracket
/// (runtime-dispatched; scalar off x86 / on pre-AVX2 hardware).
void IntersectGallopingSimd(std::span<const Sid> a, std::span<const Sid> b,
                            std::vector<Sid>& out);

/// out = {s ∈ probe : bm.Get(s)} — intersection against a bitmap-encoded
/// list. O(|probe|) regardless of the encoded list's length.
void IntersectBitmap(std::span<const Sid> probe, const Bitmap& bm,
                     std::vector<Sid>& out);

/// Reusable bitmap encoding for adaptive callers without a join-managed
/// bitmap: when ChooseIntersectKernel's density term selects kBitmap, the
/// encoding of the larger operand is built here once and reused while the
/// same operand (identified by data pointer + size) recurs — the
/// reuse-count amortization the join gets from its per-L2-list bitmaps.
struct IntersectScratch {
  Bitmap bitmap;
  const Sid* keyed_data = nullptr;
  size_t keyed_size = 0;
  size_t keyed_universe = 0;
};

/// Dispatches to the kernel ChooseIntersectKernel selects. `universe` (0 =
/// unknown) feeds the density term; `b_bitmap` is an optional pre-built
/// encoding of `b` (the join builds one per dense L2 list and shares it
/// across pairs). When the density term fires without a pre-built bitmap,
/// the larger operand is encoded into `scratch` (cached across calls);
/// with `scratch == nullptr` the pair falls back to the SIMD linear merge.
void IntersectAdaptive(std::span<const Sid> a, std::span<const Sid> b,
                       size_t universe, const Bitmap* b_bitmap,
                       IntersectScratch* scratch, std::vector<Sid>& out);

/// Legacy entry point: no universe (density term off), no scratch.
inline void IntersectAdaptive(std::span<const Sid> a, std::span<const Sid> b,
                              const Bitmap* b_bitmap,
                              std::vector<Sid>& out) {
  IntersectAdaptive(a, b, /*universe=*/0, b_bitmap, /*scratch=*/nullptr,
                    out);
}

/// Runtime CPU feature checks backing the SIMD dispatch (false off x86).
bool CpuHasSse42();
bool CpuHasAvx2();

// -- Two-segment (base ⋈ delta) intersection --------------------------------

/// out = (a_base ∪ a_delta) ∩ (b_base ∪ b_delta), the streaming-ingestion
/// read path (docs/INGESTION.md): an index whose delta segment has not yet
/// been background-merged presents each logical list as base + delta. Any
/// of the four pointers may be null (treated as the empty list). Within one
/// index base and delta are disjoint (the watermark invariant), so the
/// logical sets are plain unions — but the four pairwise intersections are
/// ALL computed: across two indices of different vintages a sid can sit in
/// one index's base and the other's delta. Base×base runs the adaptive
/// container kernels (`counts` tallies them, as in IntersectSidLists);
/// the delta cross terms are small and use the scalar merge. `scalar_only`
/// mirrors the join's `adaptive_kernels = false` A/B baseline.
void IntersectSegmented(const SidList* a_base, const SidList* a_delta,
                        const SidList* b_base, const SidList* b_delta,
                        std::vector<Sid>& out, ContainerOpCounts* counts,
                        bool scalar_only);

}  // namespace solap

#endif  // SOLAP_INDEX_INTERSECT_H_
