#include "solap/index/index_ops.h"

#include <algorithm>
#include <unordered_set>

#include "solap/index/bitmap.h"

namespace solap {

namespace {

// First position of the dim of `pos` restricted to window [offset, ...).
// Returns pos itself if no earlier in-window occurrence exists.
size_t FirstInWindow(const PatternTemplate& tmpl, size_t offset, size_t pos) {
  int d = tmpl.dim_of(pos);
  for (size_t p = offset; p < pos; ++p) {
    if (tmpl.dim_of(p) == d) return p;
  }
  return pos;
}

}  // namespace

bool WindowHasConstraints(const PatternTemplate& tmpl, size_t offset,
                          size_t len,
                          const std::vector<std::vector<Code>>& fixed_codes) {
  for (size_t j = 0; j < len; ++j) {
    size_t pos = offset + j;
    if (FirstInWindow(tmpl, offset, pos) != pos) return true;
    if (!fixed_codes[tmpl.dim_of(pos)].empty()) return true;
  }
  return false;
}

std::string WindowConstraintSig(
    const PatternTemplate& tmpl, size_t offset, size_t len,
    const std::vector<std::vector<Code>>& fixed_codes) {
  if (!WindowHasConstraints(tmpl, offset, len, fixed_codes)) return "";
  std::string sig;
  for (size_t j = 0; j < len; ++j) {
    size_t pos = offset + j;
    size_t first = FirstInWindow(tmpl, offset, pos);
    sig += "p" + std::to_string(first - offset);
    const std::vector<Code>& allowed = fixed_codes[tmpl.dim_of(pos)];
    if (!allowed.empty() && first == pos) {
      sig += "=[";
      for (Code c : allowed) sig += std::to_string(c) + ";";
      sig += "]";
    }
    sig += ",";
  }
  return sig;
}

bool WindowConsistent(const PatternTemplate& tmpl, size_t offset,
                      const PatternKey& key,
                      const std::vector<std::vector<Code>>& fixed_codes) {
  for (size_t j = 0; j < key.size(); ++j) {
    size_t pos = offset + j;
    size_t first = FirstInWindow(tmpl, offset, pos);
    if (first != pos) {
      if (key[j] != key[first - offset]) return false;
      continue;
    }
    const std::vector<Code>& allowed = fixed_codes[tmpl.dim_of(pos)];
    if (!allowed.empty() &&
        std::find(allowed.begin(), allowed.end(), key[j]) == allowed.end()) {
      return false;
    }
  }
  return true;
}

bool ContainsWindow(const BoundPattern& bp, Sid s, const PatternKey& key,
                    size_t offset) {
  const size_t k = key.size();
  const uint32_t len = bp.group().length(s);
  if (len < k) return false;
  if (bp.tmpl().kind() == PatternKind::kSubstring) {
    for (uint32_t p = 0; p + k <= len; ++p) {
      bool ok = true;
      for (size_t j = 0; j < k; ++j) {
        if (bp.CodeAt(offset + j, s, p + j) != key[j]) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  }
  size_t j = 0;
  for (uint32_t i = 0; i < len && j < k; ++i) {
    if (bp.CodeAt(offset + j, s, i) == key[j]) ++j;
  }
  return j == k;
}

namespace {

// Shared implementation of both join directions. `grow_right` selects which
// operand contributes the new position.
Result<std::shared_ptr<InvertedIndex>> JoinExtendImpl(
    const InvertedIndex& base, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    bool grow_right, ScanStats* stats, size_t bitmap_threshold) {
  if (l2.shape().size() != 2) {
    return Status::InvalidArgument("join extension requires a size-2 index, "
                                   "got size " +
                                   std::to_string(l2.shape().size()));
  }
  const size_t k = base.shape().size();
  const size_t out_len = k + 1;
  IndexShape out_shape = grow_right
                             ? base.shape().ExtendedRight(l2.shape().positions[1])
                             : base.shape().ExtendedLeft(l2.shape().positions[0]);
  out_shape.kind = base.shape().kind;

  // Bucket the L2 lists by the code on the shared position.
  std::unordered_map<Code, std::vector<std::pair<Code, const std::vector<Sid>*>>>
      by_shared;
  for (const auto& [key2, list2] : l2.lists()) {
    Code shared = grow_right ? key2[0] : key2[1];
    Code grown = grow_right ? key2[1] : key2[0];
    by_shared[shared].emplace_back(grown, &list2);
  }

  auto out = std::make_shared<InvertedIndex>(out_shape, /*complete=*/false);
  const size_t base_win_offset = grow_right ? offset : offset + 1;
  // Lazily-built bitmap encodings of long L2 lists (see bitmap_threshold).
  std::unordered_map<const std::vector<Sid>*, Bitmap> bitmaps;
  PatternKey out_key(out_len);
  for (const auto& [key, list] : base.lists()) {
    // Skip base lists inconsistent with their window (cheap pre-filter).
    if (!WindowConsistent(tmpl, base_win_offset, key, bp.fixed_codes())) {
      continue;
    }
    Code shared = grow_right ? key.back() : key.front();
    auto it = by_shared.find(shared);
    if (it == by_shared.end()) continue;
    for (const auto& [grown, list2] : it->second) {
      if (grow_right) {
        std::copy(key.begin(), key.end(), out_key.begin());
        out_key.back() = grown;
      } else {
        out_key.front() = grown;
        std::copy(key.begin(), key.end(), out_key.begin() + 1);
      }
      if (!WindowConsistent(tmpl, offset, out_key, bp.fixed_codes())) continue;
      std::vector<Sid> candidates;
      if (bitmap_threshold != 0 && list2->size() > bitmap_threshold) {
        // §6 bitmap extension: encode the long L2 list once; intersection
        // becomes membership probes over the base list.
        auto [it2, inserted] = bitmaps.try_emplace(list2);
        if (inserted) {
          it2->second =
              Bitmap::FromSids(*list2, bp.group().num_sequences());
        }
        const Bitmap& bm = it2->second;
        for (Sid s : list) {
          if (bm.Get(s)) candidates.push_back(s);
        }
      } else {
        candidates = IntersectSorted(list, *list2);
      }
      if (stats != nullptr) ++stats->list_intersections;
      if (candidates.empty()) continue;
      // "Scan the database to eliminate invalid entries" (Fig. 15 line 9).
      std::vector<Sid> verified;
      verified.reserve(candidates.size());
      for (Sid s : candidates) {
        if (ContainsWindow(bp, s, out_key, offset)) verified.push_back(s);
      }
      if (stats != nullptr) stats->sequences_scanned += candidates.size();
      if (!verified.empty()) {
        out->lists().emplace(out_key, std::move(verified));
      }
    }
  }
  out->set_constraint_sig(
      WindowConstraintSig(tmpl, offset, out_len, bp.fixed_codes()));
  // The join result is complete only if no template constraint filtered the
  // instantiation space and both inputs were themselves complete.
  out->set_complete(out->constraint_sig().empty() && base.complete() &&
                    l2.complete());
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<InvertedIndex>> JoinExtendRight(
    const InvertedIndex& left, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, size_t bitmap_threshold) {
  return JoinExtendImpl(left, l2, tmpl, offset, bp, /*grow_right=*/true,
                        stats, bitmap_threshold);
}

Result<std::shared_ptr<InvertedIndex>> JoinExtendLeft(
    const InvertedIndex& right, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, size_t bitmap_threshold) {
  return JoinExtendImpl(right, l2, tmpl, offset, bp, /*grow_right=*/false,
                        stats, bitmap_threshold);
}

Result<std::shared_ptr<InvertedIndex>> RollUpMerge(
    const InvertedIndex& fine, const std::vector<std::vector<Code>>& maps,
    IndexShape coarse_shape, const PatternTemplate* tmpl,
    const std::vector<std::vector<Code>>* fixed_codes, ScanStats* stats) {
  if (!fine.complete()) {
    return Status::InvalidArgument(
        "P-ROLL-UP list merging requires a complete index; template-filtered "
        "indices would lose sequences (paper §4.2.2)");
  }
  if (maps.size() != fine.shape().size() ||
      coarse_shape.size() != fine.shape().size()) {
    return Status::InvalidArgument("roll-up maps must cover every position");
  }
  auto out = std::make_shared<InvertedIndex>(std::move(coarse_shape),
                                             /*complete=*/true);
  // Append every fine list to its coarse target, then sort + dedup each
  // target once — much cheaper than pairwise sorted unions.
  out->lists().reserve(fine.num_lists() / 4 + 1);
  PatternKey coarse_key;
  for (const auto& [key, list] : fine.lists()) {
    coarse_key = key;
    for (size_t i = 0; i < key.size(); ++i) {
      const std::vector<Code>& map = maps[i];
      if (!map.empty() && key[i] < map.size()) coarse_key[i] = map[key[i]];
    }
    if (tmpl != nullptr && fixed_codes != nullptr &&
        !WindowConsistent(*tmpl, 0, coarse_key, *fixed_codes)) {
      continue;  // outside the sliced subcube
    }
    std::vector<Sid>& target = out->lists()[coarse_key];
    target.insert(target.end(), list.begin(), list.end());
  }
  for (auto& [key, list] : out->lists()) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

Result<std::shared_ptr<InvertedIndex>> DrillDownRefine(
    const InvertedIndex& coarse, const std::vector<std::vector<Code>>& maps,
    const BoundPattern& bp_fine, IndexShape fine_shape,
    const std::vector<std::vector<Code>>* coarse_fixed_codes,
    ScanStats* stats) {
  const size_t m = fine_shape.size();
  if (bp_fine.tmpl().num_positions() != m ||
      coarse.shape().size() != m || maps.size() != m) {
    return Status::InvalidArgument(
        "drill-down refinement requires matching index / template lengths");
  }
  auto out = std::make_shared<InvertedIndex>(std::move(fine_shape),
                                             coarse.complete());
  auto map_up = [&](size_t i, Code c) -> Code {
    const std::vector<Code>& map = maps[i];
    return (!map.empty() && c < map.size()) ? map[c] : c;
  };
  // Collect the participating coarse keys (those surviving the slice
  // filter) and the union of their member sids, then scan each sequence
  // exactly once — a sequence typically sits in several coarse lists.
  std::unordered_set<PatternKey, CodeVecHash> keep;
  std::vector<bool> marked(bp_fine.group().num_sequences(), false);
  for (const auto& [coarse_key, list] : coarse.lists()) {
    if (coarse_fixed_codes != nullptr &&
        !WindowConsistent(bp_fine.tmpl(), 0, coarse_key,
                          *coarse_fixed_codes)) {
      continue;  // the slice excludes this coarse cell entirely
    }
    keep.insert(coarse_key);
    for (Sid s : list) marked[s] = true;
  }
  std::unordered_set<PatternKey, CodeVecHash> seen;  // per-sid dedup
  PatternKey fine_key(m), coarse_key(m);
  for (Sid s = 0; s < marked.size(); ++s) {
    if (!marked[s]) continue;
    if (stats != nullptr) ++stats->sequences_scanned;
    seen.clear();
    bp_fine.ForEachOccurrence(s, [&](const uint32_t* idx) {
      for (size_t i = 0; i < m; ++i) {
        fine_key[i] = bp_fine.CodeAt(i, s, idx[i]);
        coarse_key[i] = map_up(i, fine_key[i]);
      }
      if (keep.contains(coarse_key) && seen.insert(fine_key).second) {
        out->AddSid(fine_key, s);
      }
      return true;
    });
  }
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

Result<std::shared_ptr<InvertedIndex>> ExtendByScan(
    const InvertedIndex& base, const PatternTemplate& tmpl, size_t offset,
    bool grow_right, const BoundPattern& bp, ScanStats* stats) {
  const size_t k = base.shape().size();
  const size_t out_len = k + 1;
  // Template positions covered by base / by the result.
  const size_t base_off = grow_right ? offset : offset + 1;
  IndexShape out_shape =
      grow_right
          ? base.shape().ExtendedRight(
                tmpl.dim(tmpl.dim_of(offset + k)).ref)
          : base.shape().ExtendedLeft(tmpl.dim(tmpl.dim_of(offset)).ref);
  out_shape.kind = base.shape().kind;
  auto out = std::make_shared<InvertedIndex>(out_shape, /*complete=*/false);
  out->set_constraint_sig(
      WindowConstraintSig(tmpl, offset, out_len, bp.fixed_codes()));

  const bool substring = tmpl.kind() == PatternKind::kSubstring;
  PatternKey out_key(out_len);
  std::unordered_set<PatternKey, CodeVecHash> seen;  // per-sid dedup
  for (const auto& [key, list] : base.lists()) {
    if (!WindowConsistent(tmpl, base_off, key, bp.fixed_codes())) continue;
    for (Sid s : list) {
      if (stats != nullptr) ++stats->sequences_scanned;
      seen.clear();
      const uint32_t len = bp.group().length(s);
      if (len < out_len) continue;
      auto try_window = [&](const uint32_t* idx) {
        // idx[j] is the in-sequence index of template position offset + j.
        for (size_t j = 0; j < out_len; ++j) {
          size_t bj = grow_right ? j : j - 1;  // index into the base key
          Code c = bp.CodeAt(offset + j, s, idx[j]);
          if ((grow_right && j < k) || (!grow_right && j > 0)) {
            if (c != key[bj]) return;
          }
          out_key[j] = c;
        }
        if (!WindowConsistent(tmpl, offset, out_key, bp.fixed_codes())) {
          return;
        }
        if (seen.insert(out_key).second) out->AddSid(out_key, s);
      };
      if (substring) {
        uint32_t idx[kMaxTemplatePositions];
        for (uint32_t p = 0; p + out_len <= len; ++p) {
          for (size_t j = 0; j < out_len; ++j) {
            idx[j] = p + static_cast<uint32_t>(j);
          }
          try_window(idx);
        }
      } else {
        uint32_t idx[kMaxTemplatePositions];
        auto rec = [&](auto&& self, size_t j, uint32_t start) -> void {
          if (j == out_len) {
            try_window(idx);
            return;
          }
          for (uint32_t i = start; i + (out_len - j) <= len; ++i) {
            idx[j] = i;
            self(self, j + 1, i + 1);
          }
        };
        rec(rec, 0, 0);
      }
    }
  }
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

}  // namespace solap
