#include "solap/index/index_ops.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <new>
#include <unordered_set>
#include <utility>

#include "solap/common/failpoint.h"
#include "solap/index/container.h"
#include "solap/index/intersect.h"

namespace solap {

bool WindowHasConstraints(const PatternTemplate& tmpl, size_t offset,
                          size_t len,
                          const std::vector<std::vector<Code>>& fixed_codes) {
  for (size_t j = 0; j < len; ++j) {
    size_t pos = offset + j;
    if (tmpl.FirstPositionInWindow(offset, pos) != pos) return true;
    if (!fixed_codes[tmpl.dim_of(pos)].empty()) return true;
  }
  return false;
}

std::string WindowConstraintSig(
    const PatternTemplate& tmpl, size_t offset, size_t len,
    const std::vector<std::vector<Code>>& fixed_codes) {
  if (!WindowHasConstraints(tmpl, offset, len, fixed_codes)) return "";
  std::string sig;
  for (size_t j = 0; j < len; ++j) {
    size_t pos = offset + j;
    size_t first = tmpl.FirstPositionInWindow(offset, pos);
    sig += "p" + std::to_string(first - offset);
    const std::vector<Code>& allowed = fixed_codes[tmpl.dim_of(pos)];
    if (!allowed.empty() && first == pos) {
      sig += "=[";
      for (Code c : allowed) sig += std::to_string(c) + ";";
      sig += "]";
    }
    sig += ",";
  }
  return sig;
}

bool WindowConsistent(const PatternTemplate& tmpl, size_t offset,
                      const PatternKey& key,
                      const std::vector<std::vector<Code>>& fixed_codes) {
  for (size_t j = 0; j < key.size(); ++j) {
    size_t pos = offset + j;
    size_t first = tmpl.FirstPositionInWindow(offset, pos);
    if (first != pos) {
      if (key[j] != key[first - offset]) return false;
      continue;
    }
    const std::vector<Code>& allowed = fixed_codes[tmpl.dim_of(pos)];
    if (!allowed.empty() &&
        std::find(allowed.begin(), allowed.end(), key[j]) == allowed.end()) {
      return false;
    }
  }
  return true;
}

bool ContainsWindow(const BoundPattern& bp, Sid s, const PatternKey& key,
                    size_t offset) {
  const size_t k = key.size();
  const uint32_t len = bp.group().length(s);
  if (len < k) return false;
  if (bp.tmpl().kind() == PatternKind::kSubstring) {
    for (uint32_t p = 0; p + k <= len; ++p) {
      bool ok = true;
      for (size_t j = 0; j < k; ++j) {
        if (bp.CodeAt(offset + j, s, p + j) != key[j]) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  }
  size_t j = 0;
  for (uint32_t i = 0; i < len && j < k; ++i) {
    if (bp.CodeAt(offset + j, s, i) == key[j]) ++j;
  }
  return j == k;
}

namespace {

// One partition's output: surviving (key, list) pairs in processing order
// plus the partition's private counters. Keeping results in a vector (not
// a map) lets the merge phase replay the exact serial insertion order.
struct JoinShardOut {
  std::vector<std::pair<PatternKey, SidList>> lists;
  ScanStats stats;
  // bad_alloc inside a pool worker would escape the task and terminate the
  // process; shards capture it here and the join fails with a Status the
  // engine can degrade on.
  Status status;
};

// Transient reservation against the engine budget, released when the join
// scope unwinds (including via exceptions).
struct ScratchCharge {
  MemoryGovernor* governor = nullptr;
  size_t bytes = 0;
  ~ScratchCharge() {
    if (governor != nullptr) governor->Release(bytes);
  }
};

// Shared implementation of both join directions. `grow_right` selects which
// operand contributes the new position.
//
// Phases: (1) bucket L2 lists by the shared-position code; (2) partition
// the window-consistent base lists across the pool (when both the list-
// count and total-work cutoffs pass), each shard intersecting container
// lists with per-pair kernel dispatch into reusable scratch buffers;
// (3) merge shard outputs in shard order — output keys embed their base
// key, so shards never collide and the merged map's insertion order equals
// the serial path's. Dense chunks are bitmap containers already, so no
// per-join bitmap encoding pass is needed; `bitmap_threshold` instead
// forces whole-list membership probing (§6 bitmap extension).
Result<std::shared_ptr<InvertedIndex>> JoinExtendImpl(
    const InvertedIndex& base, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    bool grow_right, ScanStats* stats, const JoinExecOptions& exec) {
  if (l2.shape().size() != 2) {
    return Status::InvalidArgument("join extension requires a size-2 index, "
                                   "got size " +
                                   std::to_string(l2.shape().size()));
  }
  SOLAP_FAILPOINT("index.join");
  // Reserve the join's working set — bitmap encodings, shard outputs, and
  // the result index are all proportional to the inputs — against the
  // engine budget for the duration of the join. A rejected reservation
  // fails the join with ResourceExhausted and the engine re-executes the
  // query on the counter-based path.
  ScratchCharge scratch;
  if (exec.governor != nullptr) {
    SOLAP_FAILPOINT("join.scratch");
    const size_t estimate = base.ByteSize() + l2.ByteSize();
    SOLAP_RETURN_NOT_OK(
        exec.governor->TryCharge(estimate, "II join scratch"));
    scratch.governor = exec.governor;
    scratch.bytes = estimate;
  }
  const size_t k = base.shape().size();
  const size_t out_len = k + 1;
  IndexShape out_shape = grow_right
                             ? base.shape().ExtendedRight(l2.shape().positions[1])
                             : base.shape().ExtendedLeft(l2.shape().positions[0]);
  out_shape.kind = base.shape().kind;
  const size_t base_win_offset = grow_right ? offset : offset + 1;

  // Base lists that survive the window pre-filter, in map order (the
  // serial processing order, which the merge phase reproduces), plus the
  // total entry count feeding the work-size cutoff. An input carrying an
  // unmerged delta segment (streaming ingestion) contributes its LOGICAL
  // lists: base and delta pointers travel together and the intersection
  // runs the two-segment path; without deltas the pointers are null and
  // the hot path is byte-identical to the pre-ingestion code.
  struct BaseEntry {
    const PatternKey* key;
    const SidList* base;   // may be null (delta-only key)
    const SidList* delta;  // null when the key has no unmerged delta
  };
  std::vector<BaseEntry> base_entries;
  base_entries.reserve(base.num_lists());
  size_t total_base_work = 0;
  base.ForEachLogicalList([&](const PatternKey& key, const SidList* blist,
                              const SidList* dlist) {
    if (!WindowConsistent(tmpl, base_win_offset, key, bp.fixed_codes())) {
      return;
    }
    base_entries.push_back(BaseEntry{&key, blist, dlist});
    total_base_work += (blist != nullptr ? blist->size() : 0) +
                       (dlist != nullptr ? dlist->size() : 0);
  });

  // Bucket the L2 lists by the code on the shared position. Dense chunks
  // of a SidList are bitmap containers already — the one-time encoding the
  // flat representation needed per join is now part of the index itself.
  // An L2 list past the explicit `bitmap_threshold` is probed whole (§6).
  struct L2Entry {
    Code grown;
    const SidList* list;   // may be null (delta-only key)
    const SidList* delta;  // null when the key has no unmerged delta
    bool probe_forced = false;
  };
  std::unordered_map<Code, std::vector<L2Entry>> by_shared;
  l2.ForEachLogicalList([&](const PatternKey& key2, const SidList* list2,
                            const SidList* dlist2) {
    Code shared = grow_right ? key2[0] : key2[1];
    Code grown = grow_right ? key2[1] : key2[0];
    const size_t logical_size = (list2 != nullptr ? list2->size() : 0) +
                                (dlist2 != nullptr ? dlist2->size() : 0);
    const bool probe_forced = exec.bitmap_threshold != 0 &&
                              logical_size > exec.bitmap_threshold;
    by_shared[shared].push_back(L2Entry{grown, list2, dlist2, probe_forced});
  });

  auto out = std::make_shared<InvertedIndex>(out_shape, /*complete=*/false);
  const bool scalar_only = !exec.adaptive_kernels;

  // Intersect+verify every (base list, L2 entry) pair of one partition.
  auto shard_range = [&](size_t begin, size_t end, JoinShardOut& shard) {
    PatternKey out_key(out_len);
    std::vector<Sid> candidates, verified;  // reused across pairs
    for (size_t i = begin; i < end; ++i) {
      const PatternKey& key = *base_entries[i].key;
      const SidList* blist = base_entries[i].base;
      const SidList* bdelta = base_entries[i].delta;
      Code shared = grow_right ? key.back() : key.front();
      auto it = by_shared.find(shared);
      if (it == by_shared.end()) continue;
      for (const L2Entry& l2e : it->second) {
        if (grow_right) {
          std::copy(key.begin(), key.end(), out_key.begin());
          out_key.back() = l2e.grown;
        } else {
          out_key.front() = l2e.grown;
          std::copy(key.begin(), key.end(), out_key.begin() + 1);
        }
        if (!WindowConsistent(tmpl, offset, out_key, bp.fixed_codes())) {
          continue;
        }
        // Kernel dispatch happens per container pair inside
        // IntersectSidLists; the per-pair tally is folded into the legacy
        // linear/galloping/bitmap counters so EXPLAIN ANALYZE still
        // reports the per-join kernel mix.
        if (bdelta != nullptr || l2e.delta != nullptr || blist == nullptr ||
            l2e.list == nullptr) {
          // Two-segment read path: either side has an unmerged delta, so
          // all four base/delta cross terms participate (intersect.cc).
          ContainerOpCounts delta_counts;
          IntersectSegmented(blist, bdelta, l2e.list, l2e.delta, candidates,
                             &delta_counts, scalar_only);
          shard.stats.container_array_ops += delta_counts.array_ops;
          shard.stats.container_bitmap_ops += delta_counts.bitmap_ops;
          shard.stats.container_run_ops += delta_counts.run_ops;
          shard.stats.container_gallop_ops += delta_counts.gallop_ops;
          ++shard.stats.intersections_linear;
        } else if (scalar_only) {
          IntersectSidListsScalar(*blist, *l2e.list, candidates);
          ++shard.stats.intersections_linear;
        } else if (l2e.probe_forced) {
          candidates.clear();
          blist->ForEach([&](Sid s) {
            if (l2e.list->Contains(s)) candidates.push_back(s);
          });
          ++shard.stats.intersections_bitmap;
        } else {
          ContainerOpCounts delta;
          IntersectSidLists(*blist, *l2e.list, candidates, &delta);
          shard.stats.container_array_ops += delta.array_ops;
          shard.stats.container_bitmap_ops += delta.bitmap_ops;
          shard.stats.container_run_ops += delta.run_ops;
          shard.stats.container_gallop_ops += delta.gallop_ops;
          if (delta.bitmap_ops > 0) {
            ++shard.stats.intersections_bitmap;
          } else if (delta.gallop_ops > 0) {
            ++shard.stats.intersections_galloping;
          } else {
            ++shard.stats.intersections_linear;
          }
        }
        ++shard.stats.list_intersections;
        if (candidates.empty()) continue;
        // "Scan the database to eliminate invalid entries" (Fig. 15 l. 9).
        verified.clear();
        for (Sid s : candidates) {
          if (ContainsWindow(bp, s, out_key, offset)) verified.push_back(s);
        }
        shard.stats.sequences_scanned += candidates.size();
        if (!verified.empty()) {
          shard.lists.emplace_back(out_key, SidList::FromSorted(verified));
        }
      }
    }
  };
  auto run_shard = [&](size_t begin, size_t end, JoinShardOut& shard) {
    try {
      shard_range(begin, end, shard);
    } catch (const std::bad_alloc&) {
      shard.status =
          Status::ResourceExhausted("II join shard ran out of memory");
    }
  };

  const size_t n = base_entries.size();
  // Both cutoffs must pass: enough lists to shard AND enough total work
  // that each shard outruns its fork/join overhead (small or merge-
  // dominated jobs used to go parallel and lose to the serial path).
  const size_t workers =
      exec.pool != nullptr && n >= exec.parallel_min_lists &&
              total_base_work >= exec.parallel_min_work
          ? std::min(exec.pool->num_threads(), n)
          : 1;
  std::vector<JoinShardOut> shards(std::max<size_t>(workers, 1));
  if (workers <= 1) {
    run_shard(0, n, shards[0]);
  } else {
    TaskBatch batch(exec.pool);
    const size_t chunk = (n + workers - 1) / workers;
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * chunk;
      const size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      batch.Submit([&run_shard, &shards, w, begin, end] {
        run_shard(begin, end, shards[w]);
      });
    }
    batch.Wait();
  }
  for (JoinShardOut& shard : shards) {
    SOLAP_RETURN_NOT_OK(shard.status);
    for (auto& [key, list] : shard.lists) {
      out->lists().emplace(std::move(key), std::move(list));
    }
    if (stats != nullptr) *stats += shard.stats;
  }

  out->set_constraint_sig(
      WindowConstraintSig(tmpl, offset, out_len, bp.fixed_codes()));
  // The join result is complete only if no template constraint filtered the
  // instantiation space and both inputs were themselves complete.
  out->set_complete(out->constraint_sig().empty() && base.complete() &&
                    l2.complete());
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<InvertedIndex>> JoinExtendRight(
    const InvertedIndex& left, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, const JoinExecOptions& exec) {
  return JoinExtendImpl(left, l2, tmpl, offset, bp, /*grow_right=*/true,
                        stats, exec);
}

Result<std::shared_ptr<InvertedIndex>> JoinExtendLeft(
    const InvertedIndex& right, const InvertedIndex& l2,
    const PatternTemplate& tmpl, size_t offset, const BoundPattern& bp,
    ScanStats* stats, const JoinExecOptions& exec) {
  return JoinExtendImpl(right, l2, tmpl, offset, bp, /*grow_right=*/false,
                        stats, exec);
}

Result<std::shared_ptr<InvertedIndex>> RollUpMerge(
    const InvertedIndex& fine, const std::vector<std::vector<Code>>& maps,
    IndexShape coarse_shape, const PatternTemplate* tmpl,
    const std::vector<std::vector<Code>>* fixed_codes, ScanStats* stats,
    const JoinExecOptions& exec) {
  if (!fine.complete()) {
    return Status::InvalidArgument(
        "P-ROLL-UP list merging requires a complete index; template-filtered "
        "indices would lose sequences (paper §4.2.2)");
  }
  if (maps.size() != fine.shape().size() ||
      coarse_shape.size() != fine.shape().size()) {
    return Status::InvalidArgument("roll-up maps must cover every position");
  }
  SOLAP_FAILPOINT("index.rollup");
  ThreadPool* pool = exec.pool;
  auto out = std::make_shared<InvertedIndex>(std::move(coarse_shape),
                                             /*complete=*/true);
  // Group the fine lists by coarse target, then union each target's
  // sources with one k-way container merge (UnionManySidLists) — no flat
  // append + re-sort pass. The key mapping and the per-target unions are
  // embarrassingly parallel; targets are keyed serially in the fine map's
  // iteration order, so the output's insertion order matches a serial
  // merge exactly.
  // A delta segment folds in naturally here: its lists enter the entry set
  // as additional union sources (the k-way merge dedups), so a not-yet-
  // compacted index rolls up to the same coarse lists a merged one would.
  struct FineEntry {
    const PatternKey* key;
    const SidList* list;
  };
  std::vector<FineEntry> entries;
  entries.reserve(fine.num_lists() + fine.delta().size());
  size_t total_work = 0;
  for (const auto& entry : fine.lists()) {
    entries.push_back(FineEntry{&entry.first, &entry.second});
    total_work += entry.second.size();
  }
  for (const auto& entry : fine.delta()) {
    entries.push_back(FineEntry{&entry.first, &entry.second});
    total_work += entry.second.size();
  }
  const size_t n = entries.size();

  // Phase 1 (parallel): map every fine key to its coarse key and apply the
  // slice filter.
  std::vector<PatternKey> coarse_keys(n);
  std::vector<uint8_t> keep(n, 1);
  // Workers allocate (key copies); bad_alloc must not escape into the pool.
  std::atomic<bool> shard_oom{false};
  auto map_range = [&](size_t begin, size_t end) {
    try {
      for (size_t i = begin; i < end; ++i) {
        const PatternKey& key = *entries[i].key;
        PatternKey& ck = coarse_keys[i];
        ck = key;
        for (size_t p = 0; p < key.size(); ++p) {
          const std::vector<Code>& map = maps[p];
          if (!map.empty() && key[p] < map.size()) ck[p] = map[key[p]];
        }
        if (tmpl != nullptr && fixed_codes != nullptr &&
            !WindowConsistent(*tmpl, 0, ck, *fixed_codes)) {
          keep[i] = 0;  // outside the sliced subcube
        }
      }
    } catch (const std::bad_alloc&) {
      shard_oom.store(true, std::memory_order_relaxed);
    }
  };

  // Same two-part cutoff as the joins: enough lists AND enough total
  // posting-list work to amortize the fan-out.
  const size_t workers =
      pool != nullptr && n >= std::max<size_t>(exec.parallel_min_lists, 64) &&
              total_work >= exec.parallel_min_work
          ? std::min(pool->num_threads(), n)
          : 1;
  if (workers <= 1) {
    map_range(0, n);
  } else {
    TaskBatch batch(pool);
    const size_t chunk = (n + workers - 1) / workers;
    for (size_t begin = 0; begin < n; begin += chunk) {
      const size_t end = std::min(begin + chunk, n);
      batch.Submit([&map_range, begin, end] { map_range(begin, end); });
    }
    batch.Wait();
  }
  if (shard_oom.load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted("P-ROLL-UP merge ran out of memory");
  }

  // Phase 2 (serial): key every coarse target in fine-map order and gather
  // each target's source lists. unordered_map nodes are stable, so the
  // target pointers survive later insertions.
  out->lists().reserve(fine.num_lists() / 4 + 1);
  std::unordered_map<PatternKey, size_t, CodeVecHash> slot_of;
  std::vector<SidList*> targets;
  std::vector<std::vector<const SidList*>> sources;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    auto [it, inserted] = slot_of.try_emplace(coarse_keys[i], targets.size());
    if (inserted) {
      targets.push_back(&out->lists()[coarse_keys[i]]);
      sources.emplace_back();
    }
    sources[it->second].push_back(entries[i].list);
  }

  // Phase 3 (parallel): k-way container union per target.
  const size_t t = targets.size();
  std::vector<ContainerOpCounts> union_counts(
      std::max<size_t>(workers, 1));
  auto finish_range = [&](size_t begin, size_t end, size_t w) {
    try {
      for (size_t i = begin; i < end; ++i) {
        *targets[i] = UnionManySidLists(sources[i], &union_counts[w]);
      }
    } catch (const std::bad_alloc&) {
      shard_oom.store(true, std::memory_order_relaxed);
    }
  };
  if (workers <= 1 || t < 64) {
    finish_range(0, t, 0);
  } else {
    TaskBatch batch(pool);
    const size_t chunk = (t + workers - 1) / workers;
    size_t w = 0;
    for (size_t begin = 0; begin < t; begin += chunk, ++w) {
      const size_t end = std::min(begin + chunk, t);
      batch.Submit([&finish_range, begin, end, w] {
        finish_range(begin, end, w);
      });
    }
    batch.Wait();
  }
  if (shard_oom.load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted("P-ROLL-UP merge ran out of memory");
  }

  if (stats != nullptr) {
    for (const ContainerOpCounts& c : union_counts) {
      stats->container_array_ops += c.array_ops;
      stats->container_bitmap_ops += c.bitmap_ops;
      stats->container_run_ops += c.run_ops;
      stats->container_gallop_ops += c.gallop_ops;
    }
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

Result<std::shared_ptr<InvertedIndex>> DrillDownRefine(
    const InvertedIndex& coarse, const std::vector<std::vector<Code>>& maps,
    const BoundPattern& bp_fine, IndexShape fine_shape,
    const std::vector<std::vector<Code>>* coarse_fixed_codes,
    ScanStats* stats) {
  const size_t m = fine_shape.size();
  if (bp_fine.tmpl().num_positions() != m ||
      coarse.shape().size() != m || maps.size() != m) {
    return Status::InvalidArgument(
        "drill-down refinement requires matching index / template lengths");
  }
  SOLAP_FAILPOINT("index.refine");
  auto out = std::make_shared<InvertedIndex>(std::move(fine_shape),
                                             coarse.complete());
  auto map_up = [&](size_t i, Code c) -> Code {
    const std::vector<Code>& map = maps[i];
    return (!map.empty() && c < map.size()) ? map[c] : c;
  };
  // Collect the participating coarse keys (those surviving the slice
  // filter) and the union of their member sids, then scan each sequence
  // exactly once — a sequence typically sits in several coarse lists.
  std::unordered_set<PatternKey, CodeVecHash> keep;
  std::vector<bool> marked(bp_fine.group().num_sequences(), false);
  coarse.ForEachLogicalList([&](const PatternKey& coarse_key,
                                const SidList* blist, const SidList* dlist) {
    if (coarse_fixed_codes != nullptr &&
        !WindowConsistent(bp_fine.tmpl(), 0, coarse_key,
                          *coarse_fixed_codes)) {
      return;  // the slice excludes this coarse cell entirely
    }
    keep.insert(coarse_key);
    if (blist != nullptr) blist->ForEach([&](Sid s) { marked[s] = true; });
    if (dlist != nullptr) dlist->ForEach([&](Sid s) { marked[s] = true; });
  });
  std::unordered_set<PatternKey, CodeVecHash> seen;  // per-sid dedup
  PatternKey fine_key(m), coarse_key(m);
  for (Sid s = 0; s < marked.size(); ++s) {
    if (!marked[s]) continue;
    if (stats != nullptr) ++stats->sequences_scanned;
    seen.clear();
    bp_fine.ForEachOccurrence(s, [&](const uint32_t* idx) {
      for (size_t i = 0; i < m; ++i) {
        fine_key[i] = bp_fine.CodeAt(i, s, idx[i]);
        coarse_key[i] = map_up(i, fine_key[i]);
      }
      if (keep.contains(coarse_key) && seen.insert(fine_key).second) {
        out->AddSid(fine_key, s);
      }
      return true;
    });
  }
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

Result<std::shared_ptr<InvertedIndex>> ExtendByScan(
    const InvertedIndex& base, const PatternTemplate& tmpl, size_t offset,
    bool grow_right, const BoundPattern& bp, ScanStats* stats) {
  SOLAP_FAILPOINT("index.extend_scan");
  const size_t k = base.shape().size();
  const size_t out_len = k + 1;
  // Template positions covered by base / by the result.
  const size_t base_off = grow_right ? offset : offset + 1;
  IndexShape out_shape =
      grow_right
          ? base.shape().ExtendedRight(
                tmpl.dim(tmpl.dim_of(offset + k)).ref)
          : base.shape().ExtendedLeft(tmpl.dim(tmpl.dim_of(offset)).ref);
  out_shape.kind = base.shape().kind;
  auto out = std::make_shared<InvertedIndex>(out_shape, /*complete=*/false);
  out->set_constraint_sig(
      WindowConstraintSig(tmpl, offset, out_len, bp.fixed_codes()));

  const bool substring = tmpl.kind() == PatternKind::kSubstring;
  PatternKey out_key(out_len);
  std::unordered_set<PatternKey, CodeVecHash> seen;  // per-sid dedup
  // Base then delta per key: the watermark invariant (delta sids exceed
  // base sids of the same index) keeps the per-out-key AddSid order
  // ascending, which the SidList append builder requires.
  base.ForEachLogicalList([&](const PatternKey& key, const SidList* blist,
                              const SidList* dlist) {
    if (!WindowConsistent(tmpl, base_off, key, bp.fixed_codes())) return;
    auto scan_sid = [&](Sid s) {
      if (stats != nullptr) ++stats->sequences_scanned;
      seen.clear();
      const uint32_t len = bp.group().length(s);
      if (len < out_len) return;
      auto try_window = [&](const uint32_t* idx) {
        // idx[j] is the in-sequence index of template position offset + j.
        for (size_t j = 0; j < out_len; ++j) {
          size_t bj = grow_right ? j : j - 1;  // index into the base key
          Code c = bp.CodeAt(offset + j, s, idx[j]);
          if ((grow_right && j < k) || (!grow_right && j > 0)) {
            if (c != key[bj]) return;
          }
          out_key[j] = c;
        }
        if (!WindowConsistent(tmpl, offset, out_key, bp.fixed_codes())) {
          return;
        }
        if (seen.insert(out_key).second) out->AddSid(out_key, s);
      };
      if (substring) {
        uint32_t idx[kMaxTemplatePositions];
        for (uint32_t p = 0; p + out_len <= len; ++p) {
          for (size_t j = 0; j < out_len; ++j) {
            idx[j] = p + static_cast<uint32_t>(j);
          }
          try_window(idx);
        }
      } else {
        uint32_t idx[kMaxTemplatePositions];
        auto rec = [&](auto&& self, size_t j, uint32_t start) -> void {
          if (j == out_len) {
            try_window(idx);
            return;
          }
          for (uint32_t i = start; i + (out_len - j) <= len; ++i) {
            idx[j] = i;
            self(self, j + 1, i + 1);
          }
        };
        rec(rec, 0, 0);
      }
    };
    if (blist != nullptr) blist->ForEach(scan_sid);
    if (dlist != nullptr) dlist->ForEach(scan_sid);
  });
  if (stats != nullptr) {
    stats->lists_built += out->num_lists();
    stats->index_bytes_built += out->ByteSize();
  }
  return out;
}

}  // namespace solap
