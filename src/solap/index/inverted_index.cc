#include "solap/index/inverted_index.h"

#include <algorithm>

#include "solap/index/intersect.h"

namespace solap {

std::string IndexShape::CanonicalString() const {
  std::string out = PatternKindName(kind);
  out += "[";
  for (const LevelRef& r : positions) {
    out += r.ToString();
    out += ",";
  }
  out += "]";
  return out;
}

IndexShape IndexShape::ExtendedRight(const LevelRef& ref) const {
  IndexShape out = *this;
  out.positions.push_back(ref);
  return out;
}

IndexShape IndexShape::ExtendedLeft(const LevelRef& ref) const {
  IndexShape out = *this;
  out.positions.insert(out.positions.begin(), ref);
  return out;
}

size_t InvertedIndex::total_entries() const {
  size_t n = 0;
  for (const auto& [key, list] : lists_) n += list.size();
  return n;
}

size_t InvertedIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, list] : lists_) {
    bytes += key.size() * sizeof(Code) + list.ByteSize();
  }
  return bytes + DeltaByteSize();
}

size_t InvertedIndex::DeltaByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, list] : delta_) {
    bytes += key.size() * sizeof(Code) + list.ByteSize();
  }
  return bytes;
}

void InvertedIndex::MergeDeltaIntoBase() {
  for (auto& [key, dlist] : delta_) {
    SidList& base = lists_[key];
    // Watermark invariant: every delta sid exceeds every base sid of this
    // index, so plain appends keep the base sorted.
    dlist.ForEach([&](Sid s) { base.Append(s); });
    base.Normalize();
  }
  delta_.clear();
}

const SidList* InvertedIndex::LogicalList(const PatternKey& key,
                                          SidList* scratch) const {
  const SidList* base = Find(key);
  const SidList* delta = FindDelta(key);
  if (delta == nullptr) return base;
  if (base == nullptr) return delta;
  *scratch = *base;
  delta->ForEach([&](Sid s) { scratch->Append(s); });
  return scratch;
}

void InvertedIndex::NormalizeLists() {
  for (auto& [key, list] : lists_) list.Normalize();
  for (auto& [key, list] : delta_) list.Normalize();
}

std::vector<Sid> IntersectSorted(const std::vector<Sid>& a,
                                 const std::vector<Sid>& b) {
  std::vector<Sid> out;
  out.reserve(std::min(a.size(), b.size()));
  IntersectAdaptive(a, b, /*b_bitmap=*/nullptr, out);
  return out;
}

std::vector<Sid> IntersectSorted(const SidList& a, const SidList& b) {
  std::vector<Sid> out;
  out.reserve(std::min(a.size(), b.size()));
  IntersectSidLists(a, b, out);
  return out;
}

std::vector<Sid> UnionSorted(const std::vector<Sid>& a,
                             const std::vector<Sid>& b) {
  std::vector<Sid> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<Sid> UnionSorted(const SidList& a, const SidList& b) {
  const SidList* ins[2] = {&a, &b};
  return UnionManySidLists(ins).ToVector();
}

}  // namespace solap
