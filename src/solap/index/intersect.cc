#include "solap/index/intersect.h"

#include <algorithm>

#if defined(SOLAP_X86_DISPATCH)
#include <immintrin.h>
#endif

namespace solap {

bool CpuHasSse42() {
#if defined(SOLAP_X86_DISPATCH)
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(SOLAP_X86_DISPATCH)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

void IntersectLinear(std::span<const Sid> a, std::span<const Sid> b,
                     std::vector<Sid>& out) {
  out.clear();
  const Sid* pa = a.data();
  const Sid* ea = pa + a.size();
  const Sid* pb = b.data();
  const Sid* eb = pb + b.size();
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out.push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

#if defined(SOLAP_X86_DISPATCH)
namespace {

// 4×4 block merge: compare each lane of the a-block against all four
// rotations of the b-block (three shuffles + four 32-bit compares), emit
// a's matching lanes, then advance whichever block's maximum is smaller —
// the classic SSE intersection of Lemire & Boytsov. Sids are distinct
// within a list, so a lane matches at most one b element globally and
// nothing is emitted twice.
void IntersectLinearSse2(const Sid* pa, const Sid* ea, const Sid* pb,
                         const Sid* eb, std::vector<Sid>& out) {
  while (pa + 4 <= ea && pb + 4 <= eb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
    while (mask != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctz(mask));
      out.push_back(pa[i]);
      mask &= mask - 1;
    }
    const Sid amax = pa[3], bmax = pb[3];
    if (amax <= bmax) pa += 4;
    if (bmax <= amax) pb += 4;
  }
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out.push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

}  // namespace
#endif  // SOLAP_X86_DISPATCH

void IntersectLinearSimd(std::span<const Sid> a, std::span<const Sid> b,
                         std::vector<Sid>& out) {
#if defined(SOLAP_X86_DISPATCH)
  out.clear();
  IntersectLinearSse2(a.data(), a.data() + a.size(), b.data(),
                      b.data() + b.size(), out);
#else
  IntersectLinear(a, b, out);
#endif
}

namespace {

// First index in [lo, n) with v[i] >= x, by exponential probing from `lo`
// then binary search inside the bracketed range.
size_t GallopLowerBound(std::span<const Sid> v, size_t lo, Sid x) {
  const size_t n = v.size();
  size_t bound = 1;
  while (lo + bound < n && v[lo + bound] < x) bound <<= 1;
  size_t hi = std::min(lo + bound, n);
  lo = lo + bound / 2;
  return static_cast<size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, x) - v.begin());
}

}  // namespace

void IntersectGalloping(std::span<const Sid> a, std::span<const Sid> b,
                        std::vector<Sid>& out) {
  out.clear();
  std::span<const Sid> small = a.size() <= b.size() ? a : b;
  std::span<const Sid> large = a.size() <= b.size() ? b : a;
  size_t lo = 0;
  for (Sid x : small) {
    lo = GallopLowerBound(large, lo, x);
    if (lo == large.size()) return;
    if (large[lo] == x) {
      out.push_back(x);
      ++lo;
    }
  }
}

#if defined(SOLAP_X86_DISPATCH)
namespace {

// Galloping with the binary-search endgame replaced by one 8-lane AVX2
// compare: the exponential probe narrows to a bracket, binary search to an
// 8-element window, and a broadcast-compare + movemask finds the lower
// bound in that window branch-free. Sids are compared unsigned by flipping
// the sign bit (vpcmpgtd is signed).
__attribute__((target("avx2"))) void IntersectGallopingAvx2(
    std::span<const Sid> small, std::span<const Sid> large,
    std::vector<Sid>& out) {
  const Sid* v = large.data();
  const size_t n = large.size();
  const __m256i signflip = _mm256_set1_epi32(
      static_cast<int>(0x80000000u));
  size_t lo = 0;
  for (Sid x : small) {
    size_t bound = 1;
    while (lo + bound < n && v[lo + bound] < x) bound <<= 1;
    size_t b = lo + bound / 2;
    size_t e = std::min(lo + bound, n);
    while (e - b > 8) {
      const size_t mid = b + (e - b) / 2;
      if (v[mid] < x) {
        b = mid + 1;
      } else {
        e = mid;
      }
    }
    if (e - b == 8) {
      const __m256i vx = _mm256_xor_si256(
          _mm256_set1_epi32(static_cast<int>(x)), signflip);
      const __m256i vv = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + b)),
          signflip);
      // Lane i set iff x > v[i]; the lower bound is the first clear lane.
      const unsigned gt = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_cmpgt_epi32(vx, vv))));
      b += static_cast<size_t>(__builtin_ctz(~gt & 0x1ffu));
    } else {
      while (b < e && v[b] < x) ++b;
    }
    lo = b;
    if (lo == n) return;
    if (v[lo] == x) {
      out.push_back(x);
      ++lo;
    }
  }
}

}  // namespace
#endif  // SOLAP_X86_DISPATCH

void IntersectGallopingSimd(std::span<const Sid> a, std::span<const Sid> b,
                            std::vector<Sid>& out) {
#if defined(SOLAP_X86_DISPATCH)
  if (CpuHasAvx2()) {
    out.clear();
    std::span<const Sid> small = a.size() <= b.size() ? a : b;
    std::span<const Sid> large = a.size() <= b.size() ? b : a;
    IntersectGallopingAvx2(small, large, out);
    return;
  }
#endif
  IntersectGalloping(a, b, out);
}

void IntersectBitmap(std::span<const Sid> probe, const Bitmap& bm,
                     std::vector<Sid>& out) {
  out.clear();
  for (Sid s : probe) {
    if (bm.Get(s)) out.push_back(s);
  }
}

void IntersectAdaptive(std::span<const Sid> a, std::span<const Sid> b,
                       size_t universe, const Bitmap* b_bitmap,
                       IntersectScratch* scratch, std::vector<Sid>& out) {
  switch (ChooseIntersectKernel(a.size(), b.size(), universe,
                                b_bitmap != nullptr)) {
    case IntersectKernel::kBitmap: {
      if (b_bitmap != nullptr) {
        IntersectBitmap(a, *b_bitmap, out);
        return;
      }
      if (scratch == nullptr || universe == 0) {
        // Density term fired but there is nowhere to amortize an encoding:
        // the SIMD merge is the best single-shot kernel for a dense pair.
        IntersectLinearSimd(a, b, out);
        return;
      }
      // Encode the larger operand once; repeat calls with the same operand
      // (data pointer + size, the join-loop pattern) reuse the encoding.
      std::span<const Sid> small = a.size() <= b.size() ? a : b;
      std::span<const Sid> large = a.size() <= b.size() ? b : a;
      if (scratch->keyed_data != large.data() ||
          scratch->keyed_size != large.size() ||
          scratch->keyed_universe != universe) {
        Bitmap bm(universe);
        for (Sid s : large) bm.Set(s);
        scratch->bitmap = std::move(bm);
        scratch->keyed_data = large.data();
        scratch->keyed_size = large.size();
        scratch->keyed_universe = universe;
      }
      IntersectBitmap(small, scratch->bitmap, out);
      return;
    }
    case IntersectKernel::kGalloping:
      IntersectGallopingSimd(a, b, out);
      return;
    case IntersectKernel::kLinear:
      IntersectLinearSimd(a, b, out);
      return;
  }
}

void IntersectSegmented(const SidList* a_base, const SidList* a_delta,
                        const SidList* b_base, const SidList* b_delta,
                        std::vector<Sid>& out, ContainerOpCounts* counts,
                        bool scalar_only) {
  out.clear();
  // Four pairwise terms, each sorted; the per-index disjointness makes the
  // final combine a plain k-way merge-dedup of at most four sorted runs.
  const SidList* as[2] = {a_base, a_delta};
  const SidList* bs[2] = {b_base, b_delta};
  std::vector<Sid> terms[4];
  size_t n_terms = 0;
  for (const SidList* a : as) {
    if (a == nullptr || a->size() == 0) continue;
    for (const SidList* b : bs) {
      if (b == nullptr || b->size() == 0) continue;
      std::vector<Sid>& term = terms[n_terms];
      if (a == a_base && b == b_base && !scalar_only) {
        // The big×big term gets the adaptive container kernels; the delta
        // cross terms are small by construction and a scalar merge wins.
        IntersectSidLists(*a, *b, term, counts);
      } else {
        IntersectSidListsScalar(*a, *b, term);
      }
      if (!term.empty()) ++n_terms;
    }
  }
  if (n_terms == 0) return;
  if (n_terms == 1) {
    out = std::move(terms[0]);
    return;
  }
  size_t idx[4] = {0, 0, 0, 0};
  for (;;) {
    Sid best = 0;
    bool have = false;
    for (size_t t = 0; t < n_terms; ++t) {
      if (idx[t] < terms[t].size() &&
          (!have || terms[t][idx[t]] < best)) {
        best = terms[t][idx[t]];
        have = true;
      }
    }
    if (!have) break;
    out.push_back(best);
    for (size_t t = 0; t < n_terms; ++t) {
      if (idx[t] < terms[t].size() && terms[t][idx[t]] == best) ++idx[t];
    }
  }
}

}  // namespace solap
