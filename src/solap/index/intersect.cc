#include "solap/index/intersect.h"

#include <algorithm>

namespace solap {

void IntersectLinear(std::span<const Sid> a, std::span<const Sid> b,
                     std::vector<Sid>& out) {
  out.clear();
  const Sid* pa = a.data();
  const Sid* ea = pa + a.size();
  const Sid* pb = b.data();
  const Sid* eb = pb + b.size();
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out.push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

namespace {

// First index in [lo, n) with v[i] >= x, by exponential probing from `lo`
// then binary search inside the bracketed range.
size_t GallopLowerBound(std::span<const Sid> v, size_t lo, Sid x) {
  const size_t n = v.size();
  size_t bound = 1;
  while (lo + bound < n && v[lo + bound] < x) bound <<= 1;
  size_t hi = std::min(lo + bound, n);
  lo = lo + bound / 2;
  return static_cast<size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, x) - v.begin());
}

}  // namespace

void IntersectGalloping(std::span<const Sid> a, std::span<const Sid> b,
                        std::vector<Sid>& out) {
  out.clear();
  std::span<const Sid> small = a.size() <= b.size() ? a : b;
  std::span<const Sid> large = a.size() <= b.size() ? b : a;
  size_t lo = 0;
  for (Sid x : small) {
    lo = GallopLowerBound(large, lo, x);
    if (lo == large.size()) return;
    if (large[lo] == x) {
      out.push_back(x);
      ++lo;
    }
  }
}

void IntersectBitmap(std::span<const Sid> probe, const Bitmap& bm,
                     std::vector<Sid>& out) {
  out.clear();
  for (Sid s : probe) {
    if (bm.Get(s)) out.push_back(s);
  }
}

void IntersectAdaptive(std::span<const Sid> a, std::span<const Sid> b,
                       const Bitmap* b_bitmap, std::vector<Sid>& out) {
  switch (ChooseIntersectKernel(a.size(), b.size(), b_bitmap != nullptr)) {
    case IntersectKernel::kBitmap:
      IntersectBitmap(a, *b_bitmap, out);
      return;
    case IntersectKernel::kGalloping:
      IntersectGalloping(a, b, out);
      return;
    case IntersectKernel::kLinear:
      IntersectLinear(a, b, out);
      return;
  }
}

}  // namespace solap
