// Bitmap-encoded inverted index (paper §6 extension): same key space as
// InvertedIndex with Bitmap payloads, enabling bitwise-AND joins.
#ifndef SOLAP_INDEX_BITMAP_INDEX_H_
#define SOLAP_INDEX_BITMAP_INDEX_H_

#include <memory>
#include <unordered_map>

#include "solap/index/bitmap.h"
#include "solap/index/inverted_index.h"

namespace solap {

/// \brief Bitmap variant of an inverted index over one sequence group.
class BitmapIndex {
 public:
  BitmapIndex(IndexShape shape, size_t num_sequences)
      : shape_(std::move(shape)), num_sequences_(num_sequences) {}

  /// Re-encodes an inverted index's sid lists as bitmaps.
  static BitmapIndex FromInverted(const InvertedIndex& index,
                                  size_t num_sequences);

  /// Decodes back to sorted-sid-list form.
  std::shared_ptr<InvertedIndex> ToInverted(bool complete) const;

  const IndexShape& shape() const { return shape_; }
  size_t num_sequences() const { return num_sequences_; }

  std::unordered_map<PatternKey, Bitmap, CodeVecHash>& lists() {
    return lists_;
  }
  const std::unordered_map<PatternKey, Bitmap, CodeVecHash>& lists() const {
    return lists_;
  }

  const Bitmap* Find(const PatternKey& key) const {
    auto it = lists_.find(key);
    return it == lists_.end() ? nullptr : &it->second;
  }

  size_t ByteSize() const;

 private:
  IndexShape shape_;
  size_t num_sequences_;
  std::unordered_map<PatternKey, Bitmap, CodeVecHash> lists_;
};

}  // namespace solap

#endif  // SOLAP_INDEX_BITMAP_INDEX_H_
