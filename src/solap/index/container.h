// Chunked container representation for posting lists (ROADMAP item 2).
//
// A SidList partitions its sorted sid set into one container per 2^16 sid
// range (the Roaring layout, cf. the Lemire & Boytsov SIMD intersection
// study in PAPERS.md): sparse chunks store sorted 16-bit lows in an array
// container, dense chunks a 1024-word bitmap (auto-converting at the
// classic 4096-element crossover), and contiguous chunks a run container of
// [start, last] interval pairs. Intersection walks the two container
// vectors key-aligned — whole 65536-sid chunks present on only one side
// are skipped without touching their payload — and dispatches a kernel per
// container pair (SSE4.2 STTNI for array×array, word-parallel AND for
// bitmap×bitmap, membership probes for mixed pairs). Roll-up union is a
// k-way merge into a per-chunk bitmap accumulator. Both produce exactly
// the sid sets of the scalar merge path, which the equivalence tests pin.
#ifndef SOLAP_INDEX_CONTAINER_H_
#define SOLAP_INDEX_CONTAINER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "solap/common/types.h"

namespace solap {

/// Sids per container: each container covers one [key << 16, key << 16 + 2^16) range.
inline constexpr uint32_t kContainerSpan = 1u << 16;
/// Array containers hold at most this many lows; the next append converts
/// to a bitmap (2 bytes/entry vs a fixed 8 KiB — the break-even point).
inline constexpr uint32_t kArrayBitmapCrossover = 4096;
/// 64-bit words in a bitmap container.
inline constexpr size_t kContainerWords = kContainerSpan / 64;

/// One chunk of a SidList: the sids in [key << 16, (key + 1) << 16).
struct SidContainer {
  enum class Kind : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

  uint16_t key = 0;          ///< sid >> 16 of every member
  Kind kind = Kind::kArray;
  uint32_t cardinality = 0;  ///< member count (maintained by all mutators)
  /// kArray: sorted distinct lows. kRun: flattened sorted disjoint
  /// [start, last] (inclusive) pairs. Unused for kBitmap.
  std::vector<uint16_t> values;
  /// kBitmap: exactly kContainerWords words. Unused otherwise.
  std::vector<uint64_t> words;

  /// Heap + struct bytes actually held (capacities, not sizes) — what the
  /// MemoryGovernor is charged.
  size_t ByteSize() const;
  bool Contains(uint16_t low) const;
  /// Appends `low`, which must be > every current member (builders feed
  /// strictly ascending, deduplicated lows). Converts kArray -> kBitmap at
  /// the crossover; extends the last run in place for kRun.
  void AppendLow(uint16_t low);
  /// Largest member low. Undefined on an empty container.
  uint16_t LastLow() const;
  /// Rewrites to the smallest of the three representations (ties break
  /// array < run < bitmap, so the choice is deterministic regardless of
  /// the current kind).
  void Normalize();
  void ConvertToBitmap();

  /// Calls fn(uint16_t low) for every member in ascending order.
  template <typename Fn>
  void ForEachLow(Fn&& fn) const {
    switch (kind) {
      case Kind::kArray:
        for (uint16_t v : values) fn(v);
        return;
      case Kind::kBitmap:
        for (size_t wi = 0; wi < words.size(); ++wi) {
          uint64_t w = words[wi];
          while (w != 0) {
            fn(static_cast<uint16_t>(wi * 64 +
                                     static_cast<size_t>(__builtin_ctzll(w))));
            w &= w - 1;
          }
        }
        return;
      case Kind::kRun:
        for (size_t i = 0; i + 1 < values.size(); i += 2) {
          // uint32 loop index: last may be 65535 and ++v would wrap.
          for (uint32_t v = values[i]; v <= values[i + 1]; ++v) {
            fn(static_cast<uint16_t>(v));
          }
        }
        return;
    }
  }
};

/// Per-intersection (or union) tally of which container-pair kernels ran;
/// flows into ScanStats / the ii_container_* service counters.
struct ContainerOpCounts {
  uint64_t array_ops = 0;   ///< array×array merges (STTNI or scalar)
  uint64_t bitmap_ops = 0;  ///< pairs where a bitmap container participated
  uint64_t run_ops = 0;     ///< pairs where a run container participated
  uint64_t gallop_ops = 0;  ///< skewed array×array pairs galloped instead

  ContainerOpCounts& operator+=(const ContainerOpCounts& o) {
    array_ops += o.array_ops;
    bitmap_ops += o.bitmap_ops;
    run_ops += o.run_ops;
    gallop_ops += o.gallop_ops;
    return *this;
  }
};

/// A sorted deduplicated sid set stored as key-ordered containers. This is
/// the native posting-list type of InvertedIndex.
class SidList {
 public:
  SidList() = default;

  /// Appends `sid`, ignoring a repeat of the immediately preceding append
  /// (the same consecutive-dedup contract the flat-vector AddSid had).
  /// Callers append in ascending order.
  void Append(Sid sid) {
    if (has_last_ && sid == last_) return;
    has_last_ = true;
    last_ = sid;
    const uint16_t key = static_cast<uint16_t>(sid >> 16);
    if (containers_.empty() || containers_.back().key != key) {
      containers_.emplace_back();
      containers_.back().key = key;
    }
    containers_.back().AppendLow(static_cast<uint16_t>(sid & 0xffff));
    ++size_;
  }

  /// Builds a list from an already-sorted deduplicated sid span and
  /// normalizes every container to its smallest representation.
  static SidList FromSorted(std::span<const Sid> sids);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Actual bytes held (container payload capacities + structs).
  size_t ByteSize() const;
  bool Contains(Sid sid) const;
  /// Normalizes every container (array/bitmap/run, whichever is smallest).
  void Normalize();

  const std::vector<SidContainer>& containers() const { return containers_; }
  std::vector<SidContainer>& containers() { return containers_; }
  /// Recomputes the cached size/last-sid after direct container
  /// manipulation (snapshot load).
  void RecomputeMeta();

  /// Calls fn(Sid) for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const SidContainer& c : containers_) {
      const Sid base = static_cast<Sid>(c.key) << 16;
      c.ForEachLow([&](uint16_t low) { fn(base | low); });
    }
  }

  std::vector<Sid> ToVector() const;

  /// Ascending decoder over the list; the scalar merge baseline and the
  /// equality helpers are built on it.
  class Cursor {
   public:
    explicit Cursor(const SidList& list) : list_(&list) { SkipToValid(0); }
    bool valid() const { return ci_ < list_->containers_.size(); }
    Sid value() const { return value_; }
    void Next();

   private:
    void SkipToValid(size_t ci);
    bool LoadWithin();  // positions value_ at the current in-container state

    const SidList* list_;
    size_t ci_ = 0;
    size_t vi_ = 0;       // array index / run pair index
    uint32_t off_ = 0;    // offset inside the current run
    size_t wi_ = 0;       // bitmap word index
    uint64_t word_ = 0;   // remaining bits of words[wi_]
    Sid value_ = 0;
  };
  Cursor cursor() const { return Cursor(*this); }

  friend bool operator==(const SidList& a, const SidList& b);
  friend bool operator==(const SidList& a, const std::vector<Sid>& b);
  friend bool operator==(const std::vector<Sid>& a, const SidList& b) {
    return b == a;
  }

 private:
  std::vector<SidContainer> containers_;
  size_t size_ = 0;
  Sid last_ = 0;
  bool has_last_ = false;
};

/// out = a ∩ b as a flat sorted sid vector (cleared first). Containers are
/// walked key-aligned — chunks on one side only are skipped whole — and
/// each aligned pair dispatches by kind: STTNI/scalar merge or galloping
/// for array×array, word-parallel AND for bitmap×bitmap, membership probes
/// for array×bitmap, interval walks when a run participates. `counts`
/// (optional) tallies the kernel mix.
void IntersectSidLists(const SidList& a, const SidList& b,
                       std::vector<Sid>& out,
                       ContainerOpCounts* counts = nullptr);

/// Scalar two-cursor merge baseline (`adaptive_kernels = false` joins and
/// the equivalence tests measure container kernels against it).
void IntersectSidListsScalar(const SidList& a, const SidList& b,
                             std::vector<Sid>& out);

/// K-way union of `inputs` (the P-ROLL-UP merge core): per distinct
/// container key, single-source containers are copied and multi-source
/// ones are OR-ed into a bitmap accumulator, then normalized. The result
/// only depends on the union of the input sid sets.
SidList UnionManySidLists(std::span<const SidList* const> inputs,
                          ContainerOpCounts* counts = nullptr);

}  // namespace solap

#endif  // SOLAP_INDEX_CONTAINER_H_
