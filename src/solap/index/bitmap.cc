#include "solap/index/bitmap.h"

#include <bit>

namespace solap {

Bitmap Bitmap::FromSids(const std::vector<Sid>& sids, size_t num_bits) {
  Bitmap b(num_bits);
  for (Sid s : sids) b.Set(s);
  return b;
}

void Bitmap::AndWith(const Bitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::OrWith(const Bitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::vector<Sid> Bitmap::ToSids() const {
  std::vector<Sid> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      unsigned bit = static_cast<unsigned>(std::countr_zero(w));
      out.push_back(static_cast<Sid>(wi * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace solap
