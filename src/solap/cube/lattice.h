// The S-cube lattice (paper §3.4): the set of S-cuboids over a set of
// global + pattern dimensions forms a lattice under a coarser/finer partial
// order. The paper states "we have defined a partial order for the
// S-cuboids in the lattice but the details are omitted here due to space
// limitation" — this module supplies that definition and the navigation
// helpers an interactive UI needs.
//
// Specification A is COARSER-OR-EQUAL than B (A ⊑ B) iff both share the
// same formation clauses (WHERE / CLUSTER BY / SEQUENCE BY / SEQUENCE
// GROUP BY attributes), aggregate, pattern kind and cell restriction, and
//  (1) A's pattern template equals a contiguous window of B's template
//      (reachable by DE-HEAD / DE-TAIL steps) with the identical
//      symbol-equality structure, where each of A's pattern dimensions sits
//      at the same or a higher abstraction level than B's corresponding
//      dimension (reachable by P-ROLL-UPs); and
//  (2) A's global dimensions are a subset of B's, each at the same or a
//      higher abstraction level (classical roll-up).
//
// Slices and matching predicates select sub-populations rather than
// summarization levels; specs carrying them only compare equal to
// themselves. Note that A ⊑ B does NOT mean A is computable from B —
// S-cuboids are non-summarizable (§3.4); the order is navigational.
#ifndef SOLAP_CUBE_LATTICE_H_
#define SOLAP_CUBE_LATTICE_H_

#include <vector>

#include "solap/common/status.h"
#include "solap/cube/cuboid_spec.h"
#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {

enum class SpecOrder {
  kEqual,
  kCoarser,       ///< a ⊑ b, a != b
  kFiner,         ///< b ⊑ a, a != b
  kIncomparable,
};

const char* SpecOrderName(SpecOrder order);

/// Position of `a` relative to `b` in the S-cube lattice.
SpecOrder CompareSpecs(const CuboidSpec& a, const CuboidSpec& b,
                       const HierarchyRegistry* hierarchies);

/// All one-step coarsenings of `spec`: DE-HEAD, DE-TAIL, a P-ROLL-UP of
/// each pattern dimension, and a roll-up (or removal at the top level) of
/// each global dimension. These are `spec`'s parents in the lattice.
Result<std::vector<CuboidSpec>> CoarserNeighbors(
    const CuboidSpec& spec, const HierarchyRegistry& hierarchies);

/// One-step refinements that stay finite: a P-DRILL-DOWN of each pattern
/// dimension and a drill-down of each global dimension. APPEND/PREPEND
/// children are omitted — the paper notes the S-cube is infinite in that
/// direction (§3.4).
Result<std::vector<CuboidSpec>> FinerNeighbors(
    const CuboidSpec& spec, const HierarchyRegistry& hierarchies);

/// True when a cuboid computed for `spec` can be DELTA-PATCHED after a
/// pattern-invariant append (new sequences only — no existing sequence
/// changed): plain templates fold assignments additively per cell, so the
/// new sequences' assignments merge in without recomputation. Regex
/// templates would also merge, but their scan path is not windowed per sid
/// range; iceberg cuboids are post-filtered, so their cached cells have
/// already dropped below-threshold state that a patch could resurrect —
/// both are invalidated instead (docs/INGESTION.md "Cuboid maintenance").
inline bool AppendPatchable(const CuboidSpec& spec) {
  return !spec.is_regex() && !spec.iceberg_min_count.has_value();
}

}  // namespace solap

#endif  // SOLAP_CUBE_LATTICE_H_
