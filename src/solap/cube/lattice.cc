#include "solap/cube/lattice.h"

#include <algorithm>

#include "solap/engine/operations.h"

namespace solap {

namespace {

int LevelIndexOf(const HierarchyRegistry* reg, const LevelRef& ref) {
  ConceptHierarchy* h = reg != nullptr ? reg->Find(ref.attr) : nullptr;
  if (h == nullptr) {
    // Calendar chain: time < day < week < month.
    const char* chain[] = {"time", "day", "week", "month"};
    for (int i = 0; i < 4; ++i) {
      if (ref.level == chain[i] || (i == 0 && ref.level == ref.attr)) {
        return i;
      }
    }
    return -1;
  }
  int idx = h->LevelIndex(ref.level);
  if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
  return idx;
}

// Non-dimension parts that must coincide for two specs to be related.
bool SameFamily(const CuboidSpec& a, const CuboidSpec& b) {
  if (a.agg != b.agg || a.measure != b.measure || a.kind != b.kind ||
      a.restriction != b.restriction) {
    return false;
  }
  auto where_str = [](const ExprPtr& e) {
    return e == nullptr ? std::string("-") : e->ToString();
  };
  if (where_str(a.seq.where) != where_str(b.seq.where)) return false;
  if (a.seq.cluster_by != b.seq.cluster_by ||
      a.seq.sequence_by != b.seq.sequence_by ||
      a.seq.ascending != b.seq.ascending) {
    return false;
  }
  // Slices and predicates pin sub-populations: only identity compares.
  auto restricted = [](const CuboidSpec& s) {
    if (s.predicate != nullptr || !s.global_slices.empty()) return true;
    return std::any_of(s.dims.begin(), s.dims.end(),
                       [](const PatternDim& d) { return d.restricted(); });
  };
  return !restricted(a) && !restricted(b);
}

// True if a's template equals the window of b starting at `offset`, with
// identical symbol-equality structure, same attributes, and each a-dim at
// a coarser-or-equal level. Requires |a| <= |b| - offset.
bool WindowCoarserEq(const CuboidSpec& a, const PatternTemplate& ta,
                     const CuboidSpec& b, const PatternTemplate& tb,
                     size_t offset, const HierarchyRegistry* reg) {
  const size_t ma = ta.num_positions();
  for (size_t j = 0; j < ma; ++j) {
    // Equality structure: the first in-window occurrence ordinal of each
    // position's dimension must match between a and b's window.
    size_t fa = static_cast<size_t>(ta.first_position_of(ta.dim_of(j)));
    size_t fb = j;
    int bd = tb.dim_of(offset + j);
    for (size_t p = 0; p < j; ++p) {
      if (tb.dim_of(offset + p) == bd) {
        fb = p;
        break;
      }
    }
    if (fa != fb) return false;
    const PatternDim& da = a.dims[ta.dim_of(j)];
    const PatternDim& db = b.dims[bd];
    if (da.ref.attr != db.ref.attr) return false;
    int la = LevelIndexOf(reg, da.ref);
    int lb = LevelIndexOf(reg, db.ref);
    if (la < 0 || lb < 0) {
      if (da.ref.level != db.ref.level) return false;
    } else if (la < lb) {
      return false;  // a is finer here
    }
  }
  return true;
}

// True if a's global dimensions are a subset of b's at coarser-or-equal
// levels.
bool GlobalsCoarserEq(const CuboidSpec& a, const CuboidSpec& b,
                      const HierarchyRegistry* reg) {
  for (const LevelRef& ra : a.seq.group_by) {
    bool found = false;
    for (const LevelRef& rb : b.seq.group_by) {
      if (ra.attr != rb.attr) continue;
      int la = LevelIndexOf(reg, ra);
      int lb = LevelIndexOf(reg, rb);
      if (la < 0 || lb < 0) {
        found = ra.level == rb.level;
      } else {
        found = la >= lb;
      }
      break;
    }
    if (!found) return false;
  }
  return true;
}

// a ⊑ b?
bool CoarserEq(const CuboidSpec& a, const CuboidSpec& b,
               const HierarchyRegistry* reg) {
  auto ta = a.MakeTemplate();
  auto tb = b.MakeTemplate();
  if (!ta.ok() || !tb.ok()) return false;
  if (ta->num_positions() > tb->num_positions()) return false;
  if (!GlobalsCoarserEq(a, b, reg)) return false;
  const size_t span = tb->num_positions() - ta->num_positions();
  for (size_t offset = 0; offset <= span; ++offset) {
    if (WindowCoarserEq(a, *ta, b, *tb, offset, reg)) return true;
  }
  return false;
}

}  // namespace

const char* SpecOrderName(SpecOrder order) {
  switch (order) {
    case SpecOrder::kEqual:
      return "equal";
    case SpecOrder::kCoarser:
      return "coarser";
    case SpecOrder::kFiner:
      return "finer";
    case SpecOrder::kIncomparable:
      return "incomparable";
  }
  return "?";
}

SpecOrder CompareSpecs(const CuboidSpec& a, const CuboidSpec& b,
                       const HierarchyRegistry* hierarchies) {
  if (a.CanonicalString() == b.CanonicalString()) return SpecOrder::kEqual;
  if (!SameFamily(a, b)) return SpecOrder::kIncomparable;
  bool ab = CoarserEq(a, b, hierarchies);
  bool ba = CoarserEq(b, a, hierarchies);
  if (ab && ba) return SpecOrder::kEqual;  // same summarization level
  if (ab) return SpecOrder::kCoarser;
  if (ba) return SpecOrder::kFiner;
  return SpecOrder::kIncomparable;
}

Result<std::vector<CuboidSpec>> CoarserNeighbors(
    const CuboidSpec& spec, const HierarchyRegistry& hierarchies) {
  std::vector<CuboidSpec> out;
  if (spec.symbols.size() > 1) {
    SOLAP_ASSIGN_OR_RETURN(CuboidSpec dehead, ops::DeHead(spec));
    out.push_back(std::move(dehead));
    SOLAP_ASSIGN_OR_RETURN(CuboidSpec detail, ops::DeTail(spec));
    out.push_back(std::move(detail));
  }
  for (const PatternDim& d : spec.dims) {
    auto up = ops::PRollUp(spec, d.symbol, hierarchies);
    if (up.ok()) out.push_back(*std::move(up));
  }
  const char* calendar_chain[] = {"time", "day", "week", "month"};
  for (size_t i = 0; i < spec.seq.group_by.size(); ++i) {
    const LevelRef& r = spec.seq.group_by[i];
    ConceptHierarchy* h = hierarchies.Find(r.attr);
    int idx = h != nullptr ? h->LevelIndex(r.level) : LevelIndexOf(&hierarchies, r);
    if (h != nullptr && idx >= 0 &&
        idx + 1 < static_cast<int>(h->num_levels())) {
      SOLAP_ASSIGN_OR_RETURN(
          CuboidSpec up,
          ops::RollUpGlobal(spec, r.attr, h->level_name(idx + 1)));
      out.push_back(std::move(up));
    } else if (h == nullptr && idx >= 0 && idx < 3) {
      // Calendar level: day -> week -> month.
      SOLAP_ASSIGN_OR_RETURN(
          CuboidSpec up,
          ops::RollUpGlobal(spec, r.attr, calendar_chain[idx + 1]));
      out.push_back(std::move(up));
    } else {
      // Top level (or no hierarchy): the coarser step drops the dimension.
      CuboidSpec dropped = spec;
      dropped.seq.group_by.erase(dropped.seq.group_by.begin() + i);
      out.push_back(std::move(dropped));
    }
  }
  return out;
}

Result<std::vector<CuboidSpec>> FinerNeighbors(
    const CuboidSpec& spec, const HierarchyRegistry& hierarchies) {
  std::vector<CuboidSpec> out;
  for (const PatternDim& d : spec.dims) {
    auto down = ops::PDrillDown(spec, d.symbol, hierarchies);
    if (down.ok()) out.push_back(*std::move(down));
  }
  const char* calendar_chain[] = {"time", "day", "week", "month"};
  for (const LevelRef& r : spec.seq.group_by) {
    ConceptHierarchy* h = hierarchies.Find(r.attr);
    int idx = h != nullptr ? h->LevelIndex(r.level) : LevelIndexOf(&hierarchies, r);
    if (h != nullptr && idx > 0) {
      SOLAP_ASSIGN_OR_RETURN(
          CuboidSpec down,
          ops::DrillDownGlobal(spec, r.attr, h->level_name(idx - 1)));
      out.push_back(std::move(down));
    } else if (h == nullptr && idx > 0) {
      SOLAP_ASSIGN_OR_RETURN(
          CuboidSpec down,
          ops::DrillDownGlobal(spec, r.attr, calendar_chain[idx - 1]));
      out.push_back(std::move(down));
    }
  }
  return out;
}

}  // namespace solap
