#include "solap/cube/cuboid.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace solap {

CellValue SCuboid::CellAt(const CellKey& key) const {
  auto it = cells_.find(key);
  return it == cells_.end() ? CellValue{} : it->second;
}

void SCuboid::SetLabel(size_t dim, Code code, std::string label) {
  if (labels_.size() <= dim) labels_.resize(dims_.size());
  labels_[dim].emplace(code, std::move(label));
}

std::string SCuboid::LabelOf(size_t dim, Code code) const {
  if (dim < labels_.size()) {
    auto it = labels_[dim].find(code);
    if (it != labels_[dim].end()) return it->second;
  }
  return std::to_string(code);
}

CellKey SCuboid::ArgMaxCell() const {
  CellKey best;
  double best_value = -std::numeric_limits<double>::infinity();
  for (const auto& [key, cell] : cells_) {
    double v = cell.Value(agg_);
    // Deterministic tie-break on the key itself.
    if (v > best_value || (v == best_value && (best.empty() || key < best))) {
      best_value = v;
      best = key;
    }
  }
  return best;
}

std::vector<std::pair<CellKey, double>> SCuboid::TopCells(
    size_t limit) const {
  std::vector<std::pair<CellKey, double>> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    out.emplace_back(key, cell.Value(agg_));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (limit != 0 && out.size() > limit) out.resize(limit);
  return out;
}

size_t SCuboid::ApplyIceberg(int64_t min_count) {
  size_t dropped = 0;
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->second.count < min_count) {
      it = cells_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::string SCuboid::ToTable(size_t limit) const {
  std::ostringstream os;
  os << "(";
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (d) os << ", ";
    os << dims_[d].name << ":" << dims_[d].ref.level;
  }
  os << ")  " << AggKindName(agg_) << "\n";
  for (const auto& [key, value] : TopCells(limit)) {
    os << "(";
    for (size_t d = 0; d < key.size(); ++d) {
      if (d) os << ", ";
      os << LabelOf(d, key[d]);
    }
    os << ")  " << std::fixed << std::setprecision(value == static_cast<int64_t>(value) ? 0 : 2)
       << value << "\n";
  }
  if (limit != 0 && cells_.size() > limit) {
    os << "... (" << cells_.size() - limit << " more cells)\n";
  }
  return os.str();
}

std::string SCuboid::ToCsv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  for (size_t d = 0; d < dims_.size(); ++d) {
    os << quote(dims_[d].name + ":" + dims_[d].ref.level) << ",";
  }
  os << AggKindName(agg_) << "\n";
  for (const auto& [key, value] : TopCells(0)) {
    for (size_t d = 0; d < key.size(); ++d) {
      os << quote(LabelOf(d, key[d])) << ",";
    }
    os << value << "\n";
  }
  return os.str();
}

size_t SCuboid::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, cell] : cells_) {
    bytes += key.size() * sizeof(Code) + sizeof(CellValue);
  }
  for (const auto& label_map : labels_) {
    for (const auto& [code, label] : label_map) {
      bytes += sizeof(Code) + label.size();
    }
  }
  return bytes;
}

}  // namespace solap
