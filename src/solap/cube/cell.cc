#include "solap/cube/cell.h"

namespace solap {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

double CellValue::Value(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(count);
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    case AggKind::kMin:
      return count == 0 ? 0.0 : min;
    case AggKind::kMax:
      return count == 0 ? 0.0 : max;
  }
  return 0.0;
}

}  // namespace solap
