// Wire codec for shard partial answers and cuboid specifications — the
// serialization layer of the distributed scatter path (ISSUE 9).
//
// A shard process answers `POST /shard/exec` with an *envelope*:
//
//   {"v":1,"crc":<u32>,"payload":{...}}
//
// The envelope prefix is rigid (no whitespace, keys in exactly this order),
// so the decoder can recover the byte-exact payload text and check the
// CRC32 (storage/io.h) over it before trusting a single field — the wire
// mirror of the snapshot v2 container's validate-before-trust discipline.
// `v` is the codec version; decoders reject anything but the version they
// were built with (a mixed-version fleet must fail loudly, not mis-merge).
//
// Floating-point cell state (SUM, MIN, MAX) travels as the IEEE-754 bit
// pattern rendered as 16 lowercase hex digits, never as decimal text:
// the distributed gather must be bit-identical to the in-process gather,
// and printf/strtod round trips do not owe us that (nor can they carry the
// ±inf neutral elements of empty MIN/MAX state). Counts and codes travel
// as plain JSON integers (int64-exact in net/json).
//
// Cells and labels are emitted in sorted order so encoding is a pure
// function of cuboid content — two replicas of the same slice produce
// byte-identical partials, which CRC comparison and tests both exploit.
#ifndef SOLAP_CUBE_PARTIAL_CODEC_H_
#define SOLAP_CUBE_PARTIAL_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "solap/common/stats.h"
#include "solap/common/status.h"
#include "solap/cube/cuboid.h"
#include "solap/cube/cuboid_spec.h"
#include "solap/net/json.h"

namespace solap {

/// Version written into the envelope; decoders accept exactly this.
inline constexpr int64_t kShardWireVersion = 1;

/// One shard's decoded answer: its partial cuboid plus the ScanStats its
/// local execution accumulated (merged into the coordinator's totals so
/// distributed ScanStats sums match the in-process path).
struct ShardPartial {
  std::shared_ptr<SCuboid> cuboid;
  ScanStats stats;
};

/// Wraps `payload` (a JSON value rendered as text) in the versioned,
/// CRC-tagged envelope every shard RPC uses — /shard/exec responses and
/// /shard/append requests alike share one framing discipline.
std::string EncodeShardEnvelope(const std::string& payload);

/// Strict inverse of EncodeShardEnvelope: verifies the rigid prefix, the
/// codec version, and the CRC, then returns the byte-exact payload text
/// (a view into `text`). kParseError on any violation.
Result<std::string_view> DecodeShardEnvelope(std::string_view text);

/// Renders `cuboid` + `stats` as the versioned, CRC-tagged envelope.
/// Deterministic: sorted cells/labels, bit-pattern doubles.
std::string EncodeShardPartial(const SCuboid& cuboid, const ScanStats& stats);

/// Strict inverse of EncodeShardPartial. kParseError on any violation:
/// malformed envelope, version mismatch, CRC mismatch, malformed JSON,
/// missing/mistyped fields, cell-key width not matching the dimension
/// count, out-of-range codes, or malformed bit-pattern hex.
Result<ShardPartial> DecodeShardPartial(std::string_view text);

/// Renders `spec` as a JSON object (no envelope — it travels inside the
/// /shard/exec request body, which carries its own framing). Expressions
/// (WHERE, matching predicate) are carried as their canonical text form
/// and re-parsed on decode.
std::string EncodeCuboidSpec(const CuboidSpec& spec);

/// Strict inverse of EncodeCuboidSpec, from a parsed JSON object.
Result<CuboidSpec> DecodeCuboidSpec(const net::JsonValue& v);

/// Convenience: JsonParse + DecodeCuboidSpec.
Result<CuboidSpec> DecodeCuboidSpecText(std::string_view text);

}  // namespace solap

#endif  // SOLAP_CUBE_PARTIAL_CODEC_H_
