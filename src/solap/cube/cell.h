// Cuboid cell values and aggregate functions (paper §3.2 part 6).
#ifndef SOLAP_CUBE_CELL_H_
#define SOLAP_CUBE_CELL_H_

#include <cstdint>
#include <limits>
#include <string>

namespace solap {

/// Aggregate function of an S-cuboid. COUNT counts assigned contents
/// (matched substrings/subsequences, or whole sequences under the data-go
/// restriction); the others aggregate the per-assignment sum of a measure
/// attribute over the assigned content's events.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind kind);

/// \brief Running aggregate state of one cuboid cell.
struct CellValue {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds in one assignment whose content's measure total is `v`
  /// (0 for COUNT-only queries).
  void Add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// Merges another cell's state (used by online aggregation snapshots).
  void Merge(const CellValue& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  /// Final value under `kind` (AVG = sum / count).
  double Value(AggKind kind) const;
};

}  // namespace solap

#endif  // SOLAP_CUBE_CELL_H_
