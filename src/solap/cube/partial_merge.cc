#include "solap/cube/partial_merge.h"

#include <vector>

namespace solap {

size_t MergeCuboidPartials(SCuboid* dst, const SCuboid& src) {
  size_t folded = 0;
  const size_t ndims = src.dims().size();
  for (const auto& [key, value] : src.cells()) {
    dst->MergeCell(key, value);
    for (size_t d = 0; d < ndims && d < key.size(); ++d) {
      dst->SetLabel(d, key[d], src.LabelOf(d, key[d]));
    }
    ++folded;
  }
  return folded;
}

SidList GatherShardLists(std::span<const SidList* const> shard_lists,
                         std::span<const Sid> bases,
                         ContainerOpCounts* counts) {
  // Rebase each shard's group-local sids into the global sid space. The
  // blocks are disjoint by construction, so the subsequent union is
  // lossless; it still runs through UnionManySidLists so the gather uses
  // (and counts ops for) the same container machinery as P-ROLL-UP.
  std::vector<SidList> rebased;
  rebased.reserve(shard_lists.size());
  for (size_t s = 0; s < shard_lists.size(); ++s) {
    SidList list;
    if (shard_lists[s] != nullptr) {
      shard_lists[s]->ForEach([&](Sid sid) { list.Append(bases[s] + sid); });
    }
    list.Normalize();
    rebased.push_back(std::move(list));
  }
  std::vector<const SidList*> ptrs;
  ptrs.reserve(rebased.size());
  for (const SidList& l : rebased) ptrs.push_back(&l);
  return UnionManySidLists(std::span<const SidList* const>(ptrs), counts);
}

}  // namespace solap
