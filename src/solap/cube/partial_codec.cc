#include "solap/cube/partial_codec.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "solap/parser/parser.h"
#include "solap/storage/io.h"

namespace solap {

namespace {

using net::JsonString;
using net::JsonValue;

// --- bit-pattern doubles --------------------------------------------------

std::string HexBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
  return std::string(buf, 16);
}

Result<double> BitsFromHex(const std::string& s) {
  if (s.size() != 16) {
    return Status::ParseError("bit-pattern double must be 16 hex digits");
  }
  uint64_t bits = 0;
  for (char c : s) {
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return Status::ParseError("bit-pattern double has non-hex digit");
    }
    bits = (bits << 4) | nibble;
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --- enum <-> name --------------------------------------------------------

Result<AggKind> AggKindFromName(const std::string& name) {
  for (AggKind k : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                    AggKind::kMin, AggKind::kMax}) {
    if (name == AggKindName(k)) return k;
  }
  return Status::ParseError("unknown aggregate kind: " + name);
}

Result<PatternKind> PatternKindFromName(const std::string& name) {
  for (PatternKind k : {PatternKind::kSubstring, PatternKind::kSubsequence}) {
    if (name == PatternKindName(k)) return k;
  }
  return Status::ParseError("unknown pattern kind: " + name);
}

Result<CellRestriction> RestrictionFromName(const std::string& name) {
  for (CellRestriction r :
       {CellRestriction::kLeftMaxMatchedGo, CellRestriction::kLeftMaxDataGo,
        CellRestriction::kAllMatchedGo}) {
    if (name == CellRestrictionName(r)) return r;
  }
  return Status::ParseError("unknown cell restriction: " + name);
}

// --- small decode helpers -------------------------------------------------

Result<Code> CodeFrom(const JsonValue& v, const char* what) {
  if (!v.IsInt() || v.i < 0 || v.i > static_cast<int64_t>(UINT32_MAX)) {
    return Status::ParseError(std::string(what) +
                              " must be an integer in the code range");
  }
  return static_cast<Code>(v.i);
}

Result<uint64_t> StatField(const JsonValue& obj, const char* key) {
  SOLAP_ASSIGN_OR_RETURN(int64_t v, obj.RequireInt(key));
  if (v < 0) {
    return Status::ParseError(std::string("stats field ") + key +
                              " is negative");
  }
  return static_cast<uint64_t>(v);
}

Result<std::vector<std::string>> StringArray(const JsonValue& arr,
                                             const char* what) {
  std::vector<std::string> out;
  out.reserve(arr.items.size());
  for (const JsonValue& item : arr.items) {
    if (!item.IsString()) {
      return Status::ParseError(std::string(what) + " must hold strings");
    }
    out.push_back(item.s);
  }
  return out;
}

void AppendStringArray(std::ostringstream& os,
                       const std::vector<std::string>& items) {
  os << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ",";
    os << JsonString(items[i]);
  }
  os << "]";
}

Result<LevelRef> LevelRefFrom(const JsonValue& v, const char* what) {
  if (!v.IsArray() || v.items.size() != 2 || !v.items[0].IsString() ||
      !v.items[1].IsString()) {
    return Status::ParseError(std::string(what) +
                              " must be an [attr, level] pair");
  }
  return LevelRef{v.items[0].s, v.items[1].s};
}

void AppendLevelRef(std::ostringstream& os, const LevelRef& ref) {
  os << "[" << JsonString(ref.attr) << "," << JsonString(ref.level) << "]";
}

// Expressions travel as Expr::ToString text — the canonical, re-parseable
// form (parser/parser.h ParseExpression) — or JSON null when absent.
void AppendExpr(std::ostringstream& os, const ExprPtr& e) {
  if (e == nullptr) {
    os << "null";
  } else {
    os << JsonString(e->ToString());
  }
}

Result<ExprPtr> ExprFrom(const JsonValue& v, const char* what) {
  if (v.IsNull()) return ExprPtr{};
  if (!v.IsString()) {
    return Status::ParseError(std::string(what) +
                              " must be an expression string or null");
  }
  Result<ExprPtr> parsed = ParseExpression(v.s);
  if (!parsed.ok()) {
    return Status::ParseError(std::string(what) + ": " +
                              parsed.status().message());
  }
  return parsed;
}

// --- ScanStats ------------------------------------------------------------

// Field list shared by encode and decode so the two cannot drift: adding a
// ScanStats counter without extending this table breaks the codec test's
// exhaustive round trip.
struct StatsField {
  const char* key;
  uint64_t ScanStats::* member;
};

constexpr StatsField kStatsFields[] = {
    {"sequences_scanned", &ScanStats::sequences_scanned},
    {"lists_built", &ScanStats::lists_built},
    {"list_intersections", &ScanStats::list_intersections},
    {"intersections_linear", &ScanStats::intersections_linear},
    {"intersections_galloping", &ScanStats::intersections_galloping},
    {"intersections_bitmap", &ScanStats::intersections_bitmap},
    {"container_array_ops", &ScanStats::container_array_ops},
    {"container_bitmap_ops", &ScanStats::container_bitmap_ops},
    {"container_run_ops", &ScanStats::container_run_ops},
    {"container_gallop_ops", &ScanStats::container_gallop_ops},
    {"index_bytes_built", &ScanStats::index_bytes_built},
    {"repository_hits", &ScanStats::repository_hits},
    {"index_cache_hits", &ScanStats::index_cache_hits},
    {"degraded_queries", &ScanStats::degraded_queries},
    {"shard_scatters", &ScanStats::shard_scatters},
    {"shard_partials", &ScanStats::shard_partials},
    {"shard_merged_cells", &ScanStats::shard_merged_cells},
    {"shard_fallbacks", &ScanStats::shard_fallbacks},
    {"shard_rpc_retries", &ScanStats::shard_rpc_retries},
    {"shard_rpc_hedges", &ScanStats::shard_rpc_hedges},
    {"partial_answers", &ScanStats::partial_answers},
};

void AppendStats(std::ostringstream& os, const ScanStats& stats) {
  os << "{";
  bool first = true;
  for (const StatsField& f : kStatsFields) {
    if (!first) os << ",";
    first = false;
    os << "\"" << f.key << "\":" << stats.*(f.member);
  }
  os << "}";
}

Result<ScanStats> StatsFrom(const JsonValue& v) {
  if (!v.IsObject()) {
    return Status::ParseError("stats must be an object");
  }
  ScanStats stats;
  for (const StatsField& f : kStatsFields) {
    SOLAP_ASSIGN_OR_RETURN(stats.*(f.member), StatField(v, f.key));
  }
  return stats;
}

}  // namespace

// --- partial --------------------------------------------------------------

std::string EncodeShardPartial(const SCuboid& cuboid, const ScanStats& stats) {
  std::ostringstream payload;
  payload << "{\"agg\":" << JsonString(AggKindName(cuboid.agg()));

  payload << ",\"dims\":[";
  for (size_t i = 0; i < cuboid.dims().size(); ++i) {
    const DimDescriptor& d = cuboid.dims()[i];
    if (i != 0) payload << ",";
    payload << "{\"name\":" << JsonString(d.name)
            << ",\"attr\":" << JsonString(d.ref.attr)
            << ",\"level\":" << JsonString(d.ref.level)
            << ",\"pat\":" << (d.is_pattern ? "true" : "false") << "}";
  }
  payload << "]";

  // Sorted cells: encoding must be a pure function of content, not of
  // hash-map iteration order.
  std::vector<std::pair<CellKey, CellValue>> cells(cuboid.cells().begin(),
                                                   cuboid.cells().end());
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) {
              return std::lexicographical_compare(a.first.begin(),
                                                  a.first.end(),
                                                  b.first.begin(),
                                                  b.first.end());
            });
  payload << ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) payload << ",";
    payload << "{\"k\":[";
    for (size_t j = 0; j < cells[i].first.size(); ++j) {
      if (j != 0) payload << ",";
      payload << cells[i].first[j];
    }
    const CellValue& cv = cells[i].second;
    payload << "],\"c\":" << cv.count << ",\"s\":\"" << HexBits(cv.sum)
            << "\",\"mn\":\"" << HexBits(cv.min) << "\",\"mx\":\""
            << HexBits(cv.max) << "\"}";
  }
  payload << "]";

  payload << ",\"labels\":[";
  for (size_t dim = 0; dim < cuboid.labels().size(); ++dim) {
    if (dim != 0) payload << ",";
    std::vector<std::pair<Code, std::string>> entries(
        cuboid.labels()[dim].begin(), cuboid.labels()[dim].end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    payload << "[";
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != 0) payload << ",";
      payload << "[" << entries[i].first << ","
              << JsonString(entries[i].second) << "]";
    }
    payload << "]";
  }
  payload << "]";

  payload << ",\"stats\":";
  AppendStats(payload, stats);
  payload << "}";

  return EncodeShardEnvelope(payload.str());
}

std::string EncodeShardEnvelope(const std::string& payload) {
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::ostringstream out;
  out << "{\"v\":" << kShardWireVersion << ",\"crc\":" << crc
      << ",\"payload\":" << payload << "}";
  return out.str();
}

Result<std::string_view> DecodeShardEnvelope(std::string_view text) {
  // Envelope prefix is rigid so the payload substring — the CRC'd bytes —
  // can be recovered exactly. `v` and `crc` are digit-only, so no content
  // can fake the `,"payload":` boundary.
  auto eat = [&text](std::string_view want) -> bool {
    if (text.substr(0, want.size()) != want) return false;
    text.remove_prefix(want.size());
    return true;
  };
  auto digits = [&text](int64_t* out) -> bool {
    size_t n = 0;
    int64_t v = 0;
    while (n < text.size() && text[n] >= '0' && text[n] <= '9') {
      if (v > (INT64_MAX - 9) / 10) return false;
      v = v * 10 + (text[n] - '0');
      ++n;
    }
    if (n == 0) return false;
    text.remove_prefix(n);
    *out = v;
    return true;
  };

  int64_t version = 0;
  int64_t crc_claim = 0;
  if (!eat("{\"v\":") || !digits(&version) || !eat(",\"crc\":") ||
      !digits(&crc_claim) || !eat(",\"payload\":")) {
    return Status::ParseError("malformed shard envelope");
  }
  if (version != kShardWireVersion) {
    return Status::ParseError("shard wire version mismatch: got " +
                              std::to_string(version) + ", want " +
                              std::to_string(kShardWireVersion));
  }
  if (text.empty() || text.back() != '}') {
    return Status::ParseError("malformed shard envelope");
  }
  const std::string_view body = text.substr(0, text.size() - 1);

  // Integrity before structure: a torn or bit-flipped message must fail
  // here, not surface as half-plausible content.
  const uint32_t crc = Crc32(body.data(), body.size());
  if (crc_claim != static_cast<int64_t>(crc)) {
    return Status::ParseError("shard envelope CRC mismatch");
  }
  return body;
}

Result<ShardPartial> DecodeShardPartial(std::string_view text) {
  SOLAP_ASSIGN_OR_RETURN(std::string_view body, DecodeShardEnvelope(text));
  SOLAP_ASSIGN_OR_RETURN(JsonValue root, net::JsonParse(body));
  if (!root.IsObject()) {
    return Status::ParseError("shard partial payload must be an object");
  }

  SOLAP_ASSIGN_OR_RETURN(std::string agg_name, root.RequireString("agg"));
  SOLAP_ASSIGN_OR_RETURN(AggKind agg, AggKindFromName(agg_name));

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* dims_v,
      root.Require("dims", JsonValue::Kind::kArray));
  std::vector<DimDescriptor> dims;
  dims.reserve(dims_v->items.size());
  for (const JsonValue& dv : dims_v->items) {
    if (!dv.IsObject()) {
      return Status::ParseError("dimension descriptor must be an object");
    }
    DimDescriptor d;
    SOLAP_ASSIGN_OR_RETURN(d.name, dv.RequireString("name"));
    SOLAP_ASSIGN_OR_RETURN(d.ref.attr, dv.RequireString("attr"));
    SOLAP_ASSIGN_OR_RETURN(d.ref.level, dv.RequireString("level"));
    SOLAP_ASSIGN_OR_RETURN(const JsonValue* pat,
                           dv.Require("pat", JsonValue::Kind::kBool));
    d.is_pattern = pat->b;
    dims.push_back(std::move(d));
  }
  const size_t width = dims.size();

  ShardPartial out;
  out.cuboid = std::make_shared<SCuboid>(std::move(dims), agg);

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* cells_v,
      root.Require("cells", JsonValue::Kind::kArray));
  for (const JsonValue& cv : cells_v->items) {
    if (!cv.IsObject()) {
      return Status::ParseError("cell must be an object");
    }
    SOLAP_ASSIGN_OR_RETURN(const JsonValue* key_v,
                           cv.Require("k", JsonValue::Kind::kArray));
    if (key_v->items.size() != width) {
      return Status::ParseError(
          "cell key width does not match dimension count");
    }
    CellKey key;
    for (const JsonValue& code_v : key_v->items) {
      SOLAP_ASSIGN_OR_RETURN(Code code, CodeFrom(code_v, "cell key code"));
      key.push_back(code);
    }
    CellValue value;
    SOLAP_ASSIGN_OR_RETURN(value.count, cv.RequireInt("c"));
    if (value.count < 0) {
      return Status::ParseError("cell count is negative");
    }
    SOLAP_ASSIGN_OR_RETURN(std::string sum_hex, cv.RequireString("s"));
    SOLAP_ASSIGN_OR_RETURN(std::string min_hex, cv.RequireString("mn"));
    SOLAP_ASSIGN_OR_RETURN(std::string max_hex, cv.RequireString("mx"));
    SOLAP_ASSIGN_OR_RETURN(value.sum, BitsFromHex(sum_hex));
    SOLAP_ASSIGN_OR_RETURN(value.min, BitsFromHex(min_hex));
    SOLAP_ASSIGN_OR_RETURN(value.max, BitsFromHex(max_hex));
    if (out.cuboid->cells().count(key) != 0) {
      return Status::ParseError("duplicate cell key in shard partial");
    }
    out.cuboid->MergeCell(key, value);
  }

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* labels_v,
      root.Require("labels", JsonValue::Kind::kArray));
  if (labels_v->items.size() > width) {
    return Status::ParseError("more label dictionaries than dimensions");
  }
  for (size_t dim = 0; dim < labels_v->items.size(); ++dim) {
    const JsonValue& dict = labels_v->items[dim];
    if (!dict.IsArray()) {
      return Status::ParseError("label dictionary must be an array");
    }
    for (const JsonValue& entry : dict.items) {
      if (!entry.IsArray() || entry.items.size() != 2 ||
          !entry.items[1].IsString()) {
        return Status::ParseError(
            "label entry must be a [code, label] pair");
      }
      SOLAP_ASSIGN_OR_RETURN(Code code,
                             CodeFrom(entry.items[0], "label code"));
      out.cuboid->SetLabel(dim, code, entry.items[1].s);
    }
  }

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* stats_v,
      root.Require("stats", JsonValue::Kind::kObject));
  SOLAP_ASSIGN_OR_RETURN(out.stats, StatsFrom(*stats_v));
  return out;
}

// --- spec -----------------------------------------------------------------

std::string EncodeCuboidSpec(const CuboidSpec& spec) {
  std::ostringstream os;
  os << "{\"agg\":" << JsonString(AggKindName(spec.agg))
     << ",\"measure\":" << JsonString(spec.measure);

  os << ",\"where\":";
  AppendExpr(os, spec.seq.where);

  os << ",\"cluster_by\":[";
  for (size_t i = 0; i < spec.seq.cluster_by.size(); ++i) {
    if (i != 0) os << ",";
    AppendLevelRef(os, spec.seq.cluster_by[i]);
  }
  os << "],\"sequence_by\":" << JsonString(spec.seq.sequence_by)
     << ",\"ascending\":" << (spec.seq.ascending ? "true" : "false");

  os << ",\"group_by\":[";
  for (size_t i = 0; i < spec.seq.group_by.size(); ++i) {
    if (i != 0) os << ",";
    AppendLevelRef(os, spec.seq.group_by[i]);
  }
  os << "]";

  os << ",\"slices\":[";
  for (size_t i = 0; i < spec.global_slices.size(); ++i) {
    const GlobalSlice& s = spec.global_slices[i];
    if (i != 0) os << ",";
    os << "{\"ref\":";
    AppendLevelRef(os, s.ref);
    os << ",\"labels\":";
    AppendStringArray(os, s.labels);
    os << "}";
  }
  os << "]";

  os << ",\"kind\":" << JsonString(PatternKindName(spec.kind))
     << ",\"symbols\":";
  AppendStringArray(os, spec.symbols);
  os << ",\"regex\":" << JsonString(spec.regex);

  os << ",\"dims\":[";
  for (size_t i = 0; i < spec.dims.size(); ++i) {
    const PatternDim& d = spec.dims[i];
    if (i != 0) os << ",";
    os << "{\"symbol\":" << JsonString(d.symbol) << ",\"ref\":";
    AppendLevelRef(os, d.ref);
    os << ",\"fixed_labels\":";
    AppendStringArray(os, d.fixed_labels);
    os << ",\"fixed_level\":" << JsonString(d.fixed_level) << "}";
  }
  os << "]";

  os << ",\"restriction\":"
     << JsonString(CellRestrictionName(spec.restriction))
     << ",\"placeholders\":";
  AppendStringArray(os, spec.placeholders);

  os << ",\"predicate\":";
  AppendExpr(os, spec.predicate);

  os << ",\"iceberg\":";
  if (spec.iceberg_min_count.has_value()) {
    os << *spec.iceberg_min_count;
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

Result<CuboidSpec> DecodeCuboidSpec(const JsonValue& v) {
  if (!v.IsObject()) {
    return Status::ParseError("cuboid spec must be an object");
  }
  CuboidSpec spec;

  SOLAP_ASSIGN_OR_RETURN(std::string agg_name, v.RequireString("agg"));
  SOLAP_ASSIGN_OR_RETURN(spec.agg, AggKindFromName(agg_name));
  SOLAP_ASSIGN_OR_RETURN(spec.measure, v.RequireString("measure"));

  const JsonValue* where = v.Find("where");
  if (where == nullptr) {
    return Status::ParseError("cuboid spec missing where");
  }
  SOLAP_ASSIGN_OR_RETURN(spec.seq.where, ExprFrom(*where, "where"));

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* cluster_v,
      v.Require("cluster_by", JsonValue::Kind::kArray));
  for (const JsonValue& ref_v : cluster_v->items) {
    SOLAP_ASSIGN_OR_RETURN(LevelRef ref, LevelRefFrom(ref_v, "cluster_by"));
    spec.seq.cluster_by.push_back(std::move(ref));
  }
  SOLAP_ASSIGN_OR_RETURN(spec.seq.sequence_by,
                         v.RequireString("sequence_by"));
  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* asc_v,
      v.Require("ascending", JsonValue::Kind::kBool));
  spec.seq.ascending = asc_v->b;

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* group_v,
      v.Require("group_by", JsonValue::Kind::kArray));
  for (const JsonValue& ref_v : group_v->items) {
    SOLAP_ASSIGN_OR_RETURN(LevelRef ref, LevelRefFrom(ref_v, "group_by"));
    spec.seq.group_by.push_back(std::move(ref));
  }

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* slices_v,
      v.Require("slices", JsonValue::Kind::kArray));
  for (const JsonValue& sv : slices_v->items) {
    if (!sv.IsObject()) {
      return Status::ParseError("slice must be an object");
    }
    GlobalSlice slice;
    const JsonValue* ref_v = sv.Find("ref");
    if (ref_v == nullptr) {
      return Status::ParseError("slice missing ref");
    }
    SOLAP_ASSIGN_OR_RETURN(slice.ref, LevelRefFrom(*ref_v, "slice ref"));
    SOLAP_ASSIGN_OR_RETURN(
        const JsonValue* labels_v,
        sv.Require("labels", JsonValue::Kind::kArray));
    SOLAP_ASSIGN_OR_RETURN(slice.labels,
                           StringArray(*labels_v, "slice labels"));
    spec.global_slices.push_back(std::move(slice));
  }

  SOLAP_ASSIGN_OR_RETURN(std::string kind_name, v.RequireString("kind"));
  SOLAP_ASSIGN_OR_RETURN(spec.kind, PatternKindFromName(kind_name));
  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* symbols_v,
      v.Require("symbols", JsonValue::Kind::kArray));
  SOLAP_ASSIGN_OR_RETURN(spec.symbols, StringArray(*symbols_v, "symbols"));
  SOLAP_ASSIGN_OR_RETURN(spec.regex, v.RequireString("regex"));

  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* dims_v,
      v.Require("dims", JsonValue::Kind::kArray));
  for (const JsonValue& dv : dims_v->items) {
    if (!dv.IsObject()) {
      return Status::ParseError("pattern dimension must be an object");
    }
    PatternDim dim;
    SOLAP_ASSIGN_OR_RETURN(dim.symbol, dv.RequireString("symbol"));
    const JsonValue* ref_v = dv.Find("ref");
    if (ref_v == nullptr) {
      return Status::ParseError("pattern dimension missing ref");
    }
    SOLAP_ASSIGN_OR_RETURN(dim.ref, LevelRefFrom(*ref_v, "dim ref"));
    SOLAP_ASSIGN_OR_RETURN(
        const JsonValue* fixed_v,
        dv.Require("fixed_labels", JsonValue::Kind::kArray));
    SOLAP_ASSIGN_OR_RETURN(dim.fixed_labels,
                           StringArray(*fixed_v, "fixed_labels"));
    SOLAP_ASSIGN_OR_RETURN(dim.fixed_level, dv.RequireString("fixed_level"));
    spec.dims.push_back(std::move(dim));
  }

  SOLAP_ASSIGN_OR_RETURN(std::string restriction_name,
                         v.RequireString("restriction"));
  SOLAP_ASSIGN_OR_RETURN(spec.restriction,
                         RestrictionFromName(restriction_name));
  SOLAP_ASSIGN_OR_RETURN(
      const JsonValue* ph_v,
      v.Require("placeholders", JsonValue::Kind::kArray));
  SOLAP_ASSIGN_OR_RETURN(spec.placeholders,
                         StringArray(*ph_v, "placeholders"));

  const JsonValue* pred = v.Find("predicate");
  if (pred == nullptr) {
    return Status::ParseError("cuboid spec missing predicate");
  }
  SOLAP_ASSIGN_OR_RETURN(spec.predicate, ExprFrom(*pred, "predicate"));

  const JsonValue* iceberg = v.Find("iceberg");
  if (iceberg == nullptr) {
    return Status::ParseError("cuboid spec missing iceberg");
  }
  if (!iceberg->IsNull()) {
    if (!iceberg->IsInt() || iceberg->i < 0) {
      return Status::ParseError(
          "iceberg must be null or a non-negative integer");
    }
    spec.iceberg_min_count = iceberg->i;
  }
  return spec;
}

Result<CuboidSpec> DecodeCuboidSpecText(std::string_view text) {
  SOLAP_ASSIGN_OR_RETURN(JsonValue root, net::JsonParse(text));
  return DecodeCuboidSpec(root);
}

}  // namespace solap
