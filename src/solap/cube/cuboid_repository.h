// Cuboid repository (paper Fig. 6): an LRU cache of computed S-cuboids
// keyed by canonical specification text. Because S-cuboids are
// non-summarizable (paper §3.4), only exact hits can be served — there is
// deliberately no cross-cuboid aggregation shortcut here.
//
// Thread-safe: all operations lock an internal mutex (the LRU list is
// rewired even on reads, so a shared lock would not help). Cached cuboids
// are shared as `const` and never mutated after insertion.
#ifndef SOLAP_CUBE_CUBOID_REPOSITORY_H_
#define SOLAP_CUBE_CUBOID_REPOSITORY_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/mem_budget.h"
#include "solap/cube/cuboid.h"
#include "solap/cube/cuboid_spec.h"

namespace solap {

/// \brief Byte-budgeted LRU store of materialized S-cuboids.
class CuboidRepository {
 public:
  /// `capacity_bytes` caps the summed SCuboid::ByteSize(); 0 disables
  /// caching entirely.
  explicit CuboidRepository(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  ~CuboidRepository();

  /// Attaches the engine-wide byte-budget accountant: inserts charge it and
  /// are silently skipped when rejected (the query keeps its cuboid, it
  /// just isn't cached); evictions and Clear refund it. Set once at engine
  /// construction, before any use.
  void set_governor(MemoryGovernor* governor) { governor_ = governor; }

  /// Cached cuboid for `spec_key`, or nullptr. A hit refreshes recency.
  std::shared_ptr<const SCuboid> Lookup(const std::string& spec_key);

  /// Inserts (or replaces) the cuboid for `spec_key`, evicting
  /// least-recently-used entries to honor the byte budget.
  void Insert(const std::string& spec_key,
              std::shared_ptr<const SCuboid> cuboid);

  /// Insert carrying the spec that produced the cuboid plus the engine
  /// epoch it was computed at — the metadata streaming ingestion needs to
  /// delta-patch (pattern-invariant appends) or invalidate the entry
  /// (docs/INGESTION.md).
  void Insert(const std::string& spec_key,
              std::shared_ptr<const SCuboid> cuboid, const CuboidSpec& spec,
              uint64_t epoch);

  /// One repository entry as seen by the maintenance pass.
  struct Snapshot {
    std::string key;
    std::shared_ptr<const SCuboid> cuboid;
    CuboidSpec spec;        ///< meaningful only when has_spec
    bool has_spec = false;  ///< false for legacy spec-less inserts
    uint64_t epoch = 0;
  };
  /// All entries, LRU order not implied. Recency is NOT refreshed.
  std::vector<Snapshot> Entries() const;

  /// Drops one entry (ingestion's invalidation of unpatchable cuboids).
  void Erase(const std::string& spec_key);

  /// Swaps in a patched cuboid for an existing entry, re-stamping its
  /// epoch; keeps the stored spec and recency. No-op if the key is absent
  /// (it may have been evicted concurrently).
  void Replace(const std::string& spec_key,
               std::shared_ptr<const SCuboid> cuboid, uint64_t epoch);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  size_t bytes_used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_used_;
  }
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const SCuboid> cuboid;
    size_t bytes;
    CuboidSpec spec;
    bool has_spec = false;
    uint64_t epoch = 0;
  };

  void InsertEntry(Entry entry);
  void EvictIfNeeded();  // requires mu_ held

  mutable std::mutex mu_;
  MemoryGovernor* governor_ = nullptr;
  size_t capacity_bytes_;
  size_t bytes_used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
};

}  // namespace solap

#endif  // SOLAP_CUBE_CUBOID_REPOSITORY_H_
