// The S-cuboid: a sparse multidimensional view of sequence data keyed by
// global-dimension codes plus pattern-dimension codes (paper §3.2, Fig. 4).
#ifndef SOLAP_CUBE_CUBOID_H_
#define SOLAP_CUBE_CUBOID_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/types.h"
#include "solap/cube/cell.h"
#include "solap/seq/dimension.h"

namespace solap {

/// Descriptor of one cuboid dimension (for display and navigation).
struct DimDescriptor {
  std::string name;  ///< pattern symbol ("X") or attribute name
  LevelRef ref;
  bool is_pattern = false;
};

/// \brief A materialized S-cuboid: sparse cells plus label dictionaries so
/// results can be rendered without the engine.
///
/// Cell keys concatenate global-dimension codes and pattern-dimension codes
/// in dimension order. Cells with no matching sequence are simply absent
/// (their aggregate is the neutral value — paper §6 notes S-cuboid spaces
/// are usually sparse).
class SCuboid {
 public:
  SCuboid(std::vector<DimDescriptor> dims, AggKind agg)
      : dims_(std::move(dims)), agg_(agg) {}

  const std::vector<DimDescriptor>& dims() const { return dims_; }
  AggKind agg() const { return agg_; }
  size_t num_cells() const { return cells_.size(); }

  /// Folds one assignment into the cell at `key`.
  void Add(const CellKey& key, double measure_total) {
    cells_[key].Add(measure_total);
  }
  /// Folds one assignment with no measure content (COUNT queries). The
  /// cell's measure state stays neutral (sum 0, min +inf, max -inf) —
  /// matching the II fast-count fold — so COUNT answers are bit-identical
  /// across the CB, II and ingest-patch paths (cube/partial_codec.h
  /// encodes the full cell state).
  void AddCountOnly(const CellKey& key) { ++cells_[key].count; }
  /// Merges a full cell state (online aggregation snapshots).
  void MergeCell(const CellKey& key, const CellValue& v) {
    cells_[key].Merge(v);
  }

  const std::unordered_map<CellKey, CellValue, CodeVecHash>& cells() const {
    return cells_;
  }

  /// Per-dimension label dictionaries (may hold fewer entries than dims()
  /// when trailing dimensions never recorded a label). Read by the shard
  /// wire codec (cube/partial_codec.h).
  const std::vector<std::unordered_map<Code, std::string>>& labels() const {
    return labels_;
  }

  /// Cell state at `key`; absent cells read as the empty aggregate.
  CellValue CellAt(const CellKey& key) const;
  /// Final aggregate value at `key` (0 for absent COUNT cells, etc.).
  double ValueAt(const CellKey& key) const {
    return CellAt(key).Value(agg_);
  }

  /// Records the display label of `code` on dimension `dim` (the engine
  /// calls this as it inserts cells).
  void SetLabel(size_t dim, Code code, std::string label);
  /// Label of `code` on dimension `dim` (falls back to the numeric code).
  std::string LabelOf(size_t dim, Code code) const;

  /// Key of the cell with the largest aggregate value; empty if no cells.
  CellKey ArgMaxCell() const;

  /// Cells sorted by descending value, capped at `limit` (0 = all).
  std::vector<std::pair<CellKey, double>> TopCells(size_t limit) const;

  /// Drops cells whose COUNT is below `min_count` — the iceberg
  /// restriction of paper §6. Returns the number of cells dropped.
  size_t ApplyIceberg(int64_t min_count);

  /// Renders the cuboid as an aligned text table (descending value,
  /// capped at `limit` rows; 0 = all). For examples and debugging.
  std::string ToTable(size_t limit) const;

  /// Renders the cuboid as CSV: one header row naming the dimensions and
  /// the aggregate, then one row per cell (descending value). Labels
  /// containing commas or quotes are quoted.
  std::string ToCsv() const;

  /// Approximate in-memory footprint, used by the repository's LRU budget.
  size_t ByteSize() const;

 private:
  std::vector<DimDescriptor> dims_;
  AggKind agg_;
  std::unordered_map<CellKey, CellValue, CodeVecHash> cells_;
  std::vector<std::unordered_map<Code, std::string>> labels_;
};

}  // namespace solap

#endif  // SOLAP_CUBE_CUBOID_H_
