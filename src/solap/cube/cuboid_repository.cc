#include "solap/cube/cuboid_repository.h"

namespace solap {

std::shared_ptr<const SCuboid> CuboidRepository::Lookup(
    const std::string& spec_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(spec_key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->cuboid;
}

void CuboidRepository::Insert(const std::string& spec_key,
                              std::shared_ptr<const SCuboid> cuboid) {
  InsertEntry(Entry{spec_key, std::move(cuboid), 0});
}

void CuboidRepository::Insert(const std::string& spec_key,
                              std::shared_ptr<const SCuboid> cuboid,
                              const CuboidSpec& spec, uint64_t epoch) {
  Entry e{spec_key, std::move(cuboid), 0};
  e.spec = spec;
  e.has_spec = true;
  e.epoch = epoch;
  InsertEntry(std::move(e));
}

void CuboidRepository::InsertEntry(Entry entry) {
  if (capacity_bytes_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t bytes = entry.cuboid->ByteSize();
  entry.bytes = bytes;
  // A rejected charge skips caching but never fails the query — the caller
  // already holds the computed cuboid.
  if (governor_ != nullptr &&
      !governor_->TryCharge(bytes, "cuboid repository").ok()) {
    return;
  }
  auto it = map_.find(entry.key);
  if (it != map_.end()) {
    bytes_used_ -= it->second->bytes;
    if (governor_ != nullptr) governor_->Release(it->second->bytes);
    lru_.erase(it->second);
    map_.erase(it);
  }
  const std::string key = entry.key;
  lru_.push_front(std::move(entry));
  map_[key] = lru_.begin();
  bytes_used_ += bytes;
  EvictIfNeeded();
}

std::vector<CuboidRepository::Snapshot> CuboidRepository::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    out.push_back(Snapshot{e.key, e.cuboid, e.spec, e.has_spec, e.epoch});
  }
  return out;
}

void CuboidRepository::Erase(const std::string& spec_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(spec_key);
  if (it == map_.end()) return;
  bytes_used_ -= it->second->bytes;
  if (governor_ != nullptr) governor_->Release(it->second->bytes);
  lru_.erase(it->second);
  map_.erase(it);
}

void CuboidRepository::Replace(const std::string& spec_key,
                               std::shared_ptr<const SCuboid> cuboid,
                               uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(spec_key);
  if (it == map_.end()) return;
  Entry& e = *it->second;
  const size_t new_bytes = cuboid->ByteSize();
  if (governor_ != nullptr) {
    // Patched cuboids only grow by the appended cells; a rejected charge
    // drops the entry instead of keeping a stale one.
    governor_->Release(e.bytes);
    if (!governor_->TryCharge(new_bytes, "cuboid repository").ok()) {
      bytes_used_ -= e.bytes;
      lru_.erase(it->second);
      map_.erase(it);
      return;
    }
  }
  bytes_used_ = bytes_used_ - e.bytes + new_bytes;
  e.bytes = new_bytes;
  e.cuboid = std::move(cuboid);
  e.epoch = epoch;
  EvictIfNeeded();
}

void CuboidRepository::EvictIfNeeded() {
  while (bytes_used_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.bytes;
    if (governor_ != nullptr) governor_->Release(victim.bytes);
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

void CuboidRepository::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_ != nullptr) governor_->Release(bytes_used_);
  lru_.clear();
  map_.clear();
  bytes_used_ = 0;
}

CuboidRepository::~CuboidRepository() {
  if (governor_ != nullptr) governor_->Release(bytes_used_);
}

}  // namespace solap
