#include "solap/cube/cuboid_repository.h"

namespace solap {

std::shared_ptr<const SCuboid> CuboidRepository::Lookup(
    const std::string& spec_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(spec_key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->cuboid;
}

void CuboidRepository::Insert(const std::string& spec_key,
                              std::shared_ptr<const SCuboid> cuboid) {
  if (capacity_bytes_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t bytes = cuboid->ByteSize();
  // A rejected charge skips caching but never fails the query — the caller
  // already holds the computed cuboid.
  if (governor_ != nullptr &&
      !governor_->TryCharge(bytes, "cuboid repository").ok()) {
    return;
  }
  auto it = map_.find(spec_key);
  if (it != map_.end()) {
    bytes_used_ -= it->second->bytes;
    if (governor_ != nullptr) governor_->Release(it->second->bytes);
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.push_front(Entry{spec_key, std::move(cuboid), bytes});
  map_[spec_key] = lru_.begin();
  bytes_used_ += bytes;
  EvictIfNeeded();
}

void CuboidRepository::EvictIfNeeded() {
  while (bytes_used_ > capacity_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.bytes;
    if (governor_ != nullptr) governor_->Release(victim.bytes);
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

void CuboidRepository::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_ != nullptr) governor_->Release(bytes_used_);
  lru_.clear();
  map_.clear();
  bytes_used_ = 0;
}

CuboidRepository::~CuboidRepository() {
  if (governor_ != nullptr) governor_->Release(bytes_used_);
}

}  // namespace solap
