// Gather-side merge primitives for scatter-gather execution
// (engine/sharded_engine.h): shard-local partial results fold into one
// global result exactly the way Gray's Data Cube frames cube computation —
// independent partial aggregations combined by a distributive merge.
#ifndef SOLAP_CUBE_PARTIAL_MERGE_H_
#define SOLAP_CUBE_PARTIAL_MERGE_H_

#include <span>

#include "solap/common/types.h"
#include "solap/cube/cuboid.h"
#include "solap/index/container.h"

namespace solap {

/// \brief Folds every cell of `src` into `dst`.
///
/// CB partials merge as additive counter state (count/sum add, min/max
/// fold — CellValue::Merge); II fast-path partials carry count-only state
/// whose empty min/max merges losslessly, so both strategies gather through
/// the same call. Non-summarizable S-cuboid measures (paper §3: AVG and
/// friends) stay correct because cells hold pattern-occurrence *state*
/// (count + sum), never finalized aggregates — finalization happens at
/// render time via CellValue::Value. Display labels travel with the cells.
///
/// Callers merge shard partials in ascending shard order so the FP sum
/// fold order — and therefore the result — is deterministic.
///
/// Returns the number of cells folded.
size_t MergeCuboidPartials(SCuboid* dst, const SCuboid& src);

/// \brief Merges shard-local inverted lists of one pattern key into the
/// global list: shard s's group-local sids rebase by `bases[s]` (the start
/// of its contiguous sid block in the unpartitioned group), then the
/// rebased lists union through the k-way container machinery that backs
/// P-ROLL-UP (UnionManySidLists), counting container ops into `counts`.
SidList GatherShardLists(std::span<const SidList* const> shard_lists,
                         std::span<const Sid> bases,
                         ContainerOpCounts* counts);

}  // namespace solap

#endif  // SOLAP_CUBE_PARTIAL_MERGE_H_
