#include "solap/cube/cuboid_spec.h"

namespace solap {

Result<PatternTemplate> CuboidSpec::MakeTemplate() const {
  return PatternTemplate::Make(kind, symbols, dims);
}

int CuboidSpec::DimIndex(const std::string& symbol) const {
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i].symbol == symbol) return static_cast<int>(i);
  }
  return -1;
}

std::string CuboidSpec::CanonicalString() const {
  std::string out = AggKindName(agg);
  if (!measure.empty()) out += "(" + measure + ")";
  out += "|" + seq.CanonicalString();
  out += "|slices:";
  for (const GlobalSlice& s : global_slices) {
    out += s.ref.ToString() + "=[";
    for (const std::string& l : s.labels) out += l + ";";
    out += "],";
  }
  out += "|";
  if (is_regex()) {
    out += "REGEX{" + regex + "}";
  } else {
    out += PatternKindName(kind);
  }
  out += "(";
  for (const std::string& s : symbols) out += s + ",";
  out += ")dims:";
  for (const PatternDim& d : dims) {
    out += d.symbol + ":" + d.ref.ToString();
    if (!d.fixed_labels.empty()) {
      out += "=" + d.fixed_level + "[";
      for (const std::string& l : d.fixed_labels) out += l + ";";
      out += "]";
    }
    out += ",";
  }
  out += "|";
  out += CellRestrictionName(restriction);
  out += "|pred:";
  out += predicate ? predicate->ToString() : "-";
  if (iceberg_min_count.has_value()) {
    out += "|iceberg:" + std::to_string(*iceberg_min_count);
  }
  return out;
}

}  // namespace solap
