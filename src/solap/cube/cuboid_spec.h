// The full S-cuboid specification — the six-part query of paper §3.2
// (Fig. 3): aggregate, WHERE, CLUSTER BY, SEQUENCE BY, SEQUENCE GROUP BY and
// CUBOID BY (pattern template, cell restriction, matching predicate).
#ifndef SOLAP_CUBE_CUBOID_SPEC_H_
#define SOLAP_CUBE_CUBOID_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/cube/cell.h"
#include "solap/expr/expr.h"
#include "solap/pattern/pattern_template.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {

/// A slice/dice on a global dimension: keep only sequence groups whose
/// value at `ref` is among `labels`.
struct GlobalSlice {
  LevelRef ref;
  std::vector<std::string> labels;
};

/// \brief A complete, declarative S-cuboid specification.
///
/// Specifications are value types: the S-OLAP operations (engine/operations)
/// transform one specification into another, and the engine executes them.
struct CuboidSpec {
  // -- SELECT -------------------------------------------------------------
  AggKind agg = AggKind::kCount;
  /// Measure attribute for SUM/AVG/MIN/MAX; empty for COUNT.
  std::string measure;

  // -- WHERE / CLUSTER BY / SEQUENCE BY / SEQUENCE GROUP BY ----------------
  SequenceSpec seq;
  /// Global-dimension slice/dice filters applied to formed groups.
  std::vector<GlobalSlice> global_slices;

  // -- CUBOID BY ------------------------------------------------------------
  PatternKind kind = PatternKind::kSubstring;
  /// Symbol of each template position, e.g. {"X","Y","Y","X"}.
  std::vector<std::string> symbols;
  /// Declaration of each distinct symbol (domain + optional slice).
  std::vector<PatternDim> dims;
  /// Regular-expression template (the §3.2 extension, e.g. "X ( . )* X");
  /// when non-empty, `symbols` is unused and `dims` declares the regex's
  /// symbols. Executed by the regex matcher (pattern/regex.h); matching
  /// predicates are not supported with regex templates.
  std::string regex;
  bool is_regex() const { return !regex.empty(); }
  CellRestriction restriction = CellRestriction::kLeftMaxMatchedGo;
  /// Event placeholder per template position (x1, y1, ...); may be empty
  /// when there is no matching predicate.
  std::vector<std::string> placeholders;
  ExprPtr predicate;

  /// Iceberg extension (paper §6): drop cells with COUNT below this.
  std::optional<int64_t> iceberg_min_count;

  /// Materializes the pattern template (validates symbols vs dims).
  Result<PatternTemplate> MakeTemplate() const;

  /// Index of the pattern dimension named `symbol`, or -1.
  int DimIndex(const std::string& symbol) const;

  /// Canonical text identifying the cuboid this spec produces — the
  /// cuboid-repository cache key.
  std::string CanonicalString() const;
};

}  // namespace solap

#endif  // SOLAP_CUBE_CUBOID_SPEC_H_
