#include "solap/seq/sequence_group.h"

namespace solap {

Sid SequenceGroup::AddSequence(std::span<const uint32_t> items) {
  data_.insert(data_.end(), items.begin(), items.end());
  offsets_.push_back(static_cast<uint32_t>(data_.size()));
  return static_cast<Sid>(offsets_.size() - 2);
}

const std::vector<Code>& SequenceGroup::ViewFor(const DimensionBinding& dim) {
  const std::string key = dim.ref().ToString();
  // The whole lookup-compute-insert runs under the view lock: concurrent
  // queries binding the same (attr, level) then share one materialization.
  // References handed out earlier stay valid (unordered_map node stability).
  std::lock_guard<std::mutex> lock(*views_mu_);
  auto it = views_.find(key);
  if (it != views_.end()) return it->second;

  std::vector<Code> view(data_.size());
  if (table_ != nullptr) {
    for (size_t i = 0; i < data_.size(); ++i) {
      view[i] = dim.CodeOf(*table_, data_[i]);
    }
  } else {
    // Raw group: data_ holds base codes of the single raw attribute.
    for (size_t i = 0; i < data_.size(); ++i) {
      view[i] = dim.MapBaseCode(data_[i]);
    }
  }
  return views_.emplace(key, std::move(view)).first->second;
}

SequenceGroup& SequenceGroupSet::GroupFor(const CellKey& key) {
  auto it = group_index_.find(key);
  if (it != group_index_.end()) return groups_[it->second];
  group_index_.emplace(key, groups_.size());
  groups_.emplace_back(table_);
  groups_.back().set_key(key);
  return groups_.back();
}

size_t SequenceGroupSet::total_sequences() const {
  size_t n = 0;
  for (const SequenceGroup& g : groups_) n += g.num_sequences();
  return n;
}

size_t SequenceGroupSet::ApproxBytes() const {
  size_t bytes = 0;
  for (const SequenceGroup& g : groups_) {
    bytes += g.offsets().size() * sizeof(uint32_t);
    bytes += g.total_events() * sizeof(uint32_t);
    bytes += g.key().size() * sizeof(Code);
  }
  return bytes;
}

std::vector<std::string> SequenceGroupSet::KeyLabels(
    const CellKey& key) const {
  std::vector<std::string> out;
  out.reserve(key.size());
  for (size_t i = 0; i < key.size() && i < global_bindings_.size(); ++i) {
    out.push_back(global_bindings_[i].Label(key[i]));
  }
  return out;
}

Result<DimensionBinding> SequenceGroupSet::BindDimension(
    const HierarchyRegistry* reg, const LevelRef& ref) const {
  if (is_raw()) {
    if (ref.attr != raw_attr_) {
      return Status::InvalidArgument("raw sequence group set only exposes "
                                     "attribute '" +
                                     raw_attr_ + "', got '" + ref.attr + "'");
    }
    return DimensionBinding::MakeForRaw(raw_dict_, reg, ref);
  }
  return DimensionBinding::MakeForTable(*table_, reg, ref);
}

}  // namespace solap
