// Dimension bindings: resolve an (attribute, abstraction level) reference to
// concrete code computation against a table column or a raw symbol stream.
#ifndef SOLAP_SEQ_DIMENSION_H_
#define SOLAP_SEQ_DIMENSION_H_

#include <string>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/storage/event_table.h"

namespace solap {

/// "attr AT level" — how the query language references a dimension at one
/// abstraction level (paper Fig. 3, e.g. `card-id AT fare-group`).
struct LevelRef {
  std::string attr;
  std::string level;

  std::string ToString() const { return attr + "@" + level; }
  bool operator==(const LevelRef&) const = default;
};

/// \brief A LevelRef resolved against a schema and hierarchy registry.
///
/// Provides the three primitives every grouping / matching path needs:
///  - CodeOf(row): level code of a table row;
///  - MapBaseCode(code): base-level code -> level code (string dims), used
///    for raw sequence groups and for index roll-up merging;
///  - Label(code): display string.
class DimensionBinding {
 public:
  /// Binds against a table column. Timestamp columns accept calendar levels
  /// (day/week/month); string columns accept hierarchy levels.
  static Result<DimensionBinding> MakeForTable(const EventTable& table,
                                               const HierarchyRegistry* reg,
                                               const LevelRef& ref);

  /// Binds against a raw symbol stream whose base codes come from
  /// `base_dict`. Only string semantics apply.
  static Result<DimensionBinding> MakeForRaw(const Dictionary& base_dict,
                                             const HierarchyRegistry* reg,
                                             const LevelRef& ref);

  const LevelRef& ref() const { return ref_; }
  bool is_calendar() const { return calendar_; }
  /// Hierarchy level index (string dims; 0 = base).
  int level_index() const { return level_index_; }

  /// Level code of table row `row`. Table-bound bindings only.
  Code CodeOf(const EventTable& table, RowId row) const;

  /// Maps a base-level code to this binding's level (identity for level 0).
  Code MapBaseCode(Code base_code) const;

  /// Display label of a code at this binding's level.
  std::string Label(Code code) const;

  /// Inverse of Label: resolves a display label to a code at this level.
  /// For string levels the label must already exist in the (level)
  /// dictionary; calendar levels parse "YYYY-MM-DD" (day) or a raw bucket
  /// number. Returns kNullCode when the label names no known value (such a
  /// slice simply matches nothing).
  Result<Code> CodeOfLabel(const std::string& label) const;

  /// Resolves slice/dice `labels`, given at `slice_level`, into the set of
  /// codes *at this binding's level* they cover. When `slice_level` equals
  /// (or is empty for) this level that is a plain label lookup; when it is a
  /// coarser level (a slice taken before a P-DRILL-DOWN), every code rolling
  /// up to a sliced value is allowed.
  Result<std::vector<Code>> AllowedCodes(
      const std::string& slice_level,
      const std::vector<std::string>& labels) const;

 private:
  DimensionBinding() = default;

  LevelRef ref_;
  int col_ = -1;
  bool calendar_ = false;
  CalendarLevel cal_level_ = CalendarLevel::kRaw;
  const Dictionary* base_dict_ = nullptr;  // string dims
  ConceptHierarchy* hierarchy_ = nullptr;  // nullptr for identity level
  int level_index_ = 0;
};

}  // namespace solap

#endif  // SOLAP_SEQ_DIMENSION_H_
