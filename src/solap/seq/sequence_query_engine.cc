#include "solap/seq/sequence_query_engine.h"

#include <algorithm>
#include <map>

#include "solap/common/strings.h"

namespace solap {

std::string SequenceSpec::CanonicalString() const {
  std::string out = "where:";
  out += where ? where->ToString() : "-";
  out += "|cluster:";
  for (const LevelRef& r : cluster_by) out += r.ToString() + ",";
  out += "|seq:" + sequence_by + (ascending ? "+" : "-");
  out += "|group:";
  for (const LevelRef& r : group_by) out += r.ToString() + ",";
  return out;
}

Result<std::shared_ptr<SequenceGroupSet>> SequenceQueryEngine::Build(
    const EventTable& table, const SequenceSpec& spec,
    const RowFilter* filter) {
  if (spec.cluster_by.empty()) {
    return Status::InvalidArgument("CLUSTER BY must name at least one "
                                   "attribute");
  }
  // Bind clauses.
  if (spec.where != nullptr) {
    SOLAP_RETURN_NOT_OK(spec.where->Bind(table.schema(), nullptr));
  }
  std::vector<DimensionBinding> cluster_bindings;
  for (const LevelRef& r : spec.cluster_by) {
    SOLAP_ASSIGN_OR_RETURN(
        DimensionBinding b,
        DimensionBinding::MakeForTable(table, hierarchies_, r));
    cluster_bindings.push_back(std::move(b));
  }
  std::vector<DimensionBinding> global_bindings;
  for (const LevelRef& r : spec.group_by) {
    SOLAP_ASSIGN_OR_RETURN(
        DimensionBinding b,
        DimensionBinding::MakeForTable(table, hierarchies_, r));
    global_bindings.push_back(std::move(b));
  }
  SOLAP_ASSIGN_OR_RETURN(int order_col,
                         table.schema().RequireField(spec.sequence_by));
  ValueType order_type = table.schema().field(order_col).type;
  if (order_type != ValueType::kInt64 && order_type != ValueType::kTimestamp &&
      order_type != ValueType::kDouble) {
    return Status::InvalidArgument("SEQUENCE BY attribute '" +
                                   spec.sequence_by + "' must be numeric");
  }

  // Steps 1 + 2: select events and bucket them into clusters. An ordered map
  // keeps cluster (and therefore sid) assignment deterministic.
  std::map<CellKey, std::vector<RowId>> clusters;
  const size_t n = table.num_rows();
  CellKey ckey(cluster_bindings.size());
  for (RowId row = 0; row < n; ++row) {
    if (filter != nullptr && !filter->Keep(table, row)) continue;
    if (spec.where != nullptr && !spec.where->EvalRow(table, row).AsBool()) {
      continue;
    }
    for (size_t i = 0; i < cluster_bindings.size(); ++i) {
      ckey[i] = cluster_bindings[i].CodeOf(table, row);
    }
    clusters[ckey].push_back(row);
  }

  // Step 3: order each cluster by the SEQUENCE BY attribute (ties broken by
  // row order, i.e. stable).
  auto order_value = [&](RowId r) -> double {
    if (order_type == ValueType::kDouble) return table.DoubleAt(r, order_col);
    return static_cast<double>(table.Int64At(r, order_col));
  };

  auto set = std::make_shared<SequenceGroupSet>(&table, spec.group_by,
                                                global_bindings);
  CellKey gkey(global_bindings.size());
  for (auto& [key, rows] : clusters) {
    std::stable_sort(rows.begin(), rows.end(), [&](RowId a, RowId b) {
      double va = order_value(a), vb = order_value(b);
      return spec.ascending ? va < vb : vb < va;
    });
    // Step 4: the global dimension values of a sequence are shared by all of
    // its events (they are functionally determined by the cluster key), so
    // they are read off the first event.
    for (size_t i = 0; i < global_bindings.size(); ++i) {
      gkey[i] = global_bindings[i].CodeOf(table, rows.front());
    }
    set->GroupFor(gkey).AddSequence(rows);
  }
  return set;
}

}  // namespace solap
