// Sequence groups: the output of S-cuboid formation steps 1-4 (paper §3.2).
//
// A SequenceGroup holds the data sequences sharing one combination of global
// dimension values (e.g. fare-group="regular", day="2007-12-25" — Fig. 8).
// Sequences are stored in CSR form: a flat array of event row-ids (or raw
// symbol codes) plus per-sequence offsets. Sids are positions within the
// group, matching the paper's per-group inverted lists.
#ifndef SOLAP_SEQ_SEQUENCE_GROUP_H_
#define SOLAP_SEQ_SEQUENCE_GROUP_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/seq/dimension.h"
#include "solap/storage/event_table.h"

namespace solap {

/// \brief One group of data sequences plus lazily computed symbol views.
///
/// A *symbol view* is the per-position code of every sequence element for
/// one (attribute, level) pair — the alphabet pattern matching runs on.
/// Views are cached because every query over the same group at the same
/// abstraction level reuses them.
class SequenceGroup {
 public:
  /// Creates a table-backed group.
  explicit SequenceGroup(const EventTable* table) : table_(table) {}
  /// Creates a raw group whose sequences are base-code streams of a single
  /// attribute dictionary-encoded by the owning SequenceGroupSet.
  SequenceGroup() = default;

  const CellKey& key() const { return key_; }
  void set_key(CellKey key) { key_ = std::move(key); }

  size_t num_sequences() const { return offsets_.size() - 1; }
  uint32_t length(Sid s) const { return offsets_[s + 1] - offsets_[s]; }
  size_t total_events() const { return data_.size(); }
  const EventTable* table() const { return table_; }

  /// Event rows of sequence `s` (table-backed groups only).
  std::span<const RowId> Rows(Sid s) const {
    return {data_.data() + offsets_[s], length(s)};
  }

  /// Appends one sequence; `items` are event row-ids (table-backed) or
  /// base codes (raw). Returns the new sequence's sid.
  Sid AddSequence(std::span<const uint32_t> items);

  /// Symbol view for `dim`: flat per-position codes aligned with the
  /// group's offsets. Computed once per (attr, level) and cached; safe to
  /// call from concurrent queries (the returned reference stays valid —
  /// views are never dropped while queries run).
  const std::vector<Code>& ViewFor(const DimensionBinding& dim);

  /// Symbols of sequence `s` within a view returned by ViewFor.
  std::span<const Code> Symbols(const std::vector<Code>& view, Sid s) const {
    return {view.data() + offsets_[s], length(s)};
  }

  /// Drops cached views (called when new sequences are appended).
  void InvalidateViews() { views_.clear(); }

  const std::vector<uint32_t>& offsets() const { return offsets_; }

 private:
  const EventTable* table_ = nullptr;
  CellKey key_;
  std::vector<uint32_t> offsets_{0};
  std::vector<uint32_t> data_;  // row-ids or base codes
  std::unordered_map<std::string, std::vector<Code>> views_;
  // Guards lazy view materialization under concurrent queries. Held in a
  // shared_ptr so groups stay movable/copyable (the lock is per-identity,
  // and groups are never copied while queries run).
  std::shared_ptr<std::mutex> views_mu_ = std::make_shared<std::mutex>();
};

/// \brief The full result of sequence formation: all groups plus the
/// metadata needed to bind pattern dimensions and decode group keys.
class SequenceGroupSet {
 public:
  /// Table-backed set.
  SequenceGroupSet(const EventTable* table, std::vector<LevelRef> global_dims,
                   std::vector<DimensionBinding> global_bindings)
      : table_(table),
        global_dims_(std::move(global_dims)),
        global_bindings_(std::move(global_bindings)) {}

  /// Raw set over a single symbol attribute (synthetic workloads): the set
  /// owns the base dictionary for `raw_attr`.
  explicit SequenceGroupSet(std::string raw_attr)
      : raw_attr_(std::move(raw_attr)) {}

  bool is_raw() const { return table_ == nullptr; }
  const EventTable* table() const { return table_; }
  const std::string& raw_attr() const { return raw_attr_; }
  Dictionary& raw_dictionary() { return raw_dict_; }
  const Dictionary& raw_dictionary() const { return raw_dict_; }

  const std::vector<LevelRef>& global_dims() const { return global_dims_; }
  const std::vector<DimensionBinding>& global_bindings() const {
    return global_bindings_;
  }

  std::vector<SequenceGroup>& groups() { return groups_; }
  const std::vector<SequenceGroup>& groups() const { return groups_; }

  /// Group with key `key`, creating it if absent.
  SequenceGroup& GroupFor(const CellKey& key);

  size_t total_sequences() const;

  /// Approximate resident footprint of the formed groups (offset and data
  /// arrays; lazily materialized views are excluded as they come and go).
  /// Charged to the engine's MemoryGovernor when the set enters the
  /// sequence cache.
  size_t ApproxBytes() const;

  /// Human-readable labels of a group key, one per global dimension.
  std::vector<std::string> KeyLabels(const CellKey& key) const;

  /// Binds `ref` as a pattern/matching dimension against this set
  /// (table-backed or raw as appropriate).
  Result<DimensionBinding> BindDimension(const HierarchyRegistry* reg,
                                         const LevelRef& ref) const;

 private:
  const EventTable* table_ = nullptr;
  std::string raw_attr_;
  Dictionary raw_dict_;
  std::vector<LevelRef> global_dims_;
  std::vector<DimensionBinding> global_bindings_;
  std::vector<SequenceGroup> groups_;
  std::unordered_map<CellKey, size_t, CodeVecHash> group_index_;
};

}  // namespace solap

#endif  // SOLAP_SEQ_SEQUENCE_GROUP_H_
