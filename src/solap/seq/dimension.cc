#include "solap/seq/dimension.h"

#include <cstdio>
#include <string>

namespace solap {

Result<DimensionBinding> DimensionBinding::MakeForTable(
    const EventTable& table, const HierarchyRegistry* reg,
    const LevelRef& ref) {
  DimensionBinding b;
  b.ref_ = ref;
  SOLAP_ASSIGN_OR_RETURN(b.col_, table.schema().RequireField(ref.attr));
  const Field& field = table.schema().field(b.col_);
  switch (field.type) {
    case ValueType::kTimestamp: {
      SOLAP_ASSIGN_OR_RETURN(b.cal_level_,
                             ParseCalendarLevel(ref.level, ref.attr));
      b.calendar_ = true;
      return b;
    }
    case ValueType::kString: {
      b.base_dict_ = table.dictionary(b.col_);
      ConceptHierarchy* h = reg ? reg->Find(ref.attr) : nullptr;
      if (h == nullptr) {
        // No hierarchy: only the identity level (named after the attribute)
        // is available.
        if (ref.level != ref.attr && ref.level != "base") {
          return Status::InvalidArgument("attribute '" + ref.attr +
                                         "' has no concept hierarchy; level '" +
                                         ref.level + "' is not available");
        }
        return b;
      }
      int idx = h->LevelIndex(ref.level);
      if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
      if (idx < 0) {
        return Status::InvalidArgument("attribute '" + ref.attr +
                                       "' has no abstraction level named '" +
                                       ref.level + "'");
      }
      b.hierarchy_ = h;
      b.level_index_ = idx;
      return b;
    }
    default:
      return Status::InvalidArgument(
          "attribute '" + ref.attr +
          "' cannot be used as a dimension: only string and timestamp "
          "attributes support grouping levels");
  }
}

Result<DimensionBinding> DimensionBinding::MakeForRaw(
    const Dictionary& base_dict, const HierarchyRegistry* reg,
    const LevelRef& ref) {
  DimensionBinding b;
  b.ref_ = ref;
  b.base_dict_ = &base_dict;
  ConceptHierarchy* h = reg ? reg->Find(ref.attr) : nullptr;
  if (h == nullptr) {
    if (ref.level != ref.attr && ref.level != "base") {
      return Status::InvalidArgument("raw attribute '" + ref.attr +
                                     "' has no concept hierarchy; level '" +
                                     ref.level + "' is not available");
    }
    return b;
  }
  int idx = h->LevelIndex(ref.level);
  if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
  if (idx < 0) {
    return Status::InvalidArgument("raw attribute '" + ref.attr +
                                   "' has no abstraction level named '" +
                                   ref.level + "'");
  }
  b.hierarchy_ = h;
  b.level_index_ = idx;
  return b;
}

Code DimensionBinding::CodeOf(const EventTable& table, RowId row) const {
  if (calendar_) {
    return CalendarBucket(table.Int64At(row, col_), cal_level_);
  }
  Code base = table.CodeAt(row, col_);
  return MapBaseCode(base);
}

Code DimensionBinding::MapBaseCode(Code base_code) const {
  if (calendar_ || hierarchy_ == nullptr || level_index_ == 0) {
    return base_code;
  }
  return hierarchy_->MapBaseCode(*base_dict_, level_index_, base_code);
}

Result<Code> DimensionBinding::CodeOfLabel(const std::string& label) const {
  if (calendar_) {
    // "YYYY-MM-DD" for day buckets; otherwise a raw bucket number.
    int y, m, d;
    if (cal_level_ == CalendarLevel::kDay &&
        std::sscanf(label.c_str(), "%d-%d-%d", &y, &m, &d) == 3) {
      return CalendarBucket(MakeTimestamp(y, m, d), CalendarLevel::kDay);
    }
    try {
      return static_cast<Code>(std::stoul(label));
    } catch (...) {
      return Status::InvalidArgument("cannot parse calendar label '" + label +
                                     "'");
    }
  }
  if (hierarchy_ == nullptr || level_index_ == 0) {
    return base_dict_ ? base_dict_->Lookup(label) : kNullCode;
  }
  return hierarchy_->level_dictionary(level_index_).Lookup(label);
}

Result<std::vector<Code>> DimensionBinding::AllowedCodes(
    const std::string& slice_level,
    const std::vector<std::string>& labels) const {
  std::vector<Code> out;
  if (slice_level.empty() || slice_level == ref_.level) {
    for (const std::string& label : labels) {
      SOLAP_ASSIGN_OR_RETURN(Code c, CodeOfLabel(label));
      out.push_back(c);
    }
    return out;
  }
  if (calendar_ || hierarchy_ == nullptr) {
    return Status::InvalidArgument(
        "slice level '" + slice_level + "' differs from dimension level '" +
        ref_.level + "' but attribute '" + ref_.attr +
        "' has no concept hierarchy to relate them");
  }
  int slice_idx = hierarchy_->LevelIndex(slice_level);
  if (slice_idx < 0) {
    return Status::InvalidArgument("unknown abstraction level '" +
                                   slice_level + "' for attribute '" +
                                   ref_.attr + "'");
  }
  if (slice_idx < level_index_) {
    return Status::NotImplemented(
        "slices given at a finer level than the dimension's current level "
        "are not supported; re-slice at level '" +
        ref_.level + "'");
  }
  // Make sure the slice level's dictionary is populated, then resolve the
  // labels and collect every code at our level that rolls up into them.
  for (Code base = 0; base < base_dict_->size(); ++base) {
    hierarchy_->MapBaseCode(*base_dict_, slice_idx, base);
  }
  std::vector<Code> slice_codes;
  for (const std::string& label : labels) {
    slice_codes.push_back(
        hierarchy_->level_dictionary(slice_idx).Lookup(label));
  }
  std::vector<Code> table =
      hierarchy_->LevelToLevel(*base_dict_, level_index_, slice_idx);
  for (Code c = 0; c < table.size(); ++c) {
    for (Code sc : slice_codes) {
      if (table[c] == sc && sc != kNullCode) {
        out.push_back(c);
        break;
      }
    }
  }
  return out;
}

std::string DimensionBinding::Label(Code code) const {
  // Unbound regex dimensions (and empty slices) carry the null code.
  if (code == kNullCode) return "*";
  if (calendar_) return CalendarLabel(code, cal_level_);
  if (hierarchy_ == nullptr || level_index_ == 0) {
    return base_dict_ ? base_dict_->ValueOf(code) : std::to_string(code);
  }
  return hierarchy_->LabelOf(*base_dict_, level_index_, code);
}

}  // namespace solap
