#include "solap/seq/sequence_cache.h"

namespace solap {

std::shared_ptr<SequenceGroupSet> SequenceCache::Lookup(
    const SequenceSpec& spec) const {
  const std::string key = spec.CanonicalString();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second;
}

void SequenceCache::Insert(const SequenceSpec& spec,
                           std::shared_ptr<SequenceGroupSet> set) {
  const std::string key = spec.CanonicalString();
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = std::move(set);
}

std::shared_ptr<SequenceGroupSet> SequenceCache::InsertIfAbsent(
    const SequenceSpec& spec, std::shared_ptr<SequenceGroupSet> set) {
  const std::string key = spec.CanonicalString();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(key, std::move(set));
  return it->second;
}

void SequenceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

size_t SequenceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace solap
