#include "solap/seq/sequence_cache.h"

namespace solap {

std::shared_ptr<SequenceGroupSet> SequenceCache::Lookup(
    const SequenceSpec& spec) const {
  auto it = map_.find(spec.CanonicalString());
  return it == map_.end() ? nullptr : it->second;
}

void SequenceCache::Insert(const SequenceSpec& spec,
                           std::shared_ptr<SequenceGroupSet> set) {
  map_[spec.CanonicalString()] = std::move(set);
}

}  // namespace solap
