#include "solap/seq/sequence_cache.h"

namespace solap {

std::shared_ptr<SequenceGroupSet> SequenceCache::Lookup(
    const SequenceSpec& spec) const {
  const std::string key = spec.CanonicalString();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second.set;
}

void SequenceCache::Insert(const SequenceSpec& spec,
                           std::shared_ptr<SequenceGroupSet> set) {
  const std::string key = spec.CanonicalString();
  const size_t bytes = set->ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_ != nullptr) {
    auto it = charges_.find(key);
    const size_t old_bytes = it != charges_.end() ? it->second : 0;
    governor_->Release(old_bytes);
    charged_bytes_ -= old_bytes;
    charges_.erase(key);
    if (!governor_->TryCharge(bytes, "sequence cache").ok()) {
      map_.erase(key);
      return;  // over budget: drop rather than cache
    }
    charges_[key] = bytes;
    charged_bytes_ += bytes;
  }
  map_[key] = Entry{spec, std::move(set)};
}

std::shared_ptr<SequenceGroupSet> SequenceCache::InsertIfAbsent(
    const SequenceSpec& spec, std::shared_ptr<SequenceGroupSet> set) {
  const std::string key = spec.CanonicalString();
  const size_t bytes = set->ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = map_.find(key);
  if (existing != map_.end()) return existing->second.set;
  // A rejected charge returns the freshly built set uncached: the query
  // proceeds on it, and the next identical formation rebuilds. Group-set
  // identity (which keys the per-group index caches) then differs between
  // those queries, which only costs index reuse — never correctness.
  if (governor_ != nullptr &&
      !governor_->TryCharge(bytes, "sequence cache").ok()) {
    return set;
  }
  if (governor_ != nullptr) {
    charges_[key] = bytes;
    charged_bytes_ += bytes;
  }
  auto [it, inserted] = map_.emplace(key, Entry{spec, std::move(set)});
  return it->second.set;
}

void SequenceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_ != nullptr) governor_->Release(charged_bytes_);
  charged_bytes_ = 0;
  charges_.clear();
  map_.clear();
}

void SequenceCache::Erase(const SequenceSpec& spec) {
  const std::string key = spec.CanonicalString();
  std::lock_guard<std::mutex> lock(mu_);
  if (governor_ != nullptr) {
    auto it = charges_.find(key);
    if (it != charges_.end()) {
      governor_->Release(it->second);
      charged_bytes_ -= it->second;
      charges_.erase(it);
    }
  }
  map_.erase(key);
}

std::vector<std::pair<SequenceSpec, std::shared_ptr<SequenceGroupSet>>>
SequenceCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<SequenceSpec, std::shared_ptr<SequenceGroupSet>>> out;
  out.reserve(map_.size());
  for (const auto& [key, entry] : map_) {
    out.emplace_back(entry.spec, entry.set);
  }
  return out;
}

SequenceCache::~SequenceCache() {
  if (governor_ != nullptr) governor_->Release(charged_bytes_);
}

size_t SequenceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace solap
