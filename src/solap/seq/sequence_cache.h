// Sequence cache (paper Fig. 6): memoizes the output of the sequence query
// engine so iterative queries sharing the same formation clauses skip
// steps 1-4 entirely. Thread-safe: concurrent queries may look up and
// populate the cache; InsertIfAbsent keeps one canonical set per spec so
// racing builders converge on the same groups (and index caches keyed by
// group-set identity stay shared).
#ifndef SOLAP_SEQ_SEQUENCE_CACHE_H_
#define SOLAP_SEQ_SEQUENCE_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "solap/common/mem_budget.h"
#include "solap/seq/sequence_group.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {

/// \brief Keyed store of SequenceGroupSets by canonical SequenceSpec text.
class SequenceCache {
 public:
  /// Cached set for `spec`, or nullptr.
  std::shared_ptr<SequenceGroupSet> Lookup(const SequenceSpec& spec) const;

  /// Stores `set` under `spec` (replacing any previous entry).
  void Insert(const SequenceSpec& spec,
              std::shared_ptr<SequenceGroupSet> set);

  /// Stores `set` under `spec` unless another thread won the race, and
  /// returns the canonical entry either way. Queries use this so every
  /// concurrent builder of the same formation ends up sharing one set.
  std::shared_ptr<SequenceGroupSet> InsertIfAbsent(
      const SequenceSpec& spec, std::shared_ptr<SequenceGroupSet> set);

  /// Drops every entry (used when the event table is mutated in a way that
  /// invalidates previously formed sequences).
  void Clear();

  /// Drops one formation (streaming ingestion's conservative invalidation
  /// when an append touches a cluster key the formation already holds).
  void Erase(const SequenceSpec& spec);

  /// Snapshot of all cached formations with the specs that built them —
  /// the enumeration the incremental-maintenance pass walks on ingest.
  std::vector<std::pair<SequenceSpec, std::shared_ptr<SequenceGroupSet>>>
  Entries() const;

  size_t size() const;

  /// Attaches the engine-wide byte-budget accountant: caching a set charges
  /// its ApproxBytes(); a rejected charge hands the set back uncached (the
  /// query proceeds, the next identical formation rebuilds). Set once at
  /// engine construction, before any use.
  void set_governor(MemoryGovernor* governor) { governor_ = governor; }

  ~SequenceCache();

 private:
  struct Entry {
    SequenceSpec spec;  // kept so ingestion can re-bind formation clauses
    std::shared_ptr<SequenceGroupSet> set;
  };

  mutable std::mutex mu_;
  MemoryGovernor* governor_ = nullptr;
  size_t charged_bytes_ = 0;
  std::unordered_map<std::string, Entry> map_;
  // Governor charge per cached key (refunded on replace/Clear).
  std::unordered_map<std::string, size_t> charges_;
};

}  // namespace solap

#endif  // SOLAP_SEQ_SEQUENCE_CACHE_H_
