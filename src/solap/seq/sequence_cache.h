// Sequence cache (paper Fig. 6): memoizes the output of the sequence query
// engine so iterative queries sharing the same formation clauses skip
// steps 1-4 entirely.
#ifndef SOLAP_SEQ_SEQUENCE_CACHE_H_
#define SOLAP_SEQ_SEQUENCE_CACHE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "solap/seq/sequence_group.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {

/// \brief Keyed store of SequenceGroupSets by canonical SequenceSpec text.
class SequenceCache {
 public:
  /// Cached set for `spec`, or nullptr.
  std::shared_ptr<SequenceGroupSet> Lookup(const SequenceSpec& spec) const;

  /// Stores `set` under `spec` (replacing any previous entry).
  void Insert(const SequenceSpec& spec,
              std::shared_ptr<SequenceGroupSet> set);

  /// Drops every entry (used when the event table is mutated in a way that
  /// invalidates previously formed sequences).
  void Clear() { map_.clear(); }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, std::shared_ptr<SequenceGroupSet>> map_;
};

}  // namespace solap

#endif  // SOLAP_SEQ_SEQUENCE_CACHE_H_
