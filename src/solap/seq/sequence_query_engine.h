// The sequence query engine: S-cuboid formation steps 1-4 (paper §3.2 and
// Fig. 4) — Selection, Clustering, Sequence Formation, Sequence Grouping.
#ifndef SOLAP_SEQ_SEQUENCE_QUERY_ENGINE_H_
#define SOLAP_SEQ_SEQUENCE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/expr/expr.h"
#include "solap/seq/sequence_group.h"

namespace solap {

/// \brief The sequence-formation half of an S-cuboid specification:
/// WHERE + CLUSTER BY + SEQUENCE BY + SEQUENCE GROUP BY.
struct SequenceSpec {
  /// Step 1 — event selection; nullptr selects everything.
  ExprPtr where;
  /// Step 2 — events sharing these dimension values form a cluster.
  std::vector<LevelRef> cluster_by;
  /// Step 3 — attribute whose order turns a cluster into a sequence.
  std::string sequence_by;
  bool ascending = true;
  /// Step 4 — global dimensions; empty means one single sequence group.
  std::vector<LevelRef> group_by;

  /// Canonical text used as the sequence-cache key.
  std::string CanonicalString() const;
};

/// \brief Row-level retention window applied during step 1, in addition to
/// the spec's WHERE: rows whose int64/timestamp column `col` is below
/// `min_inclusive` are skipped. The engine's EvictBefore (docs/INGESTION.md)
/// installs one so that both fresh formations and incremental extensions
/// see the same logical table.
struct RowFilter {
  int col = -1;  ///< -1 = no filtering
  int64_t min_inclusive = 0;

  bool Keep(const EventTable& table, RowId row) const {
    return col < 0 || table.Int64At(row, col) >= min_inclusive;
  }
};

/// \brief Executes SequenceSpecs against an event table.
///
/// The paper offloads these four steps to "an existing sequence database
/// query engine" and caches the result (Fig. 6); this class is that engine.
class SequenceQueryEngine {
 public:
  explicit SequenceQueryEngine(const HierarchyRegistry* hierarchies)
      : hierarchies_(hierarchies) {}

  /// Runs steps 1-4 and returns the grouped sequences. `filter` (optional)
  /// is the engine's retention window.
  Result<std::shared_ptr<SequenceGroupSet>> Build(
      const EventTable& table, const SequenceSpec& spec,
      const RowFilter* filter = nullptr);

 private:
  const HierarchyRegistry* hierarchies_;
};

}  // namespace solap

#endif  // SOLAP_SEQ_SEQUENCE_QUERY_ENGINE_H_
