// Boolean / comparison expression trees over event attributes.
//
// Two evaluation contexts exist:
//  - row context: the WHERE clause of an S-cuboid specification, evaluated
//    against a single event row ("time >= ... AND time < ...");
//  - match context: the matching predicate of the CUBOID BY clause, whose
//    operands reference event *placeholders* bound to matched positions
//    ("x1.action = 'in' AND y1.action = 'out'", paper §3.2 part 5c).
#ifndef SOLAP_EXPR_EXPR_H_
#define SOLAP_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/storage/event_table.h"

namespace solap {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Node kind of an expression tree.
enum class ExprOp {
  kConst,        ///< literal Value
  kColumn,       ///< attribute of the current row
  kPlaceholder,  ///< attribute of a matched event, e.g. x1.action
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// \brief Immutable-after-Bind expression tree node.
///
/// Build trees with the factory helpers below, then call Bind() once against
/// the table schema (and, for matching predicates, the placeholder list)
/// before evaluating.
class Expr {
 public:
  // --- factories ---------------------------------------------------------
  static ExprPtr Lit(Value v);
  static ExprPtr Col(std::string name);
  /// Placeholder reference `ph.attr` (e.g. "x1", "action").
  static ExprPtr PCol(std::string placeholder, std::string attr);
  static ExprPtr Cmp(ExprOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kEq, l, r); }
  static ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kNe, l, r); }
  static ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kLt, l, r); }
  static ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kLe, l, r); }
  static ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kGt, l, r); }
  static ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(ExprOp::kGe, l, r); }
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);

  ExprOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::string& column() const { return column_; }
  const std::string& placeholder() const { return placeholder_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Resolves column names to indices against `schema`. For matching
  /// predicates, `placeholders` lists the placeholder names in template
  /// position order; for WHERE clauses pass nullptr (placeholder references
  /// then fail to bind).
  Status Bind(const Schema& schema,
              const std::vector<std::string>* placeholders);

  /// Row-context evaluation (WHERE). Bind() must have succeeded.
  Value EvalRow(const EventTable& table, RowId row) const;

  /// Match-context evaluation: `matched[i]` is the row bound to template
  /// position i (the i-th placeholder).
  Value EvalMatch(const EventTable& table, const RowId* matched) const;

  /// True if any node references a placeholder.
  bool UsesPlaceholders() const;

  /// Canonical text form; part of cuboid-repository cache keys.
  std::string ToString() const;

 private:
  explicit Expr(ExprOp op) : op_(op) {}

  Value EvalImpl(const EventTable& table, RowId row, const RowId* matched) const;

  ExprOp op_;
  Value literal_;
  std::string column_;
  std::string placeholder_;
  std::vector<ExprPtr> children_;
  int col_index_ = -1;  // bound column
  int ph_index_ = -1;   // bound placeholder position
};

}  // namespace solap

#endif  // SOLAP_EXPR_EXPR_H_
