#include "solap/expr/expr.h"

#include <algorithm>

namespace solap {

ExprPtr Expr::Lit(Value v) {
  auto e = ExprPtr(new Expr(ExprOp::kConst));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Col(std::string name) {
  auto e = ExprPtr(new Expr(ExprOp::kColumn));
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::PCol(std::string placeholder, std::string attr) {
  auto e = ExprPtr(new Expr(ExprOp::kPlaceholder));
  e->placeholder_ = std::move(placeholder);
  e->column_ = std::move(attr);
  return e;
}

ExprPtr Expr::Cmp(ExprOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr(op));
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprOp::kAnd));
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprOp::kOr));
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr x) {
  auto e = ExprPtr(new Expr(ExprOp::kNot));
  e->children_ = {std::move(x)};
  return e;
}

Status Expr::Bind(const Schema& schema,
                  const std::vector<std::string>* placeholders) {
  switch (op_) {
    case ExprOp::kConst:
      return Status::OK();
    case ExprOp::kColumn: {
      SOLAP_ASSIGN_OR_RETURN(col_index_, schema.RequireField(column_));
      return Status::OK();
    }
    case ExprOp::kPlaceholder: {
      if (placeholders == nullptr) {
        return Status::InvalidArgument(
            "placeholder reference '" + placeholder_ + "." + column_ +
            "' is not allowed outside a matching predicate");
      }
      auto it =
          std::find(placeholders->begin(), placeholders->end(), placeholder_);
      if (it == placeholders->end()) {
        return Status::InvalidArgument("unknown event placeholder '" +
                                       placeholder_ + "'");
      }
      ph_index_ = static_cast<int>(it - placeholders->begin());
      SOLAP_ASSIGN_OR_RETURN(col_index_, schema.RequireField(column_));
      return Status::OK();
    }
    default:
      for (const ExprPtr& c : children_) {
        SOLAP_RETURN_NOT_OK(c->Bind(schema, placeholders));
      }
      return Status::OK();
  }
}

Value Expr::EvalImpl(const EventTable& table, RowId row,
                     const RowId* matched) const {
  switch (op_) {
    case ExprOp::kConst:
      return literal_;
    case ExprOp::kColumn:
      return table.GetValue(row, col_index_);
    case ExprOp::kPlaceholder:
      return table.GetValue(matched[ph_index_], col_index_);
    case ExprOp::kEq:
      return Value::Bool(children_[0]->EvalImpl(table, row, matched)
                             .Equals(children_[1]->EvalImpl(table, row, matched)));
    case ExprOp::kNe:
      return Value::Bool(!children_[0]->EvalImpl(table, row, matched)
                              .Equals(children_[1]->EvalImpl(table, row, matched)));
    case ExprOp::kLt:
      return Value::Bool(children_[0]->EvalImpl(table, row, matched)
                             .LessThan(children_[1]->EvalImpl(table, row, matched)));
    case ExprOp::kLe: {
      Value a = children_[0]->EvalImpl(table, row, matched);
      Value b = children_[1]->EvalImpl(table, row, matched);
      return Value::Bool(a.LessThan(b) || a.Equals(b));
    }
    case ExprOp::kGt:
      return Value::Bool(children_[1]->EvalImpl(table, row, matched)
                             .LessThan(children_[0]->EvalImpl(table, row, matched)));
    case ExprOp::kGe: {
      Value a = children_[0]->EvalImpl(table, row, matched);
      Value b = children_[1]->EvalImpl(table, row, matched);
      return Value::Bool(b.LessThan(a) || a.Equals(b));
    }
    case ExprOp::kAnd:
      if (!children_[0]->EvalImpl(table, row, matched).AsBool()) {
        return Value::Bool(false);
      }
      return Value::Bool(children_[1]->EvalImpl(table, row, matched).AsBool());
    case ExprOp::kOr:
      if (children_[0]->EvalImpl(table, row, matched).AsBool()) {
        return Value::Bool(true);
      }
      return Value::Bool(children_[1]->EvalImpl(table, row, matched).AsBool());
    case ExprOp::kNot:
      return Value::Bool(!children_[0]->EvalImpl(table, row, matched).AsBool());
  }
  return Value::Null();
}

Value Expr::EvalRow(const EventTable& table, RowId row) const {
  return EvalImpl(table, row, nullptr);
}

Value Expr::EvalMatch(const EventTable& table, const RowId* matched) const {
  return EvalImpl(table, 0, matched);
}

bool Expr::UsesPlaceholders() const {
  if (op_ == ExprOp::kPlaceholder) return true;
  for (const ExprPtr& c : children_) {
    if (c->UsesPlaceholders()) return true;
  }
  return false;
}

namespace {

const char* OpToken(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "AND";
    case ExprOp::kOr:
      return "OR";
    default:
      return "?";
  }
}

}  // namespace

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kConst:
      return literal_.type() == ValueType::kString ? "\"" + literal_.str() + "\""
                                                   : literal_.ToString();
    case ExprOp::kColumn:
      return column_;
    case ExprOp::kPlaceholder:
      return placeholder_ + "." + column_;
    case ExprOp::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    default:
      return "(" + children_[0]->ToString() + " " + OpToken(op_) + " " +
             children_[1]->ToString() + ")";
  }
}

}  // namespace solap
