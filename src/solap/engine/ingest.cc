// Streaming ingestion (docs/INGESTION.md): the engine's write path.
//
// IngestRows appends a batch of event rows under the exclusive epoch gate
// and incrementally maintains every cached structure instead of dropping
// them all (the pre-ingestion NotifyTableAppend behavior, kept for callers
// that mutate the table directly):
//
//   - formations whose new rows only introduce NEW cluster keys are
//     extended in place — the new sequences append at the tail of their
//     groups, so existing sids (and therefore every cached inverted list)
//     stay valid;
//   - cached complete indices of touched groups grow a DELTA segment
//     (inverted_index.h) covering just the appended sids; the background
//     merger folds deltas into base containers off the ingest path;
//   - cached cuboids whose spec is AppendPatchable (cube/lattice.h) are
//     delta-patched by counter-scanning only the appended sid ranges;
//     everything else is invalidated.
//
// A batch that maps any row onto an EXISTING cluster key would splice
// events into the middle of a formed sequence, shifting its symbol
// positions — that formation (and its dependents) is conservatively
// invalidated and rebuilt lazily on next use.
#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_set>
#include <utility>

#include "solap/common/failpoint.h"
#include "solap/cube/lattice.h"
#include "solap/engine/engine.h"
#include "solap/index/build_index.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {

Status SOlapEngine::IngestRows(const std::vector<std::vector<Value>>& rows,
                               TraceContext* trace) {
  if (mutable_table_ == nullptr) {
    return Status::InvalidArgument(
        "IngestRows requires the mutable-table constructor");
  }
  TraceSpan span(trace, "ingest.append");
  SOLAP_FAILPOINT("ingest.append");
  EpochGate::WriteLock wl(gate_);
  if (rows.empty()) {
    wl.Abandon();
    return Status::OK();
  }
  const RowId from_row = static_cast<RowId>(mutable_table_->num_rows());
  Status appended = mutable_table_->Append(rows);
  if (!appended.ok()) {
    wl.Abandon();  // validate-first Append left the table untouched
    return appended;
  }
  ScanStats local;
  local.ingested_events = rows.size();

  // Incrementally maintain (or conservatively invalidate) every cached
  // formation. The table rows are already committed either way — a failure
  // below only costs cached state, never correctness.
  FormationDeltas deltas;
  for (auto& [spec, set] : sequence_cache_.Entries()) {
    auto extended = TryExtendFormation(spec, set, from_row, &deltas, &local);
    if (extended.ok() && extended.value()) {
      // The set grew in place; re-insert so the governor charge tracks the
      // new ApproxBytes.
      sequence_cache_.Insert(spec, set);
    } else {
      sequence_cache_.Erase(spec);
      DropIndexCachesFor(*set);
      deltas.erase(set.get());
      ++local.formation_invalidations;
    }
  }
  PatchOrInvalidateCuboids(deltas, &local);

  span.Count("events", rows.size());
  span.Count("epoch", wl.committed_epoch());
  MergeStats(local);
  EnsureMerger();
  MaybeKickMerger();
  return Status::OK();
}

Result<bool> SOlapEngine::TryExtendFormation(
    const SequenceSpec& spec, const std::shared_ptr<SequenceGroupSet>& set,
    RowId from_row, FormationDeltas* deltas, ScanStats* stats) {
  // Re-bind the formation clauses exactly as SequenceQueryEngine::Build
  // does, so extension and rebuild classify rows identically.
  if (spec.where != nullptr) {
    SOLAP_RETURN_NOT_OK(spec.where->Bind(mutable_table_->schema(), nullptr));
  }
  std::vector<DimensionBinding> cluster_bindings;
  for (const LevelRef& r : spec.cluster_by) {
    SOLAP_ASSIGN_OR_RETURN(
        DimensionBinding b,
        DimensionBinding::MakeForTable(*mutable_table_, hierarchies_, r));
    cluster_bindings.push_back(std::move(b));
  }
  SOLAP_ASSIGN_OR_RETURN(int order_col,
                         mutable_table_->schema().RequireField(spec.sequence_by));
  const ValueType order_type =
      mutable_table_->schema().field(order_col).type;
  auto order_value = [&](RowId r) -> double {
    if (order_type == ValueType::kDouble) {
      return mutable_table_->DoubleAt(r, order_col);
    }
    return static_cast<double>(mutable_table_->Int64At(r, order_col));
  };

  // Every cluster key the formation already holds, read off each
  // sequence's first event (cluster values are functionally determined by
  // the cluster, so one row suffices).
  std::unordered_set<CellKey, CodeVecHash> existing;
  for (SequenceGroup& group : set->groups()) {
    const Sid n = static_cast<Sid>(group.num_sequences());
    CellKey ckey(cluster_bindings.size());
    for (Sid s = 0; s < n; ++s) {
      const RowId row = group.Rows(s).front();
      for (size_t i = 0; i < cluster_bindings.size(); ++i) {
        ckey[i] = cluster_bindings[i].CodeOf(*mutable_table_, row);
      }
      existing.insert(ckey);
    }
  }

  // Classify the new rows. Ordered map for deterministic sid assignment,
  // mirroring the fresh-formation path.
  std::map<CellKey, std::vector<RowId>> fresh_clusters;
  const size_t n_rows = mutable_table_->num_rows();
  CellKey ckey(cluster_bindings.size());
  for (RowId row = from_row; row < n_rows; ++row) {
    if (!retention_.Keep(*mutable_table_, row)) continue;
    if (spec.where != nullptr &&
        !spec.where->EvalRow(*mutable_table_, row).AsBool()) {
      continue;
    }
    for (size_t i = 0; i < cluster_bindings.size(); ++i) {
      ckey[i] = cluster_bindings[i].CodeOf(*mutable_table_, row);
    }
    if (existing.count(ckey) != 0) return false;  // caller invalidates
    fresh_clusters[ckey].push_back(row);
  }

  // Pattern-invariant extension: all selected rows form brand-new
  // sequences, appended at the tail of their groups.
  const std::vector<DimensionBinding>& gb = set->global_bindings();
  std::unordered_map<size_t, Sid> old_counts;  // touched group -> old size
  CellKey gkey(gb.size());
  for (auto& [key, seq_rows] : fresh_clusters) {
    std::stable_sort(seq_rows.begin(), seq_rows.end(),
                     [&](RowId a, RowId b) {
                       double va = order_value(a), vb = order_value(b);
                       return spec.ascending ? va < vb : vb < va;
                     });
    for (size_t i = 0; i < gb.size(); ++i) {
      gkey[i] = gb[i].CodeOf(*mutable_table_, seq_rows.front());
    }
    SequenceGroup& group = set->GroupFor(gkey);
    // Identify the group by position (GroupFor may have just created it).
    const size_t gi = static_cast<size_t>(&group - set->groups().data());
    old_counts.emplace(gi, static_cast<Sid>(group.num_sequences()));
    group.AddSequence(seq_rows);
  }

  std::vector<GroupDelta>& group_deltas = (*deltas)[set.get()];
  for (const auto& [gi, old_count] : old_counts) {
    SequenceGroup& group = set->groups()[gi];
    group.InvalidateViews();  // views cover the old extent only
    group_deltas.push_back(GroupDelta{gi, old_count});

    // Delta-extend the group's cached complete indices; join-derived
    // filtered indices cannot be extended safely and are dropped.
    const GroupIndexCache* existing_cache = FindIndexCache(*set, gi);
    if (existing_cache == nullptr) continue;
    GroupIndexCache& cache = CacheFor(*set, gi);
    std::vector<std::shared_ptr<InvertedIndex>> keep;
    for (const auto& entry : cache.entries()) {
      if (entry->complete()) keep.push_back(entry);
    }
    cache.Clear();
    for (auto& entry : keep) {
      Status extended =
          AppendToIndexDelta(entry.get(), &group, *set, hierarchies_,
                             old_count, stats, &governor_);
      if (!extended.ok()) return extended;
      // A budget reject only loses the cached index — the next query
      // rebuilds it; the extension itself stands.
      if (!cache.Insert(std::move(entry)).ok()) break;
    }
  }
  std::sort(group_deltas.begin(), group_deltas.end(),
            [](const GroupDelta& a, const GroupDelta& b) {
              return a.group_idx < b.group_idx;
            });
  return true;
}

void SOlapEngine::PatchOrInvalidateCuboids(const FormationDeltas& deltas,
                                           ScanStats* stats) {
  // Called under the exclusive gate (epoch odd); stamp patched entries with
  // the epoch readers will observe after this writer commits.
  const uint64_t commit_epoch = gate_.epoch() + 1;
  for (const CuboidRepository::Snapshot& e : repository_.Entries()) {
    auto invalidate = [&] {
      repository_.Erase(e.key);
      ++stats->stale_cuboid_invalidations;
    };
    if (!e.has_spec || !AppendPatchable(e.spec)) {
      invalidate();
      continue;
    }
    std::shared_ptr<SequenceGroupSet> set = sequence_cache_.Lookup(e.spec.seq);
    if (set == nullptr) {  // its formation was invalidated above
      invalidate();
      continue;
    }
    auto dit = deltas.find(set.get());
    if (dit == deltas.end() || dit->second.empty()) {
      // The batch contributed nothing to this formation (rows filtered out
      // by WHERE/retention) — the cached cuboid is still exact.
      repository_.Replace(e.key, e.cuboid, commit_epoch);
      continue;
    }
    auto patch = [&]() -> Status {
      auto copy = std::make_shared<SCuboid>(*e.cuboid);
      SOLAP_ASSIGN_OR_RETURN(QueryContext ctx, Prepare(e.spec, copy.get()));
      ctx.stats = stats;
      for (size_t gi : ctx.selected_groups) {
        const GroupDelta* gd = nullptr;
        for (const GroupDelta& d : dit->second) {
          if (d.group_idx == gi) {
            gd = &d;
            break;
          }
        }
        if (gd == nullptr) continue;  // group untouched by this batch
        SequenceGroup& group = ctx.groups->groups()[gi];
        SOLAP_ASSIGN_OR_RETURN(
            BoundPattern bp,
            BoundPattern::Bind(&ctx.tmpl, &group, *ctx.groups, hierarchies_,
                               ctx.spec->predicate, ctx.spec->placeholders));
        SOLAP_RETURN_NOT_OK(CounterScanRange(
            ctx, group, bp, gd->old_count,
            static_cast<Sid>(group.num_sequences()), copy.get(), stats));
      }
      SOLAP_RETURN_NOT_OK(
          LabelCells(copy.get(), *set, hierarchies_, e.spec.dims));
      repository_.Replace(e.key, copy, commit_epoch);
      ++stats->cuboid_patches;
      return Status::OK();
    };
    if (!patch().ok()) invalidate();
  }
}

void SOlapEngine::DropIndexCachesFor(const SequenceGroupSet& set) {
  const std::string prefix =
      std::to_string(reinterpret_cast<uintptr_t>(&set)) + ":";
  std::lock_guard<std::mutex> lock(index_caches_mu_);
  for (auto it = index_caches_.begin(); it != index_caches_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = index_caches_.erase(it);  // dtor refunds the governor charge
    } else {
      ++it;
    }
  }
}

Status SOlapEngine::EvictBefore(const std::string& order_attr,
                                int64_t cutoff) {
  if (table_ == nullptr) {
    return Status::InvalidArgument(
        "EvictBefore applies to table-backed engines");
  }
  SOLAP_ASSIGN_OR_RETURN(int col, table_->schema().RequireField(order_attr));
  const ValueType type = table_->schema().field(col).type;
  if (type != ValueType::kInt64 && type != ValueType::kTimestamp) {
    return Status::InvalidArgument("retention attribute '" + order_attr +
                                   "' must be int64 or timestamp");
  }
  EpochGate::WriteLock wl(gate_);
  if (retention_.col == col) {
    // Monotone: time only moves forward; a lower cutoff is a no-op.
    retention_.min_inclusive = std::max(retention_.min_inclusive, cutoff);
  } else {
    retention_.col = col;
    retention_.min_inclusive = cutoff;
  }
  // Formed groups embed evicted rows; rebuild everything lazily under the
  // new window (fresh formations apply retention_, so rebuilds agree with
  // any future incremental extension). Cache Clear refunds the governor.
  sequence_cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(index_caches_mu_);
    index_caches_.clear();
  }
  repository_.Clear();
  return Status::OK();
}

Status SOlapEngine::SyncTableDictionary(int col, size_t from,
                                        const std::vector<std::string>& values) {
  if (mutable_table_ == nullptr) {
    return Status::InvalidArgument(
        "SyncTableDictionary requires the mutable-table constructor");
  }
  EpochGate::WriteLock wl(gate_);
  // Growing a dictionary tail changes no query answer (no row references
  // the new codes yet), so the epoch must not advance.
  wl.Abandon();
  return mutable_table_->SyncDictionary(col, from, values);
}

Status SOlapEngine::MergeDeltasNow(TraceContext* trace) {
  TraceSpan span(trace, "ingest.merge");
  SOLAP_FAILPOINT("ingest.merge");
  // Exclusive gate: readers see either all lists two-segment or all merged
  // — never a half-folded index. Logical content is unchanged, so the
  // epoch must not advance.
  EpochGate::WriteLock wl(gate_);
  wl.Abandon();
  size_t merged = 0;
  {
    std::lock_guard<std::mutex> lock(index_caches_mu_);
    for (auto& [key, cache] : index_caches_) {
      std::vector<std::shared_ptr<InvertedIndex>> entries = cache.entries();
      bool any_delta = false;
      for (const auto& entry : entries) {
        if (entry->has_delta()) any_delta = true;
      }
      if (!any_delta) continue;
      // Clear + re-insert keeps the governor charge exact (the fold can
      // change the containers' byte size).
      cache.Clear();
      for (auto& entry : entries) {
        if (entry->has_delta()) {
          entry->MergeDeltaIntoBase();
          ++merged;
        }
        if (!cache.Insert(std::move(entry)).ok()) break;
      }
    }
  }
  span.Count("segments", merged);
  if (merged > 0) {
    ScanStats local;
    local.delta_merges = 1;
    MergeStats(local);
  }
  return Status::OK();
}

SOlapEngine::DeltaStats SOlapEngine::DeltaSnapshot() const {
  DeltaStats out;
  std::lock_guard<std::mutex> lock(index_caches_mu_);
  for (const auto& [key, cache] : index_caches_) {
    for (const auto& entry : cache.entries()) {
      if (entry->has_delta()) {
        ++out.segments;
        out.bytes += entry->DeltaByteSize();
      }
    }
  }
  return out;
}

void SOlapEngine::EnsureMerger() {
  if (!options_.auto_delta_merge) return;
  std::lock_guard<std::mutex> lock(merge_mu_);
  if (merger_started_) return;
  merger_started_ = true;
  merger_ = std::thread([this] { MergerLoop(); });
}

void SOlapEngine::MaybeKickMerger() {
  if (!options_.auto_delta_merge) return;
  if (options_.delta_merge_bytes > 0 &&
      DeltaSnapshot().bytes <= options_.delta_merge_bytes) {
    return;
  }
  std::lock_guard<std::mutex> lock(merge_mu_);
  merge_kick_ = true;
  merge_cv_.notify_all();
}

void SOlapEngine::MergerLoop() {
  std::unique_lock<std::mutex> lk(merge_mu_);
  while (!merge_stop_) {
    if (options_.merge_interval_ms > 0) {
      merge_cv_.wait_for(lk,
                         std::chrono::milliseconds(options_.merge_interval_ms),
                         [&] { return merge_stop_ || merge_kick_; });
    } else {
      merge_cv_.wait(lk, [&] { return merge_stop_ || merge_kick_; });
    }
    if (merge_stop_) break;
    merge_kick_ = false;
    lk.unlock();
    // Best-effort: a failpoint or injected fault just skips this cycle.
    (void)MergeDeltasNow();
    lk.lock();
  }
}

void SOlapEngine::StopMerger() {
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_stop_ = true;
  }
  merge_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
}

}  // namespace solap
