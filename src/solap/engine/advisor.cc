#include "solap/engine/advisor.h"

#include <algorithm>
#include <unordered_map>

#include "solap/index/build_index.h"

namespace solap {

std::string IndexRecommendation::ToString() const {
  return shape.CanonicalString() + " benefit=" + std::to_string(benefit) +
         " bytes~" + std::to_string(estimated_bytes);
}

namespace {

struct Candidate {
  SequenceSpec formation;
  IndexShape shape;
  double benefit = 0;
};

std::string KeyOf(const SequenceSpec& formation, const IndexShape& shape) {
  return formation.CanonicalString() + "|" + shape.CanonicalString();
}

}  // namespace

Result<std::vector<IndexRecommendation>> MaterializationAdvisor::Recommend(
    const std::vector<WorkloadQuery>& workload, size_t budget_bytes) {
  std::unordered_map<std::string, Candidate> candidates;

  for (const WorkloadQuery& wq : workload) {
    if (wq.spec.is_regex()) continue;  // regex queries are scan-based
    SOLAP_ASSIGN_OR_RETURN(PatternTemplate tmpl, wq.spec.MakeTemplate());
    SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                           engine_->GroupsFor(wq.spec.seq));
    const double n = static_cast<double>(groups->total_sequences());
    const size_t m = tmpl.num_positions();

    auto add = [&](IndexShape shape, double benefit) {
      std::string key = KeyOf(wq.spec.seq, shape);
      auto it = candidates.find(key);
      if (it == candidates.end()) {
        candidates.emplace(
            key, Candidate{wq.spec.seq, std::move(shape), benefit});
      } else {
        it->second.benefit += benefit;
      }
    };

    if (m == 1) {
      IndexShape shape;
      shape.kind = tmpl.kind();
      shape.positions = {tmpl.dim(tmpl.dim_of(0)).ref};
      add(std::move(shape), wq.weight * n);
      continue;
    }
    // Every size-2 window: having it avoids one full BuildIndex scan.
    for (size_t off = 0; off + 2 <= m; ++off) {
      IndexShape shape;
      shape.kind = tmpl.kind();
      shape.positions = {tmpl.dim(tmpl.dim_of(off)).ref,
                         tmpl.dim(tmpl.dim_of(off + 1)).ref};
      add(std::move(shape), wq.weight * n);
    }
    // The full-length shape (short templates only): answers the query with
    // no joins at all, saving roughly the join pipeline's scans.
    if (m >= 3 && m <= 4) {
      IndexShape shape;
      shape.kind = tmpl.kind();
      for (size_t pos = 0; pos < m; ++pos) {
        shape.positions.push_back(tmpl.dim(tmpl.dim_of(pos)).ref);
      }
      add(std::move(shape), wq.weight * n * static_cast<double>(m - 1));
    }
  }

  // Estimate footprints by building each candidate over a sample of each
  // group and extrapolating entries linearly.
  std::vector<IndexRecommendation> ranked;
  for (auto& [key, cand] : candidates) {
    SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                           engine_->GroupsFor(cand.formation));
    // Skip candidates the engine already holds (first group as proxy).
    if (!groups->groups().empty()) {
      const GroupIndexCache* cache = engine_->FindIndexCache(*groups, 0);
      if (cache != nullptr && cache->Find(cand.shape, "") != nullptr) {
        continue;
      }
    }
    size_t bytes = 0;
    for (SequenceGroup& group : groups->groups()) {
      const size_t total = group.num_sequences();
      if (total == 0) continue;
      const size_t k = std::min(sample_sequences_, total);
      SequenceGroup sample(group.table());
      for (Sid s = 0; s < k; ++s) sample.AddSequence(group.Rows(s));
      ScanStats scratch;
      SOLAP_ASSIGN_OR_RETURN(
          std::shared_ptr<InvertedIndex> built,
          BuildIndex(&sample, *groups, engine_->hierarchies(), cand.shape,
                     &scratch));
      // Posting payload scales with the sequence count, but the per-list
      // container and struct overhead scales with the number of distinct
      // patterns — which a vocabulary-bounded sample has largely saturated.
      // Scaling the whole ByteSize linearly overshot small samples ~4x.
      const size_t size_bytes = built->ByteSize();
      const size_t payload =
          built->total_entries() * sizeof(uint16_t);  // array-container lows
      const size_t overhead = size_bytes > payload ? size_bytes - payload : 0;
      bytes += payload * total / k + overhead;
    }
    ranked.push_back(IndexRecommendation{cand.formation, cand.shape,
                                         cand.benefit, bytes});
  }

  // Greedy knapsack by benefit per byte.
  std::sort(ranked.begin(), ranked.end(),
            [](const IndexRecommendation& a, const IndexRecommendation& b) {
              double da = a.benefit / static_cast<double>(
                                          std::max<size_t>(a.estimated_bytes, 1));
              double db = b.benefit / static_cast<double>(
                                          std::max<size_t>(b.estimated_bytes, 1));
              if (da != db) return da > db;
              return a.shape.CanonicalString() < b.shape.CanonicalString();
            });
  std::vector<IndexRecommendation> chosen;
  size_t used = 0;
  for (IndexRecommendation& rec : ranked) {
    if (used + rec.estimated_bytes > budget_bytes) continue;
    used += rec.estimated_bytes;
    chosen.push_back(std::move(rec));
  }
  return chosen;
}

Status MaterializationAdvisor::Materialize(
    const std::vector<IndexRecommendation>& recs) {
  for (const IndexRecommendation& rec : recs) {
    SOLAP_RETURN_NOT_OK(engine_->MaterializeIndex(rec.formation, rec.shape));
  }
  return Status::OK();
}

}  // namespace solap
