// Inverted-index S-cuboid construction — QueryIndices (paper §4.2.2,
// Fig. 15) plus the index-reuse strategies behind the six S-OLAP
// operations: longest cached prefix/suffix growth for APPEND/PREPEND,
// list merging for P-ROLL-UP, list refinement for P-DRILL-DOWN.
#include "solap/engine/engine.h"
#include "solap/index/build_index.h"
#include "solap/index/index_ops.h"

namespace solap {

namespace {

// Hierarchy level index of `ref` for derivation comparisons; -1 when the
// attribute has no multi-level hierarchy usable here (calendar levels and
// identity-only attributes only ever match exactly).
int LevelIndexOf(const HierarchyRegistry* reg, const LevelRef& ref) {
  ConceptHierarchy* h = reg != nullptr ? reg->Find(ref.attr) : nullptr;
  if (h == nullptr) return -1;
  int idx = h->LevelIndex(ref.level);
  if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
  return idx;
}

}  // namespace

Status SOlapEngine::RunInvertedIndex(QueryContext& ctx) {
  for (size_t gi : ctx.selected_groups) {
    SequenceGroup& group = ctx.groups->groups()[gi];
    TraceSpan group_span(ctx.trace, "ii.group");
    group_span.Count("group", gi);
    // One binding with the matching predicate (for counting) and one
    // without (for index construction: lists are containment-only).
    SOLAP_ASSIGN_OR_RETURN(
        BoundPattern bp,
        BoundPattern::Bind(&ctx.tmpl, &group, *ctx.groups, hierarchies_,
                           ctx.spec->predicate, ctx.spec->placeholders));
    SOLAP_ASSIGN_OR_RETURN(
        BoundPattern bp_index,
        BoundPattern::Bind(&ctx.tmpl, &group, *ctx.groups, hierarchies_,
                           nullptr, {}));
    GroupIndexCache& cache = CacheFor(*ctx.groups, gi);
    SOLAP_ASSIGN_OR_RETURN(
        std::shared_ptr<InvertedIndex> index,
        ObtainIndex(cache, group, *ctx.groups, ctx.tmpl, bp_index, ctx.stats,
                    ctx.stop, ctx.trace));
    TraceSpan count_span(ctx.trace, "ii.count");
    count_span.Count("index_lists", index->lists().size());
    count_span.Count("index_entries", index->total_entries());
    SOLAP_RETURN_NOT_OK(CountFromIndex(ctx, group, bp, *index));
  }
  return Status::OK();
}

namespace {

// Attaches the work counted between two ScanStats snapshots to `span`,
// including the per-kernel intersection mix of a join step (zero-valued
// facts are skipped to keep renderings short).
void AttachStatsDelta(TraceSpan& span, const ScanStats& before,
                      const ScanStats& after) {
  if (!span.active()) return;
  auto emit = [&](const char* key, uint64_t b, uint64_t a) {
    if (a > b) span.Count(key, a - b);
  };
  emit("sequences_scanned", before.sequences_scanned, after.sequences_scanned);
  emit("lists_built", before.lists_built, after.lists_built);
  emit("index_bytes", before.index_bytes_built, after.index_bytes_built);
  emit("intersections", before.list_intersections, after.list_intersections);
  emit("linear", before.intersections_linear, after.intersections_linear);
  emit("galloping", before.intersections_galloping,
       after.intersections_galloping);
  emit("bitmap", before.intersections_bitmap, after.intersections_bitmap);
  emit("container_array", before.container_array_ops,
       after.container_array_ops);
  emit("container_bitmap", before.container_bitmap_ops,
       after.container_bitmap_ops);
  emit("container_run", before.container_run_ops, after.container_run_ops);
  emit("container_gallop", before.container_gallop_ops,
       after.container_gallop_ops);
  // The dominant kernel of this step, named explicitly so EXPLAIN ANALYZE
  // readers need not compare the mix counters.
  const uint64_t lin = after.intersections_linear - before.intersections_linear;
  const uint64_t gal =
      after.intersections_galloping - before.intersections_galloping;
  const uint64_t bmp = after.intersections_bitmap - before.intersections_bitmap;
  if (lin + gal + bmp > 0) {
    const char* kernel = lin >= gal && lin >= bmp ? "linear"
                         : gal >= bmp            ? "galloping"
                                                 : "bitmap";
    span.Note("kernel", kernel);
  }
}

}  // namespace

Result<std::shared_ptr<InvertedIndex>> SOlapEngine::ObtainIndex(
    GroupIndexCache& cache, SequenceGroup& group, const SequenceGroupSet& set,
    const PatternTemplate& tmpl, const BoundPattern& bp, ScanStats* stats,
    const StopToken* stop, TraceContext* trace) {
  const size_t m = tmpl.num_positions();
  IndexShape target;
  target.kind = tmpl.kind();
  for (size_t pos = 0; pos < m; ++pos) {
    target.positions.push_back(tmpl.dim(tmpl.dim_of(pos)).ref);
  }
  const std::string full_sig =
      WindowConstraintSig(tmpl, 0, m, bp.fixed_codes());

  // Size-2 index for template window [off, off+2): cached or freshly built
  // (always built complete — maximally reusable).
  auto get_l2 = [&](size_t off) -> Result<std::shared_ptr<InvertedIndex>> {
    IndexShape shape;
    shape.kind = tmpl.kind();
    shape.positions = {target.positions[off], target.positions[off + 1]};
    if (options_.enable_index_cache) {
      if (auto hit = cache.Find(shape, "")) {
        ++stats->index_cache_hits;
        return hit;
      }
    }
    TraceSpan span(trace, "ii.build_index");
    const ScanStats before = span.active() ? *stats : ScanStats{};
    span.Note("shape", shape.CanonicalString());
    SOLAP_ASSIGN_OR_RETURN(
        std::shared_ptr<InvertedIndex> built,
        BuildIndex(&group, set, hierarchies_, shape, stats, &governor_));
    AttachStatsDelta(span, before, *stats);
    if (options_.enable_index_cache) SOLAP_RETURN_NOT_OK(cache.Insert(built));
    return built;
  };

  if (options_.enable_index_cache) {
    // 1. Exact (or complete-superset) cache hit.
    if (auto hit = cache.FindUsable(target, full_sig)) {
      ++stats->index_cache_hits;
      return hit;
    }

    // 2. Derivation from a same-shape index at different abstraction
    //    levels: P-ROLL-UP merges complete finer indices; P-DRILL-DOWN
    //    refines coarser ones by re-scanning their member sequences.
    std::vector<int> target_levels(m);
    for (size_t pos = 0; pos < m; ++pos) {
      target_levels[pos] = LevelIndexOf(hierarchies_, target.positions[pos]);
    }
    std::shared_ptr<InvertedIndex> rollup_src, drill_src;
    for (const auto& entry : cache.entries()) {
      if (entry->shape().kind != target.kind ||
          entry->shape().size() != m) {
        continue;
      }
      bool finer = true, coarser = true, any_diff = false;
      for (size_t pos = 0; pos < m && (finer || coarser); ++pos) {
        const LevelRef& eref = entry->shape().positions[pos];
        const LevelRef& tref = target.positions[pos];
        if (eref == tref) continue;
        any_diff = true;
        int el = LevelIndexOf(hierarchies_, eref);
        int tl = target_levels[pos];
        if (eref.attr != tref.attr || el < 0 || tl < 0) {
          finer = coarser = false;
          break;
        }
        if (el > tl) finer = false;    // entry is coarser here
        if (el < tl) coarser = false;  // entry is finer here
      }
      if (!any_diff) continue;
      if (finer && entry->complete() && rollup_src == nullptr) {
        rollup_src = entry;
      }
      if (coarser && drill_src == nullptr &&
          (entry->complete() ||
           entry->constraint_sig() == full_sig)) {
        drill_src = entry;
      }
    }
    if (rollup_src != nullptr) {
      std::vector<std::vector<Code>> maps(m);
      for (size_t pos = 0; pos < m; ++pos) {
        const LevelRef& eref = rollup_src->shape().positions[pos];
        if (eref == target.positions[pos]) continue;
        SOLAP_ASSIGN_OR_RETURN(
            maps[pos],
            LevelMapFor(set, eref.attr, LevelIndexOf(hierarchies_, eref),
                        target_levels[pos]));
      }
      // Restricted templates merge only their consistent subcube; the
      // result is then filtered (carries the constraint signature).
      const bool filtered = !full_sig.empty();
      TraceSpan span(trace, "ii.rollup_merge");
      const ScanStats before = span.active() ? *stats : ScanStats{};
      span.Note("source", rollup_src->shape().CanonicalString());
      SOLAP_ASSIGN_OR_RETURN(
          std::shared_ptr<InvertedIndex> merged,
          RollUpMerge(*rollup_src, maps, target, filtered ? &tmpl : nullptr,
                      filtered ? &bp.fixed_codes() : nullptr, stats,
                      JoinExec()));
      AttachStatsDelta(span, before, *stats);
      if (filtered) {
        merged->set_constraint_sig(full_sig);
        merged->set_complete(false);
      }
      SOLAP_RETURN_NOT_OK(cache.Insert(merged));
      return merged;
    }
    if (drill_src != nullptr) {
      std::vector<std::vector<Code>> maps(m);  // fine (target) -> coarse
      for (size_t pos = 0; pos < m; ++pos) {
        const LevelRef& eref = drill_src->shape().positions[pos];
        if (eref == target.positions[pos]) continue;
        SOLAP_ASSIGN_OR_RETURN(
            maps[pos],
            LevelMapFor(set, eref.attr, target_levels[pos],
                        LevelIndexOf(hierarchies_, eref)));
      }
      // Map the slice/dice restrictions up to the coarse level so that the
      // refinement touches only the sliced coarse lists (paper §5.1: Qb
      // scans just the 2,201 sequences of the sliced cell).
      std::vector<std::vector<Code>> coarse_fixed(tmpl.num_dims());
      bool any_fixed = false;
      for (size_t d = 0; d < tmpl.num_dims(); ++d) {
        const std::vector<Code>& fine_codes = bp.fixed_codes()[d];
        if (fine_codes.empty()) continue;
        any_fixed = true;
        size_t pos = static_cast<size_t>(tmpl.first_position_of(d));
        const std::vector<Code>& map = maps[pos];
        for (Code c : fine_codes) {
          coarse_fixed[d].push_back(
              (!map.empty() && c < map.size()) ? map[c] : c);
        }
      }
      TraceSpan span(trace, "ii.drilldown_refine");
      const ScanStats before = span.active() ? *stats : ScanStats{};
      span.Note("source", drill_src->shape().CanonicalString());
      SOLAP_ASSIGN_OR_RETURN(
          std::shared_ptr<InvertedIndex> refined,
          DrillDownRefine(*drill_src, maps, bp, target,
                          any_fixed ? &coarse_fixed : nullptr, stats));
      AttachStatsDelta(span, before, *stats);
      // The refinement enumerated occurrences through the template, so the
      // result carries the template's constraint signature.
      if (!full_sig.empty()) {
        refined->set_constraint_sig(full_sig);
        refined->set_complete(false);
      }
      SOLAP_RETURN_NOT_OK(cache.Insert(refined));
      return refined;
    }
  }

  // 3. Base cases.
  if (m == 1) {
    IndexShape shape;
    shape.kind = tmpl.kind();
    shape.positions = {target.positions[0]};
    TraceSpan span(trace, "ii.build_index");
    const ScanStats before = span.active() ? *stats : ScanStats{};
    span.Note("shape", shape.CanonicalString());
    SOLAP_ASSIGN_OR_RETURN(
        std::shared_ptr<InvertedIndex> built,
        BuildIndex(&group, set, hierarchies_, shape, stats, &governor_));
    AttachStatsDelta(span, before, *stats);
    if (options_.enable_index_cache) SOLAP_RETURN_NOT_OK(cache.Insert(built));
    return built;
  }

  // 4. Growth from the longest cached prefix or suffix window (Fig. 15
  //    line 8: "where L_i is the largest available inverted index").
  size_t prefix_k = 0, suffix_k = 0;
  std::shared_ptr<InvertedIndex> prefix_idx, suffix_idx;
  if (options_.enable_index_cache) {
    for (size_t k = m - 1; k >= 2 && prefix_k == 0; --k) {
      IndexShape shape;
      shape.kind = tmpl.kind();
      shape.positions.assign(target.positions.begin(),
                             target.positions.begin() + k);
      if (auto hit = cache.FindUsable(
              shape, WindowConstraintSig(tmpl, 0, k, bp.fixed_codes()))) {
        prefix_idx = hit;
        prefix_k = k;
      }
    }
    for (size_t k = m - 1; k >= 2 && suffix_k == 0; --k) {
      IndexShape shape;
      shape.kind = tmpl.kind();
      shape.positions.assign(target.positions.end() - k,
                             target.positions.end());
      if (auto hit = cache.FindUsable(
              shape, WindowConstraintSig(tmpl, m - k, k, bp.fixed_codes()))) {
        suffix_idx = hit;
        suffix_k = k;
      }
    }
  }

  std::shared_ptr<InvertedIndex> current;
  size_t k;
  bool grow_right;
  if (prefix_k == 0 && suffix_k == 0) {
    SOLAP_ASSIGN_OR_RETURN(current, get_l2(0));
    k = 2;
    grow_right = true;
  } else if (prefix_k >= suffix_k) {
    current = prefix_idx;
    k = prefix_k;
    grow_right = true;
    ++stats->index_cache_hits;
  } else {
    current = suffix_idx;
    k = suffix_k;
    grow_right = false;
    ++stats->index_cache_hits;
  }

  while (k < m) {
    // Each growth step scans or joins whole lists — poll between steps so
    // a deadline interrupts multi-step growth of long templates.
    SOLAP_RETURN_NOT_OK(CheckStop(stop, "index growth"));
    // A highly selective base (a sliced iterative follow-up) is cheaper to
    // grow by scanning its own member sequences than by building and
    // joining a complete size-2 index — unless that L2 is already cached.
    const size_t l2_off = grow_right ? k - 1 : m - k - 1;
    bool l2_cached = false;
    if (options_.enable_index_cache) {
      IndexShape l2_shape;
      l2_shape.kind = tmpl.kind();
      l2_shape.positions = {target.positions[l2_off],
                            target.positions[l2_off + 1]};
      l2_cached = cache.Find(l2_shape, "") != nullptr;
    }
    // Scan-extension touches one sequence per *template-consistent*
    // base-list entry (ExtendByScan skips the rest up front), so a sliced
    // query growing from a complete index is still selective; the join
    // path must first scan every sequence to build the missing L2.
    size_t usable_entries = 0;
    {
      const size_t base_off = grow_right ? 0 : m - k;
      current->ForEachLogicalList(
          [&](const PatternKey& key2, const SidList* l2b, const SidList* l2d) {
            if (!WindowConsistent(tmpl, base_off, key2, bp.fixed_codes())) {
              return;
            }
            if (l2b != nullptr) usable_entries += l2b->size();
            if (l2d != nullptr) usable_entries += l2d->size();
          });
    }
    const bool selective = usable_entries < group.num_sequences();
    if (selective && !l2_cached) {
      TraceSpan span(trace, "ii.extend_scan");
      const ScanStats before = span.active() ? *stats : ScanStats{};
      span.Count("step", k);
      span.Count("base_entries", usable_entries);
      SOLAP_ASSIGN_OR_RETURN(
          current, ExtendByScan(*current, tmpl, grow_right ? 0 : m - k - 1,
                                grow_right, bp, stats));
      AttachStatsDelta(span, before, *stats);
    } else if (grow_right) {
      SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<InvertedIndex> l2,
                             get_l2(k - 1));
      TraceSpan span(trace, "ii.join_extend");
      const ScanStats before = span.active() ? *stats : ScanStats{};
      span.Count("step", k);
      span.Note("direction", "right");
      SOLAP_ASSIGN_OR_RETURN(
          current,
          JoinExtendRight(*current, *l2, tmpl, 0, bp, stats, JoinExec()));
      AttachStatsDelta(span, before, *stats);
    } else {
      const size_t off = m - k - 1;
      SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<InvertedIndex> l2, get_l2(off));
      TraceSpan span(trace, "ii.join_extend");
      const ScanStats before = span.active() ? *stats : ScanStats{};
      span.Count("step", k);
      span.Note("direction", "left");
      SOLAP_ASSIGN_OR_RETURN(
          current,
          JoinExtendLeft(*current, *l2, tmpl, off, bp, stats, JoinExec()));
      AttachStatsDelta(span, before, *stats);
    }
    ++k;
    if (options_.enable_index_cache) SOLAP_RETURN_NOT_OK(cache.Insert(current));
  }
  return current;
}

Status SOlapEngine::CountFromIndex(QueryContext& ctx, SequenceGroup& group,
                                   const BoundPattern& bp,
                                   const InvertedIndex& index) {
  const PatternTemplate& tmpl = ctx.tmpl;
  const CellRestriction restriction = ctx.spec->restriction;
  // With no matching predicate and COUNT under a left-maximality
  // restriction, list membership alone decides the count: every sequence in
  // a list contains the pattern exactly "at least once".
  const bool fast = !bp.has_predicate() && ctx.spec->agg == AggKind::kCount &&
                    restriction != CellRestriction::kAllMatchedGo;
  Status status = Status::OK();
  index.ForEachLogicalList([&](const PatternKey& key, const SidList* blist,
                               const SidList* dlist) {
    if (!status.ok()) return;
    status = CheckStop(ctx.stop, "index counting");
    if (!status.ok()) return;
    if (!WindowConsistent(tmpl, 0, key, bp.fixed_codes())) return;
    PatternKey dim_codes = tmpl.DimCodesOf(key);
    if (fast) {
      CellKey cell = group.key();
      cell.insert(cell.end(), dim_codes.begin(), dim_codes.end());
      CellValue v;
      v.count = static_cast<int64_t>((blist != nullptr ? blist->size() : 0) +
                                     (dlist != nullptr ? dlist->size() : 0));
      ctx.cuboid->MergeCell(cell, v);
      return;
    }
    auto count_sid = [&](Sid s) {
      ++ctx.stats->sequences_scanned;
      switch (restriction) {
        case CellRestriction::kLeftMaxMatchedGo:
        case CellRestriction::kLeftMaxDataGo:
          bp.ForEachConcreteOccurrence(s, key, /*apply_predicate=*/true,
                                       [&](const uint32_t* idx) {
                                         AddAssignment(ctx, group, bp,
                                                       dim_codes, s, idx,
                                                       ctx.cuboid);
                                         return false;  // first only
                                       });
          break;
        case CellRestriction::kAllMatchedGo:
          bp.ForEachConcreteOccurrence(s, key, /*apply_predicate=*/true,
                                       [&](const uint32_t* idx) {
                                         AddAssignment(ctx, group, bp,
                                                       dim_codes, s, idx,
                                                       ctx.cuboid);
                                         return true;  // every occurrence
                                       });
          break;
      }
    };
    if (blist != nullptr) blist->ForEach(count_sid);
    if (dlist != nullptr) dlist->ForEach(count_sid);
  });
  return status;
}

}  // namespace solap
