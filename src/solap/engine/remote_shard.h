// RemoteShardClient: the transport ShardedEngine's scatter path uses when
// its shards are processes instead of threads (ISSUE 9, ROADMAP item 1's
// hard half). One client fronts one shard server (tools/shard_main.cc)
// and turns "execute this spec on your slice" into POST /shard/exec over
// net/http_client, decoding the CRC-tagged partial (cube/partial_codec.h)
// that comes back.
//
// Robustness contract, in order of application:
//  - deadline: every attempt (connect/send/recv and backoff sleeps alike)
//    lives under the caller's absolute deadline, read from the StopToken
//    that QueryService derived from SubmitOptions.timeout;
//  - retries: transport-class failures (kUnavailable, kInternal, and
//    corrupt-bytes kParseError) retry under a full-jitter RetryBudget
//    (common/retry.h); application-class failures (InvalidArgument,
//    NotFound, ResourceExhausted, ...) return immediately — the shard
//    understood the request and said no, asking again changes nothing;
//  - hedging: optionally, an attempt still in flight after the client's
//    observed p95 latency fires one duplicate request and the first
//    success wins — the classic tail-latency amputation, off by default
//    because it doubles load on the slowest queries.
//
// Failpoints shard.rpc.send / shard.rpc.recv / shard.rpc.decode arm the
// three client-side failure stages; spans shard.rpc (per attempt) and
// shard.decode record where distributed wall time goes.
#ifndef SOLAP_ENGINE_REMOTE_SHARD_H_
#define SOLAP_ENGINE_REMOTE_SHARD_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "solap/common/metrics.h"
#include "solap/common/retry.h"
#include "solap/common/stats.h"
#include "solap/common/stop.h"
#include "solap/common/trace.h"
#include "solap/cube/partial_codec.h"
#include "solap/engine/engine.h"

namespace solap {

/// Where one shard server listens.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// What a coordinator does with a query when a shard stays down past its
/// retry budget (DESIGN.md §10 policy table).
enum class DegradePolicy {
  /// Fail the query with kUnavailable — never answer from partial data.
  kStrict,
  /// Answer anyway: re-execute the missing slice on the local shard
  /// executor when the coordinator holds the data, else return a partial
  /// answer with the missing shards flagged (X-Solap-Partial).
  kDegraded,
};

/// \brief Per-client robustness knobs.
struct RemoteShardOptions {
  /// Transport-failure retry schedule. Full jitter by default: a fleet of
  /// coordinators re-scattering against one recovering shard must spread
  /// out, not re-collide.
  RetryPolicy retry{.max_attempts = 3,
                    .initial_backoff = std::chrono::milliseconds(5),
                    .max_backoff = std::chrono::milliseconds(200),
                    .full_jitter = true};
  /// Fire a duplicate request when an attempt is still in flight after the
  /// observed p95 of this client's past RPCs.
  bool hedge = false;
  /// Lower bound for the hedge trigger (and its value until enough
  /// latency samples exist) — hedging below a few ms just doubles load.
  std::chrono::milliseconds hedge_floor{20};
  /// Deadline applied when the caller's StopToken carries none
  /// (0 = unbounded).
  std::chrono::milliseconds default_timeout{0};
};

/// \brief Blocking RPC client for one shard server.
///
/// Thread-safe: concurrent Execute calls share only the latency window
/// (mutex) and metric counters.
class RemoteShardClient {
 public:
  RemoteShardClient(size_t shard_index, ShardEndpoint endpoint,
                    RemoteShardOptions options,
                    MetricsRegistry* metrics = nullptr);

  const ShardEndpoint& endpoint() const { return endpoint_; }
  size_t shard_index() const { return shard_index_; }

  /// Executes `spec` on the remote shard's slice. On success the decoded
  /// partial's stats have been added into `*stats` (when non-null), along
  /// with any retry/hedge counts this call spent.
  Result<ShardPartial> Execute(const CuboidSpec& spec, ExecStrategy strategy,
                               const StopToken* stop, TraceContext* trace,
                               ScanStats* stats);

  /// One dictionary tail the replica must adopt before re-encoding the
  /// replicated rows: codes [from, from+values.size()) of column `col`.
  struct DictUpdate {
    int col = 0;
    size_t from = 0;
    std::vector<std::string> values;
  };

  /// Replicates an appended row batch (this shard's routed slice of it)
  /// via POST /shard/append. Dictionary tails land first so the replica's
  /// codes stay identical to the coordinator slice's — the precondition
  /// for bit-identical /shard/exec partials. SINGLE attempt, no retry or
  /// hedge: an append is not idempotent, and a retry whose predecessor
  /// actually landed would silently double rows; on failure the caller
  /// marks the shard degraded and the supervisor restores it.
  Status Append(const std::vector<std::vector<Value>>& rows,
                const std::vector<DictUpdate>& dicts, const StopToken* stop,
                TraceContext* trace);

  /// GET /healthz with a private `timeout`. OK iff the server answered 200.
  Status Health(std::chrono::milliseconds timeout);

  /// True for failures worth retrying/hedging: the transport (or the
  /// shard's own transient machinery) failed, rather than the request
  /// being wrong. Exposed for the scatter path's degradation decision.
  static bool IsTransportError(const Status& s);

  /// Current hedge trigger: observed p95 of successful RPCs, floored at
  /// options.hedge_floor (tests).
  std::chrono::milliseconds HedgeDelay() const;

 private:
  Result<ShardPartial> AttemptOnce(const std::string& body,
                                   std::chrono::steady_clock::time_point
                                       deadline,
                                   const StopToken* stop,
                                   TraceContext* trace);
  Result<ShardPartial> AttemptWithHedge(
      const std::string& body,
      std::chrono::steady_clock::time_point deadline, const StopToken* stop,
      TraceContext* trace, ScanStats* stats);
  void RecordLatency(std::chrono::milliseconds sample);

  size_t shard_index_;
  ShardEndpoint endpoint_;
  RemoteShardOptions options_;
  Counter* retries_counter_ = nullptr;
  Counter* hedges_counter_ = nullptr;

  /// Sliding window of successful-RPC latencies feeding the p95 estimate.
  mutable std::mutex latency_mu_;
  std::vector<std::chrono::milliseconds> latency_window_;
  size_t latency_next_ = 0;
};

}  // namespace solap

#endif  // SOLAP_ENGINE_REMOTE_SHARD_H_
