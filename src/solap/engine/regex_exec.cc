// Execution of regex pattern templates (the §3.2 extension): a
// counter-based scan driven by the Thompson-NFA matcher of
// pattern/regex.h. Inverted-index support for regexes would require
// per-subexpression indexing and is future work, mirroring the paper's
// remark that its two strategies are "first-attempt" solutions.
#include <algorithm>
#include <unordered_set>

#include "solap/engine/engine.h"

namespace solap {

Status SOlapEngine::RunRegex(QueryContext& ctx) {
  const RegexTemplate& tmpl = ctx.rtmpl;
  const size_t n_dims = tmpl.num_dims();
  const CellRestriction restriction = ctx.spec->restriction;

  for (size_t gi : ctx.selected_groups) {
    SequenceGroup& group = ctx.groups->groups()[gi];
    SOLAP_ASSIGN_OR_RETURN(
        DimensionBinding domain,
        ctx.groups->BindDimension(hierarchies_, tmpl.domain()));
    const std::vector<Code>& view = group.ViewFor(domain);

    // Resolve literal labels and slice restrictions in this group's domain.
    std::vector<Code> literal_codes;
    for (const std::string& label : tmpl.literal_labels()) {
      SOLAP_ASSIGN_OR_RETURN(Code c, domain.CodeOfLabel(label));
      literal_codes.push_back(c);
    }
    std::vector<std::vector<Code>> allowed(n_dims);
    for (size_t d = 0; d < n_dims; ++d) {
      const PatternDim& dim = tmpl.dims()[d];
      if (dim.fixed_labels.empty()) continue;
      SOLAP_ASSIGN_OR_RETURN(
          allowed[d], domain.AllowedCodes(dim.fixed_level, dim.fixed_labels));
      if (allowed[d].empty()) allowed[d].push_back(kNullCode);
    }
    auto binding_allowed = [&](const Code* bindings) {
      for (size_t d = 0; d < n_dims; ++d) {
        if (allowed[d].empty()) continue;
        if (std::find(allowed[d].begin(), allowed[d].end(), bindings[d]) ==
            allowed[d].end()) {
          return false;
        }
      }
      return true;
    };

    BoundRegex bound(&tmpl, std::move(literal_codes));
    std::unordered_set<PatternKey, CodeVecHash> seen;
    PatternKey dim_codes(n_dims);
    const Sid n = static_cast<Sid>(group.num_sequences());
    for (Sid s = 0; s < n; ++s) {
      if ((s & 0xFF) == 0) {
        SOLAP_RETURN_NOT_OK(CheckStop(ctx.stop, "regex scan"));
      }
      ++ctx.stats->sequences_scanned;
      seen.clear();
      bound.ForEachMatch(group.Symbols(view, s), [&](uint32_t start,
                                                     uint32_t end,
                                                     const Code* bindings) {
        if (!binding_allowed(bindings)) return true;
        dim_codes.assign(bindings, bindings + n_dims);
        if (restriction != CellRestriction::kAllMatchedGo &&
            !seen.insert(dim_codes).second) {
          return true;  // left-maximality: first match per instantiation
        }
        CellKey cell = group.key();
        cell.insert(cell.end(), dim_codes.begin(), dim_codes.end());
        if (ctx.measure_col < 0) {
          ctx.cuboid->AddCountOnly(cell);
          return true;
        }
        double v = 0.0;
        {
          std::span<const RowId> rows = group.Rows(s);
          const bool whole =
              restriction == CellRestriction::kLeftMaxDataGo;
          uint32_t lo = whole ? 0 : start;
          uint32_t hi = whole ? static_cast<uint32_t>(rows.size()) : end;
          const Field& f = table_->schema().field(ctx.measure_col);
          for (uint32_t i = lo; i < hi; ++i) {
            v += f.type == ValueType::kDouble
                     ? table_->DoubleAt(rows[i], ctx.measure_col)
                     : static_cast<double>(
                           table_->Int64At(rows[i], ctx.measure_col));
          }
        }
        ctx.cuboid->Add(cell, v);
        return true;
      });
    }
  }
  return Status::OK();
}

}  // namespace solap
