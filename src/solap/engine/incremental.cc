// Incremental update (paper §6): extend a sequence group — and every cached
// complete inverted index over it — with newly arrived sequences, scanning
// only the delta instead of rebuilding from the full data.
#include "solap/engine/engine.h"
#include "solap/index/build_index.h"

namespace solap {

Status SOlapEngine::AppendRawSequences(
    size_t group_idx, const std::vector<std::vector<Code>>& sequences) {
  if (raw_groups_ == nullptr) {
    return Status::InvalidArgument(
        "AppendRawSequences applies to raw-group engines; table-backed "
        "engines append rows to the EventTable and call NotifyTableAppend()");
  }
  if (group_idx >= raw_groups_->groups().size()) {
    return Status::OutOfRange("no sequence group " +
                              std::to_string(group_idx));
  }
  EpochGate::WriteLock wl(gate_);
  if (sequences.empty()) {
    wl.Abandon();
    return Status::OK();
  }
  SequenceGroup& group = raw_groups_->groups()[group_idx];
  const Sid old_count = static_cast<Sid>(group.num_sequences());
  for (const std::vector<Code>& seq : sequences) {
    group.AddSequence(seq);
  }
  // Symbol views cover the old extent only; recompute lazily on next use.
  group.InvalidateViews();

  // Extend cached complete indices with the delta; join-derived filtered
  // indices cannot be extended safely and are dropped. The new sids land in
  // each index's delta segment (two-segment read path) so the background
  // merger amortizes container re-packing across appends.
  GroupIndexCache& cache = CacheFor(*raw_groups_, group_idx);
  std::vector<std::shared_ptr<InvertedIndex>> keep;
  for (const auto& entry : cache.entries()) {
    if (entry->complete()) keep.push_back(entry);
  }
  cache.Clear();
  ScanStats local;
  for (auto& entry : keep) {
    Status extended = AppendToIndexDelta(entry.get(), &group, *raw_groups_,
                                         hierarchies_, old_count, &local,
                                         &governor_);
    if (!extended.ok()) {
      MergeStats(local);
      return extended;
    }
    // A budget reject here only costs the cached index — the group data
    // itself was already extended above, so the update stands.
    Status cached = cache.Insert(std::move(entry));
    if (!cached.ok()) break;
  }
  MergeStats(local);
  // Every materialized cuboid over this data is stale.
  repository_.Clear();
  EnsureMerger();
  MaybeKickMerger();
  return Status::OK();
}

}  // namespace solap
