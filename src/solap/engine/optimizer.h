// Cost-based strategy selection — the beginnings of the "S-OLAP query
// optimizer" the paper names as its most important future work (§4.2.2):
// "In fact, this is a sophisticated S-OLAP query optimization problem where
//  many factors such as storage space, memory availability, and execution
//  speed are parts of the formula."
//
// The optimizer chooses between the counter-based and the inverted-index
// strategy per query by estimating the number of sequences each would
// touch, given which indices are already cached.
#ifndef SOLAP_ENGINE_OPTIMIZER_H_
#define SOLAP_ENGINE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solap/engine/engine.h"

namespace solap {

/// Per-group detail of the verdict: what the II strategy would do for one
/// selected sequence group and what each side is estimated to cost.
/// EXPLAIN renders one line per entry.
struct GroupPlan {
  size_t group_index = 0;
  uint64_t num_sequences = 0;
  /// Estimated sequences touched by each strategy in this group.
  double cb_cost = 0;
  double ii_cost = 0;
  /// How II would obtain the group's index ("exact cached index",
  /// "cold BuildIndex scan", ...).
  std::string ii_source;
  /// Canonical shape of the cached index II would reuse; empty when cold.
  std::string reused_index;
};

/// The optimizer's verdict for one query, with its reasoning — exposed so
/// that tests, EXPLAIN and the ablation benchmark can audit decisions.
struct StrategyChoice {
  ExecStrategy strategy = ExecStrategy::kCounterBased;
  /// Estimated sequences touched by each strategy.
  double cb_cost = 0;
  double ii_cost = 0;
  /// Human-readable explanation ("exact index cached", "selective slice
  /// reuses prefix", "cold unselective query favors one scan", ...).
  std::string reason;
  /// One entry per selected group, in selection order (EXPLAIN detail).
  std::vector<GroupPlan> groups;
};

/// \brief Chooses CB vs II for `spec` against the engine's current cache
/// state.
///
/// Cost model (unit = one sequence scan):
///  - CB always scans every sequence of every selected group once.
///  - II pays, per group: nothing for an exact cached index; a merge
///    (~0, list arithmetic) when a complete finer index exists; a refine
///    bounded by the (slice-filtered) coarse lists when a coarser one
///    exists; the cached-prefix extension cost estimated from the prefix
///    index's selectivity; or a full BuildIndex scan when cold.
///  - Counting rescans list entries only when a matching predicate, an
///    ALL-MATCHED restriction or a non-COUNT aggregate forces it.
class StrategyOptimizer {
 public:
  explicit StrategyOptimizer(SOlapEngine* engine) : engine_(engine) {}

  /// Evaluates `spec`; never executes it. Errors (unresolvable spec)
  /// surface here exactly as Execute would report them.
  Result<StrategyChoice> Choose(const CuboidSpec& spec);

 private:
  SOlapEngine* engine_;
};

}  // namespace solap

#endif  // SOLAP_ENGINE_OPTIMIZER_H_
