// Online aggregation (paper §6): report "what the engine knows so far"
// while an S-cuboid is still being computed. The counter-based scan is
// chunked; after each chunk the partial cuboid and the fraction of
// sequences processed are handed to a progress callback, which may stop
// the computation early and keep the approximate answer.
#include "solap/engine/engine.h"

namespace solap {

Result<std::shared_ptr<const SCuboid>> SOlapEngine::ExecuteOnline(
    const CuboidSpec& spec, size_t report_every, const ProgressFn& progress) {
  if (report_every == 0) {
    return Status::InvalidArgument("report_every must be positive");
  }
  if (spec.is_regex()) {
    return Status::NotImplemented(
        "online aggregation over regex templates is not supported yet");
  }
  EpochGate::ReadLock rl(gate_);
  auto cuboid = std::make_shared<SCuboid>(MakeDimDescriptors(spec), spec.agg);
  SOLAP_ASSIGN_OR_RETURN(QueryContext ctx, Prepare(spec, cuboid.get()));
  ScanStats local;
  ctx.stats = &local;

  size_t total = 0;
  for (size_t gi : ctx.selected_groups) {
    total += ctx.groups->groups()[gi].num_sequences();
  }
  if (total == 0) total = 1;  // avoid 0/0 in the fraction

  size_t processed = 0;
  bool stopped = false;
  for (size_t gi : ctx.selected_groups) {
    SequenceGroup& group = ctx.groups->groups()[gi];
    SOLAP_ASSIGN_OR_RETURN(
        BoundPattern bp,
        BoundPattern::Bind(&ctx.tmpl, &group, *ctx.groups, hierarchies_,
                           ctx.spec->predicate, ctx.spec->placeholders));
    const Sid n = static_cast<Sid>(group.num_sequences());
    for (Sid begin = 0; begin < n && !stopped;
         begin += static_cast<Sid>(report_every)) {
      Sid end = static_cast<Sid>(
          std::min<size_t>(begin + report_every, n));
      Status scan = CounterScanRange(ctx, group, bp, begin, end, ctx.cuboid,
                                     ctx.stats);
      if (!scan.ok()) {
        MergeStats(local);
        return scan;
      }
      processed += end - begin;
      if (!progress(*cuboid, static_cast<double>(processed) /
                                 static_cast<double>(total))) {
        stopped = true;
      }
    }
    if (stopped) break;
  }

  MergeStats(local);
  if (!stopped && spec.iceberg_min_count.has_value()) {
    cuboid->ApplyIceberg(*spec.iceberg_min_count);
  }
  // Early-stopped (approximate) cuboids are returned but never cached.
  if (!stopped) {
    repository_.Insert(spec.CanonicalString(), cuboid, spec, gate_.epoch());
  }
  return std::shared_ptr<const SCuboid>(cuboid);
}

}  // namespace solap
