// The one shard-placement function, shared by every process that must
// agree on which shard owns a sequence: the in-process ShardedEngine
// (engine/sharded_engine.cc) and the shard-server binary
// (tools/shard_main.cc), which loads the full table snapshot and carves
// out its own slice. If these ever diverged, a distributed scatter would
// silently double-count or drop sequences — so the function lives here
// and nowhere else.
#ifndef SOLAP_ENGINE_SHARD_PARTITION_H_
#define SOLAP_ENGINE_SHARD_PARTITION_H_

#include <cstdint>

#include "solap/common/types.h"
#include "solap/storage/event_table.h"

namespace solap {

/// splitmix64 finalizer: spreads dense dictionary codes uniformly over the
/// shards so one hot code range cannot pile onto one executor.
inline uint64_t MixShardCode(Code c) {
  uint64_t x = static_cast<uint64_t>(c) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Shard (of `num_shards`) owning base-level code `c`.
inline size_t ShardOfCode(Code c, size_t num_shards) {
  return static_cast<size_t>(MixShardCode(c) % num_shards);
}

/// Resolves the shard-by column of `table`: `shard_by` when named (must be
/// a string column), else the first string column. -1 when unusable — the
/// caller degrades to a single monolithic shard.
inline int ResolveShardColumn(const EventTable& table,
                              const std::string& shard_by) {
  std::string attr = shard_by;
  if (attr.empty()) {
    for (size_t c = 0; c < table.schema().num_fields(); ++c) {
      if (table.schema().field(c).type == ValueType::kString) {
        attr = table.schema().field(c).name;
        break;
      }
    }
  }
  if (attr.empty()) return -1;
  const int col = table.schema().FieldIndex(attr);
  if (col < 0 || table.schema().field(col).type != ValueType::kString) {
    return -1;
  }
  return col;
}

}  // namespace solap

#endif  // SOLAP_ENGINE_SHARD_PARTITION_H_
