#include "solap/engine/operations.h"

#include <algorithm>

namespace solap {
namespace ops {

namespace {

bool UsesPlaceholder(const ExprPtr& e, const std::string& name) {
  if (e == nullptr) return false;
  if (e->op() == ExprOp::kPlaceholder && e->placeholder() == name) {
    return true;
  }
  for (const ExprPtr& c : e->children()) {
    if (UsesPlaceholder(c, name)) return true;
  }
  return false;
}

std::string FreshPlaceholder(const std::vector<std::string>& existing) {
  for (size_t i = existing.size() + 1;; ++i) {
    std::string cand = "p" + std::to_string(i);
    if (std::find(existing.begin(), existing.end(), cand) == existing.end()) {
      return cand;
    }
  }
}

// Ensures `symbol` has a dimension declaration, adding one from `ref`.
Status EnsureDim(CuboidSpec* spec, const std::string& symbol,
                 const LevelRef& ref) {
  if (spec->DimIndex(symbol) >= 0) return Status::OK();
  if (ref.attr.empty()) {
    return Status::InvalidArgument(
        "new pattern symbol '" + symbol +
        "' needs a domain: pass its attribute and abstraction level");
  }
  spec->dims.push_back(PatternDim{symbol, ref, {}, ""});
  return Status::OK();
}

Result<CuboidSpec> AddSymbol(const CuboidSpec& spec, const std::string& symbol,
                             const LevelRef& ref,
                             const std::string& placeholder, bool front) {
  CuboidSpec out = spec;
  SOLAP_RETURN_NOT_OK(EnsureDim(&out, symbol, ref));
  if (front) {
    out.symbols.insert(out.symbols.begin(), symbol);
  } else {
    out.symbols.push_back(symbol);
  }
  if (!out.placeholders.empty() || !placeholder.empty()) {
    std::string ph =
        placeholder.empty() ? FreshPlaceholder(out.placeholders) : placeholder;
    if (front) {
      out.placeholders.insert(out.placeholders.begin(), ph);
    } else {
      out.placeholders.push_back(ph);
    }
  }
  return out;
}

Result<CuboidSpec> RemoveSymbol(const CuboidSpec& spec, bool front) {
  if (spec.symbols.size() <= 1) {
    return Status::InvalidArgument(
        "cannot remove the last symbol of a pattern template");
  }
  CuboidSpec out = spec;
  std::string sym;
  if (front) {
    sym = out.symbols.front();
    out.symbols.erase(out.symbols.begin());
  } else {
    sym = out.symbols.back();
    out.symbols.pop_back();
  }
  if (!out.placeholders.empty()) {
    std::string ph = front ? out.placeholders.front() : out.placeholders.back();
    if (UsesPlaceholder(out.predicate, ph)) {
      return Status::InvalidArgument(
          "the matching predicate references placeholder '" + ph +
          "' of the removed position; supply an updated predicate first");
    }
    if (front) {
      out.placeholders.erase(out.placeholders.begin());
    } else {
      out.placeholders.pop_back();
    }
  }
  // Drop the dimension declaration if the symbol no longer occurs.
  if (std::find(out.symbols.begin(), out.symbols.end(), sym) ==
      out.symbols.end()) {
    out.dims.erase(out.dims.begin() + out.DimIndex(sym));
  }
  return out;
}

// Calendar abstraction chain used when a timestamp attribute is moved
// up/down without a registered hierarchy.
const char* const kCalendarChain[] = {"time", "day", "week", "month"};

Result<std::string> AdjacentLevel(const HierarchyRegistry& hierarchies,
                                  const LevelRef& ref, int delta) {
  if (ConceptHierarchy* h = hierarchies.Find(ref.attr)) {
    int idx = h->LevelIndex(ref.level);
    if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
    if (idx < 0) {
      return Status::InvalidArgument("attribute '" + ref.attr +
                                     "' has no level '" + ref.level + "'");
    }
    int next = idx + delta;
    if (next < 0 || next >= static_cast<int>(h->num_levels())) {
      return Status::OutOfRange("no abstraction level " +
                                std::string(delta > 0 ? "above" : "below") +
                                " '" + ref.level + "' for attribute '" +
                                ref.attr + "'");
    }
    return h->level_name(next);
  }
  // Calendar fallback.
  int idx = -1;
  for (int i = 0; i < 4; ++i) {
    if (ref.level == kCalendarChain[i] ||
        (i == 0 && ref.level == ref.attr)) {
      idx = i;
      break;
    }
  }
  if (idx < 0) {
    return Status::InvalidArgument("attribute '" + ref.attr +
                                   "' has no concept hierarchy");
  }
  int next = idx + delta;
  if (next < 0 || next > 3) {
    return Status::OutOfRange("no calendar level " +
                              std::string(delta > 0 ? "above" : "below") +
                              " '" + ref.level + "'");
  }
  return std::string(kCalendarChain[next]);
}

Result<CuboidSpec> SetPatternLevel(const CuboidSpec& spec,
                                   const std::string& symbol,
                                   const std::string& level) {
  int d = spec.DimIndex(symbol);
  if (d < 0) {
    return Status::InvalidArgument("unknown pattern symbol '" + symbol + "'");
  }
  CuboidSpec out = spec;
  PatternDim& dim = out.dims[d];
  // A slice taken at the old level keeps restricting the new domain.
  if (!dim.fixed_labels.empty() && dim.fixed_level.empty()) {
    dim.fixed_level = dim.ref.level;
  }
  dim.ref.level = level;
  if (dim.fixed_level == level) dim.fixed_level.clear();
  return out;
}

}  // namespace

Result<CuboidSpec> Append(const CuboidSpec& spec, const std::string& symbol,
                          const LevelRef& ref,
                          const std::string& placeholder) {
  return AddSymbol(spec, symbol, ref, placeholder, /*front=*/false);
}

Result<CuboidSpec> Prepend(const CuboidSpec& spec, const std::string& symbol,
                           const LevelRef& ref,
                           const std::string& placeholder) {
  return AddSymbol(spec, symbol, ref, placeholder, /*front=*/true);
}

Result<CuboidSpec> DeTail(const CuboidSpec& spec) {
  return RemoveSymbol(spec, /*front=*/false);
}

Result<CuboidSpec> DeHead(const CuboidSpec& spec) {
  return RemoveSymbol(spec, /*front=*/true);
}

Result<CuboidSpec> PRollUp(const CuboidSpec& spec, const std::string& symbol,
                           const HierarchyRegistry& hierarchies) {
  int d = spec.DimIndex(symbol);
  if (d < 0) {
    return Status::InvalidArgument("unknown pattern symbol '" + symbol + "'");
  }
  SOLAP_ASSIGN_OR_RETURN(std::string level,
                         AdjacentLevel(hierarchies, spec.dims[d].ref, +1));
  return SetPatternLevel(spec, symbol, level);
}

Result<CuboidSpec> PRollUpTo(const CuboidSpec& spec, const std::string& symbol,
                             const std::string& level) {
  return SetPatternLevel(spec, symbol, level);
}

Result<CuboidSpec> PDrillDown(const CuboidSpec& spec,
                              const std::string& symbol,
                              const HierarchyRegistry& hierarchies) {
  int d = spec.DimIndex(symbol);
  if (d < 0) {
    return Status::InvalidArgument("unknown pattern symbol '" + symbol + "'");
  }
  SOLAP_ASSIGN_OR_RETURN(std::string level,
                         AdjacentLevel(hierarchies, spec.dims[d].ref, -1));
  return SetPatternLevel(spec, symbol, level);
}

Result<CuboidSpec> PDrillDownTo(const CuboidSpec& spec,
                                const std::string& symbol,
                                const std::string& level) {
  return SetPatternLevel(spec, symbol, level);
}

namespace {

Result<CuboidSpec> SetGlobalLevel(const CuboidSpec& spec,
                                  const std::string& attr,
                                  const std::string& level) {
  CuboidSpec out = spec;
  for (LevelRef& r : out.seq.group_by) {
    if (r.attr == attr) {
      r.level = level;
      return out;
    }
  }
  return Status::InvalidArgument("attribute '" + attr +
                                 "' is not a SEQUENCE GROUP BY dimension");
}

}  // namespace

Result<CuboidSpec> RollUpGlobal(const CuboidSpec& spec,
                                const std::string& attr,
                                const std::string& level) {
  return SetGlobalLevel(spec, attr, level);
}

Result<CuboidSpec> DrillDownGlobal(const CuboidSpec& spec,
                                   const std::string& attr,
                                   const std::string& level) {
  return SetGlobalLevel(spec, attr, level);
}

Result<CuboidSpec> SliceGlobal(const CuboidSpec& spec, const LevelRef& ref,
                               std::vector<std::string> labels) {
  CuboidSpec out = spec;
  out.global_slices.push_back(GlobalSlice{ref, std::move(labels)});
  return out;
}

Result<CuboidSpec> SlicePattern(const CuboidSpec& spec,
                                const std::string& symbol,
                                std::vector<std::string> labels,
                                const std::string& level) {
  int d = spec.DimIndex(symbol);
  if (d < 0) {
    return Status::InvalidArgument("unknown pattern symbol '" + symbol + "'");
  }
  CuboidSpec out = spec;
  out.dims[d].fixed_labels = std::move(labels);
  out.dims[d].fixed_level =
      (level == out.dims[d].ref.level) ? "" : level;
  return out;
}

Result<CuboidSpec> SliceToCell(const CuboidSpec& spec, const SCuboid& cuboid,
                               const CellKey& cell) {
  const size_t q = spec.seq.group_by.size();
  if (cell.size() != q + spec.dims.size()) {
    return Status::InvalidArgument(
        "cell arity does not match the specification's dimensions");
  }
  CuboidSpec out = spec;
  for (size_t d = 0; d < out.dims.size(); ++d) {
    out.dims[d].fixed_labels = {cuboid.LabelOf(q + d, cell[q + d])};
    out.dims[d].fixed_level.clear();
  }
  return out;
}

}  // namespace ops
}  // namespace solap
