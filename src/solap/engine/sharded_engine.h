// Sharded scatter-gather execution (ROADMAP item 1, the step from one box
// toward many): N shard-local SOlapEngines, each owning a hash-partitioned
// slice of the sequences plus its own caches and memory sub-budget, behind
// a facade that scatters queries to the shards and gathers their partial
// cuboids with a distributive merge (cube/partial_merge.h).
//
// Partitioning happens once at construction: table-backed data splits by a
// mix of the shard-by column's base code (EventTable::PartitionRows, which
// clones dictionaries so codes stay comparable across slices); raw group
// sets split each group into contiguous sid blocks. Either way a logical
// sequence lives entirely in exactly one shard, so shard-local CB scans and
// II joins see complete sequences and their per-cell counter state merges
// additively — Gray's partial-aggregation shape.
//
// shards == 1 is the bit-identical legacy path: one SOlapEngine, every call
// a plain delegation. Queries a sharded engine cannot scatter (CLUSTER BY
// without the shard-by attribute at base level, online aggregation) route
// to a lazily-built monolithic fallback engine over the full data.
#ifndef SOLAP_ENGINE_SHARDED_ENGINE_H_
#define SOLAP_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "solap/engine/engine.h"
#include "solap/engine/remote_shard.h"

namespace solap {

/// \brief Scatter-gather facade over N shard-local executors.
///
/// Mirrors the SOlapEngine query surface (Execute / ExecuteOnline / offline
/// builders / incremental update / introspection) so QueryService, the
/// shell and the benches can hold either transparently. Thread-safe to the
/// same degree as SOlapEngine: concurrent Execute calls are safe, mutating
/// administration calls must be quiesced by the caller.
class ShardedEngine {
 public:
  /// Table-backed: partitions `table`'s rows into options.shards slices by
  /// the base code of options.shard_by (default: first string column).
  ShardedEngine(const EventTable* table, const HierarchyRegistry* hierarchies,
                EngineOptions options = {});
  /// Mutable-table overload: identical, but additionally enables the
  /// streaming-ingestion write path (`IngestRows`, `EvictBefore`) — appends
  /// route to the owning shard via the shard-by column's placement hash.
  ShardedEngine(EventTable* table, const HierarchyRegistry* hierarchies,
                EngineOptions options = {});
  /// Raw-group-backed: splits every group of `raw_groups` into
  /// options.shards contiguous sid blocks.
  ShardedEngine(std::shared_ptr<SequenceGroupSet> raw_groups,
                const HierarchyRegistry* hierarchies,
                EngineOptions options = {});
  /// Wraps an engine owned elsewhere (QueryService's legacy constructor
  /// path): every call delegates to `borrowed`; num_shards() == 1.
  explicit ShardedEngine(SOlapEngine* borrowed);

  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // -- Query execution (SOlapEngine-compatible surface) ---------------------

  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec);
  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec,
                                                 ExecStrategy strategy);
  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec,
                                                 ExecStrategy strategy,
                                                 const ExecControl& control);

  /// Online aggregation reports monotone partial fractions, which a
  /// scatter cannot interleave deterministically — always runs on the
  /// monolithic engine (counted as a shard_fallback when sharded).
  Result<std::shared_ptr<const SCuboid>> ExecuteOnline(
      const CuboidSpec& spec, size_t report_every,
      const SOlapEngine::ProgressFn& progress);

  // -- Offline index precomputation -----------------------------------------

  /// Fan out to every shard (each builds/caches over its slice).
  Status PrecomputeIndex(const CuboidSpec& spec, size_t m,
                         const LevelRef& position_ref);
  Status WarmSequenceCache(const SequenceSpec& spec);
  Status MaterializeIndex(const SequenceSpec& formation,
                          const IndexShape& shape);

  /// Raw-mode gather introspection: builds the complete size-m index of
  /// `shape` over group `group_idx` in every shard, rebases each shard's
  /// group-local sids by its block base and unions per-key lists through
  /// the P-ROLL-UP container machinery (GatherShardLists) — yielding an
  /// index identical to one built over the unpartitioned group. Container
  /// ops count into the engine totals. InvalidArgument for table-backed
  /// engines (hash partitioning does not preserve sid blocks).
  Result<std::shared_ptr<InvertedIndex>> GatherCompleteIndex(
      size_t group_idx, const IndexShape& shape);

  // -- Incremental update ----------------------------------------------------

  /// Raw mode: appends to the *last* shard's block of group `group_idx`
  /// (blocks stay contiguous; results never depend on sid placement).
  Status AppendRawSequences(size_t group_idx,
                            const std::vector<std::vector<Code>>& sequences);
  /// Table mode: repartitions the (append-only) source table and rebuilds
  /// the shard slices, then invalidates all caches.
  void NotifyTableAppend();

  // -- Streaming ingestion (docs/INGESTION.md) -------------------------------

  /// Appends a batch of event rows, routing each to the shard that owns its
  /// sequence (ShardOfCode over the shard-by column's base code) after
  /// synchronizing the shard dictionaries with the facade table's. Each
  /// owning shard then maintains its caches incrementally (delta segments,
  /// cuboid patches) exactly as a monolithic engine would; the facade's
  /// merged-cuboid repository is invalidated. With remote scatter enabled,
  /// the batch is also replicated to the shard servers (POST /shard/append)
  /// so remote slices stay in sync. Requires the mutable-table constructor.
  Status IngestRows(const std::vector<std::vector<Value>>& rows,
                    TraceContext* trace = nullptr);

  /// Time-window retention, fanned out to every shard (facade caches are
  /// invalidated too). See SOlapEngine::EvictBefore.
  Status EvictBefore(const std::string& order_attr, int64_t cutoff);

  /// The facade epoch: one gate serializes facade-level writers against
  /// scattered query executions; delegate/1-shard modes report the inner
  /// engine's epoch so callers see one coherent counter either way.
  uint64_t epoch() const;

  /// Foreground delta merge across every shard (and the inner engine in
  /// delegate/1-shard modes).
  Status MergeDeltasNow(TraceContext* trace = nullptr);

  /// Delta-segment footprint summed over all shards.
  SOlapEngine::DeltaStats DeltaSnapshot() const;

  // -- Introspection ---------------------------------------------------------

  /// Engine totals. In delegate mode (shards == 1) these are the single
  /// engine's counters; sharded mode keeps facade-level totals where each
  /// scattered query contributes its *merged* per-shard counters once.
  ScanStats& stats();
  ScanStats StatsSnapshot() const;
  /// Bytes of inverted indices cached across all shards (+ fallback).
  size_t IndexCacheBytes() const;
  /// Memory accounting summed over the shard governors (+ fallback).
  size_t MemUsed() const;
  size_t MemBudget() const;
  size_t MemRejects() const;

  const HierarchyRegistry* hierarchies() const { return hierarchies_; }
  const EngineOptions& options() const { return options_; }

  size_t num_shards() const { return shards_.size(); }
  /// Shard-local executor `i` (tests, benches).
  SOlapEngine* shard(size_t i) { return shards_[i].get(); }

  /// The monolithic engine over the full data: with shards == 1 the only
  /// executor; otherwise the lazily-built fallback that answers
  /// non-shardable queries and serves optimizer introspection (EXPLAIN).
  SOlapEngine* Monolith();

  /// True when `spec` can scatter: raw-mode always; table mode iff the
  /// CLUSTER BY includes the shard-by attribute at its base level (a
  /// coarser level could split one logical sequence across shards).
  bool Shardable(const CuboidSpec& spec) const;

  // -- Distributed scatter (ISSUE 9) ----------------------------------------

  /// Switches the scatter path from in-process shard executors to remote
  /// shard servers: shard i's slice is executed by `endpoints[i]` via
  /// RemoteShardClient. endpoints.size() must equal num_shards() (> 1).
  /// The local shard executors stay alive — they are the degraded-mode
  /// fallback that re-executes a dead shard's slice bit-identically.
  Status EnableRemoteScatter(const std::vector<ShardEndpoint>& endpoints,
                             RemoteShardOptions rpc = {},
                             DegradePolicy policy = DegradePolicy::kStrict,
                             bool local_fallback = true,
                             MetricsRegistry* metrics = nullptr);
  /// Back to the in-process scatter. Not thread-safe against running
  /// queries (quiesce first, as with other admin calls).
  void DisableRemoteScatter();
  bool remote_scatter() const { return !remote_clients_.empty(); }
  /// Remote client of shard `i` (supervisor, tests); null when not remote.
  RemoteShardClient* remote_client(size_t i) {
    return i < remote_clients_.size() ? remote_clients_[i].get() : nullptr;
  }
  /// Supervisor seam: an unhealthy shard is skipped (no RPC, no retry
  /// budget burned) and goes straight to the degradation policy.
  void SetShardHealthy(size_t i, bool healthy);
  bool ShardHealthy(size_t i) const;

 private:
  void BuildShards();

  /// The scatter-gather path (num_shards() > 1 and Shardable(spec)).
  Result<std::shared_ptr<const SCuboid>> ExecuteScatter(
      const CuboidSpec& spec, ExecStrategy strategy,
      const ExecControl& control, ScanStats* stats);

  ThreadPool* ScatterPool();

  void MergeStats(const ScanStats& delta) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ += delta;
  }

  // Construction inputs (table XOR raw_groups, as with SOlapEngine).
  const EventTable* table_ = nullptr;
  /// Non-null only via the mutable-table constructor; gates IngestRows.
  EventTable* mutable_table_ = nullptr;
  /// Facade-level writer/reader gate (sharded mode; shard engines gate
  /// their own slices, this one makes multi-shard mutations atomic with
  /// respect to scattered executions).
  EpochGate gate_;
  std::shared_ptr<SequenceGroupSet> raw_groups_;
  const HierarchyRegistry* hierarchies_ = nullptr;
  EngineOptions options_;

  // Resolved shard-by column (table mode; -1 = unsharded).
  int shard_col_ = -1;
  std::string shard_attr_;

  // Partitioned data, one slice per shard (empty in delegate/1-shard mode
  // over the original data).
  std::vector<std::unique_ptr<EventTable>> shard_tables_;
  std::vector<std::shared_ptr<SequenceGroupSet>> shard_groups_;
  /// Raw mode: base_[g][s] = first global sid of shard s's block of group g.
  std::vector<std::vector<Sid>> shard_bases_;

  std::vector<std::unique_ptr<SOlapEngine>> shards_;
  SOlapEngine* borrowed_ = nullptr;  // delegate mode over a foreign engine

  // Lazily-built monolithic fallback (sharded mode only).
  std::unique_ptr<SOlapEngine> fallback_;
  mutable std::mutex fallback_mu_;

  // Facade-level cuboid repository: scattered queries cache their merged
  // result here (shard repositories are disabled), so a repeat query costs
  // one lookup and counts repository_hits once — same accounting as the
  // monolithic engine.
  std::unique_ptr<CuboidRepository> repository_;

  // Distributed scatter state (EnableRemoteScatter): one RPC client per
  // shard, a health flag per shard (written by the supervisor thread, read
  // by scatters), and the degradation policy.
  std::vector<std::unique_ptr<RemoteShardClient>> remote_clients_;
  std::unique_ptr<std::atomic<bool>[]> shard_healthy_;
  DegradePolicy degrade_policy_ = DegradePolicy::kStrict;
  bool remote_local_fallback_ = true;

  // Scatter fan-out pool (sharded mode; sized by EngineOptions::exec_threads,
  // clamped to the shard count). nullptr = scatter runs inline.
  std::unique_ptr<ThreadPool> scatter_pool_;
  bool scatter_pool_created_ = false;
  std::mutex scatter_pool_mu_;

  ScanStats stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace solap

#endif  // SOLAP_ENGINE_SHARDED_ENGINE_H_
