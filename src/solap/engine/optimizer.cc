#include "solap/engine/optimizer.h"

#include <algorithm>

#include "solap/index/index_ops.h"

namespace solap {

namespace {

// Hierarchy level index of `ref`, or -1 when only exact matches apply.
int LevelIndexOf(const HierarchyRegistry* reg, const LevelRef& ref) {
  ConceptHierarchy* h = reg != nullptr ? reg->Find(ref.attr) : nullptr;
  if (h == nullptr) return -1;
  int idx = h->LevelIndex(ref.level);
  if (idx < 0 && (ref.level == ref.attr || ref.level == "base")) idx = 0;
  return idx;
}

}  // namespace

Result<StrategyChoice> StrategyOptimizer::Choose(const CuboidSpec& spec) {
  SOLAP_ASSIGN_OR_RETURN(PatternTemplate tmpl, spec.MakeTemplate());
  SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                         engine_->GroupsFor(spec.seq));
  SOLAP_ASSIGN_OR_RETURN(std::vector<size_t> selected,
                         engine_->SelectedGroupsFor(*groups, spec));

  const size_t m = tmpl.num_positions();
  IndexShape target;
  target.kind = tmpl.kind();
  for (size_t pos = 0; pos < m; ++pos) {
    target.positions.push_back(tmpl.dim(tmpl.dim_of(pos)).ref);
  }
  // Counting rescans list members only under these conditions (otherwise
  // COUNT reads list lengths).
  const bool needs_count_scan =
      spec.predicate != nullptr || spec.agg != AggKind::kCount ||
      spec.restriction == CellRestriction::kAllMatchedGo;

  // Resolve slice restrictions once; codes are shared by all groups of a
  // set. Used to estimate how selective a cached-prefix extension is.
  std::vector<std::vector<Code>> fixed_codes(tmpl.num_dims());
  for (size_t d = 0; d < tmpl.num_dims(); ++d) {
    const PatternDim& dim = tmpl.dim(d);
    if (dim.fixed_labels.empty()) continue;
    SOLAP_ASSIGN_OR_RETURN(
        DimensionBinding b,
        groups->BindDimension(engine_->hierarchies(), dim.ref));
    SOLAP_ASSIGN_OR_RETURN(
        fixed_codes[d], b.AllowedCodes(dim.fixed_level, dim.fixed_labels));
    if (fixed_codes[d].empty()) fixed_codes[d].push_back(kNullCode);
  }

  StrategyChoice choice;
  std::string reason = "cold query";
  for (size_t gi : selected) {
    const SequenceGroup& group = groups->groups()[gi];
    const double n = static_cast<double>(group.num_sequences());
    choice.cb_cost += n;

    const GroupIndexCache* cache = engine_->FindIndexCache(*groups, gi);
    double build_cost = 0;   // sequences scanned to obtain the final index
    double count_base = n;   // entries the counting step would walk
    bool found = false;
    GroupPlan gp;
    gp.group_index = gi;
    gp.num_sequences = group.num_sequences();
    gp.cb_cost = n;
    gp.ii_source = "cold BuildIndex scan";
    if (cache != nullptr) {
      // 1. A complete index of exactly the target shape.
      if (auto exact = cache->Find(target, "")) {
        build_cost = 0;
        count_base = static_cast<double>(exact->total_entries());
        reason = "exact cached index";
        gp.ii_source = reason;
        gp.reused_index = target.CanonicalString();
        found = true;
      }
      // 2. Same-shape indices at other levels: merge (free) or refine
      //    (bounded by the coarse index's sequences).
      if (!found) {
        for (const auto& entry : cache->entries()) {
          if (entry->shape().kind != target.kind ||
              entry->shape().size() != m || !entry->complete()) {
            continue;
          }
          bool finer = true, coarser = true, any_diff = false;
          for (size_t pos = 0; pos < m && (finer || coarser); ++pos) {
            const LevelRef& eref = entry->shape().positions[pos];
            const LevelRef& tref = target.positions[pos];
            if (eref == tref) continue;
            any_diff = true;
            int el = LevelIndexOf(engine_->hierarchies(), eref);
            int tl = LevelIndexOf(engine_->hierarchies(), tref);
            if (eref.attr != tref.attr || el < 0 || tl < 0) {
              finer = coarser = false;
              break;
            }
            if (el > tl) finer = false;
            if (el < tl) coarser = false;
          }
          if (!any_diff) continue;
          if (finer) {
            build_cost = 0;  // pure list merging
            count_base = static_cast<double>(entry->total_entries());
            reason = "P-ROLL-UP merge from cached finer index";
            gp.ii_source = reason;
            gp.reused_index = entry->shape().CanonicalString();
            found = true;
            break;
          }
          if (coarser) {
            // Refinement re-enumerates occurrences per scanned sequence,
            // which costs noticeably more per sequence than a CB scan;
            // the 1.5 factor calibrates that (an unrestricted drill-down
            // at parity then falls back to CB, matching measurements).
            build_cost = 1.5 * std::min(
                n, static_cast<double>(entry->total_entries()));
            count_base = build_cost;
            reason = "P-DRILL-DOWN refinement of cached coarser index";
            gp.ii_source = reason;
            gp.reused_index = entry->shape().CanonicalString();
            found = true;
            break;
          }
        }
      }
      // 3. Longest cached complete prefix/suffix: scan-extend or join.
      if (!found) {
        for (size_t k = m - 1; k >= 2; --k) {
          IndexShape prefix;
          prefix.kind = target.kind;
          prefix.positions.assign(target.positions.begin(),
                                  target.positions.begin() + k);
          IndexShape suffix;
          suffix.kind = target.kind;
          suffix.positions.assign(target.positions.end() - k,
                                  target.positions.end());
          size_t base_off = 0;
          std::shared_ptr<InvertedIndex> base = cache->Find(prefix, "");
          if (base == nullptr) {
            base = cache->Find(suffix, "");
            base_off = m - k;
          }
          if (base == nullptr) continue;
          // Only template-consistent base entries participate: a sliced
          // follow-up growing from a complete index stays selective
          // (ExtendByScan); an unrestricted one pays a join with one
          // full scan for each missing L2.
          double usable = 0;
          for (const auto& [key2, list2] : base->lists()) {
            if (WindowConsistent(tmpl, base_off, key2, fixed_codes)) {
              usable += static_cast<double>(list2.size());
            }
          }
          const double steps = static_cast<double>(m - k);
          if (usable < n) {
            build_cost = usable * steps;  // scan-extension per step
          } else {
            build_cost = n + usable;  // L2 builds + join verification
          }
          count_base = std::min(n, usable);
          reason = "extend cached prefix/suffix index";
          gp.ii_source = usable < n ? "scan-extend cached prefix/suffix"
                                    : "join-extend cached prefix/suffix";
          gp.reused_index = base->shape().CanonicalString();
          found = true;
          break;
        }
      }
    }
    if (!found) {
      // Cold: BuildIndex scans the group once; counting afterwards reads
      // list lengths (free) unless a predicate/aggregate forces rescans.
      // Ties between a cold II build and a CB scan resolve toward II:
      // the index is a reusable asset for the iterative session (paper
      // §4.2.2: "subsequent iterative queries ... would be benefited from
      // the newly computed inverted indices").
      build_cost = n;
      count_base = n;
    }
    gp.ii_cost = build_cost + (needs_count_scan ? count_base : 0);
    choice.ii_cost += gp.ii_cost;
    choice.groups.push_back(std::move(gp));
  }

  choice.strategy = choice.ii_cost <= choice.cb_cost
                        ? ExecStrategy::kInvertedIndex
                        : ExecStrategy::kCounterBased;
  choice.reason = reason;
  if (choice.strategy == ExecStrategy::kCounterBased) {
    choice.reason = "one counter-based scan is cheaper (" + reason + ")";
  }
  return choice;
}

}  // namespace solap
