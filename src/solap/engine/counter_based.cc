// Counter-based S-cuboid construction (paper §4.2.1, Fig. 7): scan every
// sequence of every selected group, enumerate the template's occurrences,
// and fold assignments into cuboid cells. Groups larger than a few
// thousand sequences are partitioned across the engine's shared compute
// pool (EngineOptions::cb_threads / exec_threads); each partition folds
// into a private cuboid and the partials are merged in partition order —
// COUNT/SUM/AVG/MIN/MAX all merge losslessly.
#include <new>
#include <thread>
#include <unordered_set>

#include "solap/engine/engine.h"

namespace solap {

Status SOlapEngine::RunCounterBased(QueryContext& ctx) {
  ThreadPool* pool = ComputePool();
  const size_t hw =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  for (size_t gi : ctx.selected_groups) {
    SequenceGroup& group = ctx.groups->groups()[gi];
    TraceSpan group_span(ctx.trace, "cb.group");
    group_span.Count("group", gi);
    SOLAP_ASSIGN_OR_RETURN(
        BoundPattern bp,
        BoundPattern::Bind(&ctx.tmpl, &group, *ctx.groups, hierarchies_,
                           ctx.spec->predicate, ctx.spec->placeholders));
    const Sid n = static_cast<Sid>(group.num_sequences());
    group_span.Count("sequences", n);
    // Partition count: explicit cb_threads is clamped to the hardware
    // (spawning more scanners than cores only adds merge work), 0 means
    // "use the whole pool", and small groups stay sequential — a
    // partition under ~1024 sequences is not worth a dispatch.
    size_t threads = options_.cb_threads == 0
                         ? (pool != nullptr ? pool->num_threads() : 1)
                         : std::min<size_t>(options_.cb_threads, hw);
    threads = std::min<size_t>(threads, n / 1024 + 1);
    group_span.Count("threads", threads);
    if (threads <= 1 || pool == nullptr) {
      SOLAP_RETURN_NOT_OK(
          CounterScanRange(ctx, group, bp, 0, n, ctx.cuboid, ctx.stats));
      continue;
    }
    // Partition the group over the shared pool; tasks only touch their
    // private cuboid/stats (symbol views and slice codes were materialized
    // by Bind above, so the shared state is read-only during the scan).
    std::vector<SCuboid> partials(
        threads, SCuboid(ctx.cuboid->dims(), ctx.cuboid->agg()));
    std::vector<ScanStats> partial_stats(threads);
    std::vector<Status> results(threads);
    {
      TaskBatch batch(pool);
      const Sid chunk = (n + static_cast<Sid>(threads) - 1) /
                        static_cast<Sid>(threads);
      const int parent_span = group_span.id();
      for (size_t t = 0; t < threads; ++t) {
        Sid begin = static_cast<Sid>(t) * chunk;
        Sid end = std::min<Sid>(begin + chunk, n);
        batch.Submit([this, &ctx, &group, &bp, &partials, &partial_stats,
                      &results, t, begin, end, parent_span] {
          // Pool threads have no open frame; parent the shard explicitly.
          TraceSpan shard_span(ctx.trace, "cb.shard", parent_span);
          shard_span.Count("begin", begin);
          shard_span.Count("end", end);
          // bad_alloc escaping a pool worker would terminate the process;
          // turn it into a Status the query boundary can report.
          try {
            results[t] = CounterScanRange(ctx, group, bp, begin, end,
                                          &partials[t], &partial_stats[t]);
          } catch (const std::bad_alloc&) {
            results[t] = Status::ResourceExhausted(
                "counter-based scan partition ran out of memory");
          }
        });
      }
      batch.Wait();
    }
    for (size_t t = 0; t < threads; ++t) {
      SOLAP_RETURN_NOT_OK(results[t]);
      *ctx.stats += partial_stats[t];
      for (const auto& [key, cell] : partials[t].cells()) {
        ctx.cuboid->MergeCell(key, cell);
      }
    }
  }
  return Status::OK();
}

Status SOlapEngine::CounterScanRange(const QueryContext& ctx,
                                     SequenceGroup& group,
                                     const BoundPattern& bp, Sid begin,
                                     Sid end, SCuboid* cuboid,
                                     ScanStats* stats) const {
  const PatternTemplate& tmpl = ctx.tmpl;
  const size_t n_dims = tmpl.num_dims();
  const CellRestriction restriction = ctx.spec->restriction;
  // Under the left-maximality restrictions a sequence contributes once per
  // distinct instantiation (its *first* occurrence); `seen` tracks the
  // instantiations already assigned for the current sequence.
  std::unordered_set<PatternKey, CodeVecHash> seen;
  PatternKey dim_codes(n_dims);
  for (Sid s = begin; s < end; ++s) {
    // Cancellation/deadline poll every 256 sequences — cheap relative to
    // occurrence enumeration, fine-grained enough for sub-second timeouts.
    if (((s - begin) & 0xFF) == 0) {
      SOLAP_RETURN_NOT_OK(CheckStop(ctx.stop, "counter-based scan"));
    }
    ++stats->sequences_scanned;
    seen.clear();
    bp.ForEachOccurrence(s, [&](const uint32_t* idx) {
      for (size_t d = 0; d < n_dims; ++d) {
        size_t fp = static_cast<size_t>(tmpl.first_position_of(d));
        dim_codes[d] = bp.CodeAt(fp, s, idx[fp]);
      }
      if (restriction == CellRestriction::kAllMatchedGo ||
          seen.insert(dim_codes).second) {
        AddAssignment(ctx, group, bp, dim_codes, s, idx, cuboid);
      }
      return true;
    });
  }
  return Status::OK();
}

}  // namespace solap
