#include "solap/engine/sharded_engine.h"

#include <algorithm>
#include <new>
#include <thread>
#include <utility>

#include "solap/cube/partial_merge.h"
#include "solap/engine/remote_shard.h"
#include "solap/engine/shard_partition.h"
#include "solap/index/build_index.h"

namespace solap {

ShardedEngine::ShardedEngine(const EventTable* table,
                             const HierarchyRegistry* hierarchies,
                             EngineOptions options)
    : table_(table), hierarchies_(hierarchies), options_(std::move(options)) {
  BuildShards();
}

ShardedEngine::ShardedEngine(EventTable* table,
                             const HierarchyRegistry* hierarchies,
                             EngineOptions options)
    : table_(table),
      mutable_table_(table),
      hierarchies_(hierarchies),
      options_(std::move(options)) {
  BuildShards();
}

ShardedEngine::ShardedEngine(std::shared_ptr<SequenceGroupSet> raw_groups,
                             const HierarchyRegistry* hierarchies,
                             EngineOptions options)
    : raw_groups_(std::move(raw_groups)),
      hierarchies_(hierarchies),
      options_(std::move(options)) {
  BuildShards();
}

ShardedEngine::ShardedEngine(SOlapEngine* borrowed)
    : hierarchies_(borrowed->hierarchies()), borrowed_(borrowed) {}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::BuildShards() {
  size_t n = std::max<size_t>(1, options_.shards);
  if (n > 1 && table_ != nullptr) {
    // Resolve the shard-by column; an unusable one degrades to one shard
    // rather than failing construction (the engine stays correct, just
    // monolithic).
    shard_col_ = ResolveShardColumn(*table_, options_.shard_by);
    shard_attr_ =
        shard_col_ >= 0 ? table_->schema().field(shard_col_).name : "";
    if (shard_col_ < 0) n = 1;
  }

  EngineOptions shard_opts = options_;
  shard_opts.shards = 1;
  if (n == 1) {
    if (mutable_table_ != nullptr) {
      // Mutable overload: the single executor gets the writable table so
      // its streaming write path works through plain delegation.
      shards_.push_back(std::make_unique<SOlapEngine>(mutable_table_,
                                                      hierarchies_,
                                                      shard_opts));
    } else {
      shards_.push_back(
          table_ != nullptr
              ? std::make_unique<SOlapEngine>(table_, hierarchies_, shard_opts)
              : std::make_unique<SOlapEngine>(raw_groups_, hierarchies_,
                                              shard_opts));
    }
    return;
  }

  // Per-shard executors run serially (the scatter is the parallelism) with
  // an even split of the memory budget; merged results cache in the facade
  // repository, so shard-level cuboid caching is off.
  shard_opts.exec_threads = 1;
  shard_opts.cb_threads = 1;
  shard_opts.repository_capacity_bytes = 0;
  shard_opts.memory_budget_bytes = options_.memory_budget_bytes / n;
  repository_ =
      std::make_unique<CuboidRepository>(options_.repository_capacity_bytes);

  if (table_ != nullptr) {
    shard_tables_ = table_->PartitionRows(n, [this, n](RowId r) {
      return ShardOfCode(table_->CodeAt(r, shard_col_), n);
    });
    for (size_t s = 0; s < n; ++s) {
      shards_.push_back(std::make_unique<SOlapEngine>(shard_tables_[s].get(),
                                                      hierarchies_,
                                                      shard_opts));
    }
    return;
  }

  // Raw groups: split every group into n contiguous sid blocks. Every group
  // exists in every shard (possibly empty) and in source order, so group
  // ordinals line up across shards and with the source set.
  shard_groups_.clear();
  for (size_t s = 0; s < n; ++s) {
    auto set = std::make_shared<SequenceGroupSet>(raw_groups_->raw_attr());
    set->raw_dictionary() = raw_groups_->raw_dictionary();
    shard_groups_.push_back(std::move(set));
  }
  const auto& groups = raw_groups_->groups();
  shard_bases_.assign(groups.size(), std::vector<Sid>(n, 0));
  for (size_t g = 0; g < groups.size(); ++g) {
    const SequenceGroup& src = groups[g];
    const size_t m = src.num_sequences();
    for (size_t s = 0; s < n; ++s) {
      SequenceGroup& dst = shard_groups_[s]->GroupFor(src.key());
      const size_t begin = m * s / n;
      const size_t end = m * (s + 1) / n;
      shard_bases_[g][s] = static_cast<Sid>(begin);
      for (size_t sid = begin; sid < end; ++sid) {
        dst.AddSequence(src.Rows(static_cast<Sid>(sid)));
      }
    }
  }
  for (size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<SOlapEngine>(shard_groups_[s],
                                                    hierarchies_, shard_opts));
  }
}

ThreadPool* ShardedEngine::ScatterPool() {
  std::lock_guard<std::mutex> lock(scatter_pool_mu_);
  if (!scatter_pool_created_) {
    scatter_pool_created_ = true;
    const size_t hw =
        std::max<size_t>(std::thread::hardware_concurrency(), 1);
    size_t t = options_.exec_threads == 0 ? hw : options_.exec_threads;
    t = std::min(t, shards_.size());
    if (t > 1) scatter_pool_ = std::make_unique<ThreadPool>(t);
  }
  return scatter_pool_.get();
}

SOlapEngine* ShardedEngine::Monolith() {
  if (borrowed_ != nullptr) return borrowed_;
  if (shards_.size() == 1) return shards_[0].get();
  std::lock_guard<std::mutex> lock(fallback_mu_);
  if (!fallback_) {
    EngineOptions opts = options_;
    opts.shards = 1;
    fallback_ =
        table_ != nullptr
            ? std::make_unique<SOlapEngine>(table_, hierarchies_, opts)
            : std::make_unique<SOlapEngine>(raw_groups_, hierarchies_, opts);
  }
  return fallback_.get();
}

Status ShardedEngine::EnableRemoteScatter(
    const std::vector<ShardEndpoint>& endpoints, RemoteShardOptions rpc,
    DegradePolicy policy, bool local_fallback, MetricsRegistry* metrics) {
  if (borrowed_ != nullptr || shards_.size() <= 1) {
    return Status::InvalidArgument(
        "remote scatter requires a sharded (shards > 1) engine");
  }
  if (endpoints.size() != shards_.size()) {
    return Status::InvalidArgument(
        "endpoint count does not match shard count: " +
        std::to_string(endpoints.size()) + " vs " +
        std::to_string(shards_.size()));
  }
  remote_clients_.clear();
  remote_clients_.reserve(endpoints.size());
  for (size_t i = 0; i < endpoints.size(); ++i) {
    remote_clients_.push_back(
        std::make_unique<RemoteShardClient>(i, endpoints[i], rpc, metrics));
  }
  shard_healthy_ = std::make_unique<std::atomic<bool>[]>(endpoints.size());
  for (size_t i = 0; i < endpoints.size(); ++i) {
    shard_healthy_[i].store(true, std::memory_order_relaxed);
  }
  degrade_policy_ = policy;
  remote_local_fallback_ = local_fallback;
  return Status::OK();
}

void ShardedEngine::DisableRemoteScatter() {
  remote_clients_.clear();
  shard_healthy_.reset();
}

void ShardedEngine::SetShardHealthy(size_t i, bool healthy) {
  if (shard_healthy_ != nullptr && i < remote_clients_.size()) {
    shard_healthy_[i].store(healthy, std::memory_order_relaxed);
  }
}

bool ShardedEngine::ShardHealthy(size_t i) const {
  return shard_healthy_ == nullptr || i >= remote_clients_.size() ||
         shard_healthy_[i].load(std::memory_order_relaxed);
}

bool ShardedEngine::Shardable(const CuboidSpec& spec) const {
  if (borrowed_ != nullptr || shards_.size() <= 1) return true;
  if (table_ == nullptr) return true;  // raw mode: the sequence is the unit
  for (const LevelRef& ref : spec.seq.cluster_by) {
    if (ref.attr != shard_attr_) continue;
    const ConceptHierarchy* h =
        hierarchies_ != nullptr ? hierarchies_->Find(ref.attr) : nullptr;
    // No hierarchy = a single (base) level; otherwise level 0 is base.
    if (h == nullptr || h->LevelIndex(ref.level) == 0) return true;
  }
  return false;
}

Result<std::shared_ptr<const SCuboid>> ShardedEngine::Execute(
    const CuboidSpec& spec) {
  return Execute(spec, options_.default_strategy, ExecControl{});
}

Result<std::shared_ptr<const SCuboid>> ShardedEngine::Execute(
    const CuboidSpec& spec, ExecStrategy strategy) {
  return Execute(spec, strategy, ExecControl{});
}

Result<std::shared_ptr<const SCuboid>> ShardedEngine::Execute(
    const CuboidSpec& spec, ExecStrategy strategy,
    const ExecControl& control) {
  if (borrowed_ != nullptr) return borrowed_->Execute(spec, strategy, control);
  if (shards_.size() == 1) return shards_[0]->Execute(spec, strategy, control);

  // Facade snapshot: multi-shard mutations (IngestRows, eviction,
  // repartition) hold this gate exclusively, so a scattered execution sees
  // every shard at one consistent facade epoch.
  EpochGate::ReadLock rl(gate_);
  if (control.epoch_out != nullptr) *control.epoch_out = rl.epoch();
  ScanStats local;
  auto run = [&]() -> Result<std::shared_ptr<const SCuboid>> {
    if (Shardable(spec)) {
      try {
        return ExecuteScatter(spec, strategy, control, &local);
      } catch (const std::bad_alloc&) {
        return Status::ResourceExhausted(
            "allocation failed while gathering shard partials");
      }
    }
    ExecControl sub = control;
    sub.stats_out = &local;
    sub.epoch_out = nullptr;  // the facade epoch above is authoritative
    auto fallback = Monolith()->Execute(spec, strategy, sub);
    ++local.shard_fallbacks;
    return fallback;
  };
  auto result = run();
  MergeStats(local);
  if (control.stats_out != nullptr) *control.stats_out = local;
  return result;
}

Result<std::shared_ptr<const SCuboid>> ShardedEngine::ExecuteScatter(
    const CuboidSpec& spec, ExecStrategy strategy, const ExecControl& control,
    ScanStats* stats) {
  TraceContext* trace = control.trace;
  const std::string key = spec.CanonicalString();
  {
    TraceSpan span(trace, "repo.lookup");
    if (auto hit = repository_->Lookup(key)) {
      ++stats->repository_hits;
      span.Note("result", "hit");
      return hit;
    }
    span.Note("result", "miss");
  }

  // Shards execute without the iceberg restriction: a cell split across
  // shards could fall below the threshold in every partial yet clear it
  // globally, so the restriction only applies to the merged cuboid.
  CuboidSpec shard_spec = spec;
  shard_spec.iceberg_min_count.reset();

  const size_t n = shards_.size();
  const bool remote = remote_scatter();
  std::vector<std::shared_ptr<const SCuboid>> partials(n);
  std::vector<ScanStats> shard_stats(n);
  std::vector<Status> shard_status(n, Status::OK());

  {
    TraceSpan scatter(trace, "shard.scatter");
    scatter.Count("shards", n);
    if (remote) scatter.Note("transport", "rpc");
    const int scatter_id = scatter.id();
    // Declared after the span so the fork/join completes (TaskBatch dtor)
    // while "shard.scatter" is still open.
    TaskBatch batch(ScatterPool());
    for (size_t i = 0; i < n; ++i) {
      batch.Submit([&, i] {
        TraceSpan span(trace, "shard.exec", scatter_id);
        span.Count("shard", i);
        if (remote) {
          // An unhealthy shard (supervisor verdict) skips the RPC and its
          // retry budget entirely — fail fast into the degradation policy.
          if (!ShardHealthy(i)) {
            shard_status[i] =
                Status::Unavailable("shard marked degraded by supervisor");
            span.Note("error", shard_status[i].ToString());
            return;
          }
          auto r = remote_clients_[i]->Execute(shard_spec, strategy,
                                               control.stop, trace,
                                               &shard_stats[i]);
          if (r.ok()) {
            partials[i] = r->cuboid;
            span.Count("cells", partials[i]->num_cells());
          } else {
            shard_status[i] = r.status();
            span.Note("error", r.status().ToString());
          }
          return;
        }
        ExecControl sub;
        sub.stop = control.stop;
        sub.stats_out = &shard_stats[i];
        sub.trace = trace;
        auto r = shards_[i]->Execute(shard_spec, strategy, sub);
        if (r.ok()) {
          partials[i] = *r;
          span.Count("cells", partials[i]->num_cells());
        } else {
          shard_status[i] = r.status();
          span.Note("error", r.status().ToString());
        }
      });
    }
  }

  // Work already done counts even when a shard failed.
  for (size_t i = 0; i < n; ++i) *stats += shard_stats[i];

  // Failure disposition. In-process scatter and strict remote mode fail
  // the query on the first shard error. Degraded remote mode recovers
  // unavailable shards: re-execute the slice on the local shard executor
  // (bit-identical — same slice, same code), else answer without it and
  // flag the shards that are missing. Application-class errors (bad spec,
  // cancel, out of time) always fail the query — degradation is for dead
  // shards, not bad requests.
  std::vector<size_t> missing;
  for (size_t i = 0; i < n; ++i) {
    if (shard_status[i].ok()) continue;
    const bool recoverable =
        remote && degrade_policy_ == DegradePolicy::kDegraded &&
        RemoteShardClient::IsTransportError(shard_status[i]);
    if (!recoverable) return shard_status[i];
    if (remote_local_fallback_) {
      TraceSpan span(trace, "shard.local_fallback");
      span.Count("shard", i);
      ScanStats local_stats;
      ExecControl sub;
      sub.stop = control.stop;
      sub.stats_out = &local_stats;
      sub.trace = trace;
      auto r = shards_[i]->Execute(shard_spec, strategy, sub);
      *stats += local_stats;
      if (r.ok()) {
        partials[i] = *r;
        ++stats->degraded_queries;
        continue;
      }
      span.Note("error", r.status().ToString());
    }
    missing.push_back(i);
  }
  if (missing.size() == n) {
    return Status::Unavailable("all shards unavailable");
  }

  TraceSpan gather(trace, "shard.gather");
  size_t first = 0;
  while (partials[first] == nullptr) ++first;
  auto merged = std::make_shared<SCuboid>(partials[first]->dims(),
                                          partials[first]->agg());
  size_t folded = 0;
  // Ascending shard order keeps the FP sum fold deterministic.
  for (size_t i = 0; i < n; ++i) {
    if (partials[i] != nullptr) {
      folded += MergeCuboidPartials(merged.get(), *partials[i]);
    }
  }
  ++stats->shard_scatters;
  stats->shard_partials += n - missing.size();
  stats->shard_merged_cells += folded;
  if (spec.iceberg_min_count.has_value()) {
    merged->ApplyIceberg(*spec.iceberg_min_count);
  }
  gather.Count("merged_cells", folded);
  gather.Count("cells", merged->num_cells());
  if (!missing.empty()) {
    ++stats->partial_answers;
    gather.Count("missing_shards", missing.size());
    if (control.missing_shards != nullptr) {
      *control.missing_shards = missing;
    }
    // A partial answer must never be served from cache as if complete.
    return std::shared_ptr<const SCuboid>(merged);
  }
  repository_->Insert(key, merged);
  return std::shared_ptr<const SCuboid>(merged);
}

Result<std::shared_ptr<const SCuboid>> ShardedEngine::ExecuteOnline(
    const CuboidSpec& spec, size_t report_every,
    const SOlapEngine::ProgressFn& progress) {
  if (borrowed_ == nullptr && shards_.size() > 1) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shard_fallbacks;
  }
  return Monolith()->ExecuteOnline(spec, report_every, progress);
}

Status ShardedEngine::PrecomputeIndex(const CuboidSpec& spec, size_t m,
                                      const LevelRef& position_ref) {
  if (borrowed_ != nullptr || shards_.size() == 1 || !Shardable(spec)) {
    return Monolith()->PrecomputeIndex(spec, m, position_ref);
  }
  for (auto& shard : shards_) {
    Status s = shard->PrecomputeIndex(spec, m, position_ref);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedEngine::WarmSequenceCache(const SequenceSpec& spec) {
  if (borrowed_ != nullptr || shards_.size() == 1) {
    return Monolith()->WarmSequenceCache(spec);
  }
  CuboidSpec probe;
  probe.seq = spec;
  if (!Shardable(probe)) return Monolith()->WarmSequenceCache(spec);
  for (auto& shard : shards_) {
    Status s = shard->WarmSequenceCache(spec);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedEngine::MaterializeIndex(const SequenceSpec& formation,
                                       const IndexShape& shape) {
  if (borrowed_ != nullptr || shards_.size() == 1) {
    return Monolith()->MaterializeIndex(formation, shape);
  }
  CuboidSpec probe;
  probe.seq = formation;
  if (!Shardable(probe)) return Monolith()->MaterializeIndex(formation, shape);
  for (auto& shard : shards_) {
    Status s = shard->MaterializeIndex(formation, shape);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<std::shared_ptr<InvertedIndex>> ShardedEngine::GatherCompleteIndex(
    size_t group_idx, const IndexShape& shape) {
  if (borrowed_ != nullptr || raw_groups_ == nullptr) {
    return Status::InvalidArgument(
        "GatherCompleteIndex requires a raw-group sharded engine");
  }
  ScanStats local;
  const size_t n = shards_.size();
  // Per-shard sets and sid-block bases; one shard over the source set is
  // the degenerate base-0 case.
  std::vector<SequenceGroupSet*> sets;
  std::vector<Sid> bases;
  if (n == 1) {
    sets.push_back(raw_groups_.get());
    bases.push_back(0);
  } else {
    if (group_idx >= shard_bases_.size()) {
      return Status::InvalidArgument("group index out of range");
    }
    for (size_t s = 0; s < n; ++s) {
      sets.push_back(shard_groups_[s].get());
      bases.push_back(shard_bases_[group_idx][s]);
    }
  }

  std::vector<std::shared_ptr<InvertedIndex>> shard_indices;
  shard_indices.reserve(sets.size());
  for (SequenceGroupSet* set : sets) {
    if (group_idx >= set->groups().size()) {
      return Status::InvalidArgument("group index out of range");
    }
    auto built = BuildIndex(&set->groups()[group_idx], *set, hierarchies_,
                            shape, &local);
    if (!built.ok()) return built.status();
    shard_indices.push_back(*built);
  }

  auto gathered = std::make_shared<InvertedIndex>(shape, /*complete=*/true);
  ContainerOpCounts ops;
  std::vector<SidList> scratches(shard_indices.size());
  for (const auto& index : shard_indices) {
    index->ForEachLogicalList([&](const PatternKey& pattern, const SidList*,
                                  const SidList*) {
      if (gathered->lists().count(pattern) != 0) return;
      std::vector<const SidList*> lists;
      lists.reserve(shard_indices.size());
      for (size_t i = 0; i < shard_indices.size(); ++i) {
        // LogicalList materializes base+delta per shard; may be nullptr.
        lists.push_back(shard_indices[i]->LogicalList(pattern, &scratches[i]));
      }
      gathered->lists()[pattern] = GatherShardLists(
          std::span<const SidList* const>(lists), bases, &ops);
    });
  }
  local.container_array_ops += ops.array_ops;
  local.container_bitmap_ops += ops.bitmap_ops;
  local.container_run_ops += ops.run_ops;
  local.container_gallop_ops += ops.gallop_ops;
  MergeStats(local);
  return gathered;
}

Status ShardedEngine::AppendRawSequences(
    size_t group_idx, const std::vector<std::vector<Code>>& sequences) {
  if (borrowed_ != nullptr) {
    return borrowed_->AppendRawSequences(group_idx, sequences);
  }
  if (shards_.size() == 1) {
    return shards_[0]->AppendRawSequences(group_idx, sequences);
  }
  // Contiguous blocks stay contiguous when the append lands in the last
  // shard; results never depend on which shard owns a sequence.
  EpochGate::WriteLock wl(gate_);
  Status s = shards_.back()->AppendRawSequences(group_idx, sequences);
  if (s.ok()) {
    repository_->Clear();
  } else {
    wl.Abandon();
  }
  return s;
}

Status ShardedEngine::IngestRows(const std::vector<std::vector<Value>>& rows,
                                 TraceContext* trace) {
  if (borrowed_ != nullptr) return borrowed_->IngestRows(rows, trace);
  if (mutable_table_ == nullptr) {
    return Status::InvalidArgument(
        "IngestRows requires the mutable-table constructor");
  }
  if (shards_.size() == 1) return shards_[0]->IngestRows(rows, trace);

  TraceSpan span(trace, "ingest.append");
  span.Note("scope", "facade");
  EpochGate::WriteLock wl(gate_);
  if (rows.empty()) {
    wl.Abandon();
    return Status::OK();
  }
  // Commit to the facade (source-of-truth) table first: validate-first
  // Append keeps the batch all-or-nothing, and a later repartition rebuilds
  // consistent slices from here.
  const RowId from_row = static_cast<RowId>(mutable_table_->num_rows());
  Status appended = mutable_table_->Append(rows);
  if (!appended.ok()) {
    wl.Abandon();
    return appended;
  }
  ScanStats local;
  local.ingested_events = rows.size();
  const size_t n = shards_.size();
  const size_t num_fields = mutable_table_->schema().num_fields();

  auto fan_out = [&]() -> Status {
    // New string values got fresh codes in the facade dictionaries; the
    // shard replicas must assign the identical codes before any shard
    // re-encodes the routed rows.
    std::vector<std::vector<RemoteShardClient::DictUpdate>> dict_updates(n);
    for (size_t c = 0; c < num_fields; ++c) {
      const int col = static_cast<int>(c);
      if (mutable_table_->dictionary(col) == nullptr) continue;
      for (size_t s = 0; s < n; ++s) {
        const size_t from = shard_tables_[s]->DictionarySize(col);
        std::vector<std::string> tail =
            mutable_table_->DictionaryTail(col, from);
        if (tail.empty()) continue;
        SOLAP_RETURN_NOT_OK(shard_tables_[s]->SyncDictionary(col, from, tail));
        // Remote replicas start code-identical to the local slice, so the
        // same tail keeps them that way.
        dict_updates[s].push_back({col, from, std::move(tail)});
      }
    }
    // Route each appended row to the shard owning its sequence.
    std::vector<std::vector<std::vector<Value>>> batches(n);
    const size_t end_row = mutable_table_->num_rows();
    for (RowId r = from_row; r < end_row; ++r) {
      const size_t s = ShardOfCode(mutable_table_->CodeAt(r, shard_col_), n);
      std::vector<Value> row;
      row.reserve(num_fields);
      for (size_t c = 0; c < num_fields; ++c) {
        row.push_back(mutable_table_->GetValue(r, static_cast<int>(c)));
      }
      batches[s].push_back(std::move(row));
    }
    for (size_t s = 0; s < n; ++s) {
      if (batches[s].empty()) continue;
      SOLAP_RETURN_NOT_OK(shards_[s]->IngestRows(batches[s], trace));
      // Remote slices must track the local ones or scatters would answer
      // from pre-append data. A failed replication marks the shard
      // degraded: scatters then use the (up-to-date) local executor until
      // the supervisor restores it.
      if (remote_scatter() && s < remote_clients_.size()) {
        Status replicated = remote_clients_[s]->Append(
            batches[s], dict_updates[s], nullptr, trace);
        if (!replicated.ok()) SetShardHealthy(s, false);
      }
    }
    return Status::OK();
  };
  Status fanned = fan_out();
  if (!fanned.ok()) {
    // The facade table holds the batch but some slice does not — rebuild
    // every slice from the source table so shards and facade agree again.
    shards_.clear();
    shard_tables_.clear();
    BuildShards();
    ++local.formation_invalidations;
  }
  // Merged cuboids span all shards; any append staleness invalidates them.
  local.stale_cuboid_invalidations += repository_->size();
  repository_->Clear();
  {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    if (fallback_) fallback_->NotifyTableAppend();
  }
  span.Count("events", rows.size());
  span.Count("epoch", wl.committed_epoch());
  MergeStats(local);
  return fanned;
}

Status ShardedEngine::EvictBefore(const std::string& order_attr,
                                  int64_t cutoff) {
  if (borrowed_ != nullptr) return borrowed_->EvictBefore(order_attr, cutoff);
  if (shards_.size() == 1) return shards_[0]->EvictBefore(order_attr, cutoff);
  EpochGate::WriteLock wl(gate_);
  for (auto& shard : shards_) {
    SOLAP_RETURN_NOT_OK(shard->EvictBefore(order_attr, cutoff));
  }
  {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    if (fallback_) {
      SOLAP_RETURN_NOT_OK(fallback_->EvictBefore(order_attr, cutoff));
    }
  }
  repository_->Clear();
  return Status::OK();
}

uint64_t ShardedEngine::epoch() const {
  if (borrowed_ != nullptr) return borrowed_->epoch();
  if (shards_.size() == 1) return shards_[0]->epoch();
  return gate_.epoch();
}

Status ShardedEngine::MergeDeltasNow(TraceContext* trace) {
  if (borrowed_ != nullptr) return borrowed_->MergeDeltasNow(trace);
  for (auto& shard : shards_) {
    SOLAP_RETURN_NOT_OK(shard->MergeDeltasNow(trace));
  }
  return Status::OK();
}

SOlapEngine::DeltaStats ShardedEngine::DeltaSnapshot() const {
  if (borrowed_ != nullptr) return borrowed_->DeltaSnapshot();
  SOlapEngine::DeltaStats out;
  for (const auto& shard : shards_) {
    const SOlapEngine::DeltaStats s = shard->DeltaSnapshot();
    out.segments += s.segments;
    out.bytes += s.bytes;
  }
  return out;
}

void ShardedEngine::NotifyTableAppend() {
  if (borrowed_ != nullptr) return borrowed_->NotifyTableAppend();
  if (shards_.size() == 1) return shards_[0]->NotifyTableAppend();
  // Repartition the (append-only) source table into fresh slices under the
  // facade gate — scattered queries wait rather than racing the rebuild.
  EpochGate::WriteLock wl(gate_);
  {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    if (fallback_) fallback_->NotifyTableAppend();
  }
  repository_->Clear();
  shards_.clear();
  shard_tables_.clear();
  BuildShards();
}

ScanStats& ShardedEngine::stats() {
  if (borrowed_ != nullptr) return borrowed_->stats();
  if (shards_.size() == 1) return shards_[0]->stats();
  return stats_;
}

ScanStats ShardedEngine::StatsSnapshot() const {
  if (borrowed_ != nullptr) return borrowed_->StatsSnapshot();
  if (shards_.size() == 1) return shards_[0]->StatsSnapshot();
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t ShardedEngine::IndexCacheBytes() const {
  if (borrowed_ != nullptr) return borrowed_->IndexCacheBytes();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->IndexCacheBytes();
  std::lock_guard<std::mutex> lock(fallback_mu_);
  if (fallback_) total += fallback_->IndexCacheBytes();
  return total;
}

size_t ShardedEngine::MemUsed() const {
  if (borrowed_ != nullptr) return borrowed_->governor().used();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->governor().used();
  std::lock_guard<std::mutex> lock(fallback_mu_);
  if (fallback_) total += fallback_->governor().used();
  return total;
}

size_t ShardedEngine::MemBudget() const {
  if (borrowed_ != nullptr) return borrowed_->governor().budget();
  if (shards_.size() == 1) return shards_[0]->governor().budget();
  return options_.memory_budget_bytes;
}

size_t ShardedEngine::MemRejects() const {
  if (borrowed_ != nullptr) return borrowed_->governor().rejects();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->governor().rejects();
  std::lock_guard<std::mutex> lock(fallback_mu_);
  if (fallback_) total += fallback_->governor().rejects();
  return total;
}

}  // namespace solap
