// The S-OLAP operations (paper §3.3): APPEND, PREPEND, DE-TAIL, DE-HEAD,
// P-ROLL-UP, P-DRILL-DOWN on pattern dimensions, plus the classical
// roll-up / drill-down / slice / dice on global dimensions. Each operation
// transforms one CuboidSpec into another; the engine executes the result
// (reusing cached cuboids and indices as §4.2.2 describes).
#ifndef SOLAP_ENGINE_OPERATIONS_H_
#define SOLAP_ENGINE_OPERATIONS_H_

#include <string>
#include <vector>

#include "solap/cube/cuboid.h"
#include "solap/cube/cuboid_spec.h"
#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {
namespace ops {

/// APPEND: adds `symbol` to the end of the pattern template. A new symbol
/// needs its domain (`ref`); re-appending an existing symbol may pass an
/// empty ref. When the spec carries a matching predicate, `placeholder`
/// names the new position's event placeholder (auto-generated if empty).
Result<CuboidSpec> Append(const CuboidSpec& spec, const std::string& symbol,
                          const LevelRef& ref = {},
                          const std::string& placeholder = "");

/// PREPEND: adds `symbol` to the front of the pattern template.
Result<CuboidSpec> Prepend(const CuboidSpec& spec, const std::string& symbol,
                           const LevelRef& ref = {},
                           const std::string& placeholder = "");

/// DE-TAIL: removes the last symbol of the pattern template. Fails if the
/// matching predicate references the removed position's placeholder.
Result<CuboidSpec> DeTail(const CuboidSpec& spec);

/// DE-HEAD: removes the first symbol of the pattern template.
Result<CuboidSpec> DeHead(const CuboidSpec& spec);

/// P-ROLL-UP: moves pattern dimension `symbol` one level up its concept
/// hierarchy (station -> district).
Result<CuboidSpec> PRollUp(const CuboidSpec& spec, const std::string& symbol,
                           const HierarchyRegistry& hierarchies);
/// P-ROLL-UP to an explicit level.
Result<CuboidSpec> PRollUpTo(const CuboidSpec& spec, const std::string& symbol,
                             const std::string& level);

/// P-DRILL-DOWN: moves pattern dimension `symbol` one level down. A slice
/// previously taken on the dimension is kept at its original level and
/// restricts the drilled-down domain.
Result<CuboidSpec> PDrillDown(const CuboidSpec& spec,
                              const std::string& symbol,
                              const HierarchyRegistry& hierarchies);
Result<CuboidSpec> PDrillDownTo(const CuboidSpec& spec,
                                const std::string& symbol,
                                const std::string& level);

/// Classical roll-up / drill-down on a global dimension (changes the
/// SEQUENCE GROUP BY level of `attr`).
Result<CuboidSpec> RollUpGlobal(const CuboidSpec& spec,
                                const std::string& attr,
                                const std::string& level);
Result<CuboidSpec> DrillDownGlobal(const CuboidSpec& spec,
                                   const std::string& attr,
                                   const std::string& level);

/// Slice (one label) / dice (several) a global dimension.
Result<CuboidSpec> SliceGlobal(const CuboidSpec& spec, const LevelRef& ref,
                               std::vector<std::string> labels);

/// Slice / dice pattern dimension `symbol` to `labels` (optionally given at
/// a coarser `level`; empty = the dimension's current level).
Result<CuboidSpec> SlicePattern(const CuboidSpec& spec,
                                const std::string& symbol,
                                std::vector<std::string> labels,
                                const std::string& level = "");

/// Slices every pattern dimension of `spec` to the labels of `cell` in
/// `cuboid` — the "slice on the cell with the highest count" step of the
/// paper's iterative query sets (§5.2). Global dimensions are not sliced.
Result<CuboidSpec> SliceToCell(const CuboidSpec& spec, const SCuboid& cuboid,
                               const CellKey& cell);

}  // namespace ops
}  // namespace solap

#endif  // SOLAP_ENGINE_OPERATIONS_H_
