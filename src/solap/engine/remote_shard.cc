#include "solap/engine/remote_shard.h"

#include <algorithm>
#include <condition_variable>
#include <sstream>
#include <thread>
#include <utility>

#include "solap/common/failpoint.h"
#include "solap/net/http_client.h"
#include "solap/net/json.h"

namespace solap {

namespace {

/// Latency samples kept for the p95 estimate. Small on purpose: the
/// estimate should track the *current* shard, not its cold-start history.
constexpr size_t kLatencyWindow = 64;

/// Strategy wire names — the same cb|ii|auto tokens X-Solap-Strategy uses.
const char* StrategyWireName(ExecStrategy strategy) {
  switch (strategy) {
    case ExecStrategy::kCounterBased:
      return "cb";
    case ExecStrategy::kInvertedIndex:
      return "ii";
    case ExecStrategy::kAuto:
      return "auto";
  }
  return "auto";
}

Status StatusFromCodeName(const std::string& name, std::string msg) {
  if (name == "InvalidArgument") return Status::InvalidArgument(std::move(msg));
  if (name == "NotFound") return Status::NotFound(std::move(msg));
  if (name == "AlreadyExists") return Status::AlreadyExists(std::move(msg));
  if (name == "OutOfRange") return Status::OutOfRange(std::move(msg));
  if (name == "ParseError") return Status::ParseError(std::move(msg));
  if (name == "NotImplemented") return Status::NotImplemented(std::move(msg));
  if (name == "Cancelled") return Status::Cancelled(std::move(msg));
  if (name == "DeadlineExceeded") {
    return Status::DeadlineExceeded(std::move(msg));
  }
  if (name == "ResourceExhausted") {
    return Status::ResourceExhausted(std::move(msg));
  }
  if (name == "Unavailable") return Status::Unavailable(std::move(msg));
  return Status::Internal(std::move(msg));
}

/// Maps a non-200 shard response back into the Status the shard meant.
/// The error body carries the code by name (net/query_routes.cc's
/// JsonErrorResponse shape); a body we cannot parse — a mid-crash torn
/// answer, a proxy page — classifies by HTTP status alone.
Status MapApplicationError(const net::ClientResponse& resp) {
  auto parsed = net::JsonParse(resp.body);
  if (parsed.ok() && parsed->IsObject()) {
    const net::JsonValue* code = parsed->Find("code");
    const net::JsonValue* message = parsed->Find("message");
    if (code != nullptr && code->IsString()) {
      return StatusFromCodeName(code->s,
                                message != nullptr && message->IsString()
                                    ? message->s
                                    : "shard error");
    }
  }
  switch (resp.status) {
    case 429:
      return Status::ResourceExhausted("shard answered 429");
    case 503:
      return Status::Unavailable("shard answered 503");
    case 504:
      return Status::DeadlineExceeded("shard answered 504");
    default:
      break;
  }
  if (resp.status >= 400 && resp.status < 500) {
    return Status::InvalidArgument("shard answered " +
                                   std::to_string(resp.status));
  }
  return Status::Internal("shard answered " + std::to_string(resp.status));
}

/// Renders one row value for the /shard/append payload. Typed by JSON kind
/// (string / integer / number / null), which the receiver's schema-driven
/// ValidateRow accepts directly; doubles use the strict %.17g form so a
/// finite value round-trips bit-exactly.
Result<std::string> AppendWireValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("null");
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::to_string(v.int64());
    case ValueType::kDouble:
      return net::JsonFiniteNumber(v.dbl());
    case ValueType::kString:
      return net::JsonString(v.str());
  }
  return Status::InvalidArgument("unencodable value type");
}

}  // namespace

RemoteShardClient::RemoteShardClient(size_t shard_index,
                                     ShardEndpoint endpoint,
                                     RemoteShardOptions options,
                                     MetricsRegistry* metrics)
    : shard_index_(shard_index),
      endpoint_(std::move(endpoint)),
      options_(std::move(options)) {
  if (metrics != nullptr) {
    retries_counter_ = metrics->counter("shard_rpc_retries");
    hedges_counter_ = metrics->counter("shard_rpc_hedges");
  }
}

bool RemoteShardClient::IsTransportError(const Status& s) {
  // kUnavailable: the bytes never made it (or never came back).
  // kInternal: the shard's own transient machinery failed (its 500s map
  // here) — the same class storage retries treat as transient.
  // kParseError: bytes arrived but are corrupt (torn write, CRC mismatch);
  // a fresh exchange produces fresh bytes.
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kInternal ||
         s.code() == StatusCode::kParseError;
}

std::chrono::milliseconds RemoteShardClient::HedgeDelay() const {
  std::lock_guard<std::mutex> lock(latency_mu_);
  if (latency_window_.empty()) return options_.hedge_floor;
  std::vector<std::chrono::milliseconds> sorted = latency_window_;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx =
      std::min(sorted.size() - 1, (sorted.size() * 95 + 99) / 100);
  return std::max(sorted[idx], options_.hedge_floor);
}

void RemoteShardClient::RecordLatency(std::chrono::milliseconds sample) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(sample);
  } else {
    latency_window_[latency_next_] = sample;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

Status RemoteShardClient::Health(std::chrono::milliseconds timeout) {
  auto resp = net::HttpExchange(
      endpoint_.host, endpoint_.port, "GET", "/healthz", "", {},
      std::chrono::steady_clock::now() + timeout);
  if (!resp.ok()) return resp.status();
  if (resp->status != 200) {
    return Status::Unavailable("healthz answered " +
                               std::to_string(resp->status));
  }
  return Status::OK();
}

Result<ShardPartial> RemoteShardClient::AttemptOnce(
    const std::string& body, std::chrono::steady_clock::time_point deadline,
    const StopToken* stop, TraceContext* trace) {
  SOLAP_FAILPOINT("shard.rpc.send");
  // Propagate the remaining budget so the shard stops executing when the
  // coordinator has already given up waiting.
  std::vector<std::pair<std::string, std::string>> headers = {
      {"Content-Type", "application/json"}};
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    headers.emplace_back(
        "X-Solap-Deadline-Ms",
        std::to_string(std::max<int64_t>(left.count(), 1)));
  }
  auto resp = net::HttpExchange(endpoint_.host, endpoint_.port, "POST",
                                "/shard/exec", body, headers, deadline, stop);
  {
    Status injected = SOLAP_FAILPOINT_CHECK("shard.rpc.recv");
    if (!injected.ok()) return injected;
  }
  if (!resp.ok()) return resp.status();
  if (resp->status != 200) return MapApplicationError(*resp);

  {
    Status injected = SOLAP_FAILPOINT_CHECK("shard.rpc.decode");
    if (!injected.ok()) return injected;
  }
  TraceSpan span(trace, "shard.decode");
  span.Count("shard", shard_index_);
  span.Count("bytes", resp->body.size());
  auto partial = DecodeShardPartial(resp->body);
  if (!partial.ok()) span.Note("error", partial.status().ToString());
  return partial;
}

Result<ShardPartial> RemoteShardClient::AttemptWithHedge(
    const std::string& body, std::chrono::steady_clock::time_point deadline,
    const StopToken* stop, TraceContext* trace, ScanStats* stats) {
  if (!options_.hedge) return AttemptOnce(body, deadline, stop, trace);

  // Two racing attempts behind one result rendezvous. Each gets its own
  // stop source (mirroring the caller's deadline) so the loser tears down
  // within one poll slice of a winner arriving, and both threads are
  // joined before return — nothing outlives this frame.
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    bool done[2] = {false, false};
    Result<ShardPartial> result[2] = {
        Status::Unavailable("not attempted"),
        Status::Unavailable("not attempted")};
  };
  Rendezvous rv;
  StopSource attempt_stop[2];
  attempt_stop[0].SetDeadline(deadline);
  attempt_stop[1].SetDeadline(deadline);
  StopToken tokens[2] = {attempt_stop[0].token(), attempt_stop[1].token()};

  auto run = [&](int idx) {
    auto r = AttemptOnce(body, deadline, &tokens[idx], trace);
    std::lock_guard<std::mutex> lock(rv.mu);
    rv.result[idx] = std::move(r);
    rv.done[idx] = true;
    rv.cv.notify_all();
  };

  const auto hedge_at = std::chrono::steady_clock::now() + HedgeDelay();
  std::thread primary(run, 0);
  std::thread secondary;
  bool hedged = false;

  auto caller_stopped = [&] {
    return stop != nullptr && stop->stop_requested();
  };

  std::unique_lock<std::mutex> lock(rv.mu);
  for (;;) {
    const bool primary_done = rv.done[0];
    const bool secondary_done = !hedged || rv.done[1];
    if ((primary_done && rv.result[0].ok()) ||
        (hedged && rv.done[1] && rv.result[1].ok()) ||
        (primary_done && secondary_done)) {
      break;
    }
    if (caller_stopped()) {
      attempt_stop[0].RequestStop();
      attempt_stop[1].RequestStop();
    }
    if (!hedged && !primary_done &&
        std::chrono::steady_clock::now() >= hedge_at && !caller_stopped()) {
      hedged = true;
      if (stats != nullptr) ++stats->shard_rpc_hedges;
      if (hedges_counter_ != nullptr) hedges_counter_->Inc();
      secondary = std::thread(run, 1);
      continue;
    }
    rv.cv.wait_for(lock, std::chrono::milliseconds(10));
  }

  // Pick the winner before releasing anything: first successful result,
  // else the primary's failure (it is the representative error).
  Result<ShardPartial> winner =
      rv.done[0] && rv.result[0].ok()
          ? std::move(rv.result[0])
          : (hedged && rv.done[1] && rv.result[1].ok()
                 ? std::move(rv.result[1])
                 : std::move(rv.result[0]));
  lock.unlock();

  attempt_stop[0].RequestStop();
  attempt_stop[1].RequestStop();
  primary.join();
  if (secondary.joinable()) secondary.join();
  return winner;
}

Result<ShardPartial> RemoteShardClient::Execute(const CuboidSpec& spec,
                                                ExecStrategy strategy,
                                                const StopToken* stop,
                                                TraceContext* trace,
                                                ScanStats* stats) {
  auto deadline = stop != nullptr
                      ? stop->deadline()
                      : std::chrono::steady_clock::time_point::max();
  if (deadline == std::chrono::steady_clock::time_point::max() &&
      options_.default_timeout.count() > 0) {
    deadline = std::chrono::steady_clock::now() + options_.default_timeout;
  }

  const std::string body = "{\"v\":" + std::to_string(kShardWireVersion) +
                           ",\"strategy\":\"" + StrategyWireName(strategy) +
                           "\",\"spec\":" + EncodeCuboidSpec(spec) + "}";

  RetryBudget budget(options_.retry, deadline);
  Status last = Status::Unavailable("shard rpc never attempted");
  while (budget.BeforeAttempt(stop)) {
    if (budget.retries() > 0) {
      if (stats != nullptr) ++stats->shard_rpc_retries;
      if (retries_counter_ != nullptr) retries_counter_->Inc();
    }
    TraceSpan span(trace, "shard.rpc");
    span.Count("shard", shard_index_);
    span.Count("attempt", static_cast<uint64_t>(budget.attempts_started()));
    const auto started = std::chrono::steady_clock::now();
    auto r = AttemptWithHedge(body, deadline, stop, trace, stats);
    if (r.ok()) {
      RecordLatency(std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started));
      if (stats != nullptr) *stats += r->stats;
      span.Count("cells", r->cuboid->num_cells());
      return r;
    }
    last = r.status();
    span.Note("error", last.ToString());
    if (!IsTransportError(last)) return last;
  }
  return last;
}

Status RemoteShardClient::Append(const std::vector<std::vector<Value>>& rows,
                                 const std::vector<DictUpdate>& dicts,
                                 const StopToken* stop, TraceContext* trace) {
  auto deadline = stop != nullptr
                      ? stop->deadline()
                      : std::chrono::steady_clock::time_point::max();
  if (deadline == std::chrono::steady_clock::time_point::max() &&
      options_.default_timeout.count() > 0) {
    deadline = std::chrono::steady_clock::now() + options_.default_timeout;
  }

  std::ostringstream payload;
  payload << "{\"dicts\":[";
  for (size_t i = 0; i < dicts.size(); ++i) {
    if (i != 0) payload << ",";
    payload << "{\"col\":" << dicts[i].col << ",\"from\":" << dicts[i].from
            << ",\"values\":[";
    for (size_t j = 0; j < dicts[i].values.size(); ++j) {
      if (j != 0) payload << ",";
      payload << net::JsonString(dicts[i].values[j]);
    }
    payload << "]}";
  }
  payload << "],\"rows\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r != 0) payload << ",";
    payload << "[";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c != 0) payload << ",";
      SOLAP_ASSIGN_OR_RETURN(std::string v, AppendWireValue(rows[r][c]));
      payload << v;
    }
    payload << "]";
  }
  payload << "]}";
  const std::string body = EncodeShardEnvelope(payload.str());

  TraceSpan span(trace, "shard.rpc");
  span.Note("rpc", "append");
  span.Count("shard", shard_index_);
  span.Count("rows", rows.size());
  SOLAP_FAILPOINT("shard.rpc.send");
  std::vector<std::pair<std::string, std::string>> headers = {
      {"Content-Type", "application/json"}};
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    headers.emplace_back("X-Solap-Deadline-Ms",
                         std::to_string(std::max<int64_t>(left.count(), 1)));
  }
  auto resp =
      net::HttpExchange(endpoint_.host, endpoint_.port, "POST",
                        "/shard/append", body, headers, deadline, stop);
  {
    Status injected = SOLAP_FAILPOINT_CHECK("shard.rpc.recv");
    if (!injected.ok()) {
      span.Note("error", injected.ToString());
      return injected;
    }
  }
  if (!resp.ok()) {
    span.Note("error", resp.status().ToString());
    return resp.status();
  }
  if (resp->status != 200) {
    Status mapped = MapApplicationError(*resp);
    span.Note("error", mapped.ToString());
    return mapped;
  }
  return Status::OK();
}

}  // namespace solap
