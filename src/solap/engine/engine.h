// The S-OLAP engine (paper §4, Fig. 6): executes S-cuboid specifications
// through the counter-based (CB) or inverted-index (II) strategy, caches
// sequence groups, inverted indices and computed cuboids, and hosts the
// §6 extensions (iceberg filtering, online aggregation, incremental update).
#ifndef SOLAP_ENGINE_ENGINE_H_
#define SOLAP_ENGINE_ENGINE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "solap/common/epoch.h"
#include "solap/common/mem_budget.h"
#include "solap/common/stats.h"
#include "solap/common/status.h"
#include "solap/common/stop.h"
#include "solap/common/thread_pool.h"
#include "solap/common/trace.h"
#include "solap/cube/cuboid.h"
#include "solap/cube/cuboid_repository.h"
#include "solap/cube/cuboid_spec.h"
#include "solap/index/index_cache.h"
#include "solap/index/index_ops.h"
#include "solap/pattern/matcher.h"
#include "solap/pattern/regex.h"
#include "solap/seq/sequence_cache.h"

namespace solap {

/// S-cuboid construction strategy (paper §4.2).
enum class ExecStrategy {
  /// Counter-based: scan every sequence of every group per query (Fig. 7).
  kCounterBased,
  /// Inverted-index: join/merge/refine cached inverted lists (Fig. 15).
  kInvertedIndex,
  /// Let the StrategyOptimizer pick per query (paper §4.2.2's "S-OLAP
  /// query optimizer" future work; see engine/optimizer.h).
  kAuto,
};

/// Stable lowercase name of a strategy, used by EXPLAIN output and spans.
inline const char* StrategyName(ExecStrategy s) {
  switch (s) {
    case ExecStrategy::kCounterBased: return "counter-based";
    case ExecStrategy::kInvertedIndex: return "inverted-index";
    case ExecStrategy::kAuto: return "auto";
  }
  return "?";
}

/// Tuning knobs of the engine.
struct EngineOptions {
  ExecStrategy default_strategy = ExecStrategy::kInvertedIndex;
  /// Byte budget of the cuboid repository (0 disables cuboid caching).
  size_t repository_capacity_bytes = size_t{64} << 20;
  /// Disables inverted-index reuse across queries — every II query then
  /// rebuilds from scratch (used by benchmarks to isolate reuse benefits).
  bool enable_index_cache = true;
  /// §6 bitmap extension: L2 lists longer than this are bitmap-encoded
  /// during index joins so intersections become membership probes.
  /// 0 = pure sorted-list merging.
  size_t bitmap_join_threshold = 0;
  /// Counter-based scans partition each group across this many threads
  /// (per-thread cuboids merged at the end). 1 = sequential.
  size_t cb_threads = 1;
  /// Workers in the engine's shared compute pool, used by CB scan
  /// partitions and parallel II joins/merges. 0 = hardware concurrency;
  /// 1 = no pool, everything runs on the calling thread. The pool is
  /// created lazily on first use and is distinct from any service-layer
  /// pool, so a service worker blocking in a join can never starve it.
  size_t exec_threads = 1;
  /// Per-pair intersection kernel selection (galloping / bitmap probes,
  /// index/intersect.h). false = scalar linear merges everywhere — the
  /// A/B baseline for bench_ii_kernels.
  bool adaptive_join_kernels = true;
  /// Joins/merges with fewer lists than this stay serial even when a pool
  /// exists (fan-out overhead would dominate).
  size_t parallel_min_lists = 64;
  /// Joins/merges whose total posting-list work (sum of input list entries)
  /// is below this also stay serial — many tiny lists clear the list cutoff
  /// yet each shard finishes in microseconds, and the fork/join overhead
  /// made parallel QA1 slower than the scalar II path.
  size_t parallel_min_work = size_t{1} << 14;
  /// Number of shard-local executors a ShardedEngine partitions the data
  /// into (engine/sharded_engine.h). 1 = one monolithic engine, bit-identical
  /// to the legacy single-engine path. Plain SOlapEngine ignores this.
  size_t shards = 1;
  /// Table-backed sharding: the string column whose base-level code decides
  /// which shard owns a sequence. Queries whose CLUSTER BY does not include
  /// this attribute at its base level cannot be scattered (a coarser level
  /// could split one logical sequence across shards) and fall back to a
  /// monolithic engine. Empty = the table's first string column.
  std::string shard_by;
  /// Single byte budget covering everything the engine keeps resident or
  /// allocates in bulk: cached inverted indices, formed sequence groups,
  /// the cuboid repository, and transient II join scratch. When a charge
  /// would exceed it the operation gets ResourceExhausted and the engine
  /// reacts gracefully — caches skip the entry, II queries degrade to the
  /// CB path. 0 = unlimited (usage is still tracked for metrics).
  size_t memory_budget_bytes = 0;
  /// Streaming ingestion (docs/INGESTION.md): total delta-segment bytes
  /// across cached indices above which an ingest kicks the background merge
  /// immediately instead of waiting for the interval. 0 = kick after every
  /// ingest.
  size_t delta_merge_bytes = size_t{1} << 20;
  /// Background merge cadence: the merger thread wakes at least this often
  /// while deltas exist. 0 disables the periodic wake (merges then run only
  /// when kicked by the byte threshold or MergeDeltasNow).
  size_t merge_interval_ms = 200;
  /// false = never start the background merger; delta segments then persist
  /// until an explicit MergeDeltasNow() (deterministic tests, benches that
  /// A/B the two-segment read path).
  bool auto_delta_merge = true;
};

/// Per-execution control block: cooperative cancellation plus a sink for
/// the query's own statistics (the service layer reports per-query stats
/// and merges them into the engine totals atomically).
struct ExecControl {
  /// Polled by the CB scan loop, the II join loop and the regex scan.
  const StopToken* stop = nullptr;
  /// If set, receives exactly this execution's counters.
  ScanStats* stats_out = nullptr;
  /// If set, the execution records its span tree here (EXPLAIN ANALYZE,
  /// service trace sampling). nullptr = tracing off, near-zero overhead.
  TraceContext* trace = nullptr;
  /// If set, a degraded distributed scatter (engine/remote_shard.h) records
  /// the indices of shards whose slices are missing from the answer here;
  /// left empty for complete answers. Callers that pass this accept
  /// partial answers — the service layer flags them X-Solap-Partial.
  std::vector<size_t>* missing_shards = nullptr;
  /// If set, receives the engine epoch this execution's snapshot was taken
  /// at (EpochGate). Two answers reporting the same epoch saw identical
  /// engine state — the streaming-ingestion consistency contract.
  uint64_t* epoch_out = nullptr;
};

/// \brief The S-OLAP system facade.
///
/// Construct either over an event table (+ hierarchy registry), in which
/// case S-cuboid formation steps 1-4 run through the sequence query engine,
/// or over a pre-formed raw SequenceGroupSet (synthetic workloads that have
/// no event attributes beyond the symbol stream).
///
/// Query execution (`Execute` and the offline index builders) is
/// thread-safe: the repository, sequence cache and per-group index caches
/// synchronize internally (shared-lock reads, exclusive cache-populating
/// writes), and each execution counts into a private ScanStats merged into
/// the engine totals under a mutex. Mutating calls — `IngestRows`,
/// `EvictBefore`, `AppendRawSequences`, `NotifyTableAppend`, and the
/// background delta merge — serialize against queries through the engine's
/// EpochGate (common/epoch.h): every execution holds the gate shared for
/// its whole run and observes one consistent epoch, so writers no longer
/// need the caller to quiesce (see DESIGN.md §11, docs/INGESTION.md).
class SOlapEngine {
 public:
  SOlapEngine(const EventTable* table, const HierarchyRegistry* hierarchies,
              EngineOptions options = {});
  /// Mutable-table overload: identical, but additionally enables the
  /// streaming-ingestion write path (`IngestRows`, `EvictBefore`) on this
  /// engine — the table must outlive it and must not be mutated behind the
  /// engine's back.
  SOlapEngine(EventTable* table, const HierarchyRegistry* hierarchies,
              EngineOptions options = {});
  SOlapEngine(std::shared_ptr<SequenceGroupSet> raw_groups,
              const HierarchyRegistry* hierarchies,
              EngineOptions options = {});
  ~SOlapEngine();

  SOlapEngine(const SOlapEngine&) = delete;
  SOlapEngine& operator=(const SOlapEngine&) = delete;

  // -- Query execution -----------------------------------------------------

  /// Executes `spec` with the default strategy. Results are served from the
  /// cuboid repository when the identical specification was answered before.
  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec);
  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec,
                                                 ExecStrategy strategy);
  /// Full-control variant: cancellation/deadline token and per-query stats.
  Result<std::shared_ptr<const SCuboid>> Execute(const CuboidSpec& spec,
                                                 ExecStrategy strategy,
                                                 const ExecControl& control);

  /// Online aggregation (paper §6): runs `spec` with the CB strategy,
  /// invoking `progress` after every `report_every` sequences with the
  /// partial cuboid and the fraction of sequences processed so far. The
  /// callback may return false to stop early, in which case the partial
  /// (approximate) cuboid is returned and *not* cached.
  using ProgressFn = std::function<bool(const SCuboid& partial,
                                        double fraction_processed)>;
  Result<std::shared_ptr<const SCuboid>> ExecuteOnline(
      const CuboidSpec& spec, size_t report_every, const ProgressFn& progress);

  // -- Offline index precomputation (paper §4.2.2) ---------------------------

  /// Builds the complete size-m inverted index whose positions all use
  /// `position_ref` for every sequence group formed by `spec`'s formation
  /// clauses (the paper precomputes size-2 indices at the finest level).
  Status PrecomputeIndex(const CuboidSpec& spec, size_t m,
                         const LevelRef& position_ref);

  /// Runs S-cuboid formation steps 1-4 for `spec` and stores the result in
  /// the sequence cache. Benchmarks call this so that query timings measure
  /// S-cuboid construction (steps 5-6), matching the paper's architecture
  /// where formation is offloaded and cached (Fig. 6).
  Status WarmSequenceCache(const SequenceSpec& spec);

  /// Builds the complete index of `shape` for every sequence group formed
  /// by `formation` and caches them (the MaterializationAdvisor's build
  /// hook; also usable directly for hand-picked shapes).
  Status MaterializeIndex(const SequenceSpec& formation,
                          const IndexShape& shape);

  // -- Incremental update (paper §6) ----------------------------------------

  /// Raw-group engines: appends new sequences (base-code streams) to group
  /// `group_idx`, extending every cached complete index of that group with
  /// the new sequences instead of rebuilding (join-derived filtered indices
  /// are dropped). Cached cuboids over the data are invalidated.
  Status AppendRawSequences(size_t group_idx,
                            const std::vector<std::vector<Code>>& sequences);

  /// Table-backed engines: must be called after rows are appended to the
  /// event table. Invalidates formed sequence groups, indices and cuboids
  /// (conservative correctness; see DESIGN.md).
  void NotifyTableAppend();

  // -- Streaming ingestion (docs/INGESTION.md) -------------------------------

  /// Appends a batch of event rows under the epoch gate and incrementally
  /// maintains every cached structure: formations whose new rows only
  /// introduce NEW cluster keys are extended in place (new sequences append
  /// at the tail, cached complete indices grow delta segments, patchable
  /// cached cuboids are delta-patched); a batch that touches an EXISTING
  /// cluster key conservatively invalidates that formation and its
  /// dependents. All-or-nothing: a validation failure rejects the whole
  /// batch and the epoch does not advance (nor for an empty batch).
  /// Requires the mutable-table constructor; InvalidArgument otherwise.
  Status IngestRows(const std::vector<std::vector<Value>>& rows,
                    TraceContext* trace = nullptr);

  /// Applies a replicated dictionary tail to the backing table under the
  /// write gate: codes [from, from+values.size()) must match the sender's.
  /// The remote-append path (net/shard_routes.cc) uses this to keep a
  /// replica's dictionaries code-identical to its coordinator slice before
  /// the replicated rows are re-encoded. Not an observable mutation — no
  /// row references the new codes yet — so the epoch does not advance.
  Status SyncTableDictionary(int col, size_t from,
                             const std::vector<std::string>& values);

  /// Time-window retention: logically evicts every row whose int64 or
  /// timestamp column `order_attr` is below `cutoff`. Formed groups,
  /// indices and cuboids are invalidated (their governor charges refunded);
  /// subsequent formations — fresh or incremental — apply the cutoff, so
  /// rebuilds and extensions agree on the visible data. Monotone: a cutoff
  /// below the current one is a no-op on the filter (epoch still advances).
  Status EvictBefore(const std::string& order_attr, int64_t cutoff);

  /// The engine epoch (EpochGate) — advances on every committed mutation,
  /// even while a writer is inside its critical section.
  uint64_t epoch() const { return gate_.epoch(); }

  /// Foreground delta merge: folds every cached index's delta segment into
  /// its base containers under the exclusive gate. Logical content is
  /// unchanged, so the epoch does not advance. The background merger calls
  /// this on its interval; tests call it for determinism.
  Status MergeDeltasNow(TraceContext* trace = nullptr);

  /// Live delta-segment footprint across all cached indices.
  struct DeltaStats {
    size_t segments = 0;  ///< cached indices currently holding a delta
    size_t bytes = 0;     ///< summed DeltaByteSize of those indices
  };
  DeltaStats DeltaSnapshot() const;

  // -- Introspection ---------------------------------------------------------

  /// Direct reference to the engine totals — single-threaded use only
  /// (benches, tests). Concurrent readers use StatsSnapshot().
  ScanStats& stats() { return stats_; }
  /// Consistent copy of the engine totals, safe under concurrent queries.
  ScanStats StatsSnapshot() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  const CuboidRepository& repository() const { return repository_; }
  /// Bytes of inverted indices currently cached across all groups.
  size_t IndexCacheBytes() const;
  /// The engine-wide memory budget accountant (resident caches + join
  /// scratch). Thread-safe for reads; the budget is fixed at construction.
  const MemoryGovernor& governor() const { return governor_; }

  const HierarchyRegistry* hierarchies() const { return hierarchies_; }

  // -- Introspection for the optimizer and tools ----------------------------

  /// The sequence groups `seq` resolves to (cached formation).
  Result<std::shared_ptr<SequenceGroupSet>> GroupsFor(const SequenceSpec& s) {
    return GetGroups(s);
  }
  /// Ordinals of the groups surviving `spec`'s global slices.
  Result<std::vector<size_t>> SelectedGroupsFor(const SequenceGroupSet& set,
                                                const CuboidSpec& spec) const {
    return SelectGroups(set, spec);
  }
  /// The index cache of one group, or nullptr if none exists yet.
  const GroupIndexCache* FindIndexCache(const SequenceGroupSet& set,
                                        size_t group_idx) const;

 private:
  /// Everything resolved once per query execution.
  struct QueryContext {
    const CuboidSpec* spec = nullptr;
    PatternTemplate tmpl;    // plain templates
    RegexTemplate rtmpl;     // regex templates (spec->is_regex())
    std::shared_ptr<SequenceGroupSet> groups;
    std::vector<size_t> selected_groups;
    int measure_col = -1;
    SCuboid* cuboid = nullptr;
    /// This execution's private counters (merged into stats_ at the end).
    ScanStats* stats = nullptr;
    /// Cancellation/deadline token, nullptr when uncontrolled.
    const StopToken* stop = nullptr;
    /// Span sink of this execution, nullptr when tracing is off.
    TraceContext* trace = nullptr;
  };

  Result<std::shared_ptr<const SCuboid>> ExecuteWithStats(
      const CuboidSpec& spec, ExecStrategy strategy,
      const ExecControl& control, ScanStats* stats);
  /// ExecuteWithStats body; bad_alloc escaping it is caught at the query
  /// boundary (ExecuteWithStats) and mapped to ResourceExhausted.
  Result<std::shared_ptr<const SCuboid>> ExecuteGuarded(
      const CuboidSpec& spec, ExecStrategy strategy,
      const ExecControl& control, ScanStats* stats);
  Result<QueryContext> Prepare(const CuboidSpec& spec, SCuboid* cuboid);
  /// Applies human-readable labels to every cell of `cuboid` (shared by the
  /// query finalize step and the ingest-time cuboid patcher).
  static Status LabelCells(SCuboid* cuboid, const SequenceGroupSet& set,
                           const HierarchyRegistry* reg,
                           const std::vector<PatternDim>& dims);
  Result<std::shared_ptr<SequenceGroupSet>> GetGroups(const SequenceSpec& s);
  Result<std::vector<size_t>> SelectGroups(const SequenceGroupSet& set,
                                           const CuboidSpec& spec) const;
  std::vector<DimDescriptor> MakeDimDescriptors(const CuboidSpec& spec) const;

  /// Per-assignment measure total over the matched events (`idx`) or, for
  /// the data-go restriction, over the whole sequence.
  double ContentSum(const QueryContext& ctx, SequenceGroup& group, Sid s,
                    const uint32_t* idx, size_t m, bool whole_sequence) const;

  /// Folds one assignment into `cuboid`.
  void AddAssignment(const QueryContext& ctx, SequenceGroup& group,
                     const BoundPattern& bp, const PatternKey& dim_codes,
                     Sid s, const uint32_t* idx, SCuboid* cuboid) const;

  // Regex templates (engine/regex_exec.cc): always a counter-based scan.
  Status RunRegex(QueryContext& ctx);

  // CB strategy (engine/counter_based.cc).
  Status RunCounterBased(QueryContext& ctx);
  /// Scans sequences [begin, end) of one group, folding assignments into
  /// `cuboid` and counting into `stats` — the unit shared by sequential
  /// CB, multi-threaded CB (per-thread cuboids) and online aggregation.
  Status CounterScanRange(const QueryContext& ctx, SequenceGroup& group,
                          const BoundPattern& bp, Sid begin, Sid end,
                          SCuboid* cuboid, ScanStats* stats) const;

  // II strategy (engine/query_indices.cc).
  Status RunInvertedIndex(QueryContext& ctx);
  Result<std::shared_ptr<InvertedIndex>> ObtainIndex(
      GroupIndexCache& cache, SequenceGroup& group,
      const SequenceGroupSet& set, const PatternTemplate& tmpl,
      const BoundPattern& bp, ScanStats* stats, const StopToken* stop,
      TraceContext* trace);
  /// Counting step shared by both strategies' index path (Fig. 15 l. 10-11).
  Status CountFromIndex(QueryContext& ctx, SequenceGroup& group,
                        const BoundPattern& bp, const InvertedIndex& index);

  /// Fine-to-coarse code map between two levels of a string dimension.
  Result<std::vector<Code>> LevelMapFor(const SequenceGroupSet& set,
                                        const std::string& attr,
                                        int from_level, int to_level) const;

  GroupIndexCache& CacheFor(const SequenceGroupSet& set, size_t group_idx);

  // -- Streaming-ingestion internals (engine/ingest.cc) ----------------------

  /// One group's appended-sid range within an extended formation.
  struct GroupDelta {
    size_t group_idx = 0;
    Sid old_count = 0;  ///< sids >= old_count are the appended tail
  };
  using FormationDeltas =
      std::unordered_map<const SequenceGroupSet*, std::vector<GroupDelta>>;

  /// Attempts the pattern-invariant extension of one cached formation with
  /// table rows [from_row, num_rows). Returns false when any new row maps
  /// to an existing cluster key — the caller must invalidate instead. On
  /// success records the touched groups' deltas and delta-extends their
  /// cached complete indices.
  Result<bool> TryExtendFormation(const SequenceSpec& spec,
                                  const std::shared_ptr<SequenceGroupSet>& set,
                                  RowId from_row, FormationDeltas* deltas,
                                  ScanStats* stats);

  /// Walks the cuboid repository after an append: delta-patches entries
  /// whose spec is AppendPatchable and whose formation was extended,
  /// invalidates the rest (counted in stats).
  void PatchOrInvalidateCuboids(const FormationDeltas& deltas,
                                ScanStats* stats);

  /// Drops the per-group index caches keyed by `set`'s identity.
  void DropIndexCachesFor(const SequenceGroupSet& set);

  /// Lazily starts the background merger (no-op when auto_delta_merge is
  /// off); kicks it when the delta byte threshold is exceeded.
  void EnsureMerger();
  void MaybeKickMerger();
  void MergerLoop();
  void StopMerger();

  /// The engine's lazily-created compute pool, or nullptr when
  /// options_.exec_threads resolves to a single thread. Thread-safe.
  ThreadPool* ComputePool();

  /// Join/merge execution knobs derived from options_ (includes the
  /// compute pool when one is configured).
  JoinExecOptions JoinExec();

  /// Folds one execution's counters into the engine totals.
  void MergeStats(const ScanStats& delta) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ += delta;
  }

  const EventTable* table_ = nullptr;
  /// Non-null only via the mutable-table constructor; gates IngestRows.
  EventTable* mutable_table_ = nullptr;
  std::shared_ptr<SequenceGroupSet> raw_groups_;
  const HierarchyRegistry* hierarchies_;
  EngineOptions options_;

  /// Serializes mutations (ingest, merge, eviction, admin calls) against
  /// query executions; the source of the query-visible epoch.
  EpochGate gate_;

  /// Retention window installed by EvictBefore (read under the shared
  /// gate by formation, written under the exclusive gate).
  RowFilter retention_;

  // Background delta merger (started lazily by the first ingest).
  std::thread merger_;
  std::condition_variable merge_cv_;
  std::mutex merge_mu_;
  bool merger_started_ = false;
  bool merge_stop_ = false;
  bool merge_kick_ = false;

  // Declared before every cache that charges it: caches refund their
  // charges on destruction, so the governor must be torn down last.
  MemoryGovernor governor_;
  SequenceCache sequence_cache_;
  CuboidRepository repository_;
  // Index caches keyed by (group set, group ordinal). The map itself is
  // guarded by index_caches_mu_; each GroupIndexCache synchronizes
  // internally (references stay valid across inserts).
  std::unordered_map<std::string, GroupIndexCache> index_caches_;
  mutable std::mutex index_caches_mu_;
  // Shared intra-query compute pool (see EngineOptions::exec_threads).
  std::unique_ptr<ThreadPool> compute_pool_;
  bool compute_pool_created_ = false;
  std::mutex compute_pool_mu_;
  ScanStats stats_;
  mutable std::mutex stats_mu_;
};

}  // namespace solap

#endif  // SOLAP_ENGINE_ENGINE_H_
