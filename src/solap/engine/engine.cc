#include "solap/engine/engine.h"

#include <algorithm>
#include <new>
#include <thread>

#include "solap/common/failpoint.h"
#include "solap/engine/optimizer.h"
#include "solap/index/build_index.h"
#include "solap/index/index_ops.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {

SOlapEngine::SOlapEngine(const EventTable* table,
                         const HierarchyRegistry* hierarchies,
                         EngineOptions options)
    : table_(table),
      hierarchies_(hierarchies),
      options_(options),
      governor_(options.memory_budget_bytes),
      repository_(options.repository_capacity_bytes) {
  sequence_cache_.set_governor(&governor_);
  repository_.set_governor(&governor_);
}

SOlapEngine::SOlapEngine(EventTable* table,
                         const HierarchyRegistry* hierarchies,
                         EngineOptions options)
    : SOlapEngine(static_cast<const EventTable*>(table), hierarchies,
                  options) {
  mutable_table_ = table;
}

SOlapEngine::SOlapEngine(std::shared_ptr<SequenceGroupSet> raw_groups,
                         const HierarchyRegistry* hierarchies,
                         EngineOptions options)
    : raw_groups_(std::move(raw_groups)),
      hierarchies_(hierarchies),
      options_(options),
      governor_(options.memory_budget_bytes),
      repository_(options.repository_capacity_bytes) {
  sequence_cache_.set_governor(&governor_);
  repository_.set_governor(&governor_);
}

SOlapEngine::~SOlapEngine() { StopMerger(); }

Result<std::shared_ptr<const SCuboid>> SOlapEngine::Execute(
    const CuboidSpec& spec) {
  return Execute(spec, options_.default_strategy);
}

// Applies labels to every cell of `cuboid` using the group set's global
// bindings plus per-pattern-dimension bindings.
Status SOlapEngine::LabelCells(SCuboid* cuboid, const SequenceGroupSet& set,
                               const HierarchyRegistry* reg,
                               const std::vector<PatternDim>& dims) {
  std::vector<DimensionBinding> pattern_bindings;
  for (const PatternDim& d : dims) {
    SOLAP_ASSIGN_OR_RETURN(DimensionBinding b,
                           set.BindDimension(reg, d.ref));
    pattern_bindings.push_back(std::move(b));
  }
  const std::vector<DimensionBinding>& gb = set.global_bindings();
  const size_t q = gb.size();
  for (const auto& [key, cell] : cuboid->cells()) {
    for (size_t i = 0; i < q; ++i) {
      cuboid->SetLabel(i, key[i], gb[i].Label(key[i]));
    }
    for (size_t d = 0; d < pattern_bindings.size(); ++d) {
      cuboid->SetLabel(q + d, key[q + d], pattern_bindings[d].Label(key[q + d]));
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const SCuboid>> SOlapEngine::Execute(
    const CuboidSpec& spec, ExecStrategy strategy) {
  return Execute(spec, strategy, ExecControl{});
}

Result<std::shared_ptr<const SCuboid>> SOlapEngine::Execute(
    const CuboidSpec& spec, ExecStrategy strategy,
    const ExecControl& control) {
  // The whole execution runs against one epoch snapshot: writers (ingest,
  // merge, eviction) are held off until the shared guard drops.
  EpochGate::ReadLock rl(gate_);
  if (control.epoch_out != nullptr) *control.epoch_out = rl.epoch();
  ScanStats local;
  auto result = ExecuteWithStats(spec, strategy, control, &local);
  MergeStats(local);
  if (control.stats_out != nullptr) *control.stats_out = local;
  return result;
}

namespace {

// An II failure worth re-answering through the CB path: transient faults
// (kInternal) and memory pressure (kResourceExhausted). User errors,
// cancellation and deadlines are final — rerunning could not change them
// (and a timed-out query must not burn a second, slower pass).
bool DegradableToCb(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kInternal;
}

}  // namespace

Result<std::shared_ptr<const SCuboid>> SOlapEngine::ExecuteWithStats(
    const CuboidSpec& spec, ExecStrategy strategy, const ExecControl& control,
    ScanStats* stats) {
  // The query boundary: allocation failure anywhere in execution surfaces
  // as a per-query ResourceExhausted instead of killing the process.
  try {
    return ExecuteGuarded(spec, strategy, control, stats);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "query aborted: memory exhausted during execution");
  }
}

Result<std::shared_ptr<const SCuboid>> SOlapEngine::ExecuteGuarded(
    const CuboidSpec& spec, ExecStrategy strategy, const ExecControl& control,
    ScanStats* stats) {
  TraceContext* trace = control.trace;
  if (strategy == ExecStrategy::kAuto && !spec.is_regex()) {
    TraceSpan span(trace, "optimize");
    StrategyOptimizer optimizer(this);
    SOLAP_ASSIGN_OR_RETURN(StrategyChoice choice, optimizer.Choose(spec));
    strategy = choice.strategy;
    span.Note("strategy", StrategyName(strategy));
    span.Note("reason", choice.reason);
    span.Count("cb_cost", static_cast<uint64_t>(choice.cb_cost));
    span.Count("ii_cost", static_cast<uint64_t>(choice.ii_cost));
  }
  const std::string key = spec.CanonicalString();
  {
    TraceSpan span(trace, "repo.lookup");
    if (auto hit = repository_.Lookup(key)) {
      ++stats->repository_hits;
      span.Note("result", "hit");
      return hit;
    }
    span.Note("result", "miss");
  }
  SOLAP_RETURN_NOT_OK(CheckStop(control.stop, "query execution"));
  auto cuboid = std::make_shared<SCuboid>(MakeDimDescriptors(spec), spec.agg);
  TraceSpan prep_span(trace, "prepare");
  SOLAP_ASSIGN_OR_RETURN(QueryContext ctx, Prepare(spec, cuboid.get()));
  if (prep_span.active()) {
    prep_span.Count("groups", ctx.groups->groups().size());
    prep_span.Count("selected_groups", ctx.selected_groups.size());
  }
  prep_span.End();
  ctx.stats = stats;
  ctx.stop = control.stop;
  ctx.trace = trace;
  if (spec.is_regex()) {
    TraceSpan span(trace, "exec.regex");
    SOLAP_RETURN_NOT_OK(RunRegex(ctx));
  } else if (strategy == ExecStrategy::kCounterBased) {
    TraceSpan span(trace, "exec.cb");
    SOLAP_RETURN_NOT_OK(RunCounterBased(ctx));
  } else {
    // II with graceful degradation: a transient failure (injected fault,
    // budget reject, allocation failure inside index build/join) falls
    // back to the CB scan, which needs no auxiliary structures and
    // produces the bit-identical cuboid (both strategies fold the same
    // assignments; see DESIGN.md "Robustness & fault model").
    Status ii = Status::OK();
    {
      TraceSpan span(trace, "exec.ii");
      try {
        ii = RunInvertedIndex(ctx);
      } catch (const std::bad_alloc&) {
        ii = Status::ResourceExhausted(
            "inverted-index execution ran out of memory");
      }
      if (!ii.ok()) span.Note("error", ii.message());
    }
    if (!ii.ok()) {
      if (!DegradableToCb(ii.code())) return ii;
      ++stats->degraded_queries;
      TraceSpan span(trace, "exec.degrade_cb");
      span.Note("cause", ii.message());
      // The failed II run may have folded cells already — restart from a
      // fresh cuboid and context.
      cuboid = std::make_shared<SCuboid>(MakeDimDescriptors(spec), spec.agg);
      SOLAP_ASSIGN_OR_RETURN(ctx, Prepare(spec, cuboid.get()));
      ctx.stats = stats;
      ctx.stop = control.stop;
      ctx.trace = trace;
      SOLAP_RETURN_NOT_OK(RunCounterBased(ctx));
    }
  }
  TraceSpan fin_span(trace, "finalize");
  if (spec.iceberg_min_count.has_value()) {
    cuboid->ApplyIceberg(*spec.iceberg_min_count);
  }
  SOLAP_RETURN_NOT_OK(
      LabelCells(cuboid.get(), *ctx.groups, hierarchies_, spec.dims));
  repository_.Insert(key, cuboid, spec, gate_.epoch());
  fin_span.Count("cells", cuboid->cells().size());
  return std::shared_ptr<const SCuboid>(cuboid);
}

Result<SOlapEngine::QueryContext> SOlapEngine::Prepare(const CuboidSpec& spec,
                                                       SCuboid* cuboid) {
  QueryContext ctx;
  ctx.spec = &spec;
  ctx.cuboid = cuboid;
  if (spec.is_regex()) {
    if (spec.predicate != nullptr) {
      return Status::NotImplemented(
          "matching predicates are not supported with regex pattern "
          "templates (event placeholders are positional)");
    }
    SOLAP_ASSIGN_OR_RETURN(ctx.rtmpl,
                           RegexTemplate::Parse(spec.regex, spec.dims));
  } else {
    SOLAP_ASSIGN_OR_RETURN(ctx.tmpl, spec.MakeTemplate());
  }
  SOLAP_ASSIGN_OR_RETURN(ctx.groups, GetGroups(spec.seq));
  SOLAP_ASSIGN_OR_RETURN(ctx.selected_groups,
                         SelectGroups(*ctx.groups, spec));
  if (spec.agg != AggKind::kCount) {
    if (ctx.groups->is_raw()) {
      return Status::InvalidArgument(
          "raw sequence groups carry no measure attributes; only COUNT is "
          "available");
    }
    if (spec.measure.empty()) {
      return Status::InvalidArgument(std::string(AggKindName(spec.agg)) +
                                     " requires a measure attribute");
    }
    SOLAP_ASSIGN_OR_RETURN(ctx.measure_col,
                           table_->schema().RequireField(spec.measure));
    const Field& f = table_->schema().field(ctx.measure_col);
    if (f.type != ValueType::kDouble && f.type != ValueType::kInt64) {
      return Status::InvalidArgument("measure attribute '" + spec.measure +
                                     "' must be numeric");
    }
  }
  return ctx;
}

Result<std::shared_ptr<SequenceGroupSet>> SOlapEngine::GetGroups(
    const SequenceSpec& s) {
  if (raw_groups_ != nullptr) return raw_groups_;
  if (auto cached = sequence_cache_.Lookup(s)) return cached;
  SOLAP_FAILPOINT("engine.formation");
  SequenceQueryEngine sqe(hierarchies_);
  // Fresh formations apply the same retention window incremental extension
  // does, so rebuild-vs-extend answers agree (docs/INGESTION.md).
  SOLAP_ASSIGN_OR_RETURN(
      std::shared_ptr<SequenceGroupSet> set,
      sqe.Build(*table_, s, retention_.col >= 0 ? &retention_ : nullptr));
  // Concurrent builders of the same formation converge on one canonical
  // set, keeping the per-group index caches (keyed by set identity) shared.
  return sequence_cache_.InsertIfAbsent(s, std::move(set));
}

Result<std::vector<size_t>> SOlapEngine::SelectGroups(
    const SequenceGroupSet& set, const CuboidSpec& spec) const {
  std::vector<size_t> selected(set.groups().size());
  for (size_t i = 0; i < selected.size(); ++i) selected[i] = i;
  for (const GlobalSlice& slice : spec.global_slices) {
    // Locate the global dimension the slice applies to.
    int dim = -1;
    for (size_t i = 0; i < set.global_dims().size(); ++i) {
      if (set.global_dims()[i].attr == slice.ref.attr) {
        dim = static_cast<int>(i);
        break;
      }
    }
    if (dim < 0) {
      return Status::InvalidArgument(
          "global slice on '" + slice.ref.attr +
          "' has no matching SEQUENCE GROUP BY dimension");
    }
    SOLAP_ASSIGN_OR_RETURN(
        std::vector<Code> allowed,
        set.global_bindings()[dim].AllowedCodes(slice.ref.level,
                                                slice.labels));
    std::vector<size_t> kept;
    for (size_t gi : selected) {
      Code c = set.groups()[gi].key()[dim];
      if (std::find(allowed.begin(), allowed.end(), c) != allowed.end()) {
        kept.push_back(gi);
      }
    }
    selected = std::move(kept);
  }
  return selected;
}

std::vector<DimDescriptor> SOlapEngine::MakeDimDescriptors(
    const CuboidSpec& spec) const {
  std::vector<DimDescriptor> dims;
  for (const LevelRef& r : spec.seq.group_by) {
    dims.push_back(DimDescriptor{r.attr, r, /*is_pattern=*/false});
  }
  for (const PatternDim& d : spec.dims) {
    dims.push_back(DimDescriptor{d.symbol, d.ref, /*is_pattern=*/true});
  }
  return dims;
}

double SOlapEngine::ContentSum(const QueryContext& ctx, SequenceGroup& group,
                               Sid s, const uint32_t* idx, size_t m,
                               bool whole_sequence) const {
  double sum = 0.0;
  std::span<const RowId> rows = group.Rows(s);
  auto value_of = [&](RowId row) {
    const Field& f = table_->schema().field(ctx.measure_col);
    return f.type == ValueType::kDouble
               ? table_->DoubleAt(row, ctx.measure_col)
               : static_cast<double>(table_->Int64At(row, ctx.measure_col));
  };
  if (whole_sequence) {
    for (RowId row : rows) sum += value_of(row);
  } else {
    for (size_t i = 0; i < m; ++i) sum += value_of(rows[idx[i]]);
  }
  return sum;
}

void SOlapEngine::AddAssignment(const QueryContext& ctx,
                                SequenceGroup& group, const BoundPattern& bp,
                                const PatternKey& dim_codes, Sid s,
                                const uint32_t* idx, SCuboid* cuboid) const {
  (void)bp;
  CellKey cell = group.key();
  cell.insert(cell.end(), dim_codes.begin(), dim_codes.end());
  if (ctx.measure_col < 0) {
    cuboid->AddCountOnly(cell);
    return;
  }
  bool whole = ctx.spec->restriction == CellRestriction::kLeftMaxDataGo;
  double v = ContentSum(ctx, group, s, idx, ctx.tmpl.num_positions(), whole);
  cuboid->Add(cell, v);
}

Status SOlapEngine::PrecomputeIndex(const CuboidSpec& spec, size_t m,
                                    const LevelRef& position_ref) {
  EpochGate::ReadLock rl(gate_);
  SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                         GetGroups(spec.seq));
  IndexShape shape;
  shape.kind = spec.kind;
  shape.positions.assign(m, position_ref);
  ScanStats local;
  for (size_t gi = 0; gi < groups->groups().size(); ++gi) {
    GroupIndexCache& cache = CacheFor(*groups, gi);
    if (cache.Find(shape, "") != nullptr) continue;
    auto built = BuildIndex(&groups->groups()[gi], *groups, hierarchies_,
                            shape, &local, &governor_);
    if (!built.ok()) {
      MergeStats(local);
      return built.status();
    }
    Status inserted = cache.Insert(*std::move(built));
    if (!inserted.ok()) {
      MergeStats(local);
      return inserted;
    }
  }
  MergeStats(local);
  return Status::OK();
}

Status SOlapEngine::MaterializeIndex(const SequenceSpec& formation,
                                     const IndexShape& shape) {
  EpochGate::ReadLock rl(gate_);
  SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                         GetGroups(formation));
  ScanStats local;
  for (size_t gi = 0; gi < groups->groups().size(); ++gi) {
    GroupIndexCache& cache = CacheFor(*groups, gi);
    if (cache.Find(shape, "") != nullptr) continue;
    auto built = BuildIndex(&groups->groups()[gi], *groups, hierarchies_,
                            shape, &local, &governor_);
    if (!built.ok()) {
      MergeStats(local);
      return built.status();
    }
    Status inserted = cache.Insert(*std::move(built));
    if (!inserted.ok()) {
      MergeStats(local);
      return inserted;
    }
  }
  MergeStats(local);
  return Status::OK();
}

Status SOlapEngine::WarmSequenceCache(const SequenceSpec& spec) {
  EpochGate::ReadLock rl(gate_);
  SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<SequenceGroupSet> groups,
                         GetGroups(spec));
  (void)groups;
  return Status::OK();
}

void SOlapEngine::NotifyTableAppend() {
  EpochGate::WriteLock wl(gate_);
  sequence_cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(index_caches_mu_);
    index_caches_.clear();
  }
  repository_.Clear();
}

size_t SOlapEngine::IndexCacheBytes() const {
  std::lock_guard<std::mutex> lock(index_caches_mu_);
  size_t bytes = 0;
  for (const auto& [key, cache] : index_caches_) bytes += cache.TotalBytes();
  return bytes;
}

Result<std::vector<Code>> SOlapEngine::LevelMapFor(
    const SequenceGroupSet& set, const std::string& attr, int from_level,
    int to_level) const {
  ConceptHierarchy* h =
      hierarchies_ != nullptr ? hierarchies_->Find(attr) : nullptr;
  if (h == nullptr) {
    return Status::InvalidArgument("attribute '" + attr +
                                   "' has no concept hierarchy");
  }
  const Dictionary* base_dict;
  if (set.is_raw()) {
    base_dict = &set.raw_dictionary();
  } else {
    SOLAP_ASSIGN_OR_RETURN(int col, set.table()->schema().RequireField(attr));
    base_dict = set.table()->dictionary(col);
    if (base_dict == nullptr) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' is not a string dimension");
    }
  }
  return h->LevelToLevel(*base_dict, from_level, to_level);
}

GroupIndexCache& SOlapEngine::CacheFor(const SequenceGroupSet& set,
                                       size_t group_idx) {
  std::string key =
      std::to_string(reinterpret_cast<uintptr_t>(&set)) + ":" +
      std::to_string(group_idx);
  // unordered_map references are stable across inserts, so the returned
  // cache outlives the lock; the cache itself synchronizes internally.
  std::lock_guard<std::mutex> lock(index_caches_mu_);
  GroupIndexCache& cache = index_caches_[key];
  cache.set_governor(&governor_);
  return cache;
}

const GroupIndexCache* SOlapEngine::FindIndexCache(
    const SequenceGroupSet& set, size_t group_idx) const {
  std::string key =
      std::to_string(reinterpret_cast<uintptr_t>(&set)) + ":" +
      std::to_string(group_idx);
  std::lock_guard<std::mutex> lock(index_caches_mu_);
  auto it = index_caches_.find(key);
  return it == index_caches_.end() ? nullptr : &it->second;
}

ThreadPool* SOlapEngine::ComputePool() {
  std::lock_guard<std::mutex> lock(compute_pool_mu_);
  if (!compute_pool_created_) {
    compute_pool_created_ = true;
    const size_t hw =
        std::max<size_t>(std::thread::hardware_concurrency(), 1);
    size_t n = options_.exec_threads;
    if (n == 0) n = hw;
    // CB partitioning shares this pool: an explicit cb_threads > 1 must
    // still get workers even when exec_threads was left at its default
    // (clamped to the hardware — see RunCounterBased).
    n = std::max(n, std::min<size_t>(options_.cb_threads, hw));
    if (n > 1) compute_pool_ = std::make_unique<ThreadPool>(n);
  }
  return compute_pool_.get();
}

JoinExecOptions SOlapEngine::JoinExec() {
  JoinExecOptions exec;
  exec.bitmap_threshold = options_.bitmap_join_threshold;
  exec.adaptive_kernels = options_.adaptive_join_kernels;
  exec.pool = ComputePool();
  exec.parallel_min_lists = options_.parallel_min_lists;
  exec.parallel_min_work = options_.parallel_min_work;
  exec.governor = &governor_;
  return exec;
}

}  // namespace solap
