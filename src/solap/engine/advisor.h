// Offline index materialization advisor — the paper's closing §4.2.2
// question: "Another interesting question concerns 'which' inverted
// indices should be materialized offline. A related problem is thus about
// how to determine the lists to be built given a set of frequently asked
// queries."
//
// Given an expected workload (weighted S-cuboid specifications) and a
// storage budget, the advisor enumerates the complete indices those
// queries would touch (every size-2 window plus the full-length shape of
// short templates), estimates each candidate's benefit (sequence scans
// avoided per workload execution) and footprint (by building it over a
// sample of each group and extrapolating), and picks greedily by
// benefit-per-byte until the budget is exhausted.
#ifndef SOLAP_ENGINE_ADVISOR_H_
#define SOLAP_ENGINE_ADVISOR_H_

#include <string>
#include <vector>

#include "solap/engine/engine.h"

namespace solap {

/// One entry of the expected workload.
struct WorkloadQuery {
  CuboidSpec spec;
  /// Relative frequency of the query (arbitrary positive scale).
  double weight = 1.0;
};

/// A recommended complete index (built for every sequence group of the
/// formation clauses).
struct IndexRecommendation {
  SequenceSpec formation;
  IndexShape shape;
  /// Estimated sequence scans avoided per execution of the workload.
  double benefit = 0;
  /// Extrapolated storage footprint across all groups.
  size_t estimated_bytes = 0;

  std::string ToString() const;
};

/// \brief Greedy benefit-per-byte advisor over the engine's data.
class MaterializationAdvisor {
 public:
  explicit MaterializationAdvisor(SOlapEngine* engine) : engine_(engine) {}

  /// Ranks candidate indices for `workload` and returns the prefix fitting
  /// in `budget_bytes`. Regex queries contribute no candidates (they are
  /// scan-based). Candidates already cached by the engine are skipped.
  Result<std::vector<IndexRecommendation>> Recommend(
      const std::vector<WorkloadQuery>& workload, size_t budget_bytes);

  /// Builds every recommendation into the engine's index caches, making
  /// them available to subsequent queries (and to the optimizer).
  Status Materialize(const std::vector<IndexRecommendation>& recs);

  /// Sample size per group used for footprint extrapolation.
  void set_sample_sequences(size_t n) { sample_sequences_ = n; }

 private:
  SOlapEngine* engine_;
  size_t sample_sequences_ = 512;
};

}  // namespace solap

#endif  // SOLAP_ENGINE_ADVISOR_H_
