#include "solap/hierarchy/concept_hierarchy.h"

#include <algorithm>
#include <cstdio>

namespace solap {

ConceptHierarchy::ConceptHierarchy(std::vector<std::string> level_names)
    : level_names_(std::move(level_names)) {
  parents_.resize(level_names_.empty() ? 0 : level_names_.size() - 1);
  base_to_level_.resize(level_names_.size());
  level_dicts_.resize(level_names_.size());
  for (size_t l = 1; l < level_names_.size(); ++l) {
    level_dicts_[l] = std::make_unique<Dictionary>();
  }
}

int ConceptHierarchy::LevelIndex(const std::string& name) const {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    if (level_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status ConceptHierarchy::SetParent(int level, const std::string& child,
                                   const std::string& parent) {
  if (level < 0 || level + 1 >= static_cast<int>(level_names_.size())) {
    return Status::OutOfRange("no level above level " + std::to_string(level));
  }
  std::lock_guard<std::mutex> lock(mu_);
  parents_[level][child] = parent;
  // Invalidate compiled mappings at and above level+1: parenthood changed.
  for (size_t l = level + 1; l < base_to_level_.size(); ++l) {
    base_to_level_[l].clear();
  }
  return Status::OK();
}

Code ConceptHierarchy::MapBaseCode(const Dictionary& base_dict, int level,
                                   Code base_code) {
  if (level == 0) return base_code;
  std::lock_guard<std::mutex> lock(mu_);
  return MapBaseCodeLocked(base_dict, level, base_code);
}

Code ConceptHierarchy::MapBaseCodeLocked(const Dictionary& base_dict,
                                         int level, Code base_code) {
  std::vector<Code>& compiled = base_to_level_[level];
  if (base_code < compiled.size()) return compiled[base_code];
  // Extend the compiled mapping up to the dictionary's current size.
  size_t old = compiled.size();
  compiled.resize(base_dict.size());
  for (size_t c = old; c < compiled.size(); ++c) {
    std::string name = base_dict.ValueOf(static_cast<Code>(c));
    for (int l = 0; l < level; ++l) {
      auto it = parents_[l].find(name);
      // Unmapped values roll up to themselves (catch-all semantics).
      if (it != parents_[l].end()) name = it->second;
    }
    compiled[c] = level_dicts_[level]->GetOrAdd(name);
  }
  return compiled[base_code];
}

std::string ConceptHierarchy::LabelOf(const Dictionary& base_dict, int level,
                                      Code code) const {
  if (level == 0) return base_dict.ValueOf(code);
  std::lock_guard<std::mutex> lock(mu_);
  return level_dicts_[level]->ValueOf(code);
}

std::vector<Code> ConceptHierarchy::BaseCodesOf(int level,
                                                Code parent_code) const {
  std::vector<Code> out;
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<Code>& compiled = base_to_level_[level];
  for (size_t c = 0; c < compiled.size(); ++c) {
    if (compiled[c] == parent_code) out.push_back(static_cast<Code>(c));
  }
  return out;
}

std::vector<Code> ConceptHierarchy::LevelToLevel(const Dictionary& base_dict,
                                                 int from_level,
                                                 int to_level) {
  std::vector<Code> table;
  std::lock_guard<std::mutex> lock(mu_);
  for (Code base = 0; base < base_dict.size(); ++base) {
    Code from = from_level == 0
                    ? base
                    : MapBaseCodeLocked(base_dict, from_level, base);
    Code to = to_level == 0 ? base
                            : MapBaseCodeLocked(base_dict, to_level, base);
    if (from >= table.size()) table.resize(from + 1, kNullCode);
    table[from] = to;
  }
  return table;
}

Result<CalendarLevel> ParseCalendarLevel(const std::string& level,
                                         const std::string& attr) {
  if (level == "day") return CalendarLevel::kDay;
  if (level == "week") return CalendarLevel::kWeek;
  if (level == "month") return CalendarLevel::kMonth;
  if (level == "time" || level == attr) return CalendarLevel::kRaw;
  return Status::InvalidArgument("unknown calendar level '" + level +
                                 "' for timestamp attribute '" + attr + "'");
}

namespace {

// Civil-from-days / days-from-civil (Howard Hinnant's algorithms, public
// domain), used for month bucketing and labels.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Code CalendarBucket(int64_t ts_seconds, CalendarLevel level) {
  int64_t day = ts_seconds / 86400;
  switch (level) {
    case CalendarLevel::kRaw:
      return static_cast<Code>(ts_seconds);
    case CalendarLevel::kDay:
      return static_cast<Code>(day);
    case CalendarLevel::kWeek:
      // Epoch day 0 was a Thursday; shift so weeks start on Monday.
      return static_cast<Code>((day + 3) / 7);
    case CalendarLevel::kMonth: {
      int y;
      unsigned m, d;
      CivilFromDays(day, &y, &m, &d);
      return static_cast<Code>(y * 12 + static_cast<int>(m) - 1);
    }
  }
  return 0;
}

std::string CalendarLabel(Code bucket, CalendarLevel level) {
  char buf[32];
  switch (level) {
    case CalendarLevel::kRaw:
      return "t" + std::to_string(bucket);
    case CalendarLevel::kDay: {
      int y;
      unsigned m, d;
      CivilFromDays(static_cast<int64_t>(bucket), &y, &m, &d);
      std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
      return buf;
    }
    case CalendarLevel::kWeek: {
      int64_t day = static_cast<int64_t>(bucket) * 7 - 3;
      int y;
      unsigned m, d;
      CivilFromDays(day, &y, &m, &d);
      std::snprintf(buf, sizeof(buf), "%04d-W%02u-%02u", y, m, d);
      return buf;
    }
    case CalendarLevel::kMonth: {
      int y = static_cast<int>(bucket) / 12;
      int m = static_cast<int>(bucket) % 12 + 1;
      std::snprintf(buf, sizeof(buf), "%04d-%02d", y, m);
      return buf;
    }
  }
  return "?";
}

int64_t MakeTimestamp(int year, int month, int day, int hour, int minute,
                      int second) {
  return DaysFromCivil(year, month, day) * 86400 + hour * 3600 + minute * 60 +
         second;
}

void HierarchyRegistry::Register(const std::string& attr,
                                 std::shared_ptr<ConceptHierarchy> hierarchy) {
  map_[attr] = std::move(hierarchy);
}

ConceptHierarchy* HierarchyRegistry::Find(const std::string& attr) const {
  auto it = map_.find(attr);
  return it == map_.end() ? nullptr : it->second.get();
}

}  // namespace solap
