// Concept hierarchies over dimension attributes (paper §3.1):
// station → district, individual → fare-group, raw-page → page-category,
// and calendar hierarchies time → day → week → month for timestamps.
#ifndef SOLAP_HIERARCHY_CONCEPT_HIERARCHY_H_
#define SOLAP_HIERARCHY_CONCEPT_HIERARCHY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/types.h"
#include "solap/storage/dictionary.h"

namespace solap {

/// \brief A multi-level abstraction hierarchy for one string attribute.
///
/// Level 0 is the base level whose codes are the attribute's dictionary
/// codes. Higher levels are defined by value-name parent mappings
/// (SetParent) and compiled on demand into dense base-code → level-code
/// vectors, so new dictionary entries appended later (incremental update)
/// extend the mapping lazily instead of invalidating it.
class ConceptHierarchy {
 public:
  /// `level_names[0]` names the base level (e.g. {"station", "district"}).
  explicit ConceptHierarchy(std::vector<std::string> level_names);

  size_t num_levels() const { return level_names_.size(); }
  const std::string& level_name(int level) const {
    return level_names_[level];
  }

  /// Index of `name` among the levels, or -1.
  int LevelIndex(const std::string& name) const;

  /// Declares that `child` (a value at `level`) rolls up to `parent`
  /// (a value at `level + 1`).
  Status SetParent(int level, const std::string& child,
                   const std::string& parent);

  /// Maps a base-level code (from `base_dict`) to its code at `level`.
  /// Values with no declared parent roll up to themselves. Compiled lazily;
  /// amortized O(1).
  Code MapBaseCode(const Dictionary& base_dict, int level, Code base_code);

  /// Display name of `code` at `level` (level 0 reads `base_dict`).
  std::string LabelOf(const Dictionary& base_dict, int level,
                      Code code) const;

  /// Dictionary of a non-base level (codes assigned by MapBaseCode).
  const Dictionary& level_dictionary(int level) const {
    return *level_dicts_[level];
  }

  /// Base codes that roll up to `parent_code` at `level` — the refinement
  /// used by P-DRILL-DOWN list splitting. Only base codes already seen by
  /// MapBaseCode are returned.
  std::vector<Code> BaseCodesOf(int level, Code parent_code) const;

  /// Compiles the mapping from codes at `from_level` to codes at `to_level`
  /// (`from_level` < `to_level`), covering every value currently in
  /// `base_dict`. `table[c]` is the to-level code of from-level code c.
  /// Used by P-ROLL-UP list merging, which may start from a non-base level.
  std::vector<Code> LevelToLevel(const Dictionary& base_dict, int from_level,
                                 int to_level);

  /// The declared parent mappings: element l maps child value names at
  /// level l to parent value names at level l+1. Written only by SetParent
  /// (construction time), so reading needs no lock. Used by the hierarchy
  /// snapshot writer (storage/hierarchy_io.h).
  const std::vector<std::unordered_map<std::string, std::string>>&
  parent_maps() const {
    return parents_;
  }

 private:
  Code MapBaseCodeLocked(const Dictionary& base_dict, int level,
                         Code base_code);

  std::vector<std::string> level_names_;
  // parents_[l]: child value name at level l -> parent value name at l+1.
  std::vector<std::unordered_map<std::string, std::string>> parents_;
  // Compiled: base_to_level_[l][base_code] = code at level l (l >= 1).
  std::vector<std::vector<Code>> base_to_level_;
  std::vector<std::unique_ptr<Dictionary>> level_dicts_;
  // Guards lazy compilation (and the level dictionaries it appends to):
  // concurrent queries may trigger MapBaseCode on the same hierarchy.
  mutable std::mutex mu_;
};

/// Calendar abstraction levels available on every timestamp attribute.
enum class CalendarLevel { kRaw, kDay, kWeek, kMonth };

/// Parses "time"/"day"/"week"/"month" (also accepting the attribute's own
/// name for the raw level). Returns error on anything else.
Result<CalendarLevel> ParseCalendarLevel(const std::string& level,
                                         const std::string& attr);

/// Buckets a Unix timestamp (seconds) to a dense-enough bucket code:
/// day index, ISO-ish week index, or month index (year*12+month).
Code CalendarBucket(int64_t ts_seconds, CalendarLevel level);

/// Human-readable bucket label ("2007-10-01", "2007-W40", "2007-10").
std::string CalendarLabel(Code bucket, CalendarLevel level);

/// Unix timestamp (seconds, UTC) for a civil date/time. Convenience for
/// examples and generators.
int64_t MakeTimestamp(int year, int month, int day, int hour = 0,
                      int minute = 0, int second = 0);

/// \brief Registry mapping attribute names to their hierarchies.
class HierarchyRegistry {
 public:
  /// Registers (replacing) the hierarchy of `attr`.
  void Register(const std::string& attr,
                std::shared_ptr<ConceptHierarchy> hierarchy);

  /// Hierarchy of `attr`, or nullptr if none registered.
  ConceptHierarchy* Find(const std::string& attr) const;

  /// Every registered (attr, hierarchy) pair — iteration for the hierarchy
  /// snapshot writer (storage/hierarchy_io.h).
  const std::unordered_map<std::string, std::shared_ptr<ConceptHierarchy>>&
  all() const {
    return map_;
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<ConceptHierarchy>> map_;
};

}  // namespace solap

#endif  // SOLAP_HIERARCHY_CONCEPT_HIERARCHY_H_
