#include "solap/gen/clickstream.h"

#include <random>
#include <vector>

#include "solap/gen/zipf.h"

namespace solap {

namespace {

// Named categories echoing the paper's §5.1 narrative; the remainder are
// synthetic filler categories up to num_categories (44 in the KDD-Cup data).
const char* const kNamedCategories[] = {
    "Assortment", "Legwear", "Legcare", "Main-Pages", "Boutiques",
    "Departments", "Search", "Checkout", "Account", "Logout",
};
constexpr size_t kNumNamed = sizeof(kNamedCategories) / sizeof(char*);

}  // namespace

ClickstreamData GenerateClickstream(const ClickstreamParams& params) {
  ClickstreamData data;
  Schema schema({
      {"session-id", ValueType::kString, FieldRole::kDimension},
      {"request-time", ValueType::kTimestamp, FieldRole::kDimension},
      {"page", ValueType::kString, FieldRole::kDimension},
  });
  data.table = std::make_shared<EventTable>(std::move(schema));
  data.hierarchies = std::make_shared<HierarchyRegistry>();

  const size_t ncat = std::max<size_t>(params.num_categories, kNumNamed);
  std::vector<std::string> categories(ncat);
  for (size_t c = 0; c < ncat; ++c) {
    categories[c] = c < kNumNamed ? kNamedCategories[c]
                                  : "Category-" + std::to_string(c + 1);
  }

  // Raw pages per category. Legwear (index 1) gets DKNY-style product
  // pages, including the paper's product-id-null artifact.
  auto page_h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"raw-page", "page-category"});
  std::vector<std::vector<std::string>> pages(ncat);
  for (size_t c = 0; c < ncat; ++c) {
    if (c == 1) {
      pages[c] = {"product-id-null",  "product-id-34893", "product-id-34885",
                  "product-id-34897", "product-id-35121", "product-id-35340",
                  "product-id-36002", "product-id-36447"};
    } else {
      for (size_t i = 0; i < params.pages_per_category; ++i) {
        pages[c].push_back(categories[c] + "-page-" + std::to_string(i + 1));
      }
    }
    for (const std::string& p : pages[c]) {
      (void)page_h->SetParent(0, p, categories[c]);
    }
  }
  data.hierarchies->Register("page", page_h);

  // Category-level Markov model: Zipf base with boosted story transitions.
  std::mt19937_64 rng(params.seed);
  ZipfDistribution cat_zipf(ncat, 1.1);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::poisson_distribution<int> length(params.mean_session_length);
  ZipfDistribution page_zipf(16, 1.0);  // within-category page choice

  auto pick_page = [&](size_t cat) -> const std::string& {
    size_t i = page_zipf.Sample(rng) % pages[cat].size();
    return pages[cat][i];
  };
  auto next_category = [&](size_t cur) -> size_t {
    double u = unif(rng);
    if (cur == 0) {                // Assortment ->
      if (u < 0.42) return 1;      //   Legwear (the paper's hot pair)
      if (u < 0.47) return 2;      //   Legcare (the colder comparison)
      if (u < 0.55) return 0;      //   stay browsing the assortment
    } else if (cur == 1) {         // Legwear ->
      if (u < 0.35) return 1;      //   comparison shopping within Legwear
      if (u < 0.45) return 7;      //   Checkout
    } else if (cur == 3) {         // Main-Pages ->
      if (u < 0.40) return 0;      //   Assortment
    }
    return cat_zipf.Sample(rng);
  };

  int64_t t = MakeTimestamp(2000, 3, 1);
  // Crawler traffic: very long sessions sweeping pages breadth-first.
  for (size_t b = 0; b < params.num_crawler_sessions; ++b) {
    int len = std::max(1000, static_cast<int>(
                                 params.mean_session_length * 250));
    int64_t click_t = t + static_cast<int64_t>(b);
    for (int i = 0; i < len; ++i) {
      size_t cat = static_cast<size_t>(i) % ncat;
      (void)data.table->AppendRow({
          Value::String("bot" + std::to_string(b)),
          Value::Timestamp(click_t),
          Value::String(pages[cat][static_cast<size_t>(i / ncat) %
                                   pages[cat].size()]),
      });
      click_t += 1;
    }
  }
  for (size_t s = 0; s < params.num_sessions; ++s) {
    int len = std::max(1, length(rng));
    // Sessions start from Main-Pages or Assortment more often than not.
    size_t cat = unif(rng) < 0.5 ? (unif(rng) < 0.6 ? 3 : 0)
                                 : cat_zipf.Sample(rng);
    t += 1 + static_cast<int64_t>(unif(rng) * 30);
    int64_t click_t = t;
    for (int i = 0; i < len; ++i) {
      (void)data.table->AppendRow({
          Value::String("s" + std::to_string(s)),
          Value::Timestamp(click_t),
          Value::String(pick_page(cat)),
      });
      click_t += 5 + static_cast<int64_t>(unif(rng) * 120);
      cat = next_category(cat);
    }
  }
  return data;
}

}  // namespace solap
