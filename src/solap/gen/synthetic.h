// Synthetic sequence generator reproducing the paper's §5.2 setup:
// D independent sequences, Poisson(L) lengths, first symbol Zipf(I, theta),
// subsequent symbols from a degree-1 Markov chain with Zipf-skewed
// conditionals, and an optional 3-level concept hierarchy whose group /
// super-group sizes follow Zipf's law (I=20, theta=0.9 / I=5, theta=0.9).
#ifndef SOLAP_GEN_SYNTHETIC_H_
#define SOLAP_GEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/seq/sequence_group.h"

namespace solap {

/// Dataset identifier convention Ix.Ly.θz.Dw from the paper.
struct SyntheticParams {
  size_t num_sequences = 100'000;  ///< D
  size_t num_symbols = 100;        ///< I
  double mean_length = 20.0;       ///< L
  double theta = 0.9;              ///< skew of symbol/conditional draws
  uint64_t seed = 42;

  /// 3-level hierarchy symbol -> group -> super-group (paper QuerySet B).
  bool build_hierarchy = true;
  size_t num_groups = 20;
  size_t num_supergroups = 5;
  double hierarchy_theta = 0.9;

  /// "I100.L20.t0.9.D100000"-style tag for bench output.
  std::string Tag() const;
};

/// A generated dataset: one raw sequence group (all sequences form a single
/// sequence group, as in the paper) plus the hierarchy registry.
struct SyntheticData {
  /// Attribute name of the single raw symbol dimension.
  static constexpr const char* kAttr = "symbol";
  /// Level names of the generated hierarchy.
  static constexpr const char* kLevelBase = "symbol";
  static constexpr const char* kLevelGroup = "group";
  static constexpr const char* kLevelSuper = "supergroup";

  std::shared_ptr<SequenceGroupSet> groups;
  std::shared_ptr<HierarchyRegistry> hierarchies;

  /// LevelRef helpers for the three levels.
  LevelRef Base() const { return {kAttr, kLevelBase}; }
  LevelRef Group() const { return {kAttr, kLevelGroup}; }
  LevelRef Super() const { return {kAttr, kLevelSuper}; }
};

SyntheticData GenerateSynthetic(const SyntheticParams& params);

/// Generates `count` additional sequences with the same distribution
/// (continuing the random stream from `batch_seed`) — the incremental-update
/// workload. Returned as raw base-code sequences.
std::vector<std::vector<Code>> GenerateSyntheticBatch(
    const SyntheticParams& params, size_t count, uint64_t batch_seed);

}  // namespace solap

#endif  // SOLAP_GEN_SYNTHETIC_H_
