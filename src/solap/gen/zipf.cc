#include "solap/gen/zipf.h"

#include <algorithm>
#include <cmath>

namespace solap {

ZipfDistribution::ZipfDistribution(size_t n, double theta) {
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(std::mt19937_64& rng) const {
  double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::ProbabilityOf(size_t i) const {
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace solap
