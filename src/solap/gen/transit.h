// Transit workload generator: a WMATA-style smart-card event stream
// (paper §1 and Fig. 1) — passengers enter ("in") and leave ("out")
// stations; stations roll up to districts and card-ids to fare groups.
// This simulates the subway company data of §6, which was never published.
#ifndef SOLAP_GEN_TRANSIT_H_
#define SOLAP_GEN_TRANSIT_H_

#include <cstdint>
#include <memory>

#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/storage/event_table.h"

namespace solap {

struct TransitParams {
  size_t num_passengers = 2'000;
  size_t num_days = 7;
  /// First day of the simulated window.
  int start_year = 2007, start_month = 10, start_day = 1;
  /// Probability that a passenger's second trip of the day returns to the
  /// origin of the first (the round-trip pattern (X, Y, Y, X)).
  double round_trip_prob = 0.6;
  /// Probability of a third, follow-up trip after a round trip.
  double third_trip_prob = 0.3;
  uint64_t seed = 7;
};

/// A generated transit dataset: the event database plus hierarchies
/// location: station -> district and card-id: individual -> fare-group.
struct TransitData {
  std::shared_ptr<EventTable> table;
  std::shared_ptr<HierarchyRegistry> hierarchies;
};

TransitData GenerateTransit(const TransitParams& params);

}  // namespace solap

#endif  // SOLAP_GEN_TRANSIT_H_
