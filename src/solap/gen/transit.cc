#include "solap/gen/transit.h"

#include <random>

#include "solap/gen/zipf.h"

namespace solap {

namespace {

struct Station {
  const char* name;
  const char* district;
};

// A WMATA-flavoured station map (the paper's running example names plus
// fillers), grouped into districts.
constexpr Station kStations[] = {
    {"Pentagon", "D10"},    {"Clarendon", "D10"}, {"Rosslyn", "D10"},
    {"Wheaton", "D20"},     {"Glenmont", "D20"},  {"Silver-Spring", "D20"},
    {"Deanwood", "D30"},    {"Anacostia", "D30"}, {"Navy-Yard", "D30"},
    {"Metro-Center", "D40"}, {"Gallery-Place", "D40"}, {"Judiciary-Sq", "D40"},
};
constexpr size_t kNumStations = sizeof(kStations) / sizeof(kStations[0]);

constexpr const char* kFareGroups[] = {"regular", "student", "senior"};

}  // namespace

TransitData GenerateTransit(const TransitParams& params) {
  TransitData data;
  Schema schema({
      {"time", ValueType::kTimestamp, FieldRole::kDimension},
      {"card-id", ValueType::kString, FieldRole::kDimension},
      {"location", ValueType::kString, FieldRole::kDimension},
      {"action", ValueType::kString, FieldRole::kDimension},
      {"amount", ValueType::kDouble, FieldRole::kMeasure},
  });
  data.table = std::make_shared<EventTable>(std::move(schema));
  data.hierarchies = std::make_shared<HierarchyRegistry>();

  auto loc_h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"station", "district"});
  for (const Station& s : kStations) {
    (void)loc_h->SetParent(0, s.name, s.district);
  }
  data.hierarchies->Register("location", loc_h);

  auto card_h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"individual", "fare-group"});

  std::mt19937_64 rng(params.seed);
  ZipfDistribution station_zipf(kNumStations, 0.8);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_int_distribution<int> minute_jitter(0, 59);
  std::uniform_int_distribution<int> trip_minutes(12, 55);

  // Assign passengers a fare group and a Zipf-hot home station.
  std::vector<size_t> home(params.num_passengers);
  std::vector<int> fare(params.num_passengers);
  std::uniform_int_distribution<int> fare_pick(0, 2);
  for (size_t p = 0; p < params.num_passengers; ++p) {
    home[p] = station_zipf.Sample(rng);
    fare[p] = fare_pick(rng);
    (void)card_h->SetParent(0, std::to_string(1000 + p),
                            kFareGroups[fare[p]]);
  }
  data.hierarchies->Register("card-id", card_h);

  auto add_event = [&](int64_t t, size_t p, size_t station,
                       const char* action, double amount) {
    (void)data.table->AppendRow({
        Value::Timestamp(t),
        Value::String(std::to_string(1000 + p)),
        Value::String(kStations[station].name),
        Value::String(action),
        Value::Double(amount),
    });
  };

  for (size_t day = 0; day < params.num_days; ++day) {
    int64_t day_start = MakeTimestamp(params.start_year, params.start_month,
                                      params.start_day) +
                        static_cast<int64_t>(day) * 86400;
    for (size_t p = 0; p < params.num_passengers; ++p) {
      // Morning trip: home -> Zipf-hot destination.
      size_t origin = home[p];
      size_t dest = station_zipf.Sample(rng);
      while (dest == origin) dest = station_zipf.Sample(rng);
      int64_t t = day_start + 7 * 3600 + minute_jitter(rng) * 60;
      double fare_amount = fare[p] == 0 ? -2.0 : -1.0;
      add_event(t, p, origin, "in", 0.0);
      t += trip_minutes(rng) * 60;
      add_event(t, p, dest, "out", fare_amount);

      // Round trip back with configured probability.
      if (unif(rng) < params.round_trip_prob) {
        t += 6 * 3600 + minute_jitter(rng) * 60;  // evening
        add_event(t, p, dest, "in", 0.0);
        t += trip_minutes(rng) * 60;
        add_event(t, p, origin, "out", fare_amount);

        // Optional third trip: origin -> somewhere (the Q2 exploration).
        if (unif(rng) < params.third_trip_prob) {
          size_t z = station_zipf.Sample(rng);
          while (z == origin) z = station_zipf.Sample(rng);
          t += 3600 + minute_jitter(rng) * 60;
          add_event(t, p, origin, "in", 0.0);
          t += trip_minutes(rng) * 60;
          add_event(t, p, z, "out", fare_amount);
        }
      } else if (unif(rng) < 0.3) {
        // A second, unrelated single trip.
        size_t o2 = dest;
        size_t d2 = station_zipf.Sample(rng);
        while (d2 == o2) d2 = station_zipf.Sample(rng);
        t += 5 * 3600 + minute_jitter(rng) * 60;
        add_event(t, p, o2, "in", 0.0);
        t += trip_minutes(rng) * 60;
        add_event(t, p, d2, "out", fare_amount);
      }
    }
  }
  return data;
}

}  // namespace solap
