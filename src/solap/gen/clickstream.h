// Clickstream workload generator — the substitute for the Gazelle.com
// KDD-Cup 2000 dataset used in the paper's real-data experiment (§5.1).
//
// The original data (164,364 click events, 215 attributes, a raw-page ->
// page-category hierarchy with 44 categories) is not redistributable, so
// this generator produces sessions with the same analytical shape: a hot
// (Assortment -> Legwear) path dominating the 2-step category distribution,
// DKNY-style product pages within Legwear for the P-DRILL-DOWN step, and a
// comparison-shopping tail for the APPEND step. See DESIGN.md for the
// substitution rationale.
#ifndef SOLAP_GEN_CLICKSTREAM_H_
#define SOLAP_GEN_CLICKSTREAM_H_

#include <cstdint>
#include <memory>

#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/storage/event_table.h"

namespace solap {

struct ClickstreamParams {
  size_t num_sessions = 50'000;
  double mean_session_length = 4.0;
  uint64_t seed = 2000;  // KDD Cup vintage
  size_t num_categories = 44;
  /// Raw pages per category (Legwear additionally gets product pages).
  size_t pages_per_category = 6;
  /// Web-crawler sessions mixed into the log ("user sessions with
  /// thousands of clicks" — the paper manually filtered these out during
  /// §5.1 preprocessing; see the crawler-filter test/example). Crawler
  /// session ids carry a "bot" prefix and their sessions are ~100x longer.
  size_t num_crawler_sessions = 0;
};

struct ClickstreamData {
  std::shared_ptr<EventTable> table;
  std::shared_ptr<HierarchyRegistry> hierarchies;
};

ClickstreamData GenerateClickstream(const ClickstreamParams& params);

}  // namespace solap

#endif  // SOLAP_GEN_CLICKSTREAM_H_
