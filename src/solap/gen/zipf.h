// Zipf-distributed sampling used by the synthetic data generator
// (paper §5.2: symbol frequencies and Markov conditionals follow Zipf's law
// with skew parameter theta).
#ifndef SOLAP_GEN_ZIPF_H_
#define SOLAP_GEN_ZIPF_H_

#include <cstdint>
#include <random>
#include <vector>

namespace solap {

/// \brief Samples ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^theta.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double theta);

  /// Draws one rank using `rng`.
  size_t Sample(std::mt19937_64& rng) const;

  /// Probability of rank `i`.
  double ProbabilityOf(size_t i) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace solap

#endif  // SOLAP_GEN_ZIPF_H_
