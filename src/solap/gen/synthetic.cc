#include "solap/gen/synthetic.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <numeric>
#include <random>

#include "solap/gen/zipf.h"

namespace solap {

std::string SyntheticParams::Tag() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "I%zu.L%.0f.t%.1f.D%zu", num_symbols,
                mean_length, theta, num_sequences);
  return buf;
}

namespace {

// Partitions `n` items into `k` buckets whose sizes follow Zipf(k, theta),
// every bucket getting at least one item while n >= k. Returns the bucket
// of each item (items are assigned contiguously: hottest bucket first).
std::vector<size_t> ZipfPartition(size_t n, size_t k, double theta) {
  ZipfDistribution zipf(k, theta);
  std::vector<size_t> sizes(k, n >= k ? 1 : 0);
  size_t assigned = std::accumulate(sizes.begin(), sizes.end(), size_t{0});
  // Largest-remainder apportionment of the leftover items.
  std::vector<double> want(k);
  for (size_t g = 0; g < k; ++g) {
    want[g] = zipf.ProbabilityOf(g) * static_cast<double>(n - assigned);
  }
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), size_t{0});
  while (assigned < n) {
    for (size_t g : order) {
      if (assigned >= n) break;
      size_t grant = static_cast<size_t>(want[g]);
      grant = std::min(grant, n - assigned);
      if (grant == 0 && g == order.back()) grant = n - assigned;
      sizes[g] += grant;
      assigned += grant;
      want[g] -= static_cast<double>(grant);
    }
    // Any residue: round-robin one at a time by descending remainder.
    if (assigned < n) {
      size_t best = 0;
      for (size_t g = 1; g < k; ++g) {
        if (want[g] > want[best]) best = g;
      }
      ++sizes[best];
      ++assigned;
      want[best] = 0;
    }
  }
  std::vector<size_t> bucket_of(n);
  size_t item = 0;
  for (size_t g = 0; g < k; ++g) {
    for (size_t i = 0; i < sizes[g] && item < n; ++i) bucket_of[item++] = g;
  }
  return bucket_of;
}

// The paper's Markov chain of degree 1 with "pre-determined, Zipf-skewed"
// conditional probabilities: from symbol `s`, the ranks of the Zipf draw
// are mapped through a permutation seeded by `s`, so every row of the
// transition matrix is a differently-ordered Zipf distribution.
class MarkovChain {
 public:
  MarkovChain(size_t n, double theta, uint64_t seed)
      : zipf_(n, theta), perms_(n) {
    for (size_t s = 0; s < n; ++s) {
      perms_[s].resize(n);
      std::iota(perms_[s].begin(), perms_[s].end(), Code{0});
      std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + s);
      std::shuffle(perms_[s].begin(), perms_[s].end(), rng);
    }
  }

  Code Next(Code current, std::mt19937_64& rng) const {
    return perms_[current][zipf_.Sample(rng)];
  }

 private:
  ZipfDistribution zipf_;
  std::vector<std::vector<Code>> perms_;
};

void GenerateInto(const SyntheticParams& params, size_t count,
                  std::mt19937_64& rng,
                  const std::function<void(const std::vector<Code>&)>& emit) {
  ZipfDistribution first(params.num_symbols, params.theta);
  MarkovChain markov(params.num_symbols, params.theta, params.seed);
  std::poisson_distribution<int> length(params.mean_length);
  std::vector<Code> seq;
  for (size_t i = 0; i < count; ++i) {
    int len = std::max(1, length(rng));
    seq.clear();
    seq.reserve(len);
    Code current = static_cast<Code>(first.Sample(rng));
    seq.push_back(current);
    for (int j = 1; j < len; ++j) {
      current = markov.Next(current, rng);
      seq.push_back(current);
    }
    emit(seq);
  }
}

}  // namespace

SyntheticData GenerateSynthetic(const SyntheticParams& params) {
  SyntheticData data;
  data.groups = std::make_shared<SequenceGroupSet>(SyntheticData::kAttr);
  data.hierarchies = std::make_shared<HierarchyRegistry>();

  // Symbol dictionary: "e0".."e{I-1}" so that code == rank.
  Dictionary& dict = data.groups->raw_dictionary();
  for (size_t i = 0; i < params.num_symbols; ++i) {
    dict.GetOrAdd("e" + std::to_string(i));
  }

  if (params.build_hierarchy) {
    auto h = std::make_shared<ConceptHierarchy>(std::vector<std::string>{
        SyntheticData::kLevelBase, SyntheticData::kLevelGroup,
        SyntheticData::kLevelSuper});
    std::vector<size_t> group_of = ZipfPartition(
        params.num_symbols, params.num_groups, params.hierarchy_theta);
    std::vector<size_t> super_of = ZipfPartition(
        params.num_groups, params.num_supergroups, params.hierarchy_theta);
    for (size_t i = 0; i < params.num_symbols; ++i) {
      (void)h->SetParent(0, "e" + std::to_string(i),
                         "g" + std::to_string(group_of[i]));
    }
    for (size_t g = 0; g < params.num_groups; ++g) {
      (void)h->SetParent(1, "g" + std::to_string(g),
                         "s" + std::to_string(super_of[g]));
    }
    data.hierarchies->Register(SyntheticData::kAttr, std::move(h));
  }

  // All generated sequences form a single sequence group (paper §5.2).
  SequenceGroup& group = data.groups->GroupFor({});
  std::mt19937_64 rng(params.seed);
  GenerateInto(params, params.num_sequences, rng,
               [&](const std::vector<Code>& seq) { group.AddSequence(seq); });
  return data;
}

std::vector<std::vector<Code>> GenerateSyntheticBatch(
    const SyntheticParams& params, size_t count, uint64_t batch_seed) {
  std::vector<std::vector<Code>> out;
  out.reserve(count);
  std::mt19937_64 rng(batch_seed);
  GenerateInto(params, count, rng,
               [&](const std::vector<Code>& seq) { out.push_back(seq); });
  return out;
}

}  // namespace solap
