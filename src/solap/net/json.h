// Tiny JSON emission helpers for the network front-end (no external JSON
// dependency, and the system only ever *writes* JSON — requests are plain
// S-OLAP query text).
#ifndef SOLAP_NET_JSON_H_
#define SOLAP_NET_JSON_H_

#include <string>
#include <string_view>

namespace solap {
namespace net {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters as \uXXXX).
std::string JsonEscape(std::string_view s);

/// `"s"` with escaping — the quoted JSON string literal for `s`.
std::string JsonString(std::string_view s);

/// Renders a double the way JSON expects: integral values without a
/// trailing ".000000", non-finite values as null (JSON has no Inf/NaN).
std::string JsonNumber(double v);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_JSON_H_
