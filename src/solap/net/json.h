// Tiny JSON layer for the network front-end and the shard wire codec
// (cube/partial_codec.h) — no external JSON dependency.
//
// Writing: escape helpers plus number rendering. JsonEscape covers every
// control character (0x00..0x1f and 0x7f) as \uXXXX, so any byte string
// survives embedding. JsonNumber renders non-finite doubles as null (the
// display path: JSON has no Inf/NaN); the wire codec instead uses
// JsonFiniteNumber, which *rejects* non-finite input — a partial that
// cannot round-trip must fail loudly at encode time, not decode as null.
//
// Reading: JsonParse is a strict recursive-descent parser producing a
// JsonValue tree. Strict means: the whole input must be one JSON value
// (trailing bytes are an error), nesting depth is bounded, numbers must be
// finite, strings must be well-formed (\uXXXX including surrogate pairs),
// and duplicate object keys are rejected — the decode-side mirror of the
// snapshot loader's validate-before-trust discipline.
#ifndef SOLAP_NET_JSON_H_
#define SOLAP_NET_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "solap/common/status.h"

namespace solap {
namespace net {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, all control characters — 0x00..0x1f and DEL — as \uXXXX).
std::string JsonEscape(std::string_view s);

/// `"s"` with escaping — the quoted JSON string literal for `s`.
std::string JsonString(std::string_view s);

/// Renders a double the way JSON expects: integral values without a
/// trailing ".000000", non-finite values as null (JSON has no Inf/NaN).
/// Display paths only — wire codecs use JsonFiniteNumber.
std::string JsonNumber(double v);

/// Strict wire-codec variant: InvalidArgument for NaN/Inf instead of null,
/// and enough digits (%.17g) that a finite double round-trips bit-exactly
/// through a correct strtod.
Result<std::string> JsonFiniteNumber(double v);

/// \brief One parsed JSON value (null / bool / number / string / array /
/// object).
///
/// Numbers keep both views: integral tokens (no '.', 'e') parse into `i`
/// with `is_int = true` (full int64 range, no double rounding); every
/// number also fills `d`. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double d = 0.0;
  int64_t i = 0;
  bool is_int = false;
  std::string s;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsInt() const { return kind == Kind::kNumber && is_int; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// Member of an object by key, or nullptr (also nullptr for non-objects).
  const JsonValue* Find(std::string_view key) const;

  // Strict typed accessors for decoders: error (kParseError) when the
  // member is missing or of the wrong type.
  Result<const JsonValue*> Require(std::string_view key,
                                   Kind expected) const;
  Result<int64_t> RequireInt(std::string_view key) const;
  Result<std::string> RequireString(std::string_view key) const;
};

/// Parser guardrails.
struct JsonLimits {
  size_t max_depth = 64;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). kParseError on any violation.
Result<JsonValue> JsonParse(std::string_view text, JsonLimits limits = {});

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_JSON_H_
