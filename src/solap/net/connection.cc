#include "solap/net/connection.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "solap/common/failpoint.h"

namespace solap {
namespace net {

void LingeringClose(int fd, int timeout_ms, int interrupt_fd) {
  ::shutdown(fd, SHUT_WR);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  while (true) {
    int wait_ms = 0;
    if (timeout_ms > 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left < 0) break;
      wait_ms = static_cast<int>(left);
    }
    struct pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    nfds_t nfds = 1;
    if (interrupt_fd >= 0) {
      fds[1] = {interrupt_fd, POLLIN, 0};
      nfds = 2;
    }
    int rc;
    do {
      rc = ::poll(fds, nfds, wait_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) break;  // grace period over (or poll error)
    if (nfds == 2 && fds[1].revents != 0) break;  // server stopping
    ssize_t n;
    do {
      n = ::recv(fd, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;  // EOF or error: the peer is done
  }
  ::close(fd);
}

Connection::Connection(int fd, HttpParserLimits limits, Counter* bytes_read,
                       Counter* bytes_written)
    : fd_(fd),
      parser_(limits),
      bytes_read_(bytes_read),
      bytes_written_(bytes_written) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::ReadOutcome Connection::ReadSome(int timeout_ms, int interrupt_fd,
                                             std::string* error) {
  struct pollfd fds[2];
  fds[0] = {fd_, POLLIN, 0};
  nfds_t nfds = 1;
  if (interrupt_fd >= 0) {
    fds[1] = {interrupt_fd, POLLIN, 0};
    nfds = 2;
  }
  int rc;
  do {
    rc = ::poll(fds, nfds, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    *error = std::string("poll: ") + std::strerror(errno);
    return ReadOutcome::kError;
  }
  if (rc == 0) return ReadOutcome::kTimeout;
  // Drain/stop wakeups take priority over client bytes: the server is
  // tearing the worker loop down, not serving this connection further.
  if (nfds == 2 && fds[1].revents != 0) return ReadOutcome::kWakeup;

  // Chaos hook: an armed net.read failpoint models a peer that vanished
  // mid-request (firewall drop, client crash) without a clean FIN.
  if (Status injected = SOLAP_FAILPOINT_CHECK("net.read"); !injected.ok()) {
    *error = injected.message();
    return ReadOutcome::kError;
  }

  char buf[16 * 1024];
  ssize_t n;
  do {
    n = ::recv(fd_, buf, sizeof(buf), 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return ReadOutcome::kClosed;
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
    *error = std::string("recv: ") + std::strerror(errno);
    return ReadOutcome::kError;
  }
  if (bytes_read_ != nullptr) bytes_read_->Inc(static_cast<uint64_t>(n));
  parser_.Feed(buf, static_cast<size_t>(n));
  return ReadOutcome::kData;
}

Status Connection::WriteAll(std::string_view data) {
  // Chaos hook: an injected net.write fault tears the connection between
  // parsing a request and delivering its response — the client-visible
  // worst case (work done, answer lost).
  SOLAP_FAILPOINT("net.write");

  size_t off = 0;
  while (off < data.size()) {
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a peer that already closed must surface as EPIPE,
      // not kill the process with SIGPIPE.
      n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd = {fd_, POLLOUT, 0};
        int rc;
        do {
          rc = ::poll(&pfd, 1, /*timeout_ms=*/10'000);
        } while (rc < 0 && errno == EINTR);
        if (rc <= 0) {
          return Status::Internal("send: peer not accepting bytes");
        }
        continue;
      }
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (bytes_written_ != nullptr) bytes_written_->Inc(data.size());
  return Status::OK();
}

void Connection::CloseGracefully(int timeout_ms, int interrupt_fd) {
  if (fd_ < 0) return;
  LingeringClose(fd_, timeout_ms, interrupt_fd);
  fd_ = -1;
}

}  // namespace net
}  // namespace solap
