// Minimal HTTP/1.1 message layer for the network front-end: an incremental
// request parser (feed bytes, drain complete requests — the pipelining
// primitive) and a response serializer. Deliberately small: no chunked
// transfer coding (501), no multipart, no compression — POST /query and
// GET /metrics need none of it, and every byte of this parser is code we
// must harden ourselves (tests/net_test.cc fuzzes the edges).
#ifndef SOLAP_NET_HTTP_H_
#define SOLAP_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace solap {
namespace net {

/// One parsed request. Header names are lower-cased at parse time so
/// lookups are case-insensitive per RFC 9110 §5.1.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim, case-sensitive)
  std::string target;   // path only; the query string is split off
  std::string query;    // raw query string ("" when absent)
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection persistence after this request (1.1 default yes, 1.0
  /// default no, "Connection:" header overrides either way).
  bool keep_alive = true;

  /// Value of header `lower_name` (must be passed lower-case), or nullptr.
  const std::string* FindHeader(const std::string& lower_name) const;
};

/// Parser guardrails. Oversteps are reported as kError with an HTTP
/// status the server sends before closing (431 head / 413 body).
struct HttpParserLimits {
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

/// \brief Incremental HTTP/1.1 request parser.
///
/// Feed() appends raw socket bytes; Next() extracts complete requests in
/// arrival order until it reports kNeedMore — several pipelined requests
/// in one read batch come out as several Next() hits. After kError the
/// parser is poisoned (the connection must close; byte boundaries are no
/// longer trustworthy).
class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  enum class Outcome { kNeedMore, kRequest, kError };

  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete request into `*out`.
  Outcome Next(HttpRequest* out);

  /// After kError: the HTTP status (400/413/431/501) and a short reason.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (diagnostics / idle accounting).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Outcome Fail(int status, std::string reason);

  HttpParserLimits limits_;
  std::string buffer_;
  bool poisoned_ = false;
  int error_status_ = 0;
  std::string error_;
};

/// A response under construction; the handler fills it, the connection
/// serializes it. Content-Length and Connection headers are emitted by
/// the serializer from `body` / `keep_alive`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  bool keep_alive = true;
  /// Extra headers (e.g. X-Solap-Session, Retry-After).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Canonical reason phrase for `status` ("OK", "Too Many Requests", ...).
const char* HttpStatusText(int status);

/// Renders the full wire form: status line, headers, CRLFs, body.
std::string SerializeResponse(const HttpResponse& resp);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_HTTP_H_
