// The S-OLAP HTTP surface: route handlers mapping QueryService onto three
// endpoints.
//
//   POST /query    S-OLAP query text in the body -> JSON cells out.
//                  Headers:
//                    X-Solap-Deadline-Ms: <n>    per-request deadline
//                    X-Solap-Strategy: cb|ii|auto
//                    X-Solap-Limit: <n>          cells in the response
//                                                (default 100, 0 = all)
//                    X-Solap-Session: new | <id> iterative sessions; with
//                                                an <id>, the body is a
//                                                session operation
//                                                ("rollup Y", "append Z
//                                                attr level", ...) or
//                                                empty (re-run current)
//                    X-Solap-Trace: 1            include the span tree in
//                                                the JSON response
//   POST /ingest   {"rows":[[v,...],...]} appended through the epoch-gated
//                  write path (docs/INGESTION.md). Values travel by JSON
//                  kind (null/string/integer/number) and are validated
//                  against the table schema; the whole batch is rejected
//                  on any mismatch. Answers {"status":"ok","events":N,
//                  "epoch":E}. X-Solap-Trace: 1 includes the span tree.
//   GET /metrics   Prometheus 0.0.4 text exposition of the service
//                  registry (every series prefixed solap_).
//   GET /healthz   Liveness probe ("ok"); the server answers 503 here
//                  itself once draining.
//
// Error mapping (DESIGN.md §8): queue-full kResourceExhausted -> 429,
// drain kUnavailable -> 503, deadline kDeadlineExceeded -> 504, parse and
// argument errors -> 400, unknown session -> 404, the rest -> 500.
#ifndef SOLAP_NET_QUERY_ROUTES_H_
#define SOLAP_NET_QUERY_ROUTES_H_

#include "solap/net/router.h"
#include "solap/service/query_service.h"

namespace solap {
namespace net {

/// HTTP status for a failed QueryResponse / session lookup.
int HttpStatusForError(const Status& status);

/// Builds the standard route table over `service` (which must outlive the
/// server using the router).
Router BuildSolapRouter(QueryService* service);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_QUERY_ROUTES_H_
