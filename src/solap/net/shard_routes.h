// The shard-server HTTP surface (tools/shard_main.cc): the receive side of
// the distributed scatter whose send side is engine/remote_shard.h.
//
//   POST /shard/exec   {"v":1,"strategy":"cb|ii|auto","spec":{...}} in,
//                      CRC-tagged CuboidPartial envelope out
//                      (cube/partial_codec.h). X-Solap-Deadline-Ms bounds
//                      the execution. Errors come back in the same JSON
//                      error shape as /query, so the client can map the
//                      shard's Status code faithfully.
//   GET  /healthz      Liveness probe for the supervisor
//                      (service/shard_supervisor.h).
#ifndef SOLAP_NET_SHARD_ROUTES_H_
#define SOLAP_NET_SHARD_ROUTES_H_

#include "solap/engine/engine.h"
#include "solap/net/router.h"

namespace solap {
namespace net {

/// Registers POST /shard/exec and GET /healthz on `router`, serving
/// `engine` (the shard's slice executor; must outlive the server).
void AddShardExecRoutes(Router* router, SOlapEngine* engine);

/// A ready-made router holding only the shard routes.
Router BuildShardRouter(SOlapEngine* engine);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_SHARD_ROUTES_H_
