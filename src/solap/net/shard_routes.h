// The shard-server HTTP surface (tools/shard_main.cc): the receive side of
// the distributed scatter whose send side is engine/remote_shard.h.
//
//   POST /shard/exec   {"v":1,"strategy":"cb|ii|auto","spec":{...}} in,
//                      CRC-tagged CuboidPartial envelope out
//                      (cube/partial_codec.h). X-Solap-Deadline-Ms bounds
//                      the execution. Errors come back in the same JSON
//                      error shape as /query, so the client can map the
//                      shard's Status code faithfully.
//   POST /shard/append CRC-tagged envelope holding {"dicts":[...],
//                      "rows":[...]} — the coordinator replicating an
//                      ingested batch's routed slice (docs/INGESTION.md).
//                      Dictionary tails apply before the rows so the
//                      replica's codes stay identical to the
//                      coordinator's. Answers {"status":"ok","epoch":N}.
//   GET  /healthz      Liveness probe for the supervisor
//                      (service/shard_supervisor.h).
#ifndef SOLAP_NET_SHARD_ROUTES_H_
#define SOLAP_NET_SHARD_ROUTES_H_

#include "solap/engine/engine.h"
#include "solap/net/json.h"
#include "solap/net/router.h"

namespace solap {
namespace net {

/// Decodes one wire row value by JSON kind (null / string / integer /
/// number). Schema-free on purpose: EventTable::ValidateRow's conversion
/// rules accept exactly these kinds for their matching column types.
/// Shared by /shard/append and the coordinator's /ingest.
Result<Value> RowValueFromJson(const JsonValue& v);

/// Registers POST /shard/exec, POST /shard/append and GET /healthz on
/// `router`, serving `engine` (the shard's slice executor; must outlive
/// the server). Append requires an engine built over a mutable table —
/// shard_main's is — and answers InvalidArgument otherwise.
void AddShardExecRoutes(Router* router, SOlapEngine* engine);

/// A ready-made router holding only the shard routes.
Router BuildShardRouter(SOlapEngine* engine);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_SHARD_ROUTES_H_
