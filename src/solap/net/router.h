// Exact-path request router for the network front-end. Deliberately not a
// pattern-matching tree: the S-OLAP surface is three endpoints, and exact
// match keeps dispatch allocation-free and obviously correct. 404/405
// composition lives here so handlers only ever see requests they claimed.
#ifndef SOLAP_NET_ROUTER_H_
#define SOLAP_NET_ROUTER_H_

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "solap/net/http.h"

namespace solap {
namespace net {

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief Maps (method, exact path) to a handler.
///
/// Build once before HttpServer::Start, then treat as immutable — Dispatch
/// is called concurrently from every server worker with no locking.
class Router {
 public:
  /// Registers `handler` for `method` + `path`. Last registration wins.
  void Handle(std::string method, std::string path, HttpHandler handler);

  /// Runs the matching handler; composes 404 (unknown path) / 405 (known
  /// path, wrong method, with an Allow header) when nothing matches.
  HttpResponse Dispatch(const HttpRequest& req) const;

 private:
  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
};

/// A ready-made plain-text response (error pages, healthz).
HttpResponse TextResponse(int status, std::string body);

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_ROUTER_H_
