// The HTTP/1.1 front-end server: a poll-based acceptor thread feeding a
// bounded connection queue drained by a small pool of worker threads, each
// of which owns one keep-alive connection at a time and services pipelined
// requests in order. Plain POSIX sockets, no external dependencies.
//
// Lifecycle: Start() binds and spawns threads; Drain() flips the server
// into lame-duck mode (new connections and new requests answer 503 while
// requests already executing finish normally); Stop() drains, wakes every
// blocked poll via the self-pipe, joins all threads and closes all fds.
//
// Backpressure model (DESIGN.md §8): the server never buffers requests it
// cannot start. Admission pressure from QueryService surfaces as 429
// through the /query handler; connection pressure (all workers busy and
// the handoff queue full) answers 503 at accept time and closes.
#ifndef SOLAP_NET_SERVER_H_
#define SOLAP_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "solap/common/metrics.h"
#include "solap/common/status.h"
#include "solap/net/connection.h"
#include "solap/net/router.h"

namespace solap {
namespace net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  uint16_t port = 0;
  size_t num_workers = 4;
  /// Accepted connections waiting for a free worker. Overflow answers 503
  /// at accept time instead of queueing unboundedly.
  size_t max_queued_connections = 64;
  /// Keep-alive connections idle longer than this are closed.
  int idle_timeout_ms = 5000;
  HttpParserLimits limits;
};

/// \brief Poll-based HTTP/1.1 server over a Router.
///
/// Thread-safe after Start(): Drain/Stop/port/draining may be called from
/// any thread; the router is shared read-only across workers.
class HttpServer {
 public:
  /// `metrics` may be null (no accounting). `drain_hook`, when set, runs
  /// once at the start of Drain — the seam that tells QueryService to stop
  /// admitting (its sheds then surface as 503, not 429).
  HttpServer(Router router, HttpServerOptions options,
             MetricsRegistry* metrics = nullptr,
             std::function<void()> drain_hook = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Fails (address in
  /// use, bad address) without leaking fds; the server may not be reused
  /// after a failed Start.
  Status Start();

  /// Bound port (resolves port 0 requests); valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Enters lame-duck mode: everything new answers 503, executing requests
  /// finish. Idempotent; implied by Stop.
  void Drain();

  /// Drain + wake all blocked threads + join + close. Idempotent.
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Connections currently owned by workers (not yet closed).
  size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// Dispatches one parsed request, appending the wire response to `*out`.
  /// Returns false when this response ends the connection.
  bool HandleRequest(const HttpRequest& req, std::string* out);
  void CountResponse(int status);
  /// Best-effort one-shot response for connections rejected before reaching
  /// a worker (drain / queue overflow); always closes `fd`.
  void RejectConnection(int fd, int status, const std::string& reason);

  Router router_;
  HttpServerOptions options_;
  std::function<void()> drain_hook_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<size_t> active_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> conn_queue_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Metric handles (null when no registry was supplied).
  Counter* accepted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* closed_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* parse_errors_ = nullptr;
  Counter* bytes_read_ = nullptr;
  Counter* bytes_written_ = nullptr;
  Counter* responses_2xx_ = nullptr;
  Counter* responses_4xx_ = nullptr;
  Counter* responses_5xx_ = nullptr;
  Counter* shed_429_ = nullptr;
  Counter* unavailable_503_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Histogram* request_ms_ = nullptr;
};

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_SERVER_H_
