#include "solap/net/query_routes.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "solap/common/trace.h"
#include "solap/net/json.h"
#include "solap/net/shard_routes.h"
#include "solap/parser/parser.h"

namespace solap {
namespace net {

namespace {

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string w;
  while (is >> w) out.push_back(w);
  return out;
}

std::string TrimCopy(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n;");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n;");
  return s.substr(b, e - b + 1);
}

HttpResponse JsonErrorResponse(const Status& status) {
  HttpResponse resp;
  resp.status = HttpStatusForError(status);
  resp.content_type = "application/json";
  resp.body = "{\"status\":\"error\",\"code\":" +
              JsonString(StatusCodeName(status.code())) +
              ",\"message\":" + JsonString(status.message()) + "}\n";
  if (resp.status == 429 || resp.status == 503) {
    resp.headers.emplace_back("Retry-After", "1");
  }
  return resp;
}

/// Renders an answered query: top cells (by value, like the shell's table
/// view), dimension descriptors, latency split, optional session/trace.
std::string CuboidJson(const QueryResponse& qr, size_t limit,
                       long long session_id, const std::string& trace_text) {
  const SCuboid& c = *qr.cuboid;
  std::string out = "{\"status\":\"ok\"";
  out += ",\"agg\":" + JsonString(AggKindName(c.agg()));
  out += ",\"num_cells\":" + std::to_string(c.num_cells());
  out += ",\"dims\":[";
  for (size_t d = 0; d < c.dims().size(); ++d) {
    if (d) out += ',';
    const DimDescriptor& dim = c.dims()[d];
    out += "{\"name\":" + JsonString(dim.name) +
           ",\"level\":" + JsonString(dim.ref.level) +
           ",\"pattern\":" + (dim.is_pattern ? "true" : "false") + "}";
  }
  out += "],\"cells\":[";
  bool first = true;
  for (const auto& [key, value] : c.TopCells(limit)) {
    if (!first) out += ',';
    first = false;
    out += "{\"key\":[";
    for (size_t d = 0; d < key.size(); ++d) {
      if (d) out += ',';
      out += JsonString(c.LabelOf(d, key[d]));
    }
    out += "],\"value\":" + JsonNumber(value) + "}";
  }
  out += "]";
  out += ",\"wait_ms\":" + JsonNumber(qr.wait_ms);
  out += ",\"exec_ms\":" + JsonNumber(qr.exec_ms);
  if (session_id >= 0) {
    out += ",\"session\":" + std::to_string(session_id);
  }
  if (!trace_text.empty()) {
    out += ",\"trace\":" + JsonString(trace_text);
  }
  out += "}\n";
  return out;
}

/// Parses a session-operation body in the shell's vocabulary:
///   append <sym> [attr level] | prepend <sym> [attr level]
///   detail | dehead
///   rollup <sym> [level] | drilldown <sym> [level]
///   slice <sym> <label> [label ...]
Result<SessionOp> ParseSessionOp(const std::string& body) {
  std::vector<std::string> w = SplitWords(body);
  if (w.empty()) return Status::InvalidArgument("empty session operation");
  SessionOp op;
  const std::string& verb = w[0];
  if (verb == "append" || verb == "prepend") {
    if (w.size() != 2 && w.size() != 4) {
      return Status::InvalidArgument(verb + " <sym> [attr level]");
    }
    op.op = verb;
    op.symbol = w[1];
    if (w.size() == 4) op.ref = {w[2], w[3]};
    return op;
  }
  if (verb == "detail" || verb == "dehead") {
    if (w.size() != 1) return Status::InvalidArgument(verb);
    op.op = verb;
    return op;
  }
  if (verb == "rollup" || verb == "drilldown") {
    if (w.size() != 2 && w.size() != 3) {
      return Status::InvalidArgument(verb + " <sym> [level]");
    }
    op.op = verb == "rollup" ? "prollup" : "pdrilldown";
    op.symbol = w[1];
    if (w.size() == 3) op.level = w[2];
    return op;
  }
  if (verb == "slice") {
    if (w.size() < 3) return Status::InvalidArgument("slice <sym> <label>...");
    op.op = "slice";
    op.symbol = w[1];
    op.labels.assign(w.begin() + 2, w.end());
    return op;
  }
  return Status::InvalidArgument(
      "unknown session operation '" + verb +
      "' (append|prepend|detail|dehead|rollup|drilldown|slice)");
}

struct RequestParams {
  SubmitOptions opts;
  size_t limit = 100;
  bool trace = false;
  bool new_session = false;
  long long session_id = -1;  // -1: stateless
};

Result<RequestParams> ReadParams(const HttpRequest& req) {
  RequestParams p;
  if (const std::string* v = req.FindHeader("x-solap-deadline-ms")) {
    char* end = nullptr;
    long long ms = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' || ms < 0) {
      return Status::InvalidArgument("bad X-Solap-Deadline-Ms '" + *v + "'");
    }
    p.opts.timeout = std::chrono::milliseconds(ms);
  }
  if (const std::string* v = req.FindHeader("x-solap-strategy")) {
    if (*v == "cb") {
      p.opts.strategy = ExecStrategy::kCounterBased;
    } else if (*v == "ii") {
      p.opts.strategy = ExecStrategy::kInvertedIndex;
    } else if (*v == "auto") {
      p.opts.strategy = ExecStrategy::kAuto;
    } else {
      return Status::InvalidArgument("bad X-Solap-Strategy '" + *v +
                                     "' (cb|ii|auto)");
    }
  }
  if (const std::string* v = req.FindHeader("x-solap-limit")) {
    char* end = nullptr;
    long long n = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' || n < 0) {
      return Status::InvalidArgument("bad X-Solap-Limit '" + *v + "'");
    }
    p.limit = static_cast<size_t>(n);
  }
  if (const std::string* v = req.FindHeader("x-solap-trace")) {
    p.trace = (*v == "1" || *v == "true");
  }
  if (const std::string* v = req.FindHeader("x-solap-session")) {
    if (*v == "new") {
      p.new_session = true;
    } else {
      char* end = nullptr;
      long long id = std::strtoll(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || id <= 0) {
        return Status::InvalidArgument("bad X-Solap-Session '" + *v +
                                       "' (new or a session id)");
      }
      p.session_id = id;
    }
  }
  return p;
}

HttpResponse HandleQuery(QueryService* service, const HttpRequest& req) {
  Result<RequestParams> params = ReadParams(req);
  if (!params.ok()) return JsonErrorResponse(params.status());
  RequestParams p = *std::move(params);

  // One span tree per traced request: the net.request root wraps parsing,
  // queueing and execution, so a client can see where its wall time went
  // without shell access.
  TraceContext trace_ctx;
  TraceSpan request_span(p.trace ? &trace_ctx : nullptr, "net.request");
  if (p.trace) p.opts.trace = &trace_ctx;

  const std::string body = TrimCopy(req.body);
  QueryResponse qr;
  long long responded_session = -1;

  if (p.session_id >= 0) {
    // Established session: the body is an S-OLAP operation (or empty to
    // re-run the current spec — the paper's repeated-query case).
    Result<QueryService::Ticket> ticket = Status::Internal("unreached");
    if (body.empty()) {
      ticket = service->SubmitSessionCurrent(
          static_cast<SessionId>(p.session_id), p.opts);
    } else {
      Result<SessionOp> op = ParseSessionOp(body);
      if (!op.ok()) return JsonErrorResponse(op.status());
      ticket = service->SubmitSessionOp(static_cast<SessionId>(p.session_id),
                                        *op, p.opts);
    }
    if (!ticket.ok()) return JsonErrorResponse(ticket.status());
    qr = ticket->response.get();
    responded_session = p.session_id;
  } else {
    Result<Statement> stmt = Status::Internal("unreached");
    {
      TraceSpan parse_span(p.opts.trace, "net.parse");
      stmt = ParseStatement(body);
    }
    if (!stmt.ok()) return JsonErrorResponse(stmt.status());
    if (stmt->explain != ExplainMode::kNone) {
      return JsonErrorResponse(Status::InvalidArgument(
          "EXPLAIN is a shell facility; set X-Solap-Trace: 1 for a span "
          "tree"));
    }
    if (p.new_session) {
      responded_session =
          static_cast<long long>(service->OpenSession(stmt->spec));
    }
    qr = service->Run(stmt->spec, p.opts);
  }

  if (!qr.status.ok()) return JsonErrorResponse(qr.status);

  request_span.End();
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = CuboidJson(qr, p.limit, responded_session,
                         p.trace ? trace_ctx.ToString() : std::string());
  if (responded_session >= 0) {
    resp.headers.emplace_back("X-Solap-Session",
                              std::to_string(responded_session));
  }
  if (!qr.missing_shards.empty()) {
    // Degraded partial answer (DESIGN.md §10): these shards' slices are
    // absent from the cells below. Clients must opt in to trusting it.
    std::string missing;
    for (size_t s : qr.missing_shards) {
      if (!missing.empty()) missing += ",";
      missing += std::to_string(s);
    }
    resp.headers.emplace_back("X-Solap-Partial", missing);
  }
  return resp;
}

/// POST /ingest: {"rows":[[v,...],...]} appended through the service's
/// epoch-gated write path. Values travel by JSON kind (null / string /
/// integer / number) and are checked against the table schema by
/// EventTable::ValidateRow — the whole batch is rejected on any mismatch.
HttpResponse HandleIngest(QueryService* service, const HttpRequest& req) {
  auto run = [&]() -> Result<HttpResponse> {
    SOLAP_ASSIGN_OR_RETURN(JsonValue root, JsonParse(req.body));
    if (!root.IsObject()) {
      return Status::InvalidArgument("ingest body must be an object");
    }
    SOLAP_ASSIGN_OR_RETURN(const JsonValue* rows_v,
                           root.Require("rows", JsonValue::Kind::kArray));
    std::vector<std::vector<Value>> rows;
    rows.reserve(rows_v->items.size());
    for (const JsonValue& rv : rows_v->items) {
      if (!rv.IsArray()) {
        return Status::InvalidArgument("each row must be an array");
      }
      std::vector<Value> row;
      row.reserve(rv.items.size());
      for (const JsonValue& cv : rv.items) {
        SOLAP_ASSIGN_OR_RETURN(Value value, RowValueFromJson(cv));
        row.push_back(std::move(value));
      }
      rows.push_back(std::move(row));
    }

    TraceContext trace_ctx;
    const bool traced = [&] {
      const std::string* v = req.FindHeader("x-solap-trace");
      return v != nullptr && *v == "1";
    }();
    QueryService::IngestResult result =
        service->Ingest(rows, traced ? &trace_ctx : nullptr);
    if (!result.status.ok()) return result.status;

    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = "{\"status\":\"ok\",\"events\":" +
                std::to_string(result.events) +
                ",\"epoch\":" + std::to_string(result.epoch);
    if (traced) resp.body += ",\"trace\":" + JsonString(trace_ctx.ToString());
    resp.body += "}\n";
    return resp;
  };
  auto resp = run();
  if (!resp.ok()) return JsonErrorResponse(resp.status());
  return *std::move(resp);
}

}  // namespace

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
    case StatusCode::kAlreadyExists:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnavailable:
    case StatusCode::kCancelled:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

Router BuildSolapRouter(QueryService* service) {
  Router router;
  router.Handle("POST", "/query", [service](const HttpRequest& req) {
    return HandleQuery(service, req);
  });
  router.Handle("POST", "/ingest", [service](const HttpRequest& req) {
    return HandleIngest(service, req);
  });
  router.Handle("GET", "/metrics", [service](const HttpRequest&) {
    service->RefreshResourceMetrics();
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = service->metrics().ToPrometheus();
    return resp;
  });
  router.Handle("GET", "/healthz", [](const HttpRequest&) {
    return TextResponse(200, "ok\n");
  });
  return router;
}

}  // namespace net
}  // namespace solap
