// Blocking HTTP/1.1 client for shard RPCs (engine/remote_shard.h) — the
// send half of the stack whose receive half is net/http.h + net/server.h.
//
// One call = one connection = one request/response exchange. Shard RPCs
// are infrequent (per scattered query, not per row), so connection reuse
// buys little and a fresh connection per call keeps failure classification
// trivial: any torn state dies with the socket.
//
// Deadline model: every blocking step (connect, send, recv) runs behind
// poll() with the remaining slice of one absolute deadline, so a stuck
// shard costs exactly the caller's budget, never a blocking-syscall hang.
// An optional StopToken aborts between poll slices (drain/cancel).
//
// Error classification (the contract RemoteShardClient's retry loop is
// built on):
//  - kUnavailable      — transport: refused, reset, torn response, closed
//                        early; the request may or may not have executed;
//  - kDeadlineExceeded — the deadline elapsed (or the stop token tripped
//                        with a deadline cause);
//  - kCancelled        — the stop token tripped;
//  - kParseError       — bytes arrived but are not a well-formed response
//                        (peer is not speaking our protocol; not retried).
// HTTP-level failures (status >= 400) are NOT errors here: the response is
// returned and the caller classifies application errors itself.
#ifndef SOLAP_NET_HTTP_CLIENT_H_
#define SOLAP_NET_HTTP_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "solap/common/status.h"
#include "solap/common/stop.h"

namespace solap {
namespace net {

/// One parsed response. Header names are lower-cased like HttpRequest's.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of header `lower_name` (must be passed lower-case), or nullptr.
  const std::string* FindHeader(const std::string& lower_name) const;
};

/// Response-side guardrails (shard partials can be large; 64 MiB bounds a
/// hostile or corrupt Content-Length without capping real answers).
struct HttpClientLimits {
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 64 * 1024 * 1024;
};

/// One request/response exchange with `host:port`, honoring `deadline`
/// across connect+send+recv and aborting early if `stop` trips.
/// `headers` are extra request headers (Host and Content-Length are
/// emitted automatically).
Result<ClientResponse> HttpExchange(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::chrono::steady_clock::time_point deadline,
    const StopToken* stop = nullptr, HttpClientLimits limits = {});

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_HTTP_CLIENT_H_
