#include "solap/net/json.h"

#include <cmath>
#include <cstdio>

namespace solap {
namespace net {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace net
}  // namespace solap
