#include "solap/net/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace solap {
namespace net {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Result<std::string> JsonFiniteNumber(double v) {
  if (!std::isfinite(v)) {
    return Status::InvalidArgument(
        "non-finite double cannot be JSON-encoded");
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

const char* KindName(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

}  // namespace

Result<const JsonValue*> JsonValue::Require(std::string_view key,
                                            Kind expected) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::ParseError("missing JSON member '" + std::string(key) +
                              "'");
  }
  if (v->kind != expected) {
    return Status::ParseError("JSON member '" + std::string(key) +
                              "' must be " + KindName(expected) + ", got " +
                              KindName(v->kind));
  }
  return v;
}

Result<int64_t> JsonValue::RequireInt(std::string_view key) const {
  SOLAP_ASSIGN_OR_RETURN(const JsonValue* v,
                         Require(key, Kind::kNumber));
  if (!v->is_int) {
    return Status::ParseError("JSON member '" + std::string(key) +
                              "' must be an integer");
  }
  return v->i;
}

Result<std::string> JsonValue::RequireString(std::string_view key) const {
  SOLAP_ASSIGN_OR_RETURN(const JsonValue* v,
                         Require(key, Kind::kString));
  return v->s;
}

namespace {

/// Strict recursive-descent JSON parser over a string_view.
class Parser {
 public:
  Parser(std::string_view text, JsonLimits limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    SOLAP_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError("JSON parse error at byte " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > limits_.max_depth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->s);
      }
      case 't':
        SOLAP_RETURN_NOT_OK(Literal("true"));
        out->kind = JsonValue::Kind::kBool;
        out->b = true;
        return Status::OK();
      case 'f':
        SOLAP_RETURN_NOT_OK(Literal("false"));
        out->kind = JsonValue::Kind::kBool;
        out->b = false;
        return Status::OK();
      case 'n':
        SOLAP_RETURN_NOT_OK(Literal("null"));
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += n;
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    SOLAP_RETURN_NOT_OK(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      SOLAP_RETURN_NOT_OK(ParseString(&key));
      for (const auto& [k, unused] : out->members) {
        if (k == key) return Fail("duplicate object key '" + key + "'");
      }
      SkipWs();
      SOLAP_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      JsonValue v;
      SOLAP_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    SOLAP_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue v;
      SOLAP_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->items.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Result<uint32_t> HexQuad() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      char c = text_[pos_ + k];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Status ParseString(std::string* out) {
    SOLAP_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // the backslash
      if (pos_ >= text_.size()) return Fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          SOLAP_ASSIGN_OR_RETURN(uint32_t cp, HexQuad());
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            SOLAP_ASSIGN_OR_RETURN(uint32_t lo, HexQuad());
            if (lo < 0xdc00 || lo > 0xdfff) {
              return Fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Fail("bad number");
    }
    // Leading-zero rule: "0" alone or "0." — "01" is an error.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Fail("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    errno = 0;
    char* end = nullptr;
    out->d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(out->d)) {
      return Fail("number out of range");
    }
    if (integral) {
      errno = 0;
      long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->i = i;
        out->is_int = true;
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  JsonLimits limits_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text, JsonLimits limits) {
  return Parser(text, limits).Parse();
}

}  // namespace net
}  // namespace solap
