#include "solap/net/server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "solap/common/failpoint.h"
#include "solap/common/timer.h"

namespace solap {
namespace net {

namespace {

// How long a worker waits for the peer to acknowledge a server-initiated
// close before closing anyway (see Connection::CloseGracefully).
constexpr int kLingerTimeoutMs = 500;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

HttpServer::HttpServer(Router router, HttpServerOptions options,
                       MetricsRegistry* metrics,
                       std::function<void()> drain_hook)
    : router_(std::move(router)),
      options_(std::move(options)),
      drain_hook_(std::move(drain_hook)) {
  if (metrics != nullptr) {
    accepted_ = metrics->counter("net_connections_accepted");
    rejected_ = metrics->counter("net_connections_rejected");
    closed_ = metrics->counter("net_connections_closed");
    requests_ = metrics->counter("net_requests");
    parse_errors_ = metrics->counter("net_parse_errors");
    bytes_read_ = metrics->counter("net_bytes_read");
    bytes_written_ = metrics->counter("net_bytes_written");
    responses_2xx_ = metrics->counter("net_responses_2xx");
    responses_4xx_ = metrics->counter("net_responses_4xx");
    responses_5xx_ = metrics->counter("net_responses_5xx");
    shed_429_ = metrics->counter("net_shed_429");
    unavailable_503_ = metrics->counter("net_unavailable_503");
    active_gauge_ = metrics->gauge("net_active_connections");
    request_ms_ = metrics->histogram("net_request_ms");
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(std::string("bind ") + options_.bind_address +
                                 ":" + std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  SOLAP_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Drain() {
  if (draining_.exchange(true)) return;
  if (drain_hook_) drain_hook_();
}

void HttpServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;
  Drain();
  stopping_.store(true, std::memory_order_release);
  // Closing the write end makes the read end permanently readable
  // (POLLHUP): one shot wakes the acceptor and every worker poll, now and
  // for any poll they enter later.
  if (wake_write_fd_ >= 0) {
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never picked up by a worker.
  for (int fd : conn_queue_) ::close(fd);
  conn_queue_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
}

void HttpServer::RejectConnection(int fd, int status,
                                  const std::string& reason) {
  HttpResponse resp = TextResponse(status, reason + "\n");
  resp.keep_alive = false;
  if (status == 503) {
    resp.headers.emplace_back("Retry-After", "1");
    if (unavailable_503_ != nullptr) unavailable_503_->Inc();
  }
  std::string wire = SerializeResponse(resp);
  // Best effort: the peer may already be gone; either way the connection
  // ends here. Drain only what already arrived (timeout 0) — the acceptor
  // must never park on a rejected peer.
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  LingeringClose(fd, /*timeout_ms=*/0);
  if (rejected_ != nullptr) rejected_->Inc();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {wake_read_fd_, POLLIN, 0}};
    int rc;
    do {
      rc = ::poll(fds, 2, -1);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) break;
    if (fds[1].revents != 0) break;  // Stop() fired the self-pipe
    if (fds[0].revents == 0) continue;

    // Drain the whole accept backlog this wakeup.
    while (true) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        break;  // transient accept error; retry on next poll
      }
      // Chaos hook: an armed net.accept failpoint models accept-time
      // resource exhaustion (fd limits, aborted handshakes).
      if (Status injected = SOLAP_FAILPOINT_CHECK("net.accept");
          !injected.ok()) {
        ::close(fd);
        if (rejected_ != nullptr) rejected_->Inc();
        continue;
      }
      // A draining server still accepts: the worker answers each request
      // with 503 and hangs up with a lingering close, which cannot race
      // the peer's first request the way an accept-time close can.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Queue under the lock, but write the 503 rejection outside it —
      // a slow peer must not stall the accept path.
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (conn_queue_.size() < options_.max_queued_connections) {
          conn_queue_.push_back(fd);
          if (accepted_ != nullptr) accepted_->Inc();
          fd = -1;
        }
      }
      if (fd >= 0) {
        RejectConnection(fd, 503, "server at connection capacity");
      } else {
        queue_cv_.notify_one();
      }
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return !conn_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;  // stopping and nothing left
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(active_.load(std::memory_order_relaxed));
    }
    HandleConnection(fd);
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(active_.load(std::memory_order_relaxed));
    }
    if (closed_ != nullptr) closed_->Inc();
  }
}

void HttpServer::HandleConnection(int fd) {
  Connection conn(fd, options_.limits, bytes_read_, bytes_written_);
  std::string out;
  bool open = true;
  bool responded_close = false;  // we wrote a final response and hang up
  while (open) {
    // Drain every complete pipelined request before touching the socket
    // again; their responses batch into one write.
    HttpRequest req;
    switch (conn.parser().Next(&req)) {
      case HttpParser::Outcome::kRequest:
        open = HandleRequest(req, &out);
        responded_close = !open;
        continue;
      case HttpParser::Outcome::kError: {
        if (parse_errors_ != nullptr) parse_errors_->Inc();
        HttpResponse resp =
            TextResponse(conn.parser().error_status(), conn.parser().error() +
                                                           "\n");
        resp.keep_alive = false;
        CountResponse(resp.status);
        out += SerializeResponse(resp);
        open = false;
        responded_close = true;
        continue;
      }
      case HttpParser::Outcome::kNeedMore:
        break;
    }
    if (!out.empty()) {
      if (!conn.WriteAll(out).ok()) break;
      out.clear();
    }
    if (stopping_.load(std::memory_order_acquire)) break;

    std::string err;
    switch (conn.ReadSome(options_.idle_timeout_ms, wake_read_fd_, &err)) {
      case Connection::ReadOutcome::kData:
        break;
      case Connection::ReadOutcome::kWakeup:
        // Stop() in progress: abandon the idle connection. (Drain alone
        // never fires the pipe — idle keep-alive connections stay parked
        // until they speak, then get their 503.)
        open = false;
        break;
      case Connection::ReadOutcome::kTimeout:
      case Connection::ReadOutcome::kClosed:
      case Connection::ReadOutcome::kError:
        open = false;
        break;
    }
  }
  if (!out.empty()) (void)conn.WriteAll(out);
  if (responded_close) {
    // When the server hangs up first, the peer may not have read the final
    // response yet, and there may be input we never consumed (a 413's
    // body, pipelined requests behind a close). A plain close would RST
    // both away; linger until the peer closes, the grace period ends, or
    // Stop() fires the wake pipe.
    conn.CloseGracefully(kLingerTimeoutMs, wake_read_fd_);
  }
}

bool HttpServer::HandleRequest(const HttpRequest& req, std::string* out) {
  if (requests_ != nullptr) requests_->Inc();
  Timer timer;
  HttpResponse resp;
  if (draining_.load(std::memory_order_acquire)) {
    resp = TextResponse(503, "server is draining\n");
    resp.headers.emplace_back("Retry-After", "1");
    resp.keep_alive = false;
  } else {
    resp = router_.Dispatch(req);
  }
  if (!req.keep_alive) resp.keep_alive = false;
  if (request_ms_ != nullptr) request_ms_->ObserveMs(timer.ElapsedMs());
  CountResponse(resp.status);
  *out += SerializeResponse(resp);
  return resp.keep_alive;
}

void HttpServer::CountResponse(int status) {
  if (responses_2xx_ == nullptr) return;
  if (status < 300) {
    responses_2xx_->Inc();
  } else if (status < 500) {
    responses_4xx_->Inc();
  } else {
    responses_5xx_->Inc();
  }
  if (status == 429) shed_429_->Inc();
  if (status == 503) unavailable_503_->Inc();
}

}  // namespace net
}  // namespace solap
