#include "solap/net/shard_routes.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "solap/common/stop.h"
#include "solap/cube/partial_codec.h"
#include "solap/net/json.h"
#include "solap/net/query_routes.h"

namespace solap {
namespace net {

namespace {

/// Same JSON error shape as /query (query_routes.cc JsonErrorResponse):
/// the remote client maps `code` back into the Status the shard meant.
HttpResponse ShardErrorResponse(const Status& status) {
  HttpResponse resp;
  resp.status = HttpStatusForError(status);
  resp.content_type = "application/json";
  resp.body = "{\"status\":\"error\",\"code\":" +
              JsonString(StatusCodeName(status.code())) +
              ",\"message\":" + JsonString(status.message()) + "}\n";
  return resp;
}

Result<ExecStrategy> StrategyFromWire(const std::string& name) {
  if (name == "cb") return ExecStrategy::kCounterBased;
  if (name == "ii") return ExecStrategy::kInvertedIndex;
  if (name == "auto") return ExecStrategy::kAuto;
  return Status::InvalidArgument("bad strategy '" + name + "' (cb|ii|auto)");
}

HttpResponse HandleShardExec(SOlapEngine* engine, const HttpRequest& req) {
  auto run = [&]() -> Result<HttpResponse> {
    SOLAP_ASSIGN_OR_RETURN(JsonValue root, JsonParse(req.body));
    if (!root.IsObject()) {
      return Status::InvalidArgument("shard exec body must be an object");
    }
    SOLAP_ASSIGN_OR_RETURN(int64_t version, root.RequireInt("v"));
    if (version != kShardWireVersion) {
      return Status::InvalidArgument(
          "shard wire version mismatch: got " + std::to_string(version) +
          ", want " + std::to_string(kShardWireVersion));
    }
    SOLAP_ASSIGN_OR_RETURN(std::string strategy_name,
                           root.RequireString("strategy"));
    SOLAP_ASSIGN_OR_RETURN(ExecStrategy strategy,
                           StrategyFromWire(strategy_name));
    SOLAP_ASSIGN_OR_RETURN(
        const JsonValue* spec_v,
        root.Require("spec", JsonValue::Kind::kObject));
    SOLAP_ASSIGN_OR_RETURN(CuboidSpec spec, DecodeCuboidSpec(*spec_v));

    StopSource stop;
    if (const std::string* v = req.FindHeader("x-solap-deadline-ms")) {
      char* end = nullptr;
      const long long ms = std::strtoll(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || ms < 0) {
        return Status::InvalidArgument("bad X-Solap-Deadline-Ms '" + *v +
                                       "'");
      }
      stop.SetTimeout(std::chrono::milliseconds(ms));
    }
    const StopToken token = stop.token();

    ScanStats stats;
    ExecControl control;
    control.stop = &token;
    control.stats_out = &stats;
    SOLAP_ASSIGN_OR_RETURN(std::shared_ptr<const SCuboid> cuboid,
                           engine->Execute(spec, strategy, control));

    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = EncodeShardPartial(*cuboid, stats);
    return resp;
  };
  auto resp = run();
  if (!resp.ok()) return ShardErrorResponse(resp.status());
  return *std::move(resp);
}

HttpResponse HandleShardAppend(SOlapEngine* engine, const HttpRequest& req) {
  auto run = [&]() -> Result<HttpResponse> {
    SOLAP_ASSIGN_OR_RETURN(std::string_view body,
                           DecodeShardEnvelope(req.body));
    SOLAP_ASSIGN_OR_RETURN(JsonValue root, JsonParse(body));
    if (!root.IsObject()) {
      return Status::InvalidArgument("shard append payload must be an object");
    }

    // Dictionary tails first: the rows below re-encode through them, and
    // the replica must assign the coordinator's codes, not invent its own.
    SOLAP_ASSIGN_OR_RETURN(const JsonValue* dicts_v,
                           root.Require("dicts", JsonValue::Kind::kArray));
    for (const JsonValue& dv : dicts_v->items) {
      if (!dv.IsObject()) {
        return Status::InvalidArgument("dict update must be an object");
      }
      SOLAP_ASSIGN_OR_RETURN(int64_t col, dv.RequireInt("col"));
      SOLAP_ASSIGN_OR_RETURN(int64_t from, dv.RequireInt("from"));
      SOLAP_ASSIGN_OR_RETURN(const JsonValue* values_v,
                             dv.Require("values", JsonValue::Kind::kArray));
      std::vector<std::string> values;
      values.reserve(values_v->items.size());
      for (const JsonValue& s : values_v->items) {
        if (!s.IsString()) {
          return Status::InvalidArgument("dict values must be strings");
        }
        values.push_back(s.s);
      }
      if (col < 0 || from < 0) {
        return Status::InvalidArgument("dict col/from must be non-negative");
      }
      SOLAP_RETURN_NOT_OK(engine->SyncTableDictionary(
          static_cast<int>(col), static_cast<size_t>(from), values));
    }

    SOLAP_ASSIGN_OR_RETURN(const JsonValue* rows_v,
                           root.Require("rows", JsonValue::Kind::kArray));
    std::vector<std::vector<Value>> rows;
    rows.reserve(rows_v->items.size());
    for (const JsonValue& rv : rows_v->items) {
      if (!rv.IsArray()) {
        return Status::InvalidArgument("each row must be an array");
      }
      std::vector<Value> row;
      row.reserve(rv.items.size());
      for (const JsonValue& cv : rv.items) {
        SOLAP_ASSIGN_OR_RETURN(Value value, RowValueFromJson(cv));
        row.push_back(std::move(value));
      }
      rows.push_back(std::move(row));
    }
    SOLAP_RETURN_NOT_OK(engine->IngestRows(rows));

    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = "{\"status\":\"ok\",\"epoch\":" +
                std::to_string(engine->epoch()) + "}\n";
    return resp;
  };
  auto resp = run();
  if (!resp.ok()) return ShardErrorResponse(resp.status());
  return *std::move(resp);
}

}  // namespace

Result<Value> RowValueFromJson(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      return Value::Null();
    case JsonValue::Kind::kString:
      return Value::String(v.s);
    case JsonValue::Kind::kNumber:
      return v.is_int ? Value::Int64(v.i) : Value::Double(v.d);
    default:
      return Status::InvalidArgument(
          "row value must be null, string, or number");
  }
}

void AddShardExecRoutes(Router* router, SOlapEngine* engine) {
  router->Handle("POST", "/shard/exec",
                 [engine](const HttpRequest& req) {
                   return HandleShardExec(engine, req);
                 });
  router->Handle("POST", "/shard/append",
                 [engine](const HttpRequest& req) {
                   return HandleShardAppend(engine, req);
                 });
  router->Handle("GET", "/healthz", [](const HttpRequest&) {
    return TextResponse(200, "ok\n");
  });
}

Router BuildShardRouter(SOlapEngine* engine) {
  Router router;
  AddShardExecRoutes(&router, engine);
  return router;
}

}  // namespace net
}  // namespace solap
