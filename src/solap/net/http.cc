#include "solap/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace solap {
namespace net {

namespace {

std::string LowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Finds the end of the header block. Accepts CRLFCRLF and bare LFLF
/// (lenient parsing per RFC 9112 §2.2). Returns npos when incomplete;
/// `*head_end` is the offset one past the terminator.
size_t FindHeadEnd(const std::string& buf, size_t* head_end) {
  size_t crlf = buf.find("\r\n\r\n");
  size_t lf = buf.find("\n\n");
  if (crlf == std::string::npos && lf == std::string::npos) {
    return std::string::npos;
  }
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    *head_end = crlf + 4;
    return crlf;
  }
  *head_end = lf + 2;
  return lf;
}

/// Splits one header line "Name: value"; returns false on malformed input.
bool ParseHeaderLine(std::string_view line, std::string* name,
                     std::string* value) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view raw_name = line.substr(0, colon);
  // Field names must not contain whitespace (RFC 9112 §5.1).
  if (raw_name.find(' ') != std::string_view::npos ||
      raw_name.find('\t') != std::string_view::npos) {
    return false;
  }
  *name = LowerAscii(raw_name);
  *value = std::string(TrimOws(line.substr(colon + 1)));
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

HttpParser::Outcome HttpParser::Fail(int status, std::string reason) {
  poisoned_ = true;
  error_status_ = status;
  error_ = std::move(reason);
  return Outcome::kError;
}

HttpParser::Outcome HttpParser::Next(HttpRequest* out) {
  if (poisoned_) return Outcome::kError;

  size_t head_end = 0;
  size_t blank = FindHeadEnd(buffer_, &head_end);
  if (blank == std::string::npos) {
    if (buffer_.size() > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) + " bytes");
    }
    return Outcome::kNeedMore;
  }
  if (blank > limits_.max_head_bytes) {
    return Fail(431, "request head exceeds " +
                         std::to_string(limits_.max_head_bytes) + " bytes");
  }

  HttpRequest req;
  // -- Request line ---------------------------------------------------------
  size_t line_end = buffer_.find('\n');
  std::string_view line(buffer_.data(), line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  {
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                               : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Fail(400, "malformed request line");
    }
    req.method = std::string(line.substr(0, sp1));
    std::string raw_target(line.substr(sp1 + 1, sp2 - sp1 - 1));
    req.version = std::string(line.substr(sp2 + 1));
    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
      return Fail(400, "unsupported protocol version '" + req.version + "'");
    }
    size_t qmark = raw_target.find('?');
    if (qmark == std::string::npos) {
      req.target = std::move(raw_target);
    } else {
      req.target = raw_target.substr(0, qmark);
      req.query = raw_target.substr(qmark + 1);
    }
    if (req.target.empty() || req.target[0] != '/') {
      return Fail(400, "request target must be an absolute path");
    }
  }

  // -- Headers --------------------------------------------------------------
  size_t pos = line_end + 1;
  while (pos < blank) {
    size_t eol = buffer_.find('\n', pos);
    std::string_view hline(buffer_.data() + pos, eol - pos);
    if (!hline.empty() && hline.back() == '\r') hline.remove_suffix(1);
    pos = eol + 1;
    if (hline.empty()) break;
    std::string name, value;
    if (!ParseHeaderLine(hline, &name, &value)) {
      return Fail(400, "malformed header line");
    }
    req.headers.emplace_back(std::move(name), std::move(value));
  }

  // -- Body framing ---------------------------------------------------------
  if (req.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, "chunked transfer coding is not supported");
  }
  size_t content_length = 0;
  if (const std::string* cl = req.FindHeader("content-length")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return Fail(400, "malformed Content-Length");
    }
    content_length = static_cast<size_t>(v);
    if (content_length > limits_.max_body_bytes) {
      return Fail(413, "request body exceeds " +
                           std::to_string(limits_.max_body_bytes) + " bytes");
    }
  }
  if (buffer_.size() - head_end < content_length) return Outcome::kNeedMore;
  req.body = buffer_.substr(head_end, content_length);
  buffer_.erase(0, head_end + content_length);

  // -- Persistence ----------------------------------------------------------
  req.keep_alive = req.version == "HTTP/1.1";
  if (const std::string* conn = req.FindHeader("connection")) {
    std::string v = LowerAscii(*conn);
    if (v == "close") req.keep_alive = false;
    if (v == "keep-alive") req.keep_alive = true;
  }

  *out = std::move(req);
  return Outcome::kRequest;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& resp) {
  std::string out;
  out.reserve(resp.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += HttpStatusText(resp.status);
  out += "\r\n";
  for (const auto& [name, value] : resp.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: ";
  out += resp.keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace net
}  // namespace solap
