// One accepted client connection: owns the socket fd, the incremental
// request parser, and byte accounting. All IO is poll-gated and loops over
// EINTR; the net.read / net.write failpoints sit directly at the socket
// calls so the chaos suite can tear connections mid-message.
#ifndef SOLAP_NET_CONNECTION_H_
#define SOLAP_NET_CONNECTION_H_

#include <string>
#include <string_view>

#include "solap/common/metrics.h"
#include "solap/common/status.h"
#include "solap/net/http.h"

namespace solap {
namespace net {

/// Half-closes `fd` (FIN to the peer), then discards incoming bytes until
/// the peer closes, `timeout_ms` elapses (0 = drain only what is already
/// buffered), or `interrupt_fd` becomes readable; finally closes the fd.
/// Closing a socket with unread input makes the kernel answer RST, which
/// can destroy a response still in flight to the peer — this is the
/// standard "lingering close".
void LingeringClose(int fd, int timeout_ms, int interrupt_fd = -1);

/// \brief Socket + parser state for one client, used by exactly one server
/// worker at a time (no internal locking).
class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction). The counters may be
  /// null (benchmark clients); when set they accumulate raw socket bytes.
  Connection(int fd, HttpParserLimits limits, Counter* bytes_read = nullptr,
             Counter* bytes_written = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  enum class ReadOutcome {
    kData,     ///< at least one byte was fed to the parser
    kTimeout,  ///< poll() elapsed with nothing to read (keep-alive idle)
    kClosed,   ///< orderly EOF from the peer
    kWakeup,   ///< the interrupt fd became readable (server drain/stop)
    kError,    ///< socket error or injected net.read fault
  };

  /// Waits up to `timeout_ms` (-1 = forever) for readability, then reads
  /// once into the parser. `interrupt_fd` (-1 = none) is polled alongside
  /// the socket so a draining server can break a worker out of its wait.
  ReadOutcome ReadSome(int timeout_ms, int interrupt_fd, std::string* error);

  /// Writes all of `data`, polling for writability as needed. Fails on
  /// peer reset or an injected net.write fault.
  Status WriteAll(std::string_view data);

  /// Server-initiated close after a written response: half-close and drain
  /// (see LingeringClose) so the response cannot be RST'd away by input we
  /// never consumed — e.g. the body behind a 413, or pipelined requests
  /// behind a Connection: close response.
  void CloseGracefully(int timeout_ms, int interrupt_fd = -1);

  HttpParser& parser() { return parser_; }

 private:
  int fd_;
  HttpParser parser_;
  Counter* bytes_read_;
  Counter* bytes_written_;
};

}  // namespace net
}  // namespace solap

#endif  // SOLAP_NET_CONNECTION_H_
