#include "solap/net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace solap {
namespace net {

namespace {

/// Poll slice: long enough that poll dominates, short enough that a stop
/// token tears a blocked exchange down promptly.
constexpr int kPollSliceMs = 50;

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

/// Remaining whole milliseconds until `deadline`, clamped to [0, slice].
/// time_point::max() (no deadline) polls full slices forever.
int SliceMs(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    return kPollSliceMs;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(left.count(), kPollSliceMs));
}

Status CheckBudget(std::chrono::steady_clock::time_point deadline,
                   const StopToken* stop, const char* what) {
  if (stop != nullptr) {
    Status s = stop->Check(what);
    if (!s.ok()) return s;
  }
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded(std::string(what) +
                                    ": deadline exceeded");
  }
  return Status::OK();
}

/// Waits for `events` on `fd` within the budget. kUnavailable on socket
/// error, kDeadlineExceeded / kCancelled on budget exhaustion.
Status PollFor(int fd, short events,
               std::chrono::steady_clock::time_point deadline,
               const StopToken* stop, const char* what) {
  for (;;) {
    SOLAP_RETURN_NOT_OK(CheckBudget(deadline, stop, what));
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, SliceMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string(what) + ": poll failed");
    }
    if (rc == 0) continue;  // slice elapsed; budget re-checked on loop
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      return Status::Unavailable(std::string(what) + ": socket error");
    }
    return Status::OK();  // readable/writable (POLLHUP surfaces via read)
  }
}

Result<std::string> BuildRequest(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    if (name.find_first_of("\r\n:") != std::string::npos ||
        value.find_first_of("\r\n") != std::string::npos) {
      return Status::InvalidArgument("invalid request header: " + name);
    }
    req += name + ": " + value + "\r\n";
  }
  req += "\r\n";
  req += body;
  return req;
}

/// Parses the head (status line + headers) in `head`, which excludes the
/// terminating blank line.
Status ParseHead(const std::string& head, ClientResponse* out,
                 size_t* content_length) {
  size_t pos = head.find("\r\n");
  const std::string status_line =
      head.substr(0, pos == std::string::npos ? head.size() : pos);
  // "HTTP/1.1 200 OK"
  if (status_line.size() < 12 || status_line.compare(0, 7, "HTTP/1.") != 0 ||
      status_line[8] != ' ') {
    return Status::ParseError("malformed HTTP status line");
  }
  int status = 0;
  for (int i = 9; i < 12; ++i) {
    if (status_line[i] < '0' || status_line[i] > '9') {
      return Status::ParseError("malformed HTTP status code");
    }
    status = status * 10 + (status_line[i] - '0');
  }
  out->status = status;

  bool have_length = false;
  while (pos != std::string::npos) {
    const size_t line_start = pos + 2;
    pos = head.find("\r\n", line_start);
    std::string line = head.substr(
        line_start,
        (pos == std::string::npos ? head.size() : pos) - line_start);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::ParseError("malformed response header");
    }
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t vbegin = colon + 1;
    while (vbegin < line.size() && (line[vbegin] == ' ' || line[vbegin] == '\t')) {
      ++vbegin;
    }
    size_t vend = line.size();
    while (vend > vbegin && (line[vend - 1] == ' ' || line[vend - 1] == '\t')) {
      --vend;
    }
    std::string value = line.substr(vbegin, vend - vbegin);
    if (name == "content-length") {
      errno = 0;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::ParseError("malformed Content-Length");
      }
      *content_length = static_cast<size_t>(n);
      have_length = true;
    } else if (name == "transfer-encoding") {
      // The solap server never chunks; a peer that does is not ours.
      return Status::ParseError("unsupported transfer coding");
    }
    out->headers.emplace_back(std::move(name), std::move(value));
  }
  if (!have_length) {
    return Status::ParseError("response missing Content-Length");
  }
  return Status::OK();
}

}  // namespace

const std::string* ClientResponse::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

Result<ClientResponse> HttpExchange(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::chrono::steady_clock::time_point deadline, const StopToken* stop,
    HttpClientLimits limits) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (fd.get() < 0) {
    return Status::Unavailable("shard rpc: socket() failed");
  }
  {
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  // Non-blocking connect behind poll: a dead endpoint fails within the
  // budget instead of the kernel's multi-minute SYN retry schedule.
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("shard rpc: connect refused");
    }
    SOLAP_RETURN_NOT_OK(
        PollFor(fd.get(), POLLOUT, deadline, stop, "shard rpc connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::Unavailable("shard rpc: connect failed");
    }
  }

  SOLAP_ASSIGN_OR_RETURN(std::string request,
                         BuildRequest(host, port, method, target, body,
                                      headers));
  size_t sent = 0;
  while (sent < request.size()) {
    SOLAP_RETURN_NOT_OK(
        PollFor(fd.get(), POLLOUT, deadline, stop, "shard rpc send"));
    const ssize_t n = ::send(fd.get(), request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::Unavailable("shard rpc: send failed");
    }
    sent += static_cast<size_t>(n);
  }

  ClientResponse resp;
  std::string buf;
  size_t head_end = std::string::npos;
  size_t content_length = 0;
  char chunk[16 * 1024];
  for (;;) {
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        SOLAP_RETURN_NOT_OK(
            ParseHead(buf.substr(0, head_end), &resp, &content_length));
        if (content_length > limits.max_body_bytes) {
          return Status::ParseError("response body exceeds limit");
        }
      } else if (buf.size() > limits.max_head_bytes) {
        return Status::ParseError("response head exceeds limit");
      }
    }
    if (head_end != std::string::npos &&
        buf.size() >= head_end + 4 + content_length) {
      resp.body = buf.substr(head_end + 4, content_length);
      return resp;
    }
    SOLAP_RETURN_NOT_OK(
        PollFor(fd.get(), POLLIN, deadline, stop, "shard rpc recv"));
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::Unavailable("shard rpc: recv failed");
    }
    if (n == 0) {
      // Peer closed before the promised bytes arrived: torn response.
      return Status::Unavailable("shard rpc: connection closed mid-response");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace solap
