#include "solap/net/router.h"

namespace solap {
namespace net {

void Router::Handle(std::string method, std::string path,
                    HttpHandler handler) {
  routes_[{std::move(method), std::move(path)}] = std::move(handler);
}

HttpResponse Router::Dispatch(const HttpRequest& req) const {
  auto it = routes_.find({req.method, req.target});
  if (it != routes_.end()) return it->second(req);

  // Same path under another method => 405 with the allowed set.
  std::string allowed;
  for (const auto& [key, handler] : routes_) {
    if (key.second != req.target) continue;
    if (!allowed.empty()) allowed += ", ";
    allowed += key.first;
  }
  if (!allowed.empty()) {
    HttpResponse resp = TextResponse(
        405, "method " + req.method + " not allowed for " + req.target + "\n");
    resp.headers.emplace_back("Allow", std::move(allowed));
    return resp;
  }
  return TextResponse(404, "no such endpoint: " + req.target + "\n");
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

}  // namespace net
}  // namespace solap
